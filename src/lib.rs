//! # ddsc — Data Dependence Speculation & Collapsing
//!
//! A full reproduction of *"The Performance Potential of Data Dependence
//! Speculation & Collapsing"* (Sazeides, Vassiliadis & Smith, MICRO-29,
//! 1996) as a Rust workspace. This umbrella crate re-exports the public
//! API of every component:
//!
//! * [`isa`] — the SPARC-v8-flavoured instruction model;
//! * [`vm`] — the assembler + interpreter producing dynamic traces;
//! * [`workloads`] — the six synthetic SPEC-like benchmarks;
//! * [`trace`] — trace records, containers, binary I/O and statistics;
//! * [`predict`] — branch predictors and stride/context address
//!   predictors with confidence;
//! * [`collapse`] — dependence expressions and collapsing rules;
//! * [`core`] — the window-based limit simulator (configurations A–E);
//! * [`experiments`] — drivers regenerating every paper table and figure;
//! * [`util`] — deterministic PRNGs, statistics, histograms, tables.
//!
//! # Quickstart
//!
//! Simulate one benchmark under the paper's configuration D and measure
//! the speedup over the base machine:
//!
//! ```
//! use ddsc::core::{simulate, PaperConfig, SimConfig};
//! use ddsc::workloads::Benchmark;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let trace = Benchmark::Eqntott.trace(1996, 20_000)?;
//! let base = simulate(&trace, &SimConfig::paper(PaperConfig::A, 8));
//! let full = simulate(&trace, &SimConfig::paper(PaperConfig::D, 8));
//! assert!(full.speedup_over(&base) > 1.0);
//! # Ok(())
//! # }
//! ```

pub use ddsc_collapse as collapse;
pub use ddsc_core as core;
pub use ddsc_experiments as experiments;
pub use ddsc_isa as isa;
pub use ddsc_predict as predict;
pub use ddsc_trace as trace;
pub use ddsc_util as util;
pub use ddsc_vm as vm;
pub use ddsc_workloads as workloads;
