//! The parallel experiment lab must be an invisible optimisation: the
//! same grid evaluated serially and via the multi-threaded
//! `Lab::prewarm` fan-out has to produce bit-identical results for
//! every cell.
//!
//! This file holds a single test because it toggles the process-global
//! `DDSC_THREADS` override; concurrent tests in the same binary would
//! race on it.

use ddsc::experiments::{collect_profiles, Lab, Suite, SuiteConfig};

#[test]
fn prewarm_on_two_threads_matches_serial_evaluation_bit_for_bit() {
    let config = SuiteConfig {
        seed: 1996,
        trace_len: 8_000,
        widths: vec![4, 16],
    };
    let suite = Suite::generate(config);

    std::env::set_var("DDSC_THREADS", "1");
    let serial = Lab::from_suite(suite.clone()).with_profiling();
    let cells = serial.grid();
    assert!(
        cells.len() >= 2 * 5 * 2,
        "grid covers widths x configs x benches"
    );
    serial.prewarm(&cells);
    let serial_profiles = collect_profiles(&serial);

    std::env::set_var("DDSC_THREADS", "2");
    let parallel = Lab::from_suite(suite).with_profiling();
    parallel.prewarm(&cells);
    let parallel_profiles = collect_profiles(&parallel);
    std::env::remove_var("DDSC_THREADS");

    for &(bench, cfg, width) in &cells {
        let a = serial.result(bench, cfg, width);
        let b = parallel.result(bench, cfg, width);
        assert_eq!(
            *a,
            *b,
            "{bench} config {} width {width} diverged across thread counts",
            cfg.label()
        );
        // The profiled metrics are as deterministic as the results.
        assert_eq!(
            *serial.metrics(bench, cfg, width),
            *parallel.metrics(bench, cfg, width),
            "{bench} config {} width {width} metrics diverged",
            cfg.label()
        );
    }
    assert_eq!(
        serial.simulations_run(),
        parallel.simulations_run(),
        "both labs simulate each cell exactly once"
    );
    // The serialised profiles — the `repro --profile` payload — must be
    // byte-identical across thread counts, as must the per-cell
    // attribution block of the lab report.
    assert_eq!(serial_profiles.len(), parallel_profiles.len());
    for (a, b) in serial_profiles.iter().zip(&parallel_profiles) {
        assert_eq!(a.config, b.config);
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "profile_{}.json diverged across thread counts",
            a.config.label()
        );
    }
    assert_eq!(
        serial.report().cell_metrics,
        parallel.report().cell_metrics,
        "BENCH_lab.json cell_metrics diverged across thread counts"
    );
}
