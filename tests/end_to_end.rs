//! End-to-end integration: workloads → VM → traces → simulator, checking
//! the paper's headline *shapes* at small scale.

use ddsc::core::{simulate, PaperConfig, SimConfig};
use ddsc::util::stats::harmonic_mean;
use ddsc::workloads::Benchmark;

const LEN: usize = 30_000;
const SEED: u64 = 1996;

fn suite_speedup(cfg: PaperConfig, width: u32, benches: &[Benchmark]) -> f64 {
    let per: Vec<f64> = benches
        .iter()
        .map(|&b| {
            let t = b.trace(SEED, LEN).expect("workload runs");
            let base = simulate(&t, &SimConfig::paper(PaperConfig::A, width));
            let r = simulate(&t, &SimConfig::paper(cfg, width));
            r.speedup_over(&base)
        })
        .collect();
    harmonic_mean(&per).expect("positive speedups")
}

#[test]
fn configuration_ordering_matches_the_paper() {
    // Figure 3's ordering: A <= B <= D and A <= C <= D <= E.
    let width = 8;
    let b = suite_speedup(PaperConfig::B, width, &Benchmark::ALL);
    let c = suite_speedup(PaperConfig::C, width, &Benchmark::ALL);
    let d = suite_speedup(PaperConfig::D, width, &Benchmark::ALL);
    let e = suite_speedup(PaperConfig::E, width, &Benchmark::ALL);
    assert!(b >= 1.0, "load-speculation cannot hurt, got {b}");
    assert!(c > 1.1, "collapsing must show clear gains, got {c}");
    assert!(d >= c * 0.99, "D adds speculation on top of C: {c} -> {d}");
    assert!(
        e >= d * 0.99,
        "ideal speculation dominates real: {d} -> {e}"
    );
    // §5.1: "d-collapsing contributes the majority of the improvement".
    assert!(
        c - 1.0 > b - 1.0,
        "collapsing ({c}) must contribute more than speculation ({b})"
    );
}

#[test]
fn speedups_grow_with_issue_width() {
    // Figure 3: D's speedup rises monotonically with width (1.20 -> 1.66
    // in the paper for widths 4..32).
    let s4 = suite_speedup(PaperConfig::D, 4, &Benchmark::ALL);
    let s16 = suite_speedup(PaperConfig::D, 16, &Benchmark::ALL);
    assert!(
        s16 > s4,
        "wider machines benefit more from collapsing: {s4} vs {s16}"
    );
}

#[test]
fn pointer_chasing_gains_little_from_load_speculation() {
    // §5.2: "realistic load-speculation for pointer chasing benchmarks
    // ... by itself provides negligible performance gains" (5%-9%),
    // while the non-pointer subset benefits clearly.
    let width = 16;
    let pointer = suite_speedup(PaperConfig::B, width, &Benchmark::POINTER_CHASING);
    let regular = suite_speedup(PaperConfig::B, width, &Benchmark::NON_POINTER_CHASING);
    assert!(
        pointer < 1.15,
        "pointer-chasing load-spec speedup should be small, got {pointer}"
    );
    assert!(
        regular > pointer,
        "regular codes must benefit more: {regular} vs {pointer}"
    );
}

#[test]
fn collapse_behaviour_matches_section_5_3() {
    // Aggregate configuration-D collapse stats over the suite at width 16.
    let mut merged = ddsc::collapse::CollapseStats::new();
    for b in Benchmark::ALL {
        let t = b.trace(SEED, LEN).unwrap();
        let r = simulate(&t, &SimConfig::paper(PaperConfig::D, 16));
        merged.merge(&r.collapse);
    }
    // A large fraction of instructions collapse.
    let frac = merged.collapsed_pct().value();
    assert!(frac > 25.0, "collapse fraction {frac:.1}%");
    // 3-1 is the dominant mechanism.
    use ddsc::collapse::CollapseCategory::*;
    let three = merged.category_pct(ThreeOne).value();
    let four = merged.category_pct(FourOne).value();
    let zero = merged.category_pct(ZeroOp).value();
    assert!(
        three > four && three > zero,
        "3-1 dominates: {three}/{four}/{zero}"
    );
    assert!(four > zero, "4-1 above 0-op: {four} vs {zero}");
    // Distances are nearly always below 8.
    let below8 = merged.distance().fraction_below(8);
    assert!(below8 > 0.6, "most collapses are near, got {below8}");
    // Both pair and triple sequences occur; cmp-branch fusion is among
    // the top pairs, as in Table 5.
    assert!(merged.pairs().total() > 0);
    assert!(merged.triples().total() > 0);
    let top_pairs: Vec<String> = merged
        .pairs()
        .top(8)
        .into_iter()
        .map(|(k, _)| k.to_string())
        .collect();
    assert!(
        top_pairs.iter().any(|p| p.ends_with("brc")),
        "expected a *-brc pair among the top sequences: {top_pairs:?}"
    );
}

#[test]
fn branch_prediction_quality_ordering_matches_table_2() {
    // go is the hardest benchmark to predict; li and eqntott are among
    // the easiest — that ordering drives Figures 4-7.
    let acc = |b: Benchmark| {
        let t = b.trace(SEED, 60_000).unwrap();
        let s = ddsc::predict::branch_stats(&t, &mut ddsc::predict::McFarling::paper_8kb());
        s.accuracy_pct().value()
    };
    let go = acc(Benchmark::Go);
    for other in [
        Benchmark::Compress,
        Benchmark::Eqntott,
        Benchmark::Li,
        Benchmark::Ijpeg,
    ] {
        assert!(
            acc(other) > go,
            "{other} should predict better than go ({go:.1}%)"
        );
    }
}

#[test]
fn wrong_address_speculation_is_rare_under_confidence() {
    // §5.2: "the percentage of incorrect predictions is very small".
    let mut agg = ddsc::core::LoadSpecStats::default();
    for b in Benchmark::ALL {
        let t = b.trace(SEED, LEN).unwrap();
        let r = simulate(&t, &SimConfig::paper(PaperConfig::D, 16));
        let s = &r.loads;
        if s.total() == 0 {
            continue;
        }
        let wrong = s.pct(ddsc::core::LoadClass::PredictedIncorrect).value();
        assert!(wrong < 16.0, "{b}: {wrong:.1}% wrongly speculated");
        agg.merge(s);
    }
    let total_wrong = agg.pct(ddsc::core::LoadClass::PredictedIncorrect).value();
    assert!(
        total_wrong < 8.0,
        "suite-wide wrong speculation must stay small, got {total_wrong:.1}%"
    );
}

#[test]
fn two_k_configuration_runs_the_whole_suite() {
    for b in Benchmark::ALL {
        let t = b.trace(SEED, 10_000).unwrap();
        let r = simulate(&t, &SimConfig::paper(PaperConfig::E, 2048));
        assert_eq!(r.instructions, 10_000);
        assert!(r.ipc() > 1.0, "{b} at 2k width: {}", r.ipc());
    }
}
