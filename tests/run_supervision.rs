//! Run-supervision integration tests: journal crash recovery under
//! arbitrary damage, and resume-after-damage end to end.
//!
//! The contract under test: however a run journal is damaged —
//! truncated at any byte offset, or with any single bit flipped — the
//! recovery path surfaces only a clean prefix of real records, never a
//! misparsed one, never a panic; and a supervised lab resumed from a
//! damaged journal still completes with byte-identical artifacts (it
//! just re-simulates more cells).

use std::path::PathBuf;

use ddsc::experiments::{render_all, CellStore, Lab, SuiteConfig};
use ddsc::util::journal::{
    decode_records, encode_record, read_journal, Journal, JournalRecord, JOURNAL_HEADER_LEN,
    JOURNAL_MAGIC, JOURNAL_VERSION,
};
use proptest::prelude::*;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ddsc-supervision-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// A pool of strings covering the codec's edge shapes: empty, plain,
/// non-ASCII, and long enough to dominate its frame.
fn arb_string() -> impl Strategy<Value = String> {
    (0u8..5).prop_map(|k| {
        match k {
            0 => "",
            1 => "099.go",
            2 => "cfg seed=1996 len=300000 widths=[4, 8, 16]",
            3 => "héllo wörld ≠ ascii",
            4 => "cell timed out: (li, config D, width 16) exceeded its 0.500 s wall-clock budget",
            _ => unreachable!(),
        }
        .to_string()
    })
}

fn arb_record() -> impl Strategy<Value = JournalRecord> {
    prop_oneof![
        arb_string().prop_map(|config| JournalRecord::RunStarted { config }),
        (arb_string(), arb_string(), any::<u32>()).prop_map(|(bench, config, width)| {
            JournalRecord::CellStarted {
                bench,
                config,
                width,
            }
        }),
        (arb_string(), arb_string(), any::<u32>(), any::<u64>()).prop_map(
            |(bench, config, width, digest)| JournalRecord::CellFinished {
                bench,
                config,
                width,
                digest,
            }
        ),
        (arb_string(), arb_string(), any::<u32>(), arb_string()).prop_map(
            |(bench, config, width, error)| JournalRecord::CellFailed {
                bench,
                config,
                width,
                error,
            }
        ),
        arb_string().prop_map(|path| JournalRecord::ArtifactPublished { path }),
        any::<u32>().prop_map(|status| JournalRecord::RunFinished { status }),
    ]
}

/// Encodes a whole journal file (header + frames) and the byte offset
/// at which each record's frame starts.
fn encode_journal(records: &[JournalRecord]) -> (Vec<u8>, Vec<usize>) {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&JOURNAL_MAGIC);
    bytes.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
    let mut offsets = Vec::new();
    for rec in records {
        offsets.push(bytes.len());
        bytes.extend_from_slice(&encode_record(rec));
    }
    (bytes, offsets)
}

/// How many leading records survive when the file is cut to `len`
/// bytes: exactly the frames that fit whole, zero if even the header
/// is cut.
fn complete_frames_within(offsets: &[usize], total: usize, len: usize) -> usize {
    if len < JOURNAL_HEADER_LEN {
        return 0;
    }
    let mut n = 0;
    for i in 0..offsets.len() {
        let end = offsets.get(i + 1).copied().unwrap_or(total);
        if end <= len {
            n = i + 1;
        } else {
            break;
        }
    }
    n
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncating a journal at *any* byte offset recovers exactly the
    /// records whose frames survive whole — and `Journal::open` on the
    /// damaged file truncates the torn tail so appending continues
    /// cleanly from the recovered prefix.
    #[test]
    fn truncation_at_any_offset_recovers_a_clean_prefix(
        records in proptest::collection::vec(arb_record(), 1..10),
        cut_frac in 0.0f64..1.0,
        case in 0u64..u64::MAX,
    ) {
        let (bytes, offsets) = encode_journal(&records);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let cut = cut.min(bytes.len());
        let expect = complete_frames_within(&offsets, bytes.len(), cut);

        // Pure decode: the torn tail is discarded, never misparsed.
        let (recovered, valid) = decode_records(&bytes[..cut]);
        prop_assert_eq!(&recovered[..], &records[..expect]);
        prop_assert!(valid <= cut);

        // Recovery in place: open truncates the tail and appends land
        // right after the clean prefix.
        let dir = tmpdir(&format!("truncate-{case}"));
        let path = dir.join("run_journal.bin");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let (journal, reopened) = Journal::open(&path).unwrap();
        prop_assert_eq!(&reopened[..], &records[..expect]);
        journal.append(&JournalRecord::RunFinished { status: 7 }).unwrap();
        drop(journal);
        let reread = read_journal(&path).unwrap();
        prop_assert_eq!(reread.len(), expect + 1);
        prop_assert_eq!(&reread[..expect], &records[..expect]);
        prop_assert_eq!(&reread[expect], &JournalRecord::RunFinished { status: 7 });
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Flipping any single bit anywhere in a journal file is contained:
    /// every record *before* the damaged frame is recovered verbatim,
    /// the damaged frame and everything after it are dropped, and no
    /// corrupt record is ever surfaced.
    #[test]
    fn a_single_bit_flip_never_surfaces_a_corrupt_record(
        records in proptest::collection::vec(arb_record(), 1..10),
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
        case in 0u64..u64::MAX,
    ) {
        let (clean, offsets) = encode_journal(&records);
        let idx = (((clean.len() - 1) as f64) * byte_frac) as usize;
        let mut damaged = clean.clone();
        damaged[idx] ^= 1 << bit;

        // The flipped byte lands in the header (expect nothing) or in
        // frame k (expect records[..k]).
        let expect = if idx < JOURNAL_HEADER_LEN {
            0
        } else {
            offsets.iter().take_while(|&&o| o <= idx).count() - 1
        };

        let (recovered, valid) = decode_records(&damaged);
        prop_assert_eq!(&recovered[..], &records[..expect]);
        prop_assert!(valid <= clean.len());

        // The same recovery holds through the file-backed path, and the
        // journal stays usable afterwards.
        let dir = tmpdir(&format!("bitflip-{case}"));
        let path = dir.join("run_journal.bin");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&path, &damaged).unwrap();
        let (journal, reopened) = Journal::open(&path).unwrap();
        prop_assert_eq!(&reopened[..], &records[..expect]);
        journal.append(&JournalRecord::RunFinished { status: 0 }).unwrap();
        drop(journal);
        let reread = read_journal(&path).unwrap();
        prop_assert_eq!(reread.len(), expect + 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// End to end: a supervised lab run leaves a journal + cell store; even
/// after the journal is damaged mid-file, a second lab resumes from the
/// clean prefix and renders the full artifact set byte-identically —
/// damage only costs re-simulation, never correctness.
#[test]
fn resume_from_a_damaged_journal_is_byte_identical() {
    let dir = tmpdir("damaged-resume");
    let journal_path = dir.join("run_journal.bin");
    let cfg = SuiteConfig {
        seed: 11,
        trace_len: 1_000,
        widths: vec![4],
    };

    // Reference: an uninterrupted supervised run.
    let (journal, _) = Journal::open(&journal_path).unwrap();
    let lab = Lab::new(cfg.clone()).with_supervision(
        std::sync::Arc::new(journal),
        CellStore::new(dir.join("cells")),
    );
    let reference = render_all(&lab);
    let grid = lab.grid();

    // Damage the journal: chop 11 bytes off the tail, tearing the last
    // frame.
    let clean = std::fs::read(&journal_path).unwrap();
    std::fs::write(&journal_path, &clean[..clean.len() - 11]).unwrap();

    // Resume: the clean prefix restores most cells; the torn one (and
    // anything after) replays. The rendered output must not move a bit.
    let (journal2, records) = Journal::open(&journal_path).unwrap();
    let lab2 = Lab::new(cfg).with_supervision(
        std::sync::Arc::new(journal2),
        CellStore::new(dir.join("cells")),
    );
    let (resumed, replayed) = lab2.resume(&records);
    assert_eq!(
        resumed,
        grid.len() - 1,
        "tail damage costs exactly the torn cell"
    );
    assert_eq!(replayed, 1, "the torn record must not be trusted");
    assert_eq!(render_all(&lab2), reference);

    let _ = std::fs::remove_dir_all(&dir);
}
