//! Fault-injection integration tests: corrupted trace files, damaged
//! cache entries, transient I/O and failing grid cells, end to end.
//!
//! The contract under test: no input — however damaged — may panic the
//! pipeline. Corruption is either rejected with a typed error
//! (`TraceIoError`, `CacheError`, `ValidationError`) or healed by
//! regeneration; a failing grid cell degrades the run instead of
//! killing it.

use std::io::Read as _;

use ddsc::core::{simulate, PaperConfig, PreparedTrace, SimConfig, TraceValidator};
use ddsc::experiments::{CacheError, Lab, Suite, SuiteConfig, TraceCache};
use ddsc::trace::fault::TraceFaultPlan;
use ddsc::trace::io::{read_trace, write_trace};
use ddsc::trace::Trace;
use ddsc::util::fault::{is_transient, Backoff, FlakyReader};
use ddsc::workloads::Benchmark;
use proptest::prelude::*;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("ddsc-faults-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// A zero-instruction trace flows through the whole pipeline: binary
/// round-trip, validation, pre-pass, and simulation under every paper
/// configuration — without panicking anywhere.
#[test]
fn zero_instruction_traces_flow_end_to_end() {
    let empty = Trace::new("empty");
    let mut bytes = Vec::new();
    write_trace(&mut bytes, &empty).unwrap();
    let back = read_trace(bytes.as_slice()).unwrap();
    assert_eq!(back, empty);

    TraceValidator::new().validate(&back).unwrap();
    let prepared = PreparedTrace::try_build(&back).unwrap();
    assert!(prepared.is_empty());

    for c in PaperConfig::ALL {
        let r = simulate(&back, &SimConfig::paper(c, 8));
        assert_eq!(r.instructions, 0, "config {} on the empty trace", c.label());
    }
}

/// The validator accepts every legitimately generated benchmark trace —
/// its rules reject corruption, never the real workloads.
#[test]
fn validator_accepts_all_generated_benchmarks() {
    for b in Benchmark::ALL {
        let trace = b.trace(1996, 5_000).expect("workload runs");
        TraceValidator::new()
            .validate(&trace)
            .unwrap_or_else(|e| panic!("{b} trace rejected: {e}"));
        let p = PreparedTrace::try_build(&trace).expect("builds");
        TraceValidator::new().validate_prepared(&p).unwrap();
    }
}

/// A cache entry whose checksum is intact but whose payload violates a
/// semantic invariant (a load without an effective address) is rejected
/// by validation and healed by regeneration.
#[test]
fn checksum_valid_but_semantically_invalid_cache_entries_are_regenerated() {
    let dir = tmpdir("semantic");
    let cache = TraceCache::new(&dir);
    let cfg = SuiteConfig {
        seed: 3,
        trace_len: 2_000,
        widths: vec![4],
    };

    // Poison the cache: the real compress trace with one load stripped
    // of its address. write_trace encodes the absence faithfully, so
    // the stored file has a *valid* checksum.
    let real = Benchmark::Compress.trace(cfg.seed, cfg.trace_len).unwrap();
    let mut insts = real.insts().to_vec();
    let load_at = insts
        .iter()
        .position(|i| i.is_load())
        .expect("compress has loads");
    insts[load_at].ea = None;
    let poisoned = Trace::from_parts(real.name().to_string(), insts);
    cache
        .store(
            Benchmark::Compress.name(),
            cfg.seed,
            cfg.trace_len,
            &poisoned,
        )
        .unwrap();

    // The checksum layer alone would serve the poisoned trace...
    let served = cache
        .try_load(Benchmark::Compress.name(), cfg.seed, cfg.trace_len)
        .unwrap();
    assert_eq!(served, poisoned);
    // ...but suite generation validates and regenerates instead.
    let suite = Suite::generate_cached(cfg.clone(), &cache);
    assert_eq!(suite.trace(Benchmark::Compress), &real);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Cache files truncated mid-header and mid-payload are classified as
/// corrupt (typed, no panic) and a degraded-to-regeneration run still
/// produces the correct suite.
#[test]
fn truncated_cache_entries_classify_and_heal() {
    let dir = tmpdir("truncate");
    let cache = TraceCache::new(&dir);
    let cfg = SuiteConfig {
        seed: 5,
        trace_len: 1_500,
        widths: vec![4],
    };
    let _ = Suite::generate_cached(cfg.clone(), &cache); // warm
    let path = cache.path_for(Benchmark::Li.name(), cfg.seed, cfg.trace_len);
    let clean = std::fs::read(&path).unwrap();

    for keep in [7usize, 21, clean.len() / 2, clean.len() - 1] {
        std::fs::write(&path, &clean[..keep]).unwrap();
        match cache.try_load(Benchmark::Li.name(), cfg.seed, cfg.trace_len) {
            Err(CacheError::Corrupt(_)) => {}
            other => panic!("keep={keep}: expected Corrupt, got {other:?}"),
        }
        let healed = Suite::generate_cached(cfg.clone(), &cache);
        assert_eq!(
            healed.trace(Benchmark::Li).len(),
            cfg.trace_len,
            "keep={keep}"
        );
        // Healing re-stores a valid entry; re-damage for the next round.
        assert!(cache
            .try_load(Benchmark::Li.name(), cfg.seed, cfg.trace_len)
            .is_ok());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The transient-I/O model end to end: a flaky reader fails reads with
/// a transient error, and a bounded-backoff retry loop recovers exactly
/// like the cache's retry path does.
#[test]
fn transient_reads_recover_under_bounded_retry() {
    let payload = b"trace bytes".to_vec();
    let mut reader = FlakyReader::new(payload.as_slice(), 2);
    let mut delays = Backoff::for_cache().delays();
    let mut buf = Vec::new();
    let mut attempts = 0;
    loop {
        attempts += 1;
        match reader.read_to_end(&mut buf) {
            Ok(_) => break,
            Err(e) => {
                assert!(is_transient(&e), "unexpected hard error: {e}");
                assert!(attempts <= 3, "retry must converge");
                std::thread::sleep(delays.next().unwrap());
            }
        }
    }
    assert_eq!(buf, payload);
    assert_eq!(attempts, 3);
}

/// One failing cell degrades a full-grid run instead of killing it, and
/// the failure is contained to exactly that cell.
#[test]
fn lab_contains_a_failing_cell_while_the_grid_completes() {
    let bad = (Benchmark::Go, PaperConfig::C, 4);
    let lab = Lab::new(SuiteConfig {
        seed: 7,
        trace_len: 1_000,
        widths: vec![4],
    })
    .with_injected_fault(bad);
    let grid = lab.grid();
    let ran = lab.prewarm_degraded(&grid);
    assert_eq!(ran, grid.len() - 1);
    let failed = lab.failed_cells();
    assert_eq!(failed.len(), 1);
    assert_eq!(failed[0].0, bad);
    // Degraded rendering still produces the unaffected artifacts.
    let text = ddsc::experiments::render_all_contained(&lab);
    assert!(text.contains("Table 1"));
    assert!(text.contains("[skipped"));
}

fn sample_trace(n: u32) -> Trace {
    // A small but representative mix so mutated files exercise every
    // record shape: loads, stores, ALU chains, compares and branches.
    use ddsc::isa::{Cond, Opcode, Reg};
    use ddsc::trace::TraceInst;
    let r = Reg::new;
    let mut t = Trace::new("prop");
    for i in 0..n {
        match i % 5 {
            0 => t.push(
                TraceInst::load(4 * i, Opcode::Ld, r(1), r(2), None, Some(0), 0, 64 + 4 * i)
                    .with_value(i),
            ),
            1 => t.push(TraceInst::store(
                4 * i,
                Opcode::St,
                r(1),
                r(2),
                None,
                Some(0),
                0,
                64 + 4 * i,
            )),
            2 => t.push(
                TraceInst::alu(4 * i, Opcode::Add, r(3), r(1), Some(r(4)), None, 0)
                    .with_value(2 * i),
            ),
            3 => t.push(TraceInst::cmp(4 * i, r(3), None, Some(0), 0)),
            _ => t.push(TraceInst::cond_branch(
                4 * i,
                Opcode::Bcc(Cond::Ne),
                i % 2 == 0,
                4 * i,
            )),
        }
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The no-panic guarantee on corrupted trace files: whatever a
    /// seeded fault plan does to the bytes, reading either fails with a
    /// typed error or yields a trace that validation + `try_build`
    /// handle without panicking — and any trace that passes validation
    /// simulates without panicking.
    #[test]
    fn corrupted_traces_never_panic_the_pipeline(
        seed in 0u64..100_000,
        faults in 1usize..8,
        len in 1u32..200,
    ) {
        let trace = sample_trace(len);
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &trace).unwrap();
        TraceFaultPlan::new(seed, faults).apply_named(&mut bytes, "prop");

        let outcome = std::panic::catch_unwind(|| {
            let Ok(mutated) = read_trace(bytes.as_slice()) else {
                return; // typed decode error: contract satisfied
            };
            match PreparedTrace::try_build(&mutated) {
                Err(_) => {} // typed validation error: contract satisfied
                Ok(prepared) => {
                    // Validation passed, so the simulator must accept it.
                    let _ = ddsc::core::simulate_prepared(
                        &prepared,
                        &SimConfig::paper(PaperConfig::D, 8),
                    );
                }
            }
        });
        prop_assert!(outcome.is_ok(), "corrupted input panicked (seed {seed})");
    }

    /// Seeded byte-level faults on *cache* files never panic `try_load`:
    /// every mutation is classified as a typed error or decodes to a
    /// valid entry.
    #[test]
    fn corrupted_cache_entries_never_panic(seed in 0u64..100_000, faults in 1usize..8) {
        let dir = tmpdir(&format!("prop-{seed}-{faults}"));
        let cache = TraceCache::new(&dir);
        let trace = sample_trace(120);
        cache.store("prop", 1, 120, &trace).unwrap();
        let path = cache.path_for("prop", 1, 120);
        let mut bytes = std::fs::read(&path).unwrap();
        ddsc::util::FaultPlan::seeded(seed, faults, bytes.len()).apply(&mut bytes);
        std::fs::write(&path, &bytes).unwrap();

        let outcome = std::panic::catch_unwind(|| cache.try_load("prop", 1, 120));
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert!(outcome.is_ok(), "corrupted cache entry panicked (seed {seed})");
    }
}
