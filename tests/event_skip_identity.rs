//! Bit-identity gates for the event-driven timing loop.
//!
//! The cycle loop normally jumps the counter straight to the timing
//! wheel's next occupied bucket when nothing can issue; the skipped
//! span is provably inert (nothing fetches, wakes or issues inside it),
//! so the jump must never move a bit. These tests pin that claim three
//! ways on random programs across every paper configuration and width:
//! the skipping loop against the one-cycle-at-a-time stepped loop
//! (`simulate_prepared_stepped`), both against the frozen reference
//! simulator, and — with metrics on — the stepped and skipping runs'
//! full idle-cause attribution against each other and against the
//! issue+Σidle==cycles accounting identity.

use ddsc::core::{
    simulate_prepared, simulate_prepared_stepped, simulate_reference, simulate_with_metrics,
    simulate_with_metrics_stepped, PaperConfig, PreparedTrace, SimConfig,
};
use ddsc::isa::Reg;
use ddsc::vm::{Asm, Machine, Program};
use proptest::prelude::*;

/// One step of a random (but always-terminating) loop body. Multiplies
/// and loads are deliberately frequent: long latencies and address
/// dependences are what open the idle gaps the event skip jumps over.
#[derive(Debug, Clone)]
enum Step {
    Alu { op: u8, rd: u8, rs1: u8, imm: i32 },
    Mul { rd: u8, rs1: u8, rs2: u8 },
    Load { rd: u8, offset: u16 },
    Store { rs: u8, offset: u16 },
    CmpBranchOver { rs: u8, imm: i32 },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..4, 1u8..8, 1u8..8, -64i32..64).prop_map(|(op, rd, rs1, imm)| Step::Alu {
            op,
            rd,
            rs1,
            imm
        }),
        (1u8..8, 1u8..8, 1u8..8).prop_map(|(rd, rs1, rs2)| Step::Mul { rd, rs1, rs2 }),
        (1u8..8, 0u16..512).prop_map(|(rd, offset)| Step::Load { rd, offset }),
        (1u8..8, 0u16..512).prop_map(|(rs, offset)| Step::Store { rs, offset }),
        (1u8..8, -8i32..8).prop_map(|(rs, imm)| Step::CmpBranchOver { rs, imm }),
    ]
}

/// Builds a program running `iters` iterations of the random body.
/// Every memory access is word-aligned inside a scratch page, so the
/// program can never fault.
fn build_program(steps: &[Step], iters: i32) -> Program {
    let r = Reg::new;
    let counter = r(9);
    let scratch = r(10);
    let mut asm = Asm::new();
    asm.movi(counter, iters);
    asm.sethi(scratch, 0x40); // 0x10000
    for i in 1..8 {
        asm.movi(r(i), i as i32 * 3 + 1);
    }
    let top = asm.label();
    asm.bind(top);
    for step in steps {
        match *step {
            Step::Alu { op, rd, rs1, imm } => {
                let (rd, rs1) = (r(rd), r(rs1));
                match op {
                    0 => asm.addi(rd, rs1, imm),
                    1 => asm.subi(rd, rs1, imm),
                    2 => asm.xori(rd, rs1, imm),
                    _ => asm.slli(rd, rs1, imm & 15),
                }
            }
            Step::Mul { rd, rs1, rs2 } => asm.mul(r(rd), r(rs1), r(rs2)),
            Step::Load { rd, offset } => {
                asm.ldo(r(rd), r(10), i32::from(offset & !3));
            }
            Step::Store { rs, offset } => {
                asm.sto(r(rs), r(10), i32::from(offset & !3));
            }
            Step::CmpBranchOver { rs, imm } => {
                let skip = asm.label();
                asm.cmpi(r(rs), imm);
                asm.beq(skip);
                asm.nop();
                asm.bind(skip);
            }
        }
    }
    asm.subi(counter, counter, 1);
    asm.cmpi(counter, 0);
    asm.bgt(top);
    asm.finish().expect("generated program assembles")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cycle-skipping ≡ stepped ≡ frozen reference, across every paper
    /// configuration and a spread of issue widths. Narrow widths on
    /// multiply-heavy code maximise idle gaps — the spans the skip
    /// actually jumps.
    #[test]
    fn event_skip_matches_stepped_loop_and_reference(
        steps in proptest::collection::vec(step_strategy(), 1..16),
        iters in 1i32..30,
        width_pow in 1u32..6,
    ) {
        let width = 1 << width_pow;
        let program = build_program(&steps, iters);
        let mut machine = Machine::new(program);
        let trace = machine.run_trace("prop-skip", 100_000).expect("no faults");
        let prepared = PreparedTrace::build(&trace);
        for cfg in PaperConfig::ALL {
            let config = SimConfig::paper(cfg, width);
            let skipping = simulate_prepared(&prepared, &config);
            let stepped = simulate_prepared_stepped(&prepared, &config);
            prop_assert_eq!(
                &skipping,
                &stepped,
                "event skip moved a bit vs the stepped loop: config {} width {}",
                cfg.label(),
                width
            );
            let reference = simulate_reference(&trace, &config);
            prop_assert_eq!(
                &skipping,
                &reference,
                "event skip diverged from the frozen reference: config {} width {}",
                cfg.label(),
                width
            );
        }
    }

    /// With metrics on, the skipped spans must land in the same
    /// idle-cause buckets the stepped loop fills cycle by cycle, and
    /// both must satisfy the accounting identity.
    #[test]
    fn event_skip_preserves_idle_cause_attribution(
        steps in proptest::collection::vec(step_strategy(), 1..16),
        iters in 1i32..30,
        width_pow in 1u32..6,
    ) {
        let width = 1 << width_pow;
        let program = build_program(&steps, iters);
        let mut machine = Machine::new(program);
        let trace = machine.run_trace("prop-skip-metrics", 100_000).expect("no faults");
        let prepared = PreparedTrace::build(&trace);
        for cfg in PaperConfig::ALL {
            let config = SimConfig::paper(cfg, width);
            let (skip_res, skip_metrics) = simulate_with_metrics(&prepared, &config);
            let (step_res, step_metrics) = simulate_with_metrics_stepped(&prepared, &config);
            prop_assert_eq!(
                &skip_res,
                &step_res,
                "metrics-on event skip moved a bit: config {} width {}",
                cfg.label(),
                width
            );
            prop_assert_eq!(
                &skip_metrics,
                &step_metrics,
                "idle-cause attribution changed under the skip: config {} width {}",
                cfg.label(),
                width
            );
            prop_assert!(skip_metrics.attribution.audit(skip_res.cycles).is_ok());
        }
    }
}
