//! The analysis pre-pass contract, end to end:
//!
//! 1. `PreparedTrace` is a *lossless* recompilation of the trace — every
//!    packed column matches a naive recomputation straight from the
//!    `TraceInst` records (property-tested over random traces);
//! 2. the two-stage pipeline is *bit-identical* to the frozen reference
//!    simulator on real benchmark traces, per paper configuration and
//!    for the ablation/extension variants;
//! 3. one shared `PreparedTrace` gives the same bits regardless of how
//!    many configurations consumed it before.

use std::collections::HashMap;

use ddsc::collapse::{absorb_slots, can_produce, encode_slots};
use ddsc::core::prepass::{
    F_CAN_PRODUCE, F_COND_BRANCH, F_CONTROL, F_LOAD, F_STORE, F_TAKEN, F_VALUE,
};
use ddsc::core::{
    simulate_prepared, simulate_reference, Latencies, PaperConfig, PreparedTrace, SimConfig,
    ValueSpecMode,
};
use ddsc::isa::{Cond, Opcode, Reg};
use ddsc::trace::{Trace, TraceInst};
use ddsc::util::Pcg32;
use ddsc::workloads::Benchmark;
use proptest::prelude::*;

/// A random but structurally rich trace: ALU chains, long-latency ops,
/// aliasing loads/stores, conditional branches, traced values.
fn random_trace(seed: u64, len: u32) -> Trace {
    let r = Reg::new;
    let mut rng = Pcg32::new(seed);
    let mut t = Trace::new("prop");
    for i in 0..len {
        match rng.next_u32() % 10 {
            0 | 1 => {
                let ea = (rng.next_u32() % 0x200) * 4 + 0x2000;
                let mut ld = TraceInst::load(
                    4 * i,
                    Opcode::Ld,
                    r((rng.next_u32() % 7 + 1) as u8),
                    r((rng.next_u32() % 7 + 1) as u8),
                    None,
                    Some(0),
                    0,
                    ea,
                );
                if rng.chance(1, 2) {
                    ld.value = Some(rng.next_u32());
                }
                t.push(ld);
            }
            2 => {
                let ea = (rng.next_u32() % 0x200) * 4 + 0x2000;
                t.push(TraceInst::store(
                    4 * i,
                    Opcode::St,
                    r((rng.next_u32() % 7 + 1) as u8),
                    r((rng.next_u32() % 7 + 1) as u8),
                    None,
                    Some(0),
                    0,
                    ea,
                ));
            }
            3 => {
                t.push(TraceInst::cond_branch(
                    4 * i,
                    Opcode::Bcc(Cond::Ne),
                    rng.chance(1, 3),
                    4 * i + 32,
                ));
            }
            4 => {
                t.push(TraceInst::alu(
                    4 * i,
                    Opcode::Div,
                    r((rng.next_u32() % 7 + 1) as u8),
                    r((rng.next_u32() % 7 + 1) as u8),
                    None,
                    Some(2),
                    0,
                ));
            }
            5 => {
                // Two-register ALU op, sometimes reading one register
                // twice (exercises edge dedup vs per-occurrence readers).
                let src = r((rng.next_u32() % 7 + 1) as u8);
                t.push(TraceInst::alu(
                    4 * i,
                    Opcode::Add,
                    r((rng.next_u32() % 7 + 1) as u8),
                    src,
                    Some(if rng.chance(1, 3) {
                        src
                    } else {
                        r((rng.next_u32() % 7 + 1) as u8)
                    }),
                    None,
                    0,
                ));
            }
            _ => {
                let mut inst = TraceInst::alu(
                    4 * i,
                    Opcode::Add,
                    r((rng.next_u32() % 7 + 1) as u8),
                    r((rng.next_u32() % 7 + 1) as u8),
                    None,
                    Some(rng.next_u32() as i32 % 64),
                    0,
                );
                if rng.chance(1, 4) {
                    inst.value = Some(rng.next_u32());
                }
                t.push(inst);
            }
        }
    }
    t
}

/// Recomputes every packed column directly from the `TraceInst` records
/// and asserts the pre-pass captured identical facts.
fn assert_lossless(trace: &Trace) {
    let p = PreparedTrace::build(trace);
    assert_eq!(p.len(), trace.len());
    assert_eq!(p.name(), trace.name());

    let lat = Latencies::default();
    let mut last_writer = vec![None::<u32>; Reg::COUNT];
    let mut store_map: HashMap<u32, u32> = HashMap::new();
    let mut readers = vec![0u32; trace.len()];
    let mut blocks = 0u32;
    let mut cond_branches = 0u64;
    let mut loads_with_value = 0u64;

    for (i, inst) in trace.iter().enumerate() {
        let f = p.flags(i);
        assert_eq!(f & F_LOAD != 0, inst.is_load(), "load flag at {i}");
        assert_eq!(f & F_STORE != 0, inst.is_store(), "store flag at {i}");
        assert_eq!(
            f & F_COND_BRANCH != 0,
            inst.op.is_cond_branch(),
            "branch flag at {i}"
        );
        assert_eq!(f & F_CONTROL != 0, inst.op.is_control(), "control at {i}");
        assert_eq!(f & F_TAKEN != 0, inst.taken, "taken flag at {i}");
        assert_eq!(f & F_VALUE != 0, inst.value.is_some(), "value flag at {i}");
        assert_eq!(
            f & F_CAN_PRODUCE != 0,
            can_produce(inst),
            "producer flag at {i}"
        );
        assert_eq!(p.pcs()[i], inst.pc, "pc at {i}");
        assert_eq!(p.latencies()[i], lat.of(inst.op), "latency at {i}");
        assert_eq!(p.block_of(i), blocks, "block at {i}");

        // Register edges: distinct producers in source order, slot codes
        // from the producer's collapse eligibility and this source's
        // absorb slots.
        let mut expect_prod: Vec<u32> = Vec::new();
        let mut expect_codes: Vec<u8> = Vec::new();
        for r in inst.reg_sources() {
            if let Some(prod) = last_writer[r.index()] {
                readers[prod as usize] += 1;
                if !expect_prod.contains(&prod) {
                    expect_prod.push(prod);
                    expect_codes.push(if can_produce(&trace[prod as usize]) {
                        encode_slots(&absorb_slots(inst, r))
                    } else {
                        0
                    });
                }
            }
        }
        assert_eq!(p.producers_of(i), expect_prod.as_slice(), "edges at {i}");
        assert_eq!(
            p.slot_codes_of(i),
            expect_codes.as_slice(),
            "slot codes at {i}"
        );

        let expect_mem = if inst.is_load() {
            store_map.get(&(inst.ea.unwrap_or(0) & !3)).copied()
        } else {
            None
        };
        assert_eq!(p.mem_dep_of(i), expect_mem, "memory dependence at {i}");

        if inst.op.is_cond_branch() {
            cond_branches += 1;
        }
        if inst.is_load() && inst.value.is_some() {
            loads_with_value += 1;
        }
        if let Some(d) = inst.dest {
            last_writer[d.index()] = Some(i as u32);
        }
        if inst.is_store() {
            store_map.insert(inst.ea.unwrap_or(0) & !3, i as u32);
        }
        if inst.op.is_control() {
            blocks += 1;
        }
    }

    for (i, &expect) in readers.iter().enumerate() {
        assert_eq!(p.readers_of(i), expect, "reader count at {i}");
    }
    assert_eq!(p.cond_branches(), cond_branches);
    assert_eq!(p.loads_with_value(), loads_with_value);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The pre-pass loses nothing: every column round-trips against a
    /// direct recomputation from the trace records.
    #[test]
    fn prepass_is_lossless_on_random_traces(seed in 0u64..1_000_000, len in 1u32..1500) {
        assert_lossless(&random_trace(seed, len));
    }

    /// The prepared pipeline is bit-identical to the frozen reference on
    /// random traces under random paper configurations.
    #[test]
    fn prepared_matches_reference_on_random_traces(
        seed in 0u64..1_000_000,
        len in 1u32..800,
        cfg_ix in 0usize..5,
        width_pow in 2u32..6,
    ) {
        let trace = random_trace(seed, len);
        let config = SimConfig::paper(PaperConfig::ALL[cfg_ix], 1 << width_pow);
        let prepared = PreparedTrace::build(&trace);
        prop_assert_eq!(
            simulate_prepared(&prepared, &config),
            simulate_reference(&trace, &config)
        );
    }
}

#[test]
fn prepass_is_lossless_on_benchmark_traces() {
    for b in [Benchmark::Compress, Benchmark::Li] {
        let trace = b.trace(1996, 6_000).expect("workload runs");
        assert_lossless(&trace);
    }
}

#[test]
fn prepared_matches_reference_on_benchmark_traces() {
    // A real benchmark trace, one shared pre-pass, every paper
    // configuration plus the extension variants — against the frozen
    // oracle.
    let trace = Benchmark::Eqntott.trace(1996, 8_000).expect("runs");
    let prepared = PreparedTrace::build(&trace);

    let mut configs: Vec<SimConfig> = Vec::new();
    for cfg in PaperConfig::ALL {
        for width in [4u32, 32] {
            configs.push(SimConfig::paper(cfg, width));
        }
    }
    let mut c = SimConfig::paper(PaperConfig::C, 8);
    c.node_elimination = true;
    configs.push(c);
    let mut c = SimConfig::paper(PaperConfig::A, 8);
    c.value_spec = ValueSpecMode::Real;
    configs.push(c);
    let mut c = SimConfig::paper(PaperConfig::D, 8);
    c.perfect_branches = true;
    configs.push(c);
    let mut c = SimConfig::paper(PaperConfig::D, 8);
    c.predictor_n = 11;
    c.stride_bits = 9;
    configs.push(c);

    for config in &configs {
        assert_eq!(
            simulate_prepared(&prepared, config),
            simulate_reference(&trace, config),
            "divergence at {config:?}"
        );
    }
}

#[test]
fn fingerprints_are_stable_and_discriminating() {
    let a = PreparedTrace::build(&random_trace(1, 500));
    let a2 = PreparedTrace::build(&random_trace(1, 500));
    let b = PreparedTrace::build(&random_trace(2, 500));
    assert_eq!(a.fingerprint(), a2.fingerprint(), "deterministic");
    assert_ne!(a.fingerprint(), b.fingerprint(), "distinguishes traces");
}
