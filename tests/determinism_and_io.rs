//! Cross-crate determinism and trace-file round-tripping.

use ddsc::core::{simulate, PaperConfig, SimConfig};
use ddsc::trace::io::{read_trace, write_trace};
use ddsc::workloads::Benchmark;

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let t = Benchmark::Go.trace(77, 20_000).unwrap();
        let r = simulate(&t, &SimConfig::paper(PaperConfig::D, 8));
        (
            r.cycles,
            r.branches.mispredicted,
            r.collapse.groups(),
            r.loads,
        )
    };
    assert_eq!(run(), run(), "same seed must reproduce exactly");
}

#[test]
fn trace_files_round_trip_and_simulate_identically() {
    for b in [Benchmark::Compress, Benchmark::Li] {
        let original = b.trace(42, 15_000).unwrap();
        let mut buf = Vec::new();
        write_trace(&mut buf, &original).unwrap();
        let restored = read_trace(buf.as_slice()).unwrap();
        assert_eq!(original, restored, "{b}: file round trip");

        let cfg = SimConfig::paper(PaperConfig::D, 8);
        let a = simulate(&original, &cfg);
        let c = simulate(&restored, &cfg);
        assert_eq!(a.cycles, c.cycles, "{b}: simulation over restored trace");
        assert_eq!(a.collapse.groups(), c.collapse.groups());
    }
}

#[test]
fn seeds_change_data_but_not_structure() {
    let a = Benchmark::Eqntott.trace(1, 10_000).unwrap();
    let b = Benchmark::Eqntott.trace(2, 10_000).unwrap();
    assert_ne!(a, b, "different seeds, different traces");
    // The instruction mix stays in character regardless of seed.
    let (sa, sb) = (a.stats(), b.stats());
    let da = sa.cond_branch_pct().value();
    let db = sb.cond_branch_pct().value();
    assert!(
        (da - db).abs() < 8.0,
        "mix is structural: {da:.1} vs {db:.1}"
    );
}

#[test]
fn all_widths_retire_every_instruction() {
    let t = Benchmark::Ijpeg.trace(5, 12_000).unwrap();
    let mut last_cycles = u64::MAX;
    for width in [4, 8, 16, 32, 2048] {
        let r = simulate(&t, &SimConfig::paper(PaperConfig::D, width));
        assert_eq!(r.instructions, 12_000, "width {width}");
        assert!(r.cycles > 0);
        // Wider machines are never slower on this workload suite.
        assert!(
            r.cycles <= last_cycles,
            "width {width}: {} cycles after {last_cycles}",
            r.cycles
        );
        last_cycles = r.cycles;
    }
}
