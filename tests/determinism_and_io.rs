//! Cross-crate determinism, trace-file round-tripping, trace-cache
//! corruption handling and the profile JSON schema snapshot.

use ddsc::core::{simulate, PaperConfig, SimConfig};
use ddsc::experiments::{ConfigProfile, Lab, Suite, SuiteConfig, TraceCache};
use ddsc::trace::io::{read_trace, write_trace};
use ddsc::util::Json;
use ddsc::workloads::Benchmark;

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let t = Benchmark::Go.trace(77, 20_000).unwrap();
        let r = simulate(&t, &SimConfig::paper(PaperConfig::D, 8));
        (
            r.cycles,
            r.branches.mispredicted,
            r.collapse.groups(),
            r.loads,
        )
    };
    assert_eq!(run(), run(), "same seed must reproduce exactly");
}

#[test]
fn trace_files_round_trip_and_simulate_identically() {
    for b in [Benchmark::Compress, Benchmark::Li] {
        let original = b.trace(42, 15_000).unwrap();
        let mut buf = Vec::new();
        write_trace(&mut buf, &original).unwrap();
        let restored = read_trace(buf.as_slice()).unwrap();
        assert_eq!(original, restored, "{b}: file round trip");

        let cfg = SimConfig::paper(PaperConfig::D, 8);
        let a = simulate(&original, &cfg);
        let c = simulate(&restored, &cfg);
        assert_eq!(a.cycles, c.cycles, "{b}: simulation over restored trace");
        assert_eq!(a.collapse.groups(), c.collapse.groups());
    }
}

#[test]
fn seeds_change_data_but_not_structure() {
    let a = Benchmark::Eqntott.trace(1, 10_000).unwrap();
    let b = Benchmark::Eqntott.trace(2, 10_000).unwrap();
    assert_ne!(a, b, "different seeds, different traces");
    // The instruction mix stays in character regardless of seed.
    let (sa, sb) = (a.stats(), b.stats());
    let da = sa.cond_branch_pct().value();
    let db = sb.cond_branch_pct().value();
    assert!(
        (da - db).abs() < 8.0,
        "mix is structural: {da:.1} vs {db:.1}"
    );
}

#[test]
fn a_corrupted_trace_cache_entry_is_rejected_and_rederived_cleanly() {
    let dir = std::env::temp_dir().join(format!("ddsc-corrupt-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = TraceCache::new(&dir);
    let config = SuiteConfig {
        seed: 7,
        trace_len: 2_000,
        widths: vec![4],
    };
    // Populate the cache, then flip one byte in the middle of every
    // benchmark's cached file.
    let cold = Suite::generate_cached(config.clone(), &cache);
    for b in Benchmark::ALL {
        let path = cache.path_for(b.name(), config.seed, config.trace_len);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xa5;
        std::fs::write(&path, bytes).unwrap();
        // The checksum catches the corruption: no panic, no bad trace —
        // the entry just misses.
        assert!(
            cache
                .load(b.name(), config.seed, config.trace_len)
                .is_none(),
            "{b}: corrupt cache entry must not load"
        );
    }
    // A cached suite generation falls back to re-derivation and heals
    // the cache; the result matches the original bit for bit.
    let healed = Suite::generate_cached(config.clone(), &cache);
    for b in Benchmark::ALL {
        assert_eq!(cold.trace(b), healed.trace(b), "{b}: re-derived trace");
        assert!(
            cache
                .load(b.name(), config.seed, config.trace_len)
                .is_some(),
            "{b}: healed entry loads again"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn profile_json_keeps_its_schema_and_round_trips() {
    let lab = Lab::new(SuiteConfig {
        seed: 3,
        trace_len: 3_000,
        widths: vec![4],
    })
    .with_profiling();
    let profile = ConfigProfile::collect(&lab, PaperConfig::D);
    let text = profile.to_json();
    let parsed = Json::parse(&text).expect("profile JSON parses");

    // Schema snapshot: the exact top-level and per-cell key order is
    // the contract downstream tooling reads, so a drift here must be a
    // deliberate schema bump.
    assert_eq!(
        parsed.keys(),
        ["schema", "config", "description", "widths", "cells"]
    );
    assert_eq!(
        parsed.get("schema").unwrap().as_str(),
        Some("ddsc-profile-v1")
    );
    assert_eq!(parsed.get("config").unwrap().as_str(), Some("D"));
    let cells = parsed.get("cells").unwrap().as_array().unwrap();
    assert_eq!(cells.len(), 6); // six benchmarks x one width
    for cell in cells {
        assert_eq!(
            cell.keys(),
            [
                "benchmark",
                "width",
                "instructions",
                "cycles",
                "ipc",
                "attribution",
                "issue_util",
                "window_occupancy",
                "collapse_sizes",
                "branch",
                "addr_pred"
            ]
        );
        let attribution = cell.get("attribution").unwrap();
        assert_eq!(
            attribution.keys(),
            [
                "issue",
                "branch",
                "memory",
                "address",
                "long_latency",
                "window_full",
                "dep_height"
            ]
        );
        // The accounting identity survives serialisation: the buckets
        // sum to the cycle count in the JSON numbers themselves.
        let attributed: f64 = attribution
            .as_object()
            .unwrap()
            .iter()
            .map(|(_, v)| v.as_f64().unwrap())
            .sum();
        assert_eq!(attributed, cell.get("cycles").unwrap().as_f64().unwrap());
    }

    // Round trip: render -> parse gives back the same document.
    let rendered = parsed.render();
    assert_eq!(Json::parse(&rendered).unwrap(), parsed);
    // And a fresh collection over the same lab serialises to identical
    // bytes — the profile is a pure function of the suite.
    assert_eq!(ConfigProfile::collect(&lab, PaperConfig::D).to_json(), text);
}

#[test]
fn all_widths_retire_every_instruction() {
    let t = Benchmark::Ijpeg.trace(5, 12_000).unwrap();
    let mut last_cycles = u64::MAX;
    for width in [4, 8, 16, 32, 2048] {
        let r = simulate(&t, &SimConfig::paper(PaperConfig::D, width));
        assert_eq!(r.instructions, 12_000, "width {width}");
        assert!(r.cycles > 0);
        // Wider machines are never slower on this workload suite.
        assert!(
            r.cycles <= last_cycles,
            "width {width}: {} cycles after {last_cycles}",
            r.cycles
        );
        last_cycles = r.cycles;
    }
}
