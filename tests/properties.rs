//! Property-based integration tests: randomly generated programs are
//! assembled, executed, traced and simulated, and structural invariants
//! are checked across the whole pipeline.

use ddsc::core::{
    simulate, simulate_prepared, simulate_with_metrics, PaperConfig, PreparedTrace, SimConfig,
};
use ddsc::isa::{OpClass, Reg};
use ddsc::vm::{Asm, Machine, Program};
use proptest::prelude::*;

/// One step of a random (but always-terminating) loop body.
#[derive(Debug, Clone)]
enum Step {
    Alu { op: u8, rd: u8, rs1: u8, imm: i32 },
    AluReg { op: u8, rd: u8, rs1: u8, rs2: u8 },
    Load { rd: u8, offset: u16 },
    Store { rs: u8, offset: u16 },
    CmpBranchOver { rs: u8, imm: i32 },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..8, 1u8..8, 1u8..8, -64i32..64).prop_map(|(op, rd, rs1, imm)| Step::Alu {
            op,
            rd,
            rs1,
            imm
        }),
        (0u8..8, 1u8..8, 1u8..8, 1u8..8).prop_map(|(op, rd, rs1, rs2)| Step::AluReg {
            op,
            rd,
            rs1,
            rs2
        }),
        (1u8..8, 0u16..512).prop_map(|(rd, offset)| Step::Load { rd, offset }),
        (1u8..8, 0u16..512).prop_map(|(rs, offset)| Step::Store { rs, offset }),
        (1u8..8, -8i32..8).prop_map(|(rs, imm)| Step::CmpBranchOver { rs, imm }),
    ]
}

/// Builds a program that runs `iters` iterations of the random body and
/// halts. Every memory access is word-aligned inside a scratch page, so
/// the program can never fault.
fn build_program(steps: &[Step], iters: i32) -> Program {
    let r = Reg::new;
    let counter = r(9);
    let scratch = r(10);
    let mut asm = Asm::new();
    asm.movi(counter, iters);
    asm.sethi(scratch, 0x40); // 0x10000
    for i in 1..8 {
        asm.movi(r(i), i as i32 * 3 + 1);
    }
    let top = asm.label();
    asm.bind(top);
    for step in steps {
        match *step {
            Step::Alu { op, rd, rs1, imm } => {
                let (rd, rs1) = (r(rd), r(rs1));
                match op {
                    0 => asm.addi(rd, rs1, imm),
                    1 => asm.subi(rd, rs1, imm),
                    2 => asm.andi(rd, rs1, imm),
                    3 => asm.ori(rd, rs1, imm),
                    4 => asm.xori(rd, rs1, imm),
                    5 => asm.slli(rd, rs1, imm & 15),
                    6 => asm.srli(rd, rs1, imm & 15),
                    _ => asm.srai(rd, rs1, imm & 15),
                }
            }
            Step::AluReg { op, rd, rs1, rs2 } => {
                let (rd, rs1, rs2) = (r(rd), r(rs1), r(rs2));
                match op {
                    0 => asm.add(rd, rs1, rs2),
                    1 => asm.sub(rd, rs1, rs2),
                    2 => asm.and(rd, rs1, rs2),
                    3 => asm.or(rd, rs1, rs2),
                    4 => asm.xor(rd, rs1, rs2),
                    5 => asm.andn(rd, rs1, rs2),
                    6 => asm.mul(rd, rs1, rs2),
                    _ => asm.xnor(rd, rs1, rs2),
                }
            }
            Step::Load { rd, offset } => {
                asm.ldo(r(rd), r(10), i32::from(offset & !3));
            }
            Step::Store { rs, offset } => {
                asm.sto(r(rs), r(10), i32::from(offset & !3));
            }
            Step::CmpBranchOver { rs, imm } => {
                let skip = asm.label();
                asm.cmpi(r(rs), imm);
                asm.beq(skip);
                asm.nop();
                asm.bind(skip);
            }
        }
    }
    asm.subi(counter, counter, 1);
    asm.cmpi(counter, 0);
    asm.bgt(top);
    asm.finish().expect("generated program assembles")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any generated program executes to completion and its trace is
    /// well-formed: PCs aligned, effective addresses exactly on memory
    /// operations, branch records only on branches.
    #[test]
    fn generated_traces_are_well_formed(
        steps in proptest::collection::vec(step_strategy(), 1..24),
        iters in 1i32..40,
    ) {
        let program = build_program(&steps, iters);
        let mut machine = Machine::new(program);
        let trace = machine.run_trace("prop", 200_000).expect("no faults");
        prop_assert!(machine.is_halted(), "bounded loop must terminate");
        prop_assert!(!trace.is_empty());
        for inst in &trace {
            prop_assert_eq!(inst.pc % 4, 0, "aligned pc");
            let is_mem = inst.op.is_load() || inst.op.is_store();
            prop_assert_eq!(inst.ea.is_some(), is_mem);
            if inst.op.class() == OpClass::CondBranch {
                prop_assert!(inst.target % 4 == 0);
            }
        }
    }

    /// Simulation invariants hold for every configuration on random
    /// programs: cycle lower bound from issue bandwidth, upper bound
    /// from serial execution, and collapsing never slows the machine.
    #[test]
    fn simulation_bounds_hold(
        steps in proptest::collection::vec(step_strategy(), 1..16),
        iters in 1i32..30,
        width_pow in 2u32..6,
    ) {
        let width = 1 << width_pow;
        let program = build_program(&steps, iters);
        let mut machine = Machine::new(program);
        let trace = machine.run_trace("prop", 100_000).expect("no faults");
        let n = trace.len() as u64;

        let base = simulate(&trace, &SimConfig::paper(PaperConfig::A, width));
        prop_assert_eq!(base.instructions, n);
        // Bandwidth lower bound.
        prop_assert!(base.cycles >= n.div_ceil(u64::from(width)));
        // Fully serial upper bound (12 is the worst latency).
        prop_assert!(base.cycles <= n * 12 + 16);
        prop_assert!(base.ipc() <= f64::from(width) + 1e-9);

        let collapsed = simulate(&trace, &SimConfig::paper(PaperConfig::C, width));
        prop_assert!(
            collapsed.cycles <= base.cycles,
            "collapsing must never hurt: {} -> {}",
            base.cycles,
            collapsed.cycles
        );
    }

    /// The metrics observer is a pure observation layer. On random
    /// programs, across all five paper configurations: metrics-on and
    /// metrics-off runs are bit-identical, and the cause-attributed
    /// cycle buckets sum exactly to the total cycle count (the
    /// accounting identity), as do the per-cycle histograms.
    #[test]
    fn metrics_balance_and_never_perturb_the_simulation(
        steps in proptest::collection::vec(step_strategy(), 1..16),
        iters in 1i32..30,
        width_pow in 2u32..6,
    ) {
        let width = 1 << width_pow;
        let program = build_program(&steps, iters);
        let mut machine = Machine::new(program);
        let trace = machine.run_trace("prop-metrics", 100_000).expect("no faults");
        let prepared = PreparedTrace::build(&trace);
        for cfg in PaperConfig::ALL {
            let config = SimConfig::paper(cfg, width);
            let plain = simulate_prepared(&prepared, &config);
            let (observed, metrics) = simulate_with_metrics(&prepared, &config);
            prop_assert_eq!(
                &plain,
                &observed,
                "observer moved a bit: config {} width {}",
                cfg.label(),
                width
            );
            prop_assert!(
                metrics.attribution.audit(plain.cycles).is_ok(),
                "config {} width {}: {} attributed vs {} cycles",
                cfg.label(),
                width,
                metrics.attribution.total(),
                plain.cycles
            );
            // Both per-cycle histograms tile the same cycle count, and
            // the issued slots account for every retired instruction
            // that was not eliminated outright.
            prop_assert_eq!(metrics.issue_util.total(), plain.cycles);
            prop_assert_eq!(metrics.window_occupancy.total(), plain.cycles);
            let issued: u64 = metrics.issue_util.iter().map(|(v, c)| v * c).sum();
            prop_assert_eq!(issued, plain.instructions - plain.eliminated);
        }
    }

    /// Trace files round-trip for arbitrary generated programs.
    #[test]
    fn random_traces_roundtrip_through_io(
        steps in proptest::collection::vec(step_strategy(), 1..12),
        iters in 1i32..12,
    ) {
        let program = build_program(&steps, iters);
        let mut machine = Machine::new(program);
        let trace = machine.run_trace("prop-io", 50_000).expect("no faults");
        let mut buf = Vec::new();
        ddsc::trace::io::write_trace(&mut buf, &trace).expect("write");
        let back = ddsc::trace::io::read_trace(buf.as_slice()).expect("read");
        prop_assert_eq!(trace, back);
    }
}
