//! A compact integer histogram used for collapse-distance distributions
//! (Figure 10) and other per-event distributions.

use std::fmt;

/// A histogram over `u64` sample values with unit-width buckets up to a
/// cap; samples at or above the cap land in a single overflow bucket.
///
/// # Examples
///
/// ```
/// use ddsc_util::Histogram;
///
/// let mut h = Histogram::new(8);
/// h.record(1);
/// h.record(1);
/// h.record(200); // overflow bucket
/// assert_eq!(h.count(1), 2);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    overflow: u64,
    total: u64,
    sum: u128,
}

impl Histogram {
    /// Creates a histogram with unit buckets for values `0..cap`.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "histogram needs at least one bucket");
        Histogram {
            buckets: vec![0; cap],
            overflow: 0,
            total: 0,
            sum: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` samples of the same value.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if (value as usize) < self.buckets.len() {
            self.buckets[value as usize] += n;
        } else {
            self.overflow += n;
        }
        self.total += n;
        self.sum += u128::from(value) * u128::from(n);
    }

    /// Count in the unit bucket for `value`; 0 if `value >= cap`.
    pub fn count(&self, value: u64) -> u64 {
        self.buckets.get(value as usize).copied().unwrap_or(0)
    }

    /// Count of samples at or above the cap.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean of all recorded samples, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.sum as f64 / self.total as f64)
        }
    }

    /// Fraction (0..=1) of samples strictly below `value`.
    pub fn fraction_below(&self, value: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let below: u64 = self
            .buckets
            .iter()
            .take(value.min(self.buckets.len() as u64) as usize)
            .sum();
        below as f64 / self.total as f64
    }

    /// Iterates over `(value, count)` pairs for the unit buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().enumerate().map(|(i, &c)| (i as u64, c))
    }

    /// Appends the binary encoding to `out`: cap, unit buckets,
    /// overflow, total and sum, all little-endian. The inverse of
    /// [`Histogram::decode`]; used by the per-cell result store so a
    /// resumed run can reload finished cells without re-simulating.
    pub fn encode_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.buckets.len() as u32).to_le_bytes());
        for &b in &self.buckets {
            out.extend_from_slice(&b.to_le_bytes());
        }
        out.extend_from_slice(&self.overflow.to_le_bytes());
        out.extend_from_slice(&self.total.to_le_bytes());
        out.extend_from_slice(&self.sum.to_le_bytes());
    }

    /// Decodes a histogram from `bytes` starting at `*pos`, advancing
    /// `*pos` past it. `None` on truncation or a zero/absurd cap —
    /// callers treat that as a corrupt store entry, never a panic.
    pub fn decode(bytes: &[u8], pos: &mut usize) -> Option<Histogram> {
        fn u64_at(bytes: &[u8], pos: &mut usize) -> Option<u64> {
            let v = u64::from_le_bytes(bytes.get(*pos..*pos + 8)?.try_into().ok()?);
            *pos += 8;
            Some(v)
        }
        let cap = u32::from_le_bytes(bytes.get(*pos..*pos + 4)?.try_into().ok()?) as usize;
        *pos += 4;
        if cap == 0 || cap > (1 << 20) {
            return None;
        }
        let mut buckets = Vec::with_capacity(cap);
        for _ in 0..cap {
            buckets.push(u64_at(bytes, pos)?);
        }
        let overflow = u64_at(bytes, pos)?;
        let total = u64_at(bytes, pos)?;
        let sum = u128::from_le_bytes(bytes.get(*pos..*pos + 16)?.try_into().ok()?);
        *pos += 16;
        Some(Histogram {
            buckets,
            overflow,
            total,
            sum,
        })
    }

    /// Merges another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bucket caps differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "cannot merge histograms with different caps"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.total += other.total;
        self.sum += other.sum;
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "histogram ({} samples)", self.total)?;
        for (v, c) in self.iter() {
            if c > 0 {
                writeln!(f, "  {v:>4}: {c}")?;
            }
        }
        if self.overflow > 0 {
            writeln!(f, "  >={}: {}", self.buckets.len(), self.overflow)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn record_and_query() {
        let mut h = Histogram::new(4);
        h.record(0);
        h.record(3);
        h.record(3);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(3), 2);
        assert_eq!(h.count(2), 0);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn overflow_bucket_collects_large_values() {
        let mut h = Histogram::new(2);
        h.record(2);
        h.record(1000);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new(16);
        h.record(2);
        h.record(4);
        assert_eq!(h.mean(), Some(3.0));
        assert_eq!(Histogram::new(4).mean(), None);
    }

    #[test]
    fn fraction_below_counts_unit_buckets() {
        let mut h = Histogram::new(8);
        h.record(1);
        h.record(2);
        h.record(7);
        h.record(100); // overflow: never "below"
        assert_eq!(h.fraction_below(3), 0.5);
        assert_eq!(h.fraction_below(8), 0.75);
        assert_eq!(h.fraction_below(1000), 0.75);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(4);
        a.record(1);
        let mut b = Histogram::new(4);
        b.record(1);
        b.record(9);
        a.merge(&b);
        assert_eq!(a.count(1), 2);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    #[should_panic(expected = "different caps")]
    fn merge_rejects_mismatched_caps() {
        Histogram::new(4).merge(&Histogram::new(8));
    }

    #[test]
    fn codec_round_trips_and_rejects_truncation() {
        let mut h = Histogram::new(6);
        h.record(0);
        h.record_n(5, 3);
        h.record(999);
        let mut bytes = Vec::new();
        h.encode_to(&mut bytes);
        let mut pos = 0;
        let back = Histogram::decode(&bytes, &mut pos).unwrap();
        assert_eq!(back, h);
        assert_eq!(pos, bytes.len());
        for keep in [0, 3, bytes.len() - 1] {
            let mut pos = 0;
            assert!(
                Histogram::decode(&bytes[..keep], &mut pos).is_none(),
                "keep={keep}"
            );
        }
        // A zero cap can never have been encoded by a real histogram.
        let mut pos = 0;
        assert!(Histogram::decode(&[0u8; 44], &mut pos).is_none());
    }

    proptest! {
        /// Total always equals the sum of buckets plus overflow.
        #[test]
        fn totals_are_consistent(samples in proptest::collection::vec(0u64..64, 0..256)) {
            let mut h = Histogram::new(32);
            for &s in &samples {
                h.record(s);
            }
            let bucket_sum: u64 = h.iter().map(|(_, c)| c).sum();
            prop_assert_eq!(bucket_sum + h.overflow(), h.total());
            prop_assert_eq!(h.total(), samples.len() as u64);
        }

        /// fraction_below is monotonically non-decreasing.
        #[test]
        fn fraction_below_is_monotone(samples in proptest::collection::vec(0u64..40, 1..128)) {
            let mut h = Histogram::new(32);
            for &s in &samples {
                h.record(s);
            }
            let mut prev = 0.0;
            for v in 0..48 {
                let f = h.fraction_below(v);
                prop_assert!(f >= prev);
                prev = f;
            }
        }
    }
}
