//! A minimal JSON reader/writer with order-preserving objects.
//!
//! The repo deliberately has no serde; reports are emitted by hand with
//! stable key order. This module exists so tests can *verify* that
//! stability — parse an emitted document, inspect keys in order, and
//! round-trip it — without pulling in a dependency. It is not a
//! general-purpose JSON library: numbers are `f64`, and the writer
//! emits the shortest `f64` form, so byte-level round-trips are only
//! guaranteed for documents this module itself rendered.

use std::fmt;

/// A parsed JSON value. Object members keep document order.
///
/// # Examples
///
/// ```
/// use ddsc_util::Json;
///
/// let doc = Json::parse(r#"{"b": 1, "a": [true, null, "x"]}"#).unwrap();
/// assert_eq!(doc.keys(), vec!["b", "a"]);
/// assert_eq!(doc.get("b").and_then(Json::as_f64), Some(1.0));
/// let back = Json::parse(&doc.render()).unwrap();
/// assert_eq!(back, doc);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish int from float).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, members in document order.
    Obj(Vec<(String, Json)>),
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Object member lookup by key; `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object keys in document order; empty for non-objects.
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Obj(members) => members.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Renders the value back to compact JSON, preserving member order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            at: self.pos,
            message,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected [")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected , or ] in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected {")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected : after object key")?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected , or } in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our
                            // ASCII reports; reject rather than mangle.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the byte stream.
                    let start = self.pos - 1;
                    let len = utf8_len(b).ok_or_else(|| self.err("invalid UTF-8"))?;
                    let end = start + len;
                    let s = self
                        .bytes
                        .get(start..end)
                        .and_then(|bs| std::str::from_utf8(bs).ok())
                        .ok_or_else(|| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7f => Some(1),
        0xc0..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf7 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-2.5e2").unwrap(), Json::Num(-250.0));
        assert_eq!(
            Json::parse(r#""a\nbA""#).unwrap(),
            Json::Str("a\nbA".into())
        );
    }

    #[test]
    fn objects_preserve_member_order() {
        let doc = Json::parse(r#"{"z": 1, "a": 2, "m": 3}"#).unwrap();
        assert_eq!(doc.keys(), vec!["z", "a", "m"]);
        assert_eq!(doc.get("a").unwrap().as_f64(), Some(2.0));
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"name":"fig2","rows":[{"w":4,"ipc":1.25},{"w":8,"ipc":2.5}],"ok":true,"none":null}"#;
        let doc = Json::parse(text).unwrap();
        assert_eq!(doc.render(), text);
        let again = Json::parse(&doc.render()).unwrap();
        assert_eq!(again, doc);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1,}",
            "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad:?}");
        }
        let err = Json::parse("[1, }").unwrap_err();
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn unicode_strings_survive() {
        let doc = Json::parse("\"héllo ∑\"").unwrap();
        assert_eq!(doc.as_str(), Some("héllo ∑"));
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(0.5).render(), "0.5");
        assert_eq!(Json::Num(-3.0).render(), "-3");
    }
}
