//! Content checksums for on-disk caches.
//!
//! The trace cache stores regenerable binary payloads; a 64-bit FNV-1a
//! digest over the payload detects truncation and bit rot so a corrupt
//! cache entry silently falls back to regeneration. Not cryptographic —
//! the cache only ever defends against accidents, never adversaries.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The 64-bit FNV-1a digest of `bytes`.
///
/// # Examples
///
/// ```
/// use ddsc_util::fnv1a;
///
/// assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
/// assert_ne!(fnv1a(b"trace"), fnv1a(b"tracf"));
/// ```
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference values of the standard 64-bit FNV-1a parameters.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn single_bit_flips_change_the_digest() {
        let base = fnv1a(&[0u8; 64]);
        for i in 0..64 {
            let mut buf = [0u8; 64];
            buf[i] = 1;
            assert_ne!(fnv1a(&buf), base, "flip at byte {i}");
        }
    }
}
