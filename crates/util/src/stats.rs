//! Summary statistics used throughout the reproduction.
//!
//! The paper summarises per-benchmark results with the *harmonic mean*
//! (both for IPC and for speedups), so that is the headline aggregation
//! here too. Arithmetic and geometric means are provided for the extension
//! experiments and for sanity checks.

use std::fmt;

/// Arithmetic mean of a slice. Returns `None` for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(ddsc_util::stats::mean(&[1.0, 3.0]), Some(2.0));
/// assert_eq!(ddsc_util::stats::mean(&[]), None);
/// ```
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

/// Harmonic mean of a slice — the aggregation the paper uses for IPC and
/// speedup (§5: "we summarize results by taking the harmonic mean over the
/// benchmark set").
///
/// Returns `None` for an empty slice or if any value is not strictly
/// positive (the harmonic mean is undefined there).
///
/// # Examples
///
/// ```
/// let hm = ddsc_util::stats::harmonic_mean(&[1.0, 2.0]).unwrap();
/// assert!((hm - 4.0 / 3.0).abs() < 1e-12);
/// ```
pub fn harmonic_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let recip_sum: f64 = values.iter().map(|v| 1.0 / v).sum();
    Some(values.len() as f64 / recip_sum)
}

/// Geometric mean of a slice.
///
/// Returns `None` for an empty slice or if any value is not strictly
/// positive.
///
/// # Examples
///
/// ```
/// let gm = ddsc_util::stats::geometric_mean(&[1.0, 4.0]).unwrap();
/// assert!((gm - 2.0).abs() < 1e-12);
/// ```
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// The `p`-th percentile of an ascending-sorted slice, by linear
/// interpolation between closest ranks (the "exclusive" convention is
/// avoided so `percentile(xs, 100)` is the maximum and
/// `percentile(xs, 0)` the minimum).
///
/// Returns `None` for an empty slice or a `p` outside `0..=100`. The
/// caller sorts — latency harnesses sort once and read many
/// percentiles off the same slice.
///
/// # Examples
///
/// ```
/// use ddsc_util::stats::percentile;
///
/// let xs = [10.0, 20.0, 30.0, 40.0];
/// assert_eq!(percentile(&xs, 0.0), Some(10.0));
/// assert_eq!(percentile(&xs, 50.0), Some(25.0));
/// assert_eq!(percentile(&xs, 100.0), Some(40.0));
/// assert_eq!(percentile(&[], 50.0), None);
/// ```
pub fn percentile(sorted: &[f64], p: f64) -> Option<f64> {
    if sorted.is_empty() || !(0.0..=100.0).contains(&p) {
        return None;
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// A ratio rendered as a percentage, e.g. in the load-classification and
/// collapse-contribution tables.
///
/// Stores numerator and denominator so that percentages of zero samples
/// display as `0.00%` rather than NaN, and so that exact counts remain
/// available to tests.
///
/// # Examples
///
/// ```
/// use ddsc_util::stats::Percent;
///
/// let p = Percent::new(1, 4);
/// assert_eq!(p.value(), 25.0);
/// assert_eq!(p.to_string(), "25.00");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Percent {
    num: u64,
    den: u64,
}

impl Percent {
    /// Creates a percentage from a numerator and denominator.
    pub fn new(num: u64, den: u64) -> Self {
        Percent { num, den }
    }

    /// The percentage as a float; `0.0` when the denominator is zero.
    pub fn value(&self) -> f64 {
        if self.den == 0 {
            0.0
        } else {
            100.0 * self.num as f64 / self.den as f64
        }
    }

    /// Numerator (raw event count).
    pub fn count(&self) -> u64 {
        self.num
    }

    /// Denominator (total sample count).
    pub fn total(&self) -> u64 {
        self.den
    }
}

impl fmt::Display for Percent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}", self.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_of_singleton() {
        assert_eq!(mean(&[7.5]), Some(7.5));
    }

    #[test]
    fn harmonic_mean_matches_hand_computation() {
        // HM(1, 2, 4) = 3 / (1 + 0.5 + 0.25) = 12/7.
        let hm = harmonic_mean(&[1.0, 2.0, 4.0]).unwrap();
        assert!((hm - 12.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_rejects_nonpositive() {
        assert_eq!(harmonic_mean(&[1.0, 0.0]), None);
        assert_eq!(harmonic_mean(&[1.0, -2.0]), None);
        assert_eq!(harmonic_mean(&[]), None);
    }

    #[test]
    fn geometric_mean_rejects_nonpositive() {
        assert_eq!(geometric_mean(&[0.0]), None);
        assert_eq!(geometric_mean(&[]), None);
    }

    #[test]
    fn percentile_edge_cases() {
        assert_eq!(percentile(&[5.0], 0.0), Some(5.0));
        assert_eq!(percentile(&[5.0], 99.9), Some(5.0));
        assert_eq!(percentile(&[1.0, 2.0], 101.0), None);
        assert_eq!(percentile(&[1.0, 2.0], -1.0), None);
    }

    #[test]
    fn percent_zero_denominator_is_zero() {
        assert_eq!(Percent::new(0, 0).value(), 0.0);
    }

    #[test]
    fn percent_display_rounds_to_two_places() {
        assert_eq!(Percent::new(1, 3).to_string(), "33.33");
        assert_eq!(Percent::new(2, 3).to_string(), "66.67");
    }

    proptest! {
        /// HM <= GM <= AM for positive inputs (the classical mean
        /// inequality chain).
        #[test]
        fn mean_inequality_chain(values in proptest::collection::vec(0.01f64..1e6, 1..32)) {
            let am = mean(&values).unwrap();
            let gm = geometric_mean(&values).unwrap();
            let hm = harmonic_mean(&values).unwrap();
            prop_assert!(hm <= gm * (1.0 + 1e-9));
            prop_assert!(gm <= am * (1.0 + 1e-9));
        }

        /// All means of a constant sequence equal that constant.
        #[test]
        fn means_of_constant(v in 0.01f64..1e6, n in 1usize..16) {
            let values = vec![v; n];
            prop_assert!((mean(&values).unwrap() - v).abs() < 1e-6);
            prop_assert!((harmonic_mean(&values).unwrap() - v).abs() / v < 1e-9);
            prop_assert!((geometric_mean(&values).unwrap() - v).abs() / v < 1e-9);
        }
    }
}
