//! Crash-consistent artifact publication.
//!
//! Every file under `results/` is an *artifact*: a reader (a human, CI,
//! or a resumed run) must never observe a torn one. [`publish_atomic`]
//! is the single write path all artifact writers share — write the
//! bytes to a temporary sibling, fsync, then rename into place — so a
//! kill at any instant leaves either the old file or the new file,
//! never a half-written hybrid.

use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

/// Atomically replaces `path` with `bytes`.
///
/// The bytes are written to a temporary sibling
/// (`<path>.tmp.<pid>` — same directory, so the final rename never
/// crosses a filesystem), synced to disk, then renamed over `path`.
/// Parent directories are created as needed. On a failed rename the
/// temporary file is removed, leaving no debris.
///
/// # Errors
///
/// Any underlying filesystem error. After an error the target file is
/// either absent or holds its previous contents in full.
///
/// # Examples
///
/// ```
/// let dir = std::env::temp_dir().join(format!("ddsc-publish-doc-{}", std::process::id()));
/// let path = dir.join("artifact.txt");
/// ddsc_util::publish_atomic(&path, b"v1").unwrap();
/// ddsc_util::publish_atomic(&path, b"v2").unwrap();
/// assert_eq!(std::fs::read(&path).unwrap(), b"v2");
/// let _ = std::fs::remove_dir_all(&dir);
/// ```
pub fn publish_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    publish_atomic_with(path, |f| f.write_all(bytes))
}

/// [`publish_atomic`] for writers that produce their bytes
/// incrementally: `write` streams into the temporary sibling (so the
/// full artifact never has to fit in memory), then the same
/// fsync-and-rename publication applies.
///
/// # Errors
///
/// Any error from `write` or the underlying filesystem; the temporary
/// file is removed and the target is untouched.
pub fn publish_atomic_with<F>(path: &Path, write: F) -> io::Result<()>
where
    F: FnOnce(&mut fs::File) -> io::Result<()>,
{
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir)?;
        }
    }
    let tmp = path.with_extension(format!(
        "{}tmp.{}",
        path.extension()
            .and_then(|e| e.to_str())
            .map(|e| format!("{e}."))
            .unwrap_or_default(),
        std::process::id()
    ));
    let published = (|| {
        let mut f = fs::File::create(&tmp)?;
        write(&mut f)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, path)
    })();
    if published.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    published
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("ddsc-publish-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn publishes_and_replaces_whole_files() {
        let dir = tmpdir("replace");
        let path = dir.join("a.json");
        publish_atomic(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        publish_atomic(&path, b"second, longer").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second, longer");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn creates_missing_parent_directories() {
        let dir = tmpdir("parents");
        let path = dir.join("deep/nested/out.txt");
        publish_atomic(&path, b"x").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"x");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_full_mid_stream_keeps_the_old_artifact_and_leaves_no_debris() {
        use crate::fault::FailingWriter;
        use std::io::Write as _;

        let dir = tmpdir("enospc");
        let path = dir.join("artifact.json");
        publish_atomic(&path, b"previous, intact contents").unwrap();

        // Stream a new version through a writer that runs out of space
        // mid-artifact: the error must come back typed, the published
        // file must still hold the old bytes in full, and no temporary
        // sibling may survive.
        let err = publish_atomic_with(&path, |f| {
            let mut w = FailingWriter::new(f, 10);
            w.write_all(&[0xAB; 4096])
        })
        .expect_err("device is full");
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert_eq!(fs::read(&path).unwrap(), b"previous, intact contents");
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(names, vec!["artifact.json".to_string()]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn leaves_no_temporary_siblings_behind() {
        let dir = tmpdir("clean");
        let path = dir.join("artifact.bin");
        publish_atomic(&path, &[0u8; 4096]).unwrap();
        publish_atomic(&path, &[1u8; 64]).unwrap();
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(names, vec!["artifact.bin".to_string()]);
        let _ = fs::remove_dir_all(&dir);
    }
}
