//! Append-only write-ahead run journal.
//!
//! A long grid run records its progress as a sequence of checksummed
//! records in `results/run_journal.bin`. After a crash — a kill, a
//! power cut, a wedged cell — the journal is replayed on the next
//! `--resume` run: every record whose frame survives intact is
//! recovered, and a torn tail (a record half-written at the instant of
//! death) is truncated away. The journal is therefore *crash
//! consistent*: recovery never sees a partial record, only a clean
//! prefix of the run's history.
//!
//! # On-disk format
//!
//! ```text
//! header  := "DDRJ" version:u32
//! record  := len:u32 payload[len] fnv1a(payload):u64
//! payload := kind:u8 fields...          (all integers little-endian)
//! string  := len:u16 utf8[len]
//! ```
//!
//! Each [`append`](Journal::append) issues a single `write_all` of one
//! complete frame followed by `sync_data`, so on any sane filesystem a
//! record is either durably whole or detectably torn — and the torn
//! case is exactly what [`decode_records`] discards.

use std::fs::{File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::checksum::fnv1a;

/// Journal file magic: "DDRJ" (Data Dependence Run Journal).
pub const JOURNAL_MAGIC: [u8; 4] = *b"DDRJ";
/// Current journal format version.
pub const JOURNAL_VERSION: u32 = 1;
/// Header length: magic + version.
pub const JOURNAL_HEADER_LEN: usize = 8;
/// Sanity cap on a single record's payload: anything claiming to be
/// larger is corruption, not a record.
const MAX_RECORD_LEN: u32 = 1 << 20;

/// One entry in the run journal.
///
/// Cells are identified by `(bench, config, width)` — the same key the
/// lab's memoising cache uses — plus, on completion, a `digest` binding
/// the result to the exact trace bytes and configuration it came from.
/// A resumed run only trusts a `CellFinished` whose digest matches the
/// digest it would compute today; anything else is stale and re-runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// A run began, with a human-readable config fingerprint
    /// (seed / trace length / widths).
    RunStarted {
        /// Run configuration fingerprint.
        config: String,
    },
    /// A grid cell began simulating.
    CellStarted {
        /// Benchmark name.
        bench: String,
        /// Configuration label (A..E).
        config: String,
        /// Issue width.
        width: u32,
    },
    /// A grid cell finished; `digest` identifies (trace, config, width).
    CellFinished {
        /// Benchmark name.
        bench: String,
        /// Configuration label (A..E).
        config: String,
        /// Issue width.
        width: u32,
        /// Cell digest: fnv1a over trace checksum ‖ config ‖ width.
        digest: u64,
    },
    /// A grid cell failed (panicked, faulted, or timed out).
    CellFailed {
        /// Benchmark name.
        bench: String,
        /// Configuration label (A..E).
        config: String,
        /// Issue width.
        width: u32,
        /// The failure message.
        error: String,
    },
    /// An artifact was atomically renamed into place.
    ArtifactPublished {
        /// Path of the published artifact.
        path: String,
    },
    /// The run ended with the given process exit status.
    RunFinished {
        /// Exit status (0 complete, 2 degraded).
        status: u32,
    },
}

const KIND_RUN_STARTED: u8 = 1;
const KIND_CELL_STARTED: u8 = 2;
const KIND_CELL_FINISHED: u8 = 3;
const KIND_CELL_FAILED: u8 = 4;
const KIND_ARTIFACT_PUBLISHED: u8 = 5;
const KIND_RUN_FINISHED: u8 = 6;

fn put_str(out: &mut Vec<u8>, s: &str) {
    let len = s.len().min(u16::MAX as usize) as u16;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&s.as_bytes()[..len as usize]);
}

fn get_str(bytes: &[u8], pos: &mut usize) -> Option<String> {
    let len = u16::from_le_bytes(bytes.get(*pos..*pos + 2)?.try_into().ok()?) as usize;
    *pos += 2;
    let s = std::str::from_utf8(bytes.get(*pos..*pos + len)?).ok()?;
    *pos += len;
    Some(s.to_string())
}

fn get_u32(bytes: &[u8], pos: &mut usize) -> Option<u32> {
    let v = u32::from_le_bytes(bytes.get(*pos..*pos + 4)?.try_into().ok()?);
    *pos += 4;
    Some(v)
}

fn get_u64(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let v = u64::from_le_bytes(bytes.get(*pos..*pos + 8)?.try_into().ok()?);
    *pos += 8;
    Some(v)
}

/// Encodes one record's *payload* (kind byte + fields, without the
/// frame's length prefix and checksum suffix).
fn encode_payload(rec: &JournalRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    match rec {
        JournalRecord::RunStarted { config } => {
            out.push(KIND_RUN_STARTED);
            put_str(&mut out, config);
        }
        JournalRecord::CellStarted {
            bench,
            config,
            width,
        } => {
            out.push(KIND_CELL_STARTED);
            put_str(&mut out, bench);
            put_str(&mut out, config);
            out.extend_from_slice(&width.to_le_bytes());
        }
        JournalRecord::CellFinished {
            bench,
            config,
            width,
            digest,
        } => {
            out.push(KIND_CELL_FINISHED);
            put_str(&mut out, bench);
            put_str(&mut out, config);
            out.extend_from_slice(&width.to_le_bytes());
            out.extend_from_slice(&digest.to_le_bytes());
        }
        JournalRecord::CellFailed {
            bench,
            config,
            width,
            error,
        } => {
            out.push(KIND_CELL_FAILED);
            put_str(&mut out, bench);
            put_str(&mut out, config);
            out.extend_from_slice(&width.to_le_bytes());
            put_str(&mut out, error);
        }
        JournalRecord::ArtifactPublished { path } => {
            out.push(KIND_ARTIFACT_PUBLISHED);
            put_str(&mut out, path);
        }
        JournalRecord::RunFinished { status } => {
            out.push(KIND_RUN_FINISHED);
            out.extend_from_slice(&status.to_le_bytes());
        }
    }
    out
}

/// Decodes one payload. `None` means corruption (unknown kind, short
/// fields, trailing garbage, invalid UTF-8).
fn decode_payload(payload: &[u8]) -> Option<JournalRecord> {
    let (&kind, rest) = payload.split_first()?;
    let mut pos = 0usize;
    let rec = match kind {
        KIND_RUN_STARTED => JournalRecord::RunStarted {
            config: get_str(rest, &mut pos)?,
        },
        KIND_CELL_STARTED => JournalRecord::CellStarted {
            bench: get_str(rest, &mut pos)?,
            config: get_str(rest, &mut pos)?,
            width: get_u32(rest, &mut pos)?,
        },
        KIND_CELL_FINISHED => JournalRecord::CellFinished {
            bench: get_str(rest, &mut pos)?,
            config: get_str(rest, &mut pos)?,
            width: get_u32(rest, &mut pos)?,
            digest: get_u64(rest, &mut pos)?,
        },
        KIND_CELL_FAILED => JournalRecord::CellFailed {
            bench: get_str(rest, &mut pos)?,
            config: get_str(rest, &mut pos)?,
            width: get_u32(rest, &mut pos)?,
            error: get_str(rest, &mut pos)?,
        },
        KIND_ARTIFACT_PUBLISHED => JournalRecord::ArtifactPublished {
            path: get_str(rest, &mut pos)?,
        },
        KIND_RUN_FINISHED => JournalRecord::RunFinished {
            status: get_u32(rest, &mut pos)?,
        },
        _ => return None,
    };
    if pos != rest.len() {
        return None; // trailing garbage inside a framed payload
    }
    Some(rec)
}

/// Encodes one complete frame: `len ‖ payload ‖ fnv1a(payload)`.
pub fn encode_record(rec: &JournalRecord) -> Vec<u8> {
    let payload = encode_payload(rec);
    let mut frame = Vec::with_capacity(payload.len() + 12);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    frame
}

/// Writes one record's frame to any writer as a single `write_all`.
///
/// This is the injectable seam [`Journal::append`] goes through: tests
/// drive it with a failing writer (e.g.
/// [`FailingWriter`](crate::fault::FailingWriter)) to prove that a
/// disk-full or short-write failure surfaces as a typed [`io::Error`]
/// — never a panic — and that whatever partial frame reached the disk
/// is exactly what [`decode_records`] truncates away on recovery.
///
/// # Errors
///
/// Any error from the underlying writer, `ErrorKind` preserved.
pub fn write_frame(w: &mut impl io::Write, rec: &JournalRecord) -> io::Result<()> {
    w.write_all(&encode_record(rec))
}

/// Decodes a journal byte stream (header + frames) into the longest
/// valid record prefix.
///
/// Returns the recovered records and the byte length of the valid
/// prefix (header included). Decoding stops — without error — at the
/// first frame that is short, checksum-damaged, or semantically
/// malformed; everything before it is trusted, everything from it on is
/// the torn tail. A missing or damaged header recovers zero records
/// with a zero-length valid prefix.
pub fn decode_records(bytes: &[u8]) -> (Vec<JournalRecord>, usize) {
    if bytes.len() < JOURNAL_HEADER_LEN
        || bytes[..4] != JOURNAL_MAGIC
        || u32::from_le_bytes(bytes[4..8].try_into().unwrap()) != JOURNAL_VERSION
    {
        return (Vec::new(), 0);
    }
    let mut records = Vec::new();
    let mut pos = JOURNAL_HEADER_LEN;
    while let Some(len_bytes) = bytes.get(pos..pos + 4) {
        let len = u32::from_le_bytes(len_bytes.try_into().unwrap());
        if len == 0 || len > MAX_RECORD_LEN {
            break;
        }
        let len = len as usize;
        let Some(payload) = bytes.get(pos + 4..pos + 4 + len) else {
            break;
        };
        let Some(sum_bytes) = bytes.get(pos + 4 + len..pos + 12 + len) else {
            break;
        };
        if fnv1a(payload) != u64::from_le_bytes(sum_bytes.try_into().unwrap()) {
            break;
        }
        let Some(rec) = decode_payload(payload) else {
            break;
        };
        records.push(rec);
        pos += 12 + len;
    }
    (records, pos)
}

/// Reads and decodes a journal file without modifying it.
///
/// A missing file is an empty journal; a torn tail is silently ignored
/// (only [`Journal::open`] truncates it). This is the read-only path
/// the `ddsc journal` inspection command uses.
///
/// # Errors
///
/// Only genuine I/O errors; corruption is recovered from, not reported.
pub fn read_journal(path: &Path) -> io::Result<Vec<JournalRecord>> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    Ok(decode_records(&bytes).0)
}

/// An open, append-only run journal.
///
/// [`Journal::open`] recovers the valid record prefix (truncating any
/// torn tail in place) and positions the file for appending; `append`
/// is atomic per record — one `write_all`, one `sync_data` — and safe
/// to call from multiple threads.
///
/// # Examples
///
/// ```
/// use ddsc_util::journal::{Journal, JournalRecord};
///
/// let dir = std::env::temp_dir().join(format!("ddsc-journal-doc-{}", std::process::id()));
/// let path = dir.join("run_journal.bin");
/// let (journal, recovered) = Journal::open(&path).unwrap();
/// assert!(recovered.is_empty());
/// journal.append(&JournalRecord::RunStarted { config: "seed=1996".into() }).unwrap();
/// drop(journal);
/// let (_, recovered) = Journal::open(&path).unwrap();
/// assert_eq!(recovered.len(), 1);
/// let _ = std::fs::remove_dir_all(&dir);
/// ```
#[derive(Debug)]
pub struct Journal {
    file: Mutex<File>,
    path: PathBuf,
}

impl Journal {
    /// Opens (creating if absent) the journal at `path`, recovering the
    /// valid record prefix and truncating any torn tail.
    ///
    /// Returns the journal handle and the recovered records, in order.
    ///
    /// # Errors
    ///
    /// Any underlying filesystem error. Corruption never errors: an
    /// unreadable prefix simply recovers fewer records.
    pub fn open(path: &Path) -> io::Result<(Journal, Vec<JournalRecord>)> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let (records, valid_len) = decode_records(&bytes);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        if valid_len == 0 {
            // Fresh file, or a header too damaged to trust: restart.
            file.set_len(0)?;
            file.write_all(&JOURNAL_MAGIC)?;
            file.write_all(&JOURNAL_VERSION.to_le_bytes())?;
            file.sync_data()?;
        } else if valid_len < bytes.len() {
            file.set_len(valid_len as u64)?;
            file.sync_data()?;
        }
        use std::io::Seek as _;
        file.seek(io::SeekFrom::End(0))?;
        Ok((
            Journal {
                file: Mutex::new(file),
                path: path.to_path_buf(),
            },
            records,
        ))
    }

    /// Appends one record durably: a single whole-frame `write_all`
    /// followed by `sync_data`.
    ///
    /// # Errors
    ///
    /// Any underlying filesystem error; on error the tail may hold a
    /// torn frame, which the next [`Journal::open`] truncates away.
    pub fn append(&self, rec: &JournalRecord) -> io::Result<()> {
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        write_frame(&mut *file, rec)?;
        file.sync_data()
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::RunStarted {
                config: "seed=1996 len=300000 widths=4,8,16".into(),
            },
            JournalRecord::CellStarted {
                bench: "099.go".into(),
                config: "A".into(),
                width: 4,
            },
            JournalRecord::CellFinished {
                bench: "099.go".into(),
                config: "A".into(),
                width: 4,
                digest: 0xdead_beef_cafe_f00d,
            },
            JournalRecord::CellFailed {
                bench: "023.eqntott".into(),
                config: "B".into(),
                width: 8,
                error: "cell timed out after 0.5s".into(),
            },
            JournalRecord::ArtifactPublished {
                path: "results/repro_all.txt".into(),
            },
            JournalRecord::RunFinished { status: 2 },
        ]
    }

    fn tmpfile(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ddsc-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d.join("run_journal.bin")
    }

    #[test]
    fn every_record_kind_round_trips() {
        for rec in sample_records() {
            let mut bytes = Vec::new();
            bytes.extend_from_slice(&JOURNAL_MAGIC);
            bytes.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
            bytes.extend_from_slice(&encode_record(&rec));
            let (back, valid) = decode_records(&bytes);
            assert_eq!(back, vec![rec]);
            assert_eq!(valid, bytes.len());
        }
    }

    #[test]
    fn open_append_reopen_recovers_everything() {
        let path = tmpfile("roundtrip");
        let (journal, recovered) = Journal::open(&path).unwrap();
        assert!(recovered.is_empty());
        for rec in sample_records() {
            journal.append(&rec).unwrap();
        }
        drop(journal);
        let (_, recovered) = Journal::open(&path).unwrap();
        assert_eq!(recovered, sample_records());
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn torn_tail_is_truncated_on_open_and_appending_continues() {
        let path = tmpfile("torn");
        let (journal, _) = Journal::open(&path).unwrap();
        for rec in sample_records() {
            journal.append(&rec).unwrap();
        }
        drop(journal);
        let clean = std::fs::read(&path).unwrap();

        // Tear the last frame in half.
        std::fs::write(&path, &clean[..clean.len() - 5]).unwrap();
        let (journal, recovered) = Journal::open(&path).unwrap();
        assert_eq!(recovered, sample_records()[..5]);
        // The torn bytes are gone from disk, and appends go after the
        // recovered prefix.
        journal
            .append(&JournalRecord::RunFinished { status: 0 })
            .unwrap();
        drop(journal);
        let (_, recovered) = Journal::open(&path).unwrap();
        assert_eq!(recovered.len(), 6);
        assert_eq!(recovered[5], JournalRecord::RunFinished { status: 0 });
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn bad_header_recovers_nothing_and_restarts() {
        let path = tmpfile("header");
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, b"NOPE\x01\x00\x00\x00junkjunkjunk").unwrap();
        let (journal, recovered) = Journal::open(&path).unwrap();
        assert!(recovered.is_empty());
        journal
            .append(&JournalRecord::RunStarted { config: "x".into() })
            .unwrap();
        drop(journal);
        let (_, recovered) = Journal::open(&path).unwrap();
        assert_eq!(
            recovered,
            vec![JournalRecord::RunStarted { config: "x".into() }]
        );
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn checksum_damage_cuts_the_stream_at_the_damaged_record() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&JOURNAL_MAGIC);
        bytes.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
        let recs = sample_records();
        let mut offsets = Vec::new();
        for rec in &recs {
            offsets.push(bytes.len());
            bytes.extend_from_slice(&encode_record(rec));
        }
        // Flip one payload byte of record 3: records 0..3 survive.
        let mut damaged = bytes.clone();
        damaged[offsets[3] + 4] ^= 0xFF;
        let (back, valid) = decode_records(&damaged);
        assert_eq!(back, recs[..3]);
        assert_eq!(valid, offsets[3]);
    }

    #[test]
    fn read_journal_tolerates_missing_file_and_torn_tail() {
        let path = tmpfile("readonly");
        assert!(read_journal(&path).unwrap().is_empty());
        let (journal, _) = Journal::open(&path).unwrap();
        journal
            .append(&JournalRecord::RunStarted { config: "x".into() })
            .unwrap();
        drop(journal);
        // Append torn garbage; the read-only path must not truncate.
        let mut bytes = std::fs::read(&path).unwrap();
        let clean_len = bytes.len();
        bytes.extend_from_slice(&[9, 0, 0, 0, 1]);
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(read_journal(&path).unwrap().len(), 1);
        assert_eq!(std::fs::read(&path).unwrap().len(), clean_len + 5);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn disk_full_mid_frame_is_a_typed_error_and_recovery_drops_the_torn_tail() {
        use crate::fault::FailingWriter;

        // A "disk" with room for the header, two whole records, and
        // half of a third: the classic ENOSPC-mid-append shape.
        let recs = sample_records();
        let mut disk = Vec::new();
        disk.extend_from_slice(&JOURNAL_MAGIC);
        disk.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
        let header = disk.len();
        let frame_len = |r: &JournalRecord| encode_record(r).len();
        // The header is already on the "disk"; the budget meters only
        // what flows through the failing writer.
        let budget = frame_len(&recs[0]) + frame_len(&recs[1]) + 5;

        let mut w = FailingWriter::new(disk, budget);
        write_frame(&mut w, &recs[0]).unwrap();
        write_frame(&mut w, &recs[1]).unwrap();
        let err = write_frame(&mut w, &recs[2]).expect_err("device is full");
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);

        // The short write left a torn third frame on the "disk";
        // recovery trusts exactly the two whole records before it.
        let disk = w.into_inner();
        assert_eq!(
            disk.len(),
            header + budget,
            "partial frame reached the disk"
        );
        let (recovered, valid) = decode_records(&disk);
        assert_eq!(recovered, recs[..2]);
        assert_eq!(valid, header + frame_len(&recs[0]) + frame_len(&recs[1]));
    }

    #[test]
    fn append_surfaces_write_errors_without_panicking() {
        // A directory is not writable as a file: opening the journal at
        // a path whose parent is a regular file must error, not panic.
        let path = tmpfile("notadir");
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        let blocker = path.parent().unwrap().join("blocker");
        std::fs::write(&blocker, b"file").unwrap();
        let under_file = blocker.join("run_journal.bin");
        assert!(Journal::open(&under_file).is_err());
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn oversized_length_prefix_is_rejected_not_allocated() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&JOURNAL_MAGIC);
        bytes.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        let (recs, valid) = decode_records(&bytes);
        assert!(recs.is_empty());
        assert_eq!(valid, JOURNAL_HEADER_LEN);
    }
}
