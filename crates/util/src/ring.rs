//! Bounded-window ring storage addressed by absolute sequence index.
//!
//! The streaming simulator walks a conceptually unbounded instruction
//! sequence but only ever touches a sliding window of it: columns below
//! the retirement watermark are dead, columns above the fetch point do
//! not exist yet. [`RingVec`] and [`RingBitSet`] store exactly that
//! window — elements keep their *absolute* index (so dependence edges
//! and completion lookups need no translation), while the backing
//! buffer stays proportional to the live span, growing by doubling only
//! when the span itself grows.
//!
//! Eviction is explicit ([`RingVec::evict_to`]): the owner advances the
//! base when the simulator's watermark proves everything below it can
//! never be read again. Reads below the base return `None`, so callers
//! can give evicted positions a semantic default ("completed long ago")
//! instead of resurrecting stale data.
//!
//! # Examples
//!
//! ```
//! use ddsc_util::RingVec;
//!
//! let mut r = RingVec::with_capacity(0u32, 16);
//! for v in 0..10_000 {
//!     r.push(v);
//!     if v >= 10 {
//!         r.evict_to(v as usize - 10); // keep an 11-element window live
//!     }
//! }
//! assert_eq!(r.get(9_995), Some(&9_995));
//! assert_eq!(r.get(10), None, "evicted");
//! assert!(r.capacity() < 100, "storage tracks the live span");
//! ```

/// A growable ring buffer addressed by absolute sequence index.
///
/// Live indices form the contiguous range `[base, end)`; `push` appends
/// at `end`, `evict_to` advances `base`. Capacity is a power of two and
/// doubles when the live span outgrows it.
#[derive(Debug, Clone)]
pub struct RingVec<T> {
    buf: Vec<T>,
    /// `capacity - 1`; capacity is a power of two.
    mask: usize,
    base: usize,
    end: usize,
    /// Placeholder used to initialise fresh capacity.
    fill: T,
}

impl<T: Clone> RingVec<T> {
    /// An empty ring; `fill` initialises backing storage (its value is
    /// never observable through the API).
    pub fn new(fill: T) -> Self {
        RingVec::with_capacity(fill, 64)
    }

    /// An empty ring pre-sized for a live span of at least `cap`.
    pub fn with_capacity(fill: T, cap: usize) -> Self {
        let cap = cap.next_power_of_two().max(16);
        RingVec {
            buf: vec![fill.clone(); cap],
            mask: cap - 1,
            base: 0,
            end: 0,
            fill,
        }
    }

    /// First live index.
    pub fn base(&self) -> usize {
        self.base
    }

    /// One past the last live index (the index the next `push` gets).
    pub fn end(&self) -> usize {
        self.end
    }

    /// Number of live elements.
    pub fn len(&self) -> usize {
        self.end - self.base
    }

    /// Whether no elements are live.
    pub fn is_empty(&self) -> bool {
        self.base == self.end
    }

    /// Current backing capacity (diagnostics; a power of two).
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Appends a value at index `end`, returning that index.
    #[inline]
    pub fn push(&mut self, v: T) -> usize {
        if self.end - self.base == self.buf.len() {
            self.grow();
        }
        let i = self.end;
        self.buf[i & self.mask] = v;
        self.end += 1;
        i
    }

    /// The element at absolute index `i`, or `None` if it was evicted.
    ///
    /// # Panics
    ///
    /// Panics if `i >= end` — reading ahead of the sequence is a logic
    /// error, unlike reading behind the window.
    #[inline]
    pub fn get(&self, i: usize) -> Option<&T> {
        assert!(i < self.end, "index {i} ahead of ring end {}", self.end);
        (i >= self.base).then(|| &self.buf[i & self.mask])
    }

    /// Mutable access to the element at absolute index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the live range `[base, end)`.
    #[inline]
    pub fn get_mut(&mut self, i: usize) -> &mut T {
        assert!(
            i >= self.base && i < self.end,
            "index {i} outside live ring range {}..{}",
            self.base,
            self.end
        );
        &mut self.buf[i & self.mask]
    }

    /// Drops every element below `new_base` (clamped to `end`). Bases
    /// only move forward; an older `new_base` is a no-op.
    #[inline]
    pub fn evict_to(&mut self, new_base: usize) {
        self.base = self.base.max(new_base.min(self.end));
    }

    fn grow(&mut self) {
        let new_cap = self.buf.len() * 2;
        let mut buf = vec![self.fill.clone(); new_cap];
        for i in self.base..self.end {
            buf[i & (new_cap - 1)] = self.buf[i & self.mask].clone();
        }
        self.buf = buf;
        self.mask = new_cap - 1;
    }
}

/// A bit set addressed by absolute sequence index over a sliding window.
///
/// Tracks two counts the simulator needs: `live` (bits currently set —
/// the ready-set population) and `lifetime` (every distinct index ever
/// set — the collapse-participant total, which must survive eviction).
#[derive(Debug, Clone)]
pub struct RingBitSet {
    words: Vec<u64>,
    /// `word capacity - 1`; capacity is a power of two.
    mask: usize,
    base: usize,
    end: usize,
    live: usize,
    lifetime: u64,
}

impl RingBitSet {
    /// An empty set pre-sized for a live span of at least `cap` bits.
    pub fn with_capacity(cap: usize) -> Self {
        let words = (cap / 64).next_power_of_two().max(4);
        RingBitSet {
            words: vec![0; words],
            mask: words - 1,
            base: 0,
            end: 0,
            live: 0,
            lifetime: 0,
        }
    }

    /// First index that may hold a live bit.
    pub fn base(&self) -> usize {
        self.base
    }

    /// One past the highest trackable index (grown by [`RingBitSet::grow_to`]).
    pub fn end(&self) -> usize {
        self.end
    }

    /// Bits currently set.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Distinct indices ever set, including evicted ones.
    pub fn lifetime_ones(&self) -> u64 {
        self.lifetime
    }

    /// Extends the trackable range to `[base, new_end)`, zeroing any
    /// newly entered words.
    pub fn grow_to(&mut self, new_end: usize) {
        if new_end <= self.end {
            return;
        }
        // Words needed for the new span; double until it fits.
        while new_end.div_ceil(64) - self.base / 64 > self.words.len() {
            self.grow();
        }
        // Zero each word the range newly enters (its physical slot may
        // hold stale bits from a previous trip around the ring).
        let mut w = self.end.div_ceil(64);
        // A partially filled tail word was already zeroed when entered.
        if !self.end.is_multiple_of(64) {
            debug_assert!(w > 0);
        }
        let last = new_end.div_ceil(64);
        while w < last {
            self.words[w & self.mask] = 0;
            w += 1;
        }
        self.end = new_end;
    }

    /// Sets bit `i`, updating the live and lifetime counts.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside `[base, end)`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(
            i >= self.base && i < self.end,
            "bit {i} outside live ring range {}..{}",
            self.base,
            self.end
        );
        let w = &mut self.words[(i / 64) & self.mask];
        let m = 1u64 << (i % 64);
        if *w & m == 0 {
            *w |= m;
            self.live += 1;
            self.lifetime += 1;
        }
    }

    /// Clears bit `i` (no-op when already clear).
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside `[base, end)`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(
            i >= self.base && i < self.end,
            "bit {i} outside live ring range {}..{}",
            self.base,
            self.end
        );
        let w = &mut self.words[(i / 64) & self.mask];
        let m = 1u64 << (i % 64);
        if *w & m != 0 {
            *w &= !m;
            self.live -= 1;
        }
    }

    /// Reads bit `i`; evicted positions read as `false`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= end`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.end, "bit {i} ahead of ring end {}", self.end);
        i >= self.base && self.words[(i / 64) & self.mask] & (1 << (i % 64)) != 0
    }

    /// The lowest set bit at or above `from`, scanning with word skips.
    #[inline]
    pub fn next_set(&self, from: usize) -> Option<usize> {
        let mut i = from.max(self.base);
        if i >= self.end {
            return None;
        }
        // Partial first word: mask off bits below `i`.
        let mut w = self.words[(i / 64) & self.mask] & (!0u64 << (i % 64));
        loop {
            if w != 0 {
                let bit = (i / 64) * 64 + w.trailing_zeros() as usize;
                return (bit < self.end).then_some(bit);
            }
            i = (i / 64 + 1) * 64;
            if i >= self.end {
                return None;
            }
            w = self.words[(i / 64) & self.mask];
        }
    }

    /// Drains set bits in ascending order through `take`.
    ///
    /// For each set bit `i` (lowest first), `take(i)` decides its fate:
    /// `true` consumes the bit (it is cleared and the scan continues),
    /// `false` stops the drain immediately, leaving that bit and every
    /// later one set. This is the issue-selection primitive: the caller
    /// stops when its issue width is exhausted, and the scan itself is
    /// word-at-a-time — one `trailing_zeros` per candidate, whole-word
    /// skips over empty regions, no per-bit range rechecks.
    pub fn drain_in_order(&mut self, mut take: impl FnMut(usize) -> bool) {
        if self.live == 0 {
            return;
        }
        let last = self.end.div_ceil(64);
        let mut wi = self.base / 64;
        // Mask off bits below the base in the first word; bits at or
        // above `end` are structurally clear (`grow_to` zeroes every
        // newly entered word), so no tail mask is needed.
        let mut low_mask = !0u64 << (self.base % 64);
        while wi < last {
            let slot = wi & self.mask;
            let mut w = self.words[slot] & low_mask;
            while w != 0 {
                let m = w & w.wrapping_neg();
                if !take(wi * 64 + w.trailing_zeros() as usize) {
                    return;
                }
                self.words[slot] &= !m;
                self.live -= 1;
                w &= !m;
            }
            if self.live == 0 {
                return;
            }
            low_mask = !0;
            wi += 1;
        }
    }

    /// Advances the base to `new_base` (clamped to `end`). Bits below
    /// that are forgotten; the lifetime count is retained. Any still-set
    /// bits below the new base leave the live count (they can no longer
    /// be observed).
    pub fn evict_to(&mut self, new_base: usize) {
        let new_base = new_base.min(self.end).max(self.base);
        // Walk the evicted range word-by-word so `live` stays exact even
        // when set bits are dropped (the collapse-participant ring evicts
        // set bits by design; the ready ring never does).
        let mut i = self.base;
        while i < new_base {
            let word_end = ((i / 64 + 1) * 64).min(new_base);
            let w = self.words[(i / 64) & self.mask];
            let lo = !0u64 << (i % 64);
            let hi = if word_end.is_multiple_of(64) {
                !0u64
            } else {
                (1u64 << (word_end % 64)) - 1
            };
            self.live -= (w & lo & hi).count_ones() as usize;
            i = word_end;
        }
        self.base = new_base;
    }

    fn grow(&mut self) {
        let new_cap = self.words.len() * 2;
        let mut words = vec![0u64; new_cap];
        let first = self.base / 64;
        let last = self.end.div_ceil(64);
        for w in first..last {
            words[w & (new_cap - 1)] = self.words[w & self.mask];
        }
        self.words = words;
        self.mask = new_cap - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_vec_pushes_and_reads_by_absolute_index() {
        let mut r = RingVec::with_capacity(0u32, 4);
        for v in 0..10u32 {
            assert_eq!(r.push(v), v as usize);
        }
        assert_eq!(r.len(), 10);
        for i in 0..10 {
            assert_eq!(r.get(i), Some(&(i as u32)));
        }
        *r.get_mut(7) = 99;
        assert_eq!(r.get(7), Some(&99));
    }

    #[test]
    fn ring_vec_eviction_frees_capacity_for_reuse() {
        let mut r = RingVec::with_capacity(0u32, 16);
        let cap = r.capacity();
        for v in 0..10_000u32 {
            r.push(v);
            if v >= 8 {
                r.evict_to(v as usize - 8);
            }
        }
        assert_eq!(r.capacity(), cap, "a bounded span never grows the ring");
        assert_eq!(r.get(9_999), Some(&9_999));
        assert_eq!(r.get(100), None, "evicted");
        assert_eq!(r.base(), 10_000 - 9);
    }

    #[test]
    fn ring_vec_growth_preserves_live_elements() {
        let mut r = RingVec::with_capacity(0u32, 16);
        for v in 0..5u32 {
            r.push(v);
        }
        r.evict_to(3);
        for v in 5..200u32 {
            r.push(v);
        }
        for i in 3..200 {
            assert_eq!(r.get(i), Some(&(i as u32)), "index {i}");
        }
    }

    #[test]
    fn ring_vec_backwards_evict_is_a_noop() {
        let mut r = RingVec::new(0u8);
        for _ in 0..10 {
            r.push(1);
        }
        r.evict_to(8);
        r.evict_to(2);
        assert_eq!(r.base(), 8);
        r.evict_to(100);
        assert_eq!(r.base(), 10, "evict clamps to end");
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "ahead of ring end")]
    fn ring_vec_read_ahead_panics() {
        RingVec::new(0u8).get(0);
    }

    #[test]
    #[should_panic(expected = "outside live ring range")]
    fn ring_vec_mut_below_base_panics() {
        let mut r = RingVec::new(0u8);
        r.push(1);
        r.push(2);
        r.evict_to(1);
        r.get_mut(0);
    }

    #[test]
    fn bitset_set_clear_and_counts() {
        let mut b = RingBitSet::with_capacity(64);
        b.grow_to(300);
        for i in [0, 63, 64, 200, 299] {
            b.set(i);
        }
        assert_eq!(b.live(), 5);
        assert_eq!(b.lifetime_ones(), 5);
        b.set(200); // idempotent
        assert_eq!(b.lifetime_ones(), 5);
        b.clear(63);
        assert_eq!(b.live(), 4);
        assert!(!b.get(63));
        assert!(b.get(299));
    }

    #[test]
    fn bitset_scan_finds_lowest_set_bit() {
        let mut b = RingBitSet::with_capacity(64);
        b.grow_to(1000);
        b.set(130);
        b.set(700);
        assert_eq!(b.next_set(0), Some(130));
        assert_eq!(b.next_set(131), Some(700));
        assert_eq!(b.next_set(701), None);
        b.clear(130);
        assert_eq!(b.next_set(0), Some(700));
    }

    #[test]
    fn bitset_eviction_keeps_lifetime_and_reuses_words() {
        let mut b = RingBitSet::with_capacity(128);
        let mut expected_lifetime = 0u64;
        for i in 0..50_000usize {
            b.grow_to(i + 1);
            if i % 3 == 0 {
                b.set(i);
                expected_lifetime += 1;
            }
            if i >= 100 {
                b.evict_to(i - 100);
            }
        }
        assert_eq!(b.lifetime_ones(), expected_lifetime);
        // Live only counts the window's set bits now.
        assert!(b.live() <= 101);
        // A bit set after a full trip round the ring reads back cleanly.
        assert!(b.get(49_999) == (49_999 % 3 == 0));
        assert_eq!(b.next_set(0), b.next_set(b.base()));
    }

    #[test]
    fn bitset_growth_preserves_bits() {
        let mut b = RingBitSet::with_capacity(64);
        b.grow_to(100);
        b.set(5);
        b.set(99);
        b.grow_to(100_000);
        b.set(99_999);
        assert!(b.get(5) && b.get(99) && b.get(99_999));
        assert_eq!(b.live(), 3);
    }

    #[test]
    fn drain_in_order_visits_ascending_and_clears_consumed_bits() {
        let mut b = RingBitSet::with_capacity(64);
        b.grow_to(500);
        for i in [3, 64, 65, 130, 300, 499] {
            b.set(i);
        }
        let mut seen = Vec::new();
        b.drain_in_order(|i| {
            seen.push(i);
            true
        });
        assert_eq!(seen, vec![3, 64, 65, 130, 300, 499]);
        assert_eq!(b.live(), 0);
        assert_eq!(b.next_set(0), None);
    }

    #[test]
    fn drain_in_order_stop_leaves_the_rest_set() {
        let mut b = RingBitSet::with_capacity(64);
        b.grow_to(300);
        for i in [10, 70, 200, 290] {
            b.set(i);
        }
        let mut taken = Vec::new();
        b.drain_in_order(|i| {
            if taken.len() == 2 {
                return false;
            }
            taken.push(i);
            true
        });
        assert_eq!(taken, vec![10, 70]);
        assert_eq!(b.live(), 2, "the refused bit and its successors stay");
        assert!(b.get(200) && b.get(290));
        assert!(!b.get(10) && !b.get(70));
    }

    #[test]
    fn drain_in_order_respects_base_and_ring_wrap() {
        let mut b = RingBitSet::with_capacity(128);
        // Push the window far enough that physical words are reused.
        for i in 0..10_000usize {
            b.grow_to(i + 1);
            if i >= 200 {
                b.evict_to(i - 100);
            }
        }
        for i in [9_905, 9_960, 9_999] {
            b.set(i);
        }
        b.set(9_901);
        b.evict_to(9_903); // drops 9_901 below the base
        let mut seen = Vec::new();
        b.drain_in_order(|i| {
            seen.push(i);
            true
        });
        assert_eq!(seen, vec![9_905, 9_960, 9_999], "evicted bits not visited");
        assert_eq!(b.live(), 0);
    }

    #[test]
    fn drain_in_order_matches_next_set_scan_under_churn() {
        let mut a = RingBitSet::with_capacity(64);
        let mut b = RingBitSet::with_capacity(64);
        let mut rng = 0x2545_f491u64;
        let mut next = || {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (rng >> 33) as usize
        };
        for round in 0..200 {
            let end = (round + 1) * 97;
            a.grow_to(end);
            b.grow_to(end);
            for _ in 0..20 {
                let i = a.base() + next() % (end - a.base());
                a.set(i);
                b.set(i);
            }
            let budget = next() % 8;
            // Reference: next_set/clear loop.
            let mut want = Vec::new();
            let mut scan = a.base();
            while want.len() < budget {
                let Some(i) = a.next_set(scan) else { break };
                a.clear(i);
                scan = i + 1;
                want.push(i);
            }
            // Word drain with the same budget.
            let mut got = Vec::new();
            b.drain_in_order(|i| {
                if got.len() == budget {
                    return false;
                }
                got.push(i);
                true
            });
            assert_eq!(got, want, "round {round}");
            assert_eq!(a.live(), b.live(), "round {round}");
            let base = end.saturating_sub(64);
            a.evict_to(base);
            b.evict_to(base);
        }
    }

    #[test]
    fn bitset_scan_respects_base() {
        let mut b = RingBitSet::with_capacity(64);
        b.grow_to(200);
        b.set(10);
        b.set(150);
        b.evict_to(100);
        assert_eq!(b.next_set(0), Some(150), "evicted bits are not found");
        assert_eq!(b.live(), 1, "evicting a set bit drops it from live");
        assert_eq!(b.lifetime_ones(), 2);
    }
}
