//! A lightweight FxHash-style hasher for hot-path maps.
//!
//! The simulator's store-alias map hashes millions of small integer keys
//! per run; SipHash's DoS resistance buys nothing there (keys are trace
//! addresses, not attacker input) and costs real time. This is the
//! classic Firefox/rustc "Fx" scheme: fold each word into the state with
//! a rotate, xor and multiply by a constant derived from the golden
//! ratio. Deterministic across platforms and runs, which the
//! reproduction requires.
//!
//! # Examples
//!
//! ```
//! use ddsc_util::FxHashMap;
//!
//! let mut m: FxHashMap<u32, u32> = FxHashMap::default();
//! m.insert(0x1000, 7);
//! assert_eq!(m.get(&0x1000), Some(&7));
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// `2^64 / φ`, the multiplier used by rustc's FxHasher.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The hasher state: one 64-bit word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Builds [`FxHasher`]s (all states start at zero; no per-map seeding).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips_integer_keys() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..10_000u32 {
            m.insert(i * 4, i);
        }
        for i in 0..10_000u32 {
            assert_eq!(m.get(&(i * 4)), Some(&i));
        }
        assert_eq!(m.len(), 10_000);
    }

    #[test]
    fn hashing_is_deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u32(0xdead_beef);
        b.write_u32(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
        // Known-answer so cross-platform drift would be caught.
        let mut c = FxHasher::default();
        c.write_u64(1);
        assert_eq!(c.finish(), SEED);
    }

    #[test]
    fn nearby_keys_spread_across_the_hash_space() {
        // The multiply diffuses keys upward: consecutive word addresses
        // must spread across the high byte roughly uniformly. (The low
        // byte of a multiply-only hash is weak by construction — same
        // trade-off rustc's FxHash makes.)
        let mut high_bytes = std::collections::HashSet::new();
        for i in 0..256u64 {
            let mut h = FxHasher::default();
            h.write_u64(0x1000 + i * 4);
            high_bytes.insert((h.finish() >> 56) as u8);
        }
        assert!(high_bytes.len() > 128, "only {} distinct", high_bytes.len());
    }

    #[test]
    fn byte_slices_hash_like_their_padded_words() {
        let mut a = FxHasher::default();
        a.write(b"abcdefgh");
        let mut b = FxHasher::default();
        b.write_u64(u64::from_le_bytes(*b"abcdefgh"));
        assert_eq!(a.finish(), b.finish());
    }
}
