//! Plain-text table rendering for experiment reports.
//!
//! All figures and tables in the paper are regenerated as aligned text so
//! they can be diffed against `EXPERIMENTS.md`; this module provides the
//! small formatter used for that.

use std::fmt;

/// Column alignment for a [`TextTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Align {
    /// Left-aligned (default; used for labels).
    #[default]
    Left,
    /// Right-aligned (used for numbers).
    Right,
}

/// A simple aligned text table.
///
/// # Examples
///
/// ```
/// use ddsc_util::TextTable;
///
/// let mut t = TextTable::new(vec!["bench".into(), "ipc".into()]);
/// t.row(vec!["compress".into(), "1.83".into()]);
/// let s = t.to_string();
/// assert!(s.contains("compress"));
/// assert!(s.contains("ipc"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    aligns: Vec<Align>,
}

impl TextTable {
    /// Creates a table with the given header; all columns default to
    /// left alignment for the first column and right alignment for the
    /// rest (label + numbers is the dominant shape in this repo).
    pub fn new(header: Vec<String>) -> Self {
        let aligns = (0..header.len())
            .map(|i| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        TextTable {
            header,
            rows: Vec::new(),
            aligns,
        }
    }

    /// Overrides the alignment of a column.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn align(&mut self, col: usize, align: Align) -> &mut Self {
        self.aligns[col] = align;
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for i in 0..cols {
                if i > 0 {
                    write!(f, "  ")?;
                }
                match self.aligns[i] {
                    Align::Left => write!(f, "{:<w$}", cells[i], w = widths[i])?,
                    Align::Right => write!(f, "{:>w$}", cells[i], w = widths[i])?,
                }
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name".into(), "v".into()]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows have equal width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
        // Numbers are right-aligned.
        assert!(lines[2].ends_with(" 1"));
        assert!(lines[3].ends_with("22"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(vec!["a".into(), "b".into()]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn align_override_changes_column_side() {
        let mut t = TextTable::new(vec!["h".into(), "v".into()]);
        t.align(1, Align::Left);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["y".into(), "22".into()]);
        let rendered = t.to_string();
        let lines: Vec<&str> = rendered.lines().map(str::trim_end).collect();
        assert!(lines[2].ends_with("1"), "{:?}", lines[2]);
        // Left-aligned: the short value no longer sits at the right edge.
        assert!(lines[2].len() < lines[3].len());
    }

    #[test]
    fn default_alignment_is_left_then_right() {
        let mut t = TextTable::new(vec!["a".into(), "b".into(), "c".into()]);
        t.row(vec!["x".into(), "1".into(), "2".into()]);
        let s = t.to_string();
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn len_and_is_empty() {
        let mut t = TextTable::new(vec!["a".into()]);
        assert!(t.is_empty());
        t.row(vec!["x".into()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
