//! Shared utilities for the DDSC (data dependence speculation & collapsing)
//! reproduction.
//!
//! This crate deliberately has no external dependencies: the reproduction
//! must be bit-for-bit deterministic across toolchains and platforms, so the
//! pseudo-random number generators, statistics and formatting helpers used
//! by every other crate live here.
//!
//! # Examples
//!
//! ```
//! use ddsc_util::rng::SplitMix64;
//!
//! let mut rng = SplitMix64::new(42);
//! let a = rng.next_u64();
//! let b = rng.next_u64();
//! assert_ne!(a, b);
//! ```

pub mod bits;
pub mod checksum;
pub mod fault;
pub mod fxhash;
pub mod hist;
pub mod journal;
pub mod json;
pub mod publish;
pub mod ring;
pub mod rng;
pub mod rss;
pub mod stats;
pub mod table;

pub use bits::BitSet;
pub use checksum::fnv1a;
pub use fault::{
    Backoff, BackoffDelays, FailingWriter, FaultOp, FaultPlan, FlakyReader, StreamFault,
    StreamFaultPlan,
};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use hist::Histogram;
pub use journal::{read_journal, Journal, JournalRecord};
pub use json::{Json, JsonError};
pub use publish::{publish_atomic, publish_atomic_with};
pub use ring::{RingBitSet, RingVec};
pub use rng::{Pcg32, SplitMix64};
pub use rss::peak_rss_bytes;
pub use stats::{geometric_mean, harmonic_mean, mean, percentile, Percent};
pub use table::TextTable;
