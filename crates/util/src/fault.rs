//! Deterministic fault injection for robustness testing.
//!
//! Every result in the reproduction is only as trustworthy as the bytes
//! feeding it, so the recovery paths — checksum rejection, validation,
//! retry, regeneration — must themselves be testable. This module
//! provides the byte-level half of the harness:
//!
//! * [`FaultPlan`] — a seeded, replayable sequence of byte-level faults
//!   (bit flips, byte mutations, truncations, range drops) applied to any
//!   serialized artifact;
//! * [`StreamFaultPlan`] — the stream-level counterpart: a seeded
//!   script of delays, drops, bit flips, duplications, truncations and
//!   resets at byte *offsets* in a live stream (the network-chaos
//!   proxy's vocabulary);
//! * [`FlakyReader`] — an [`io::Read`] wrapper that fails a configured
//!   number of reads before succeeding, modelling transient I/O;
//! * [`FailingWriter`] — an [`io::Write`] wrapper with a byte budget
//!   that then fails with `StorageFull`, modelling ENOSPC and short
//!   writes;
//! * [`Backoff`] — the bounded exponential retry delay policy retry
//!   loops share, so the schedule is one definition instead of N copies.
//!
//! Everything here is deterministic: the same seed produces the same
//! faults on every platform, so a failing fault-injection test is always
//! reproducible from its seed alone.

use std::io::{self, Read};
use std::time::Duration;

use crate::rng::Pcg32;

/// One byte-level fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// XOR one bit (`bit` in `0..8`) at `offset`.
    FlipBit {
        /// Byte offset the flip lands on.
        offset: usize,
        /// Bit index within the byte.
        bit: u8,
    },
    /// Overwrite the byte at `offset` with `value`.
    SetByte {
        /// Byte offset to overwrite.
        offset: usize,
        /// Replacement value.
        value: u8,
    },
    /// Truncate the buffer to at most `keep` bytes.
    Truncate {
        /// Length to keep.
        keep: usize,
    },
    /// Remove `len` bytes starting at `offset` (splicing the tail down).
    RemoveRange {
        /// First byte removed.
        offset: usize,
        /// Number of bytes removed.
        len: usize,
    },
}

/// A deterministic, seeded sequence of byte-level faults.
///
/// Build one explicitly with [`FaultPlan::new`], or draw a random mix
/// with [`FaultPlan::seeded`]; apply it with [`FaultPlan::apply`].
/// Faults whose offsets fall outside the (shrinking) buffer are skipped
/// rather than clamped, so a plan drawn for one buffer length stays
/// meaningful on shorter ones.
///
/// # Examples
///
/// ```
/// use ddsc_util::fault::{FaultOp, FaultPlan};
///
/// let mut bytes = vec![0u8; 8];
/// let applied = FaultPlan::new(vec![FaultOp::FlipBit { offset: 3, bit: 0 }])
///     .apply(&mut bytes);
/// assert_eq!(applied, 1);
/// assert_eq!(bytes[3], 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    ops: Vec<FaultOp>,
}

impl FaultPlan {
    /// A plan from an explicit operation list.
    pub fn new(ops: Vec<FaultOp>) -> FaultPlan {
        FaultPlan { ops }
    }

    /// Draws `faults` operations for a buffer of `domain_len` bytes from
    /// a seeded generator. The mix favours silent corruption (flips and
    /// byte mutations) over structural damage (truncation, range drops),
    /// matching what real storage faults look like.
    pub fn seeded(seed: u64, faults: usize, domain_len: usize) -> FaultPlan {
        let mut rng = Pcg32::new(seed);
        let mut ops = Vec::with_capacity(faults);
        if domain_len == 0 {
            return FaultPlan { ops };
        }
        let len = domain_len as u32;
        for _ in 0..faults {
            let op = match rng.range(0, 10) {
                0..=4 => FaultOp::FlipBit {
                    offset: rng.range(0, len) as usize,
                    bit: rng.range(0, 8) as u8,
                },
                5..=7 => FaultOp::SetByte {
                    offset: rng.range(0, len) as usize,
                    value: rng.range(0, 256) as u8,
                },
                8 => FaultOp::Truncate {
                    keep: rng.range(0, len) as usize,
                },
                _ => {
                    let offset = rng.range(0, len) as usize;
                    FaultOp::RemoveRange {
                        offset,
                        len: rng.range(1, 32) as usize,
                    }
                }
            };
            ops.push(op);
        }
        FaultPlan { ops }
    }

    /// The operations, in application order.
    pub fn ops(&self) -> &[FaultOp] {
        &self.ops
    }

    /// Applies the plan to `bytes` in order; returns how many operations
    /// actually landed (out-of-range ones are skipped).
    pub fn apply(&self, bytes: &mut Vec<u8>) -> usize {
        let mut applied = 0;
        for op in &self.ops {
            match *op {
                FaultOp::FlipBit { offset, bit } => {
                    if let Some(b) = bytes.get_mut(offset) {
                        *b ^= 1 << (bit & 7);
                        applied += 1;
                    }
                }
                FaultOp::SetByte { offset, value } => {
                    if let Some(b) = bytes.get_mut(offset) {
                        *b = value;
                        applied += 1;
                    }
                }
                FaultOp::Truncate { keep } => {
                    if keep < bytes.len() {
                        bytes.truncate(keep);
                        applied += 1;
                    }
                }
                FaultOp::RemoveRange { offset, len } => {
                    if offset < bytes.len() && len > 0 {
                        let end = (offset + len).min(bytes.len());
                        bytes.drain(offset..end);
                        applied += 1;
                    }
                }
            }
        }
        applied
    }
}

/// An [`io::Read`] wrapper that fails its first `failures` read calls
/// with a transient error, then reads normally — the deterministic model
/// of a flaky disk or network mount that retry loops are tested against.
///
/// The error kind defaults to [`io::ErrorKind::TimedOut`]; note that
/// [`io::ErrorKind::Interrupted`] would be retried *inside*
/// `read_exact`/`read_to_end` by the standard library itself and so
/// never reaches caller-level retry logic.
///
/// # Examples
///
/// ```
/// use std::io::Read;
/// use ddsc_util::fault::FlakyReader;
///
/// let mut r = FlakyReader::new(&b"ok"[..], 1);
/// assert!(r.read(&mut [0u8; 2]).is_err()); // first read fails
/// let mut buf = Vec::new();
/// r.read_to_end(&mut buf).unwrap(); // then the data flows
/// assert_eq!(buf, b"ok");
/// ```
#[derive(Debug)]
pub struct FlakyReader<R> {
    inner: R,
    failures_left: u32,
    kind: io::ErrorKind,
}

impl<R: Read> FlakyReader<R> {
    /// Wraps `inner`, failing the first `failures` reads.
    pub fn new(inner: R, failures: u32) -> FlakyReader<R> {
        FlakyReader {
            inner,
            failures_left: failures,
            kind: io::ErrorKind::TimedOut,
        }
    }

    /// Overrides the error kind of injected failures.
    pub fn with_kind(mut self, kind: io::ErrorKind) -> FlakyReader<R> {
        self.kind = kind;
        self
    }

    /// How many injected failures remain.
    pub fn failures_left(&self) -> u32 {
        self.failures_left
    }

    /// Unwraps the inner reader.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Read> Read for FlakyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.failures_left > 0 {
            self.failures_left -= 1;
            return Err(io::Error::new(self.kind, "injected transient read fault"));
        }
        self.inner.read(buf)
    }
}

/// Whether an I/O error is plausibly transient — worth retrying rather
/// than treating the artifact as corrupt or missing.
pub fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted
    )
}

/// The shared bounded-exponential retry delay policy: delays double from
/// `base` and never exceed `cap`.
///
/// The policy itself is immutable — each operation draws a fresh
/// schedule with [`Backoff::delays`], so a policy stored in a struct or
/// shared between call sites always restarts from the base delay.
/// (An earlier version made `Backoff` itself the iterator; a reused
/// value then silently continued where the previous operation stopped,
/// starting later retries at the cap instead of the base.)
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use ddsc_util::fault::Backoff;
///
/// let policy = Backoff::new(Duration::from_millis(1), Duration::from_millis(4));
/// let delays: Vec<Duration> = policy.delays().take(4).collect();
/// assert_eq!(
///     delays,
///     [1, 2, 4, 4].map(Duration::from_millis)
/// );
/// // A second operation on the same policy restarts from the base.
/// assert_eq!(policy.delays().next(), Some(Duration::from_millis(1)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
}

impl Backoff {
    /// A policy starting at `base` and saturating at `cap`.
    pub fn new(base: Duration, cap: Duration) -> Backoff {
        Backoff {
            base: base.min(cap),
            cap,
        }
    }

    /// The default cache-retry policy: 1 ms doubling to a 16 ms cap —
    /// long enough to ride out a transient mount hiccup, short enough
    /// that falling back to regeneration stays snappy.
    pub fn for_cache() -> Backoff {
        Backoff::new(Duration::from_millis(1), Duration::from_millis(16))
    }

    /// A fresh delay schedule for one operation, starting at the base
    /// delay. The sequence is a pure function of the policy, so tests
    /// can pin the exact schedule.
    pub fn delays(&self) -> BackoffDelays {
        BackoffDelays {
            next: self.base,
            cap: self.cap,
        }
    }
}

/// One operation's delay schedule, drawn from a [`Backoff`] policy.
#[derive(Debug, Clone)]
pub struct BackoffDelays {
    next: Duration,
    cap: Duration,
}

impl Iterator for BackoffDelays {
    type Item = Duration;

    fn next(&mut self) -> Option<Duration> {
        let d = self.next;
        self.next = (d * 2).min(self.cap);
        Some(d)
    }
}

/// One fault in a byte *stream* (as opposed to a finished buffer): the
/// vocabulary of the network-chaos proxy. Each event is anchored at a
/// byte offset in the source stream, not at a read-call boundary, so a
/// plan's effect is independent of how the transport happens to chunk
/// its reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamFault {
    /// Pause forwarding for `ms` milliseconds.
    Delay {
        /// Delay in milliseconds.
        ms: u32,
    },
    /// Silently discard the next `len` source bytes.
    Drop {
        /// Bytes to swallow.
        len: u32,
    },
    /// XOR `bit` (in `0..8`) into the next forwarded byte.
    FlipBit {
        /// Bit index to flip.
        bit: u8,
    },
    /// Re-send up to `len` of the most recently forwarded bytes
    /// (duplicated frames on the wire).
    Duplicate {
        /// Bytes to replay.
        len: u32,
    },
    /// Stop forwarding: everything after this offset is discarded
    /// while the connection stays open (a truncated stream).
    Truncate,
    /// Tear the connection down mid-stream.
    Reset,
}

/// A seeded, replayable script of [`StreamFault`]s at increasing byte
/// offsets. The same seed always yields the same `(offset, fault)`
/// sequence, so a chaos drill that fails is reproducible from its seed
/// alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamFaultPlan {
    events: Vec<(u64, StreamFault)>,
}

impl StreamFaultPlan {
    /// A plan of up to `events` faults with gaps drawn uniformly from
    /// `[min_gap, max_gap)` bytes. Generation stops early at a
    /// terminal fault (`Truncate`/`Reset`) — nothing after one could
    /// ever apply.
    pub fn seeded(seed: u64, events: usize, min_gap: u64, max_gap: u64) -> StreamFaultPlan {
        let mut rng = Pcg32::new(seed);
        let (lo, hi) = (min_gap.max(1), max_gap.max(min_gap.max(1) + 1));
        let mut offset = 0u64;
        let mut out = Vec::with_capacity(events);
        for _ in 0..events {
            offset += lo + rng.next_u64() % (hi - lo);
            let fault = match rng.range(0, 100) {
                0..=39 => StreamFault::Delay {
                    ms: 1 + rng.range(0, 40),
                },
                40..=57 => StreamFault::FlipBit {
                    bit: rng.range(0, 8) as u8,
                },
                58..=74 => StreamFault::Drop {
                    len: 1 + rng.range(0, 64),
                },
                75..=91 => StreamFault::Duplicate {
                    len: 1 + rng.range(0, 128),
                },
                92..=95 => StreamFault::Truncate,
                _ => StreamFault::Reset,
            };
            let terminal = matches!(fault, StreamFault::Truncate | StreamFault::Reset);
            out.push((offset, fault));
            if terminal {
                break;
            }
        }
        StreamFaultPlan { events: out }
    }

    /// The `(byte offset, fault)` script, offsets strictly increasing.
    pub fn events(&self) -> &[(u64, StreamFault)] {
        &self.events
    }

    /// Renders the script one event per line (`offset<TAB>fault`) —
    /// the reproducible artifact a chaos drill can log or diff.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (offset, fault) in &self.events {
            out.push_str(&format!("{offset}\t{fault:?}\n"));
        }
        out
    }
}

/// An [`io::Write`] that accepts `budget` bytes and then fails every
/// further write with [`io::ErrorKind::StorageFull`] — a deterministic
/// stand-in for a full disk (ENOSPC), including the short-write case:
/// a write straddling the budget boundary is *partially* applied, as a
/// real filesystem may do, before the error surfaces on the remainder.
#[derive(Debug)]
pub struct FailingWriter<W> {
    inner: W,
    budget: usize,
}

impl<W: io::Write> FailingWriter<W> {
    /// Wraps `inner`, accepting `budget` bytes before failing.
    pub fn new(inner: W, budget: usize) -> FailingWriter<W> {
        FailingWriter { inner, budget }
    }

    /// Bytes still accepted before writes fail.
    pub fn budget_left(&self) -> usize {
        self.budget
    }

    /// Unwraps the inner writer (inspect what actually landed).
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: io::Write> io::Write for FailingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.budget == 0 {
            return Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "injected ENOSPC: write budget exhausted",
            ));
        }
        let n = buf.len().min(self.budget);
        let written = self.inner.write(&buf[..n])?;
        self.budget -= written;
        Ok(written)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_ops_apply_in_order() {
        let mut bytes: Vec<u8> = (0..10).collect();
        let plan = FaultPlan::new(vec![
            FaultOp::SetByte {
                offset: 0,
                value: 0xAA,
            },
            FaultOp::FlipBit { offset: 0, bit: 1 },
            FaultOp::RemoveRange { offset: 1, len: 2 },
            FaultOp::Truncate { keep: 4 },
        ]);
        assert_eq!(plan.apply(&mut bytes), 4);
        assert_eq!(bytes, vec![0xA8, 3, 4, 5]);
    }

    #[test]
    fn out_of_range_ops_are_skipped_not_clamped() {
        let mut bytes = vec![1u8, 2, 3];
        let plan = FaultPlan::new(vec![
            FaultOp::FlipBit { offset: 9, bit: 0 },
            FaultOp::SetByte {
                offset: 3,
                value: 0,
            },
            FaultOp::Truncate { keep: 8 },
            FaultOp::RemoveRange { offset: 5, len: 1 },
        ]);
        assert_eq!(plan.apply(&mut bytes), 0);
        assert_eq!(bytes, vec![1, 2, 3]);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::seeded(7, 16, 1000);
        let b = FaultPlan::seeded(7, 16, 1000);
        let c = FaultPlan::seeded(8, 16, 1000);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.ops().len(), 16);
    }

    #[test]
    fn seeded_plan_on_empty_domain_is_empty() {
        let p = FaultPlan::seeded(3, 8, 0);
        assert!(p.ops().is_empty());
        let mut bytes = Vec::new();
        assert_eq!(p.apply(&mut bytes), 0);
    }

    #[test]
    fn seeded_plan_actually_corrupts() {
        let mut bytes = vec![0u8; 4096];
        let before = bytes.clone();
        let applied = FaultPlan::seeded(42, 8, bytes.len()).apply(&mut bytes);
        assert!(applied > 0);
        assert_ne!(bytes, before);
    }

    #[test]
    fn flaky_reader_fails_n_times_then_succeeds() {
        let mut r = FlakyReader::new(&b"payload"[..], 3);
        for _ in 0..3 {
            let e = r.read(&mut [0u8; 4]).unwrap_err();
            assert_eq!(e.kind(), io::ErrorKind::TimedOut);
            assert!(is_transient(&e));
        }
        let mut buf = Vec::new();
        r.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, b"payload");
        assert_eq!(r.failures_left(), 0);
    }

    #[test]
    fn flaky_reader_kind_is_configurable() {
        let mut r = FlakyReader::new(&b"x"[..], 1).with_kind(io::ErrorKind::WouldBlock);
        assert_eq!(
            r.read(&mut [0u8; 1]).unwrap_err().kind(),
            io::ErrorKind::WouldBlock
        );
    }

    #[test]
    fn transient_classification() {
        for kind in [
            io::ErrorKind::TimedOut,
            io::ErrorKind::WouldBlock,
            io::ErrorKind::Interrupted,
        ] {
            assert!(is_transient(&io::Error::new(kind, "x")), "{kind:?}");
        }
        for kind in [
            io::ErrorKind::NotFound,
            io::ErrorKind::UnexpectedEof,
            io::ErrorKind::PermissionDenied,
        ] {
            assert!(!is_transient(&io::Error::new(kind, "x")), "{kind:?}");
        }
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let delays: Vec<u64> = Backoff::new(Duration::from_millis(2), Duration::from_millis(10))
            .delays()
            .take(5)
            .map(|d| d.as_millis() as u64)
            .collect();
        assert_eq!(delays, vec![2, 4, 8, 10, 10]);
        // A cap below the base clamps immediately.
        let clamped = Backoff::new(Duration::from_millis(50), Duration::from_millis(5))
            .delays()
            .next()
            .unwrap();
        assert_eq!(clamped, Duration::from_millis(5));
    }

    /// Regression: a `Backoff` policy reused across operations must hand
    /// each one a schedule starting at the base delay. The old design
    /// made the policy itself the iterator, so a second operation on the
    /// same value resumed at the cap.
    #[test]
    fn reused_backoff_policy_restarts_from_base_each_operation() {
        let policy = Backoff::new(Duration::from_millis(1), Duration::from_millis(8));
        let ms = |sched: BackoffDelays| -> Vec<u64> {
            sched.take(5).map(|d| d.as_millis() as u64).collect()
        };
        let first = ms(policy.delays());
        assert_eq!(first, vec![1, 2, 4, 8, 8]);
        let second = ms(policy.delays());
        assert_eq!(second, first, "second operation must restart at base");
    }

    #[test]
    fn stream_plans_are_deterministic_and_seed_sensitive() {
        let a = StreamFaultPlan::seeded(1996, 32, 100, 500);
        let b = StreamFaultPlan::seeded(1996, 32, 100, 500);
        assert_eq!(a, b, "same seed must replay the same script");
        assert_eq!(a.render(), b.render());
        let c = StreamFaultPlan::seeded(1997, 32, 100, 500);
        assert_ne!(a, c, "different seeds must diverge");
        // Offsets strictly increase and respect the gap bounds.
        let mut prev = 0u64;
        for &(offset, _) in a.events() {
            assert!(offset > prev);
            assert!(offset - prev >= 100 && offset - prev < 500);
            prev = offset;
        }
    }

    #[test]
    fn stream_plans_stop_at_terminal_faults() {
        for seed in 0..200u64 {
            let plan = StreamFaultPlan::seeded(seed, 64, 10, 20);
            for (i, &(_, fault)) in plan.events().iter().enumerate() {
                let terminal = matches!(fault, StreamFault::Truncate | StreamFault::Reset);
                assert!(
                    !terminal || i == plan.events().len() - 1,
                    "terminal fault mid-script for seed {seed}"
                );
            }
        }
    }

    #[test]
    fn failing_writer_short_writes_then_reports_storage_full() {
        use std::io::Write as _;
        let mut w = FailingWriter::new(Vec::new(), 10);
        assert_eq!(w.write(b"01234567").unwrap(), 8);
        // Straddling the budget: a short write, then hard failure.
        assert_eq!(w.write(b"abcdef").unwrap(), 2);
        assert_eq!(w.budget_left(), 0);
        let err = w.write(b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert_eq!(w.into_inner(), b"01234567ab");
        // write_all surfaces the typed error instead of panicking.
        let mut w = FailingWriter::new(Vec::new(), 4);
        let err = w.write_all(b"0123456789").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
    }
}
