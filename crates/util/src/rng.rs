//! Small, fast, deterministic pseudo-random number generators.
//!
//! The reproduction needs randomness in exactly two places: synthesising
//! workload input data (strings to compress, boards to evaluate, …) and
//! property-based tests. Determinism across platforms and toolchain
//! versions matters more than statistical sophistication, so we implement
//! two tiny, well-known generators instead of depending on `rand`:
//!
//! * [`SplitMix64`] — the 64-bit mixer from Steele et al., used for seeding
//!   and for places that want a `u64` stream.
//! * [`Pcg32`] — the PCG-XSH-RR 64/32 generator of O'Neill, used as the
//!   general-purpose generator in workload construction.

/// The SplitMix64 generator (Steele, Lea & Flood, OOPSLA 2014).
///
/// Primarily used to expand a single `u64` seed into independent streams
/// for other generators.
///
/// # Examples
///
/// ```
/// use ddsc_util::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit value in the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        SplitMix64::new(0)
    }
}

/// The PCG-XSH-RR 64/32 generator (O'Neill, 2014).
///
/// A 64-bit LCG with a 32-bit permuted output. Small state, excellent
/// statistical quality for simulation inputs, and fully deterministic.
///
/// # Examples
///
/// ```
/// use ddsc_util::rng::Pcg32;
///
/// let mut rng = Pcg32::new(1234);
/// let x = rng.range(0, 10);
/// assert!(x < 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6_364_136_223_846_793_005;

impl Pcg32 {
    /// Creates a generator from a seed, using SplitMix64 to derive the
    /// initial state and stream-selector.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let initstate = sm.next_u64();
        let initseq = sm.next_u64();
        let mut rng = Pcg32 {
            state: 0,
            inc: (initseq << 1) | 1,
        };
        rng.state = rng.state.wrapping_mul(PCG_MULT).wrapping_add(rng.inc);
        rng.state = rng.state.wrapping_add(initstate);
        rng.state = rng.state.wrapping_mul(PCG_MULT).wrapping_add(rng.inc);
        rng
    }

    /// Returns the next 32-bit value in the stream.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Returns the next 64-bit value (two 32-bit draws).
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Returns a uniformly distributed value in `[lo, hi)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, so the distribution
    /// is exactly uniform.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Lemire rejection sampling.
        let mut m = u64::from(self.next_u32()) * u64::from(span);
        let mut lo_bits = m as u32;
        if lo_bits < span {
            let threshold = span.wrapping_neg() % span;
            while lo_bits < threshold {
                m = u64::from(self.next_u32()) * u64::from(span);
                lo_bits = m as u32;
            }
        }
        lo + (m >> 32) as u32
    }

    /// Returns `true` with probability `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero or `num > den`.
    pub fn chance(&mut self, num: u32, den: u32) -> bool {
        assert!(den > 0 && num <= den, "invalid probability {num}/{den}");
        self.range(0, den) < num
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        let n = slice.len();
        if n < 2 {
            return;
        }
        for i in (1..n).rev() {
            let j = self.range(0, (i + 1) as u32) as usize;
            slice.swap(i, j);
        }
    }
}

impl Default for Pcg32 {
    fn default() -> Self {
        Pcg32::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(99);
        let mut b = SplitMix64::new(99);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_known_vector() {
        // Reference values from the public-domain C implementation with
        // seed 1234567.
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next_u64(), 6_457_827_717_110_365_317);
        assert_eq!(rng.next_u64(), 3_203_168_211_198_807_973);
    }

    #[test]
    fn pcg_streams_differ_by_seed() {
        let mut a = Pcg32::new(1);
        let mut b = Pcg32::new(2);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "streams should be essentially uncorrelated");
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = Pcg32::new(5);
        for _ in 0..10_000 {
            let v = rng.range(10, 17);
            assert!((10..17).contains(&v));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = Pcg32::new(7);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.range(0, 8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Pcg32::new(0).range(5, 5);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Pcg32::new(11);
        for _ in 0..100 {
            assert!(!rng.chance(0, 10));
            assert!(rng.chance(10, 10));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Pcg32::new(3);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_handles_tiny_slices() {
        let mut rng = Pcg32::new(3);
        let mut empty: [u8; 0] = [];
        rng.shuffle(&mut empty);
        let mut one = [42u8];
        rng.shuffle(&mut one);
        assert_eq!(one, [42]);
    }
}
