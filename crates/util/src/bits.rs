//! A dense, fixed-capacity bit set backed by `u64` words.
//!
//! The simulator and its analysis pre-pass mark per-instruction boolean
//! facts (branch mispredicted, value bypassed, collapse participant) for
//! traces of hundreds of thousands of instructions; a packed bit set
//! keeps those columns at one bit per instruction and makes whole-trace
//! counts a handful of `popcount`s.
//!
//! # Examples
//!
//! ```
//! use ddsc_util::BitSet;
//!
//! let mut b = BitSet::new(100);
//! b.set(3);
//! b.set(99);
//! assert!(b.get(3) && b.get(99) && !b.get(4));
//! assert_eq!(b.count_ones(), 2);
//! ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An all-zero set holding `len` bits.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits the set holds.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set holds zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_and_count() {
        let mut b = BitSet::new(130);
        assert_eq!(b.len(), 130);
        assert!(!b.is_empty());
        for i in [0, 63, 64, 127, 129] {
            b.set(i);
        }
        for i in 0..130 {
            assert_eq!(b.get(i), [0, 63, 64, 127, 129].contains(&i), "bit {i}");
        }
        assert_eq!(b.count_ones(), 5);
    }

    #[test]
    fn double_set_is_idempotent() {
        let mut b = BitSet::new(10);
        b.set(7);
        b.set(7);
        assert_eq!(b.count_ones(), 1);
    }

    #[test]
    fn empty_set() {
        let b = BitSet::new(0);
        assert!(b.is_empty());
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        BitSet::new(64).get(64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_set_panics() {
        BitSet::new(3).set(3);
    }
}
