//! Process peak-RSS measurement.
//!
//! The streaming simulator's bounded-memory claim is only credible if it
//! is *measured*: the lab records the process high-water mark alongside
//! every benchmark cell. On Linux this reads `VmHWM` from
//! `/proc/self/status`; elsewhere it returns `None` and reports omit the
//! field rather than fabricate it.
//!
//! Note the value is a process-lifetime high-water mark, not a per-cell
//! delta — a later cell can never report less than an earlier one. The
//! reports document this; it is still enough to bound the whole run.

/// Peak resident set size of the current process in bytes, if the
/// platform exposes it.
pub fn peak_rss_bytes() -> Option<u64> {
    imp::peak_rss_bytes()
}

#[cfg(target_os = "linux")]
mod imp {
    pub fn peak_rss_bytes() -> Option<u64> {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        parse_vm_hwm(&status)
    }

    pub fn parse_vm_hwm(status: &str) -> Option<u64> {
        let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
        // Format: "VmHWM:\t   12345 kB"
        let kb: u64 = line
            .trim_start_matches("VmHWM:")
            .trim()
            .trim_end_matches("kB")
            .trim()
            .parse()
            .ok()?;
        Some(kb * 1024)
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    pub fn peak_rss_bytes() -> Option<u64> {
        None
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::imp::parse_vm_hwm;
    use super::peak_rss_bytes;

    #[test]
    fn parses_proc_status_line() {
        let status = "Name:\tddsc\nVmPeak:\t  999 kB\nVmHWM:\t   2048 kB\nVmRSS:\t 1024 kB\n";
        assert_eq!(parse_vm_hwm(status), Some(2048 * 1024));
    }

    #[test]
    fn missing_line_is_none() {
        assert_eq!(parse_vm_hwm("Name:\tddsc\n"), None);
    }

    #[test]
    fn live_reading_is_plausible() {
        let rss = peak_rss_bytes().expect("Linux exposes VmHWM");
        // A running test binary occupies at least a megabyte.
        assert!(rss > 1 << 20, "implausible peak RSS {rss}");
    }
}
