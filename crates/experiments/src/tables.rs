//! Table regenerators (Tables 1–6).

use ddsc_core::{LoadClass, LoadSpecStats, PaperConfig};
use ddsc_predict::{branch_stats, McFarling};
use ddsc_util::TextTable;
use ddsc_workloads::Benchmark;

use crate::{Lab, Suite};

fn width_label(w: u32) -> String {
    if w >= 1024 && w.is_multiple_of(1024) {
        format!("{}k", w / 1024)
    } else {
        w.to_string()
    }
}

/// Table 1: benchmark characteristics.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// (benchmark, models, trace length, load %, store %).
    pub rows: Vec<(Benchmark, &'static str, usize, f64, f64)>,
}

impl Table1 {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "name".into(),
            "models".into(),
            "trace size".into(),
            "loads %".into(),
            "stores %".into(),
        ]);
        for (b, models, len, ld, st) in &self.rows {
            t.row(vec![
                b.name().into(),
                (*models).into(),
                len.to_string(),
                format!("{ld:.1}"),
                format!("{st:.1}"),
            ]);
        }
        format!("## Table 1 — benchmark characteristics\n{t}")
    }
}

/// Regenerates Table 1 from a suite.
pub fn table1(suite: &Suite) -> Table1 {
    let rows = suite
        .iter()
        .map(|(b, trace)| {
            let s = trace.stats();
            (
                b,
                b.models(),
                trace.len(),
                s.load_pct().value(),
                100.0 * s.stores() as f64 / s.total() as f64,
            )
        })
        .collect();
    Table1 { rows }
}

/// Table 2: branch characteristics under the paper's 8 KB McFarling
/// predictor.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// (benchmark, conditional-branch %, predicted-correctly %).
    pub rows: Vec<(Benchmark, f64, f64)>,
}

impl Table2 {
    /// The accuracy for one benchmark.
    pub fn accuracy(&self, b: Benchmark) -> Option<f64> {
        self.rows.iter().find(|(x, _, _)| *x == b).map(|r| r.2)
    }

    /// The conditional-branch share for one benchmark.
    pub fn branch_share(&self, b: Benchmark) -> Option<f64> {
        self.rows.iter().find(|(x, _, _)| *x == b).map(|r| r.1)
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "name".into(),
            "cond branches %".into(),
            "predicted correctly %".into(),
        ]);
        for (b, share, acc) in &self.rows {
            t.row(vec![
                b.name().into(),
                format!("{share:.1}"),
                format!("{acc:.1}"),
            ]);
        }
        format!("## Table 2 — benchmark branch characteristics\n{t}")
    }
}

/// Regenerates Table 2 from a suite.
pub fn table2(suite: &Suite) -> Table2 {
    let rows = suite
        .iter()
        .map(|(b, trace)| {
            let s = branch_stats(trace, &mut McFarling::paper_8kb());
            (b, s.branch_pct().value(), s.accuracy_pct().value())
        })
        .collect();
    Table2 { rows }
}

/// Tables 3/4: load-speculation behaviour per width under configuration
/// D, aggregated over a benchmark subset.
#[derive(Debug, Clone)]
pub struct LoadTable {
    /// Paper artifact name.
    pub title: String,
    /// The subset aggregated over.
    pub benchmarks: Vec<Benchmark>,
    /// Per width, the aggregated classification counts.
    pub rows: Vec<(u32, LoadSpecStats)>,
}

impl LoadTable {
    /// The percentage of one class at one width.
    pub fn pct(&self, width: u32, class: LoadClass) -> Option<f64> {
        self.rows
            .iter()
            .find(|(w, _)| *w == width)
            .map(|(_, s)| s.pct(class).value())
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "issue width".into(),
            "ready %".into(),
            "predicted correctly %".into(),
            "predicted incorrectly %".into(),
            "not predicted %".into(),
        ]);
        for (w, s) in &self.rows {
            t.row(vec![
                width_label(*w),
                s.pct(LoadClass::Ready).to_string(),
                s.pct(LoadClass::PredictedCorrect).to_string(),
                s.pct(LoadClass::PredictedIncorrect).to_string(),
                s.pct(LoadClass::NotPredicted).to_string(),
            ]);
        }
        let names: Vec<&str> = self.benchmarks.iter().map(|b| b.name()).collect();
        format!(
            "## {} — load-speculation behaviour, config D ({})\n{t}",
            self.title,
            names.join(", ")
        )
    }
}

fn load_table(lab: &Lab, title: &str, benches: &[Benchmark]) -> LoadTable {
    let widths = lab.widths();
    let rows = widths
        .iter()
        .map(|&w| {
            let mut agg = LoadSpecStats::default();
            for &b in benches {
                agg.merge(&lab.result(b, PaperConfig::D, w).loads);
            }
            (w, agg)
        })
        .collect();
    LoadTable {
        title: title.to_string(),
        benchmarks: benches.to_vec(),
        rows,
    }
}

/// Table 3: load-speculation behaviour for the pointer-chasing subset.
pub fn table3(lab: &Lab) -> LoadTable {
    load_table(lab, "Table 3", &Benchmark::POINTER_CHASING)
}

/// Table 4: load-speculation behaviour for the non-pointer subset.
pub fn table4(lab: &Lab) -> LoadTable {
    load_table(lab, "Table 4", &Benchmark::NON_POINTER_CHASING)
}

/// Tables 5/6: the most frequently collapsed operand-pattern sequences,
/// as a share of all collapsed groups of that size, per width.
#[derive(Debug, Clone)]
pub struct PatternShareTable {
    /// Paper artifact name.
    pub title: String,
    /// Group size (2 for Table 5, 3 for Table 6).
    pub group_size: usize,
    /// Row labels: the top patterns (by widest-machine frequency).
    pub patterns: Vec<String>,
    /// Per width, the pattern shares (%) aligned with `patterns`.
    pub shares: Vec<(u32, Vec<f64>)>,
}

impl PatternShareTable {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut header = vec!["sequence".to_string()];
        header.extend(self.shares.iter().map(|(w, _)| width_label(*w)));
        let mut t = TextTable::new(header);
        for (i, pat) in self.patterns.iter().enumerate() {
            let mut row = vec![pat.clone()];
            for (_, shares) in &self.shares {
                row.push(format!("{:.2}", shares[i]));
            }
            t.row(row);
        }
        format!(
            "## {} — most frequent collapsed sequences (config D)\n{t}",
            self.title
        )
    }
}

fn pattern_table(lab: &Lab, title: &str, group_size: usize, top_k: usize) -> PatternShareTable {
    let widths = lab.widths();
    // Aggregate per width.
    let mut per_width: Vec<(u32, ddsc_collapse::PatternTable)> = Vec::new();
    for &w in &widths {
        let mut merged = ddsc_collapse::CollapseStats::new();
        for b in Benchmark::ALL {
            merged.merge(&lab.result(b, PaperConfig::D, w).collapse);
        }
        let table = match group_size {
            2 => merged.pairs().clone(),
            3 => merged.triples().clone(),
            _ => merged.quads().clone(),
        };
        per_width.push((w, table));
    }
    // Row labels follow the widest machine, like the paper (sorted by
    // the 2k column).
    let widest = per_width
        .iter()
        .max_by_key(|(w, _)| *w)
        .map(|(_, t)| t.clone())
        .unwrap_or_default();
    let patterns: Vec<String> = widest
        .top(top_k)
        .into_iter()
        .map(|(k, _)| k.to_string())
        .collect();
    let shares = per_width
        .into_iter()
        .map(|(w, table)| {
            let shares = patterns
                .iter()
                .map(|p| {
                    table
                        .iter()
                        .find(|(k, _)| k.to_string() == *p)
                        .map(|(k, _)| table.share(k).value())
                        .unwrap_or(0.0)
                })
                .collect();
            (w, shares)
        })
        .collect();
    PatternShareTable {
        title: title.to_string(),
        group_size,
        patterns,
        shares,
    }
}

/// Table 5: the most frequent collapsed pairs (3-1 sequences).
pub fn table5(lab: &Lab) -> PatternShareTable {
    pattern_table(lab, "Table 5", 2, 12)
}

/// Table 6: the most frequent collapsed triples (4-1 sequences).
pub fn table6(lab: &Lab) -> PatternShareTable {
    pattern_table(lab, "Table 6", 3, 13)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SuiteConfig;

    fn lab() -> Lab {
        Lab::new(SuiteConfig {
            seed: 2,
            trace_len: 8_000,
            widths: vec![8],
        })
    }

    #[test]
    fn table1_covers_the_suite() {
        let lab = lab();
        let t = table1(lab.suite());
        assert_eq!(t.rows.len(), 6);
        assert!(t.render().contains("026.compress"));
    }

    #[test]
    fn table2_accuracies_are_plausible() {
        let lab = lab();
        let t = table2(lab.suite());
        for (b, share, acc) in &t.rows {
            assert!(*share > 3.0 && *share < 40.0, "{b}: share {share}");
            assert!(*acc > 60.0 && *acc <= 100.0, "{b}: acc {acc}");
        }
    }

    #[test]
    fn load_tables_sum_to_100() {
        let lab = lab();
        for t in [table3(&lab), table4(&lab)] {
            for (w, s) in &t.rows {
                if s.total() > 0 {
                    let sum: f64 = [
                        LoadClass::Ready,
                        LoadClass::PredictedCorrect,
                        LoadClass::PredictedIncorrect,
                        LoadClass::NotPredicted,
                    ]
                    .iter()
                    .map(|&c| s.pct(c).value())
                    .sum();
                    assert!((sum - 100.0).abs() < 1e-6, "width {w}: {sum}");
                }
            }
        }
    }

    #[test]
    fn pattern_tables_render_with_rows() {
        let lab = lab();
        let t5 = table5(&lab);
        assert!(!t5.patterns.is_empty(), "pairs must collapse");
        assert!(t5.render().contains("Table 5"));
        let t6 = table6(&lab);
        assert_eq!(t6.group_size, 3);
    }
}
