//! Figure regenerators (Figures 2–10).

use ddsc_collapse::CollapseCategory;
use ddsc_core::PaperConfig;
use ddsc_util::stats::harmonic_mean;
use ddsc_util::TextTable;
use ddsc_workloads::Benchmark;

use crate::Lab;

fn width_label(w: u32) -> String {
    if w >= 1024 && w.is_multiple_of(1024) {
        format!("{}k", w / 1024)
    } else {
        w.to_string()
    }
}

/// A family of per-configuration series over the width sweep, as plotted
/// in Figures 2–7.
#[derive(Debug, Clone)]
pub struct ConfigSweep {
    /// Paper artifact name, e.g. "Figure 2".
    pub title: String,
    /// What the values are ("IPC" or "speedup over A").
    pub metric: &'static str,
    /// The benchmarks aggregated over.
    pub benchmarks: Vec<Benchmark>,
    /// One series per configuration: (config, Vec<(width, value)>).
    pub series: Vec<(PaperConfig, Vec<(u32, f64)>)>,
}

impl ConfigSweep {
    /// The value for one configuration and width.
    pub fn value(&self, c: PaperConfig, width: u32) -> Option<f64> {
        self.series
            .iter()
            .find(|(x, _)| *x == c)
            .and_then(|(_, pts)| pts.iter().find(|(w, _)| *w == width))
            .map(|(_, v)| *v)
    }

    /// Renders the figure as an aligned table (series × widths).
    pub fn render(&self) -> String {
        let mut header = vec!["config".to_string()];
        if let Some((_, pts)) = self.series.first() {
            header.extend(pts.iter().map(|(w, _)| width_label(*w)));
        }
        let mut t = TextTable::new(header);
        for (c, pts) in &self.series {
            let mut row = vec![c.label().to_string()];
            row.extend(pts.iter().map(|(_, v)| format!("{v:.3}")));
            t.row(row);
        }
        let names: Vec<&str> = self.benchmarks.iter().map(|b| b.name()).collect();
        format!(
            "## {} — harmonic-mean {} ({})\n{}",
            self.title,
            self.metric,
            names.join(", "),
            t
        )
    }
}

fn sweep_ipc(lab: &Lab, title: &str, benches: &[Benchmark]) -> ConfigSweep {
    let widths = lab.widths();
    let series = PaperConfig::ALL
        .iter()
        .map(|&c| {
            let pts = widths
                .iter()
                .map(|&w| {
                    let ipcs = lab.ipcs(benches, c, w);
                    (w, harmonic_mean(&ipcs).unwrap_or(0.0))
                })
                .collect();
            (c, pts)
        })
        .collect();
    ConfigSweep {
        title: title.to_string(),
        metric: "IPC",
        benchmarks: benches.to_vec(),
        series,
    }
}

fn sweep_speedup(lab: &Lab, title: &str, benches: &[Benchmark]) -> ConfigSweep {
    let widths = lab.widths();
    let series = PaperConfig::ALL
        .iter()
        .map(|&c| {
            let pts = widths
                .iter()
                .map(|&w| {
                    let sp = lab.speedups(benches, c, w);
                    (w, harmonic_mean(&sp).unwrap_or(0.0))
                })
                .collect();
            (c, pts)
        })
        .collect();
    ConfigSweep {
        title: title.to_string(),
        metric: "speedup over A",
        benchmarks: benches.to_vec(),
        series,
    }
}

/// Figure 2: harmonic-mean IPC of configurations A–E over all benchmarks.
pub fn fig2(lab: &Lab) -> ConfigSweep {
    sweep_ipc(lab, "Figure 2", &Benchmark::ALL)
}

/// Figure 3: harmonic-mean speedup over the base machine, all benchmarks.
pub fn fig3(lab: &Lab) -> ConfigSweep {
    sweep_speedup(lab, "Figure 3", &Benchmark::ALL)
}

/// Figure 4: IPC for the pointer-chasing subset (`go`, `li`).
pub fn fig4(lab: &Lab) -> ConfigSweep {
    sweep_ipc(lab, "Figure 4", &Benchmark::POINTER_CHASING)
}

/// Figure 5: speedup for the pointer-chasing subset.
pub fn fig5(lab: &Lab) -> ConfigSweep {
    sweep_speedup(lab, "Figure 5", &Benchmark::POINTER_CHASING)
}

/// Figure 6: IPC for the non-pointer-chasing subset.
pub fn fig6(lab: &Lab) -> ConfigSweep {
    sweep_ipc(lab, "Figure 6", &Benchmark::NON_POINTER_CHASING)
}

/// Figure 7: speedup for the non-pointer-chasing subset.
pub fn fig7(lab: &Lab) -> ConfigSweep {
    sweep_speedup(lab, "Figure 7", &Benchmark::NON_POINTER_CHASING)
}

/// Figure 8 data: percentage of instructions collapsed, per width, under
/// configuration D, aggregated over all benchmarks.
#[derive(Debug, Clone)]
pub struct CollapsedFraction {
    /// (width, % of instructions participating in a collapse).
    pub points: Vec<(u32, f64)>,
}

impl CollapsedFraction {
    /// Renders the figure.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec!["width".into(), "collapsed %".into()]);
        for (w, v) in &self.points {
            t.row(vec![width_label(*w), format!("{v:.1}")]);
        }
        format!("## Figure 8 — instructions d-collapsed (config D)\n{t}")
    }
}

/// Figure 8: fraction of instructions collapsed under configuration D.
pub fn fig8(lab: &Lab) -> CollapsedFraction {
    let widths = lab.widths();
    let points = widths
        .iter()
        .map(|&w| {
            let mut collapsed = 0u64;
            let mut total = 0u64;
            for b in Benchmark::ALL {
                let r = lab.result(b, PaperConfig::D, w);
                collapsed += r.collapse.collapsed_insts();
                total += r.instructions;
            }
            (w, 100.0 * collapsed as f64 / total as f64)
        })
        .collect();
    CollapsedFraction { points }
}

/// Figure 9 data: contribution of the 3-1 / 4-1 / zero-detection
/// mechanisms per width, configuration D.
#[derive(Debug, Clone)]
pub struct CategoryShares {
    /// (width, [3-1 %, 4-1 %, 0-op %]).
    pub points: Vec<(u32, [f64; 3])>,
}

impl CategoryShares {
    /// Renders the figure.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "width".into(),
            "3-1 %".into(),
            "4-1 %".into(),
            "0-op %".into(),
        ]);
        for (w, [a, b, c]) in &self.points {
            t.row(vec![
                width_label(*w),
                format!("{a:.1}"),
                format!("{b:.1}"),
                format!("{c:.1}"),
            ]);
        }
        format!("## Figure 9 — collapsing mechanism contributions (config D)\n{t}")
    }
}

/// Figure 9: share of each collapsing mechanism under configuration D.
pub fn fig9(lab: &Lab) -> CategoryShares {
    let widths = lab.widths();
    let points = widths
        .iter()
        .map(|&w| {
            let mut merged = ddsc_collapse::CollapseStats::new();
            for b in Benchmark::ALL {
                merged.merge(&lab.result(b, PaperConfig::D, w).collapse);
            }
            (
                w,
                [
                    merged.category_pct(CollapseCategory::ThreeOne).value(),
                    merged.category_pct(CollapseCategory::FourOne).value(),
                    merged.category_pct(CollapseCategory::ZeroOp).value(),
                ],
            )
        })
        .collect();
    CategoryShares { points }
}

/// Figure 10 data: collapse-distance distribution per width, config D.
#[derive(Debug, Clone)]
pub struct DistanceDistribution {
    /// Per width: share (%) of collapsed dependences at distance 1,
    /// 2..=7, and 8 or more.
    pub points: Vec<(u32, [f64; 3])>,
    /// Per width: mean distance.
    pub means: Vec<(u32, f64)>,
}

impl DistanceDistribution {
    /// Renders the figure.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "width".into(),
            "dist 1 %".into(),
            "dist 2-7 %".into(),
            "dist >=8 %".into(),
            "mean".into(),
        ]);
        for ((w, [d1, mid, far]), (_, mean)) in self.points.iter().zip(&self.means) {
            t.row(vec![
                width_label(*w),
                format!("{d1:.1}"),
                format!("{mid:.1}"),
                format!("{far:.1}"),
                format!("{mean:.2}"),
            ]);
        }
        format!("## Figure 10 — distance between d-collapsed instructions (config D)\n{t}")
    }
}

/// Figure 10: distance between collapsed instructions, configuration D.
pub fn fig10(lab: &Lab) -> DistanceDistribution {
    let widths = lab.widths();
    let mut points = Vec::new();
    let mut means = Vec::new();
    for &w in &widths {
        let mut merged = ddsc_collapse::CollapseStats::new();
        for b in Benchmark::ALL {
            merged.merge(&lab.result(b, PaperConfig::D, w).collapse);
        }
        let h = merged.distance();
        let below2 = h.fraction_below(2);
        let below8 = h.fraction_below(8);
        points.push((
            w,
            [
                100.0 * below2,
                100.0 * (below8 - below2),
                100.0 * (1.0 - below8),
            ],
        ));
        means.push((w, h.mean().unwrap_or(0.0)));
    }
    DistanceDistribution { points, means }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SuiteConfig;

    fn lab() -> Lab {
        Lab::new(SuiteConfig {
            seed: 5,
            trace_len: 8_000,
            widths: vec![4, 16],
        })
    }

    #[test]
    fn fig2_has_all_series_and_widths() {
        let lab = lab();
        let f = fig2(&lab);
        assert_eq!(f.series.len(), 5);
        for (_, pts) in &f.series {
            assert_eq!(pts.len(), 2);
        }
        assert!(f.value(PaperConfig::A, 4).unwrap() > 0.0);
        assert!(f.render().contains("Figure 2"));
    }

    #[test]
    fn fig3_speedups_relative_to_a_are_at_least_one_for_e() {
        let lab = lab();
        let f = fig3(&lab);
        let a = f.value(PaperConfig::A, 16).unwrap();
        assert!((a - 1.0).abs() < 1e-9, "A over A is 1.0");
        let e = f.value(PaperConfig::E, 16).unwrap();
        assert!(e >= 1.0, "E cannot lose to the base machine, got {e}");
    }

    #[test]
    fn collapse_figures_are_consistent() {
        let lab = lab();
        let f8 = fig8(&lab);
        assert!(f8.points.iter().all(|(_, v)| (0.0..=100.0).contains(v)));
        let f9 = fig9(&lab);
        for (_, shares) in &f9.points {
            let sum: f64 = shares.iter().sum();
            assert!((sum - 100.0).abs() < 1.0, "shares sum to 100, got {sum}");
        }
        let f10 = fig10(&lab);
        for (_, shares) in &f10.points {
            let sum: f64 = shares.iter().sum();
            assert!((sum - 100.0).abs() < 1.0);
        }
    }

    #[test]
    fn subset_figures_use_the_right_benchmarks() {
        let lab = lab();
        assert_eq!(fig4(&lab).benchmarks, Benchmark::POINTER_CHASING.to_vec());
        assert_eq!(
            fig6(&lab).benchmarks,
            Benchmark::NON_POINTER_CHASING.to_vec()
        );
    }
}
