//! An on-disk store of finished per-cell simulation results.
//!
//! The run journal (see [`ddsc_util::journal`]) records *that* a cell
//! finished and the digest of the inputs it was computed from, but a
//! resumed run also needs the cell's [`SimResult`] back — re-rendering
//! every artifact from digests alone is impossible. A [`CellStore`]
//! keeps one small file per finished cell
//! (`cell-{digest:016x}.bin`, conventionally under
//! `results/cells/`), written atomically via
//! [`publish_atomic`](ddsc_util::publish_atomic) so a crash can never
//! publish a half-written result.
//!
//! Robustness rules mirror the trace cache:
//!
//! * each file carries a magic, format version, the cell digest and an
//!   FNV-1a checksum of the payload — any mismatch makes
//!   [`CellStore::load`] return `None` and the cell simply re-runs;
//! * the configuration is *not* stored; the caller reconstructs it from
//!   the cell key it looked the digest up under, so a stale entry
//!   (config drift changes the digest) is unloadable by construction;
//! * the store is an optimisation: a failed save is reported but the
//!   in-memory result is already correct.

use std::fs;
use std::path::{Path, PathBuf};

use ddsc_core::{SimConfig, SimResult};
use ddsc_util::{fnv1a, publish_atomic};

/// Cell-store magic: "DDSC Cell Result".
const MAGIC: &[u8; 4] = b"DDCR";
/// Bump on any incompatible layout change; old files then just miss.
const VERSION: u32 = 1;
/// Magic + version + digest + payload_len + checksum.
const HEADER_LEN: usize = 4 + 4 + 8 + 8 + 8;

/// A directory of finished cell results, keyed by cell digest.
#[derive(Debug, Clone)]
pub struct CellStore {
    dir: PathBuf,
}

impl CellStore {
    /// A store rooted at `dir`. The directory is created lazily on the
    /// first save.
    pub fn new(dir: impl Into<PathBuf>) -> CellStore {
        CellStore { dir: dir.into() }
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file a given cell digest lives at.
    pub fn path_for(&self, digest: u64) -> PathBuf {
        self.dir.join(format!("cell-{digest:016x}.bin"))
    }

    /// Saves one finished cell result under its digest, atomically.
    ///
    /// # Errors
    ///
    /// Returns any underlying filesystem error. Callers may treat a
    /// failure as non-fatal — the cell can always be re-simulated.
    pub fn save(&self, digest: u64, result: &SimResult) -> std::io::Result<()> {
        let mut payload = Vec::new();
        result.encode_to(&mut payload);

        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&digest.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);

        publish_atomic(&self.path_for(digest), &bytes)
    }

    /// Loads the cell result stored under `digest`, attaching the
    /// caller-reconstructed `config`. `None` on any failure — missing
    /// entry, truncation, corruption, foreign file — in which case the
    /// caller re-simulates.
    pub fn load(&self, digest: u64, config: SimConfig) -> Option<SimResult> {
        let bytes = fs::read(self.path_for(digest)).ok()?;
        if bytes.len() < HEADER_LEN || &bytes[..4] != MAGIC {
            return None;
        }
        let u32_at = |o: usize| {
            bytes
                .get(o..o + 4)?
                .first_chunk::<4>()
                .map(|c| u32::from_le_bytes(*c))
        };
        let u64_at = |o: usize| {
            bytes
                .get(o..o + 8)?
                .first_chunk::<8>()
                .map(|c| u64::from_le_bytes(*c))
        };
        if u32_at(4) != Some(VERSION) || u64_at(8) != Some(digest) {
            return None;
        }
        let payload = &bytes[HEADER_LEN..];
        if u64_at(16) != Some(payload.len() as u64) || u64_at(24) != Some(fnv1a(payload)) {
            return None;
        }
        let mut pos = 0;
        let result = SimResult::decode(payload, &mut pos, config)?;
        // Reject trailing garbage: a longer-than-expected payload means
        // the file is not what this version would have written.
        if pos != payload.len() {
            return None;
        }
        Some(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddsc_core::{simulate, PaperConfig};
    use ddsc_workloads::Benchmark;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ddsc-cell-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn sample_result() -> SimResult {
        let trace = Benchmark::Compress.trace(1996, 2_000).unwrap();
        simulate(&trace, &SimConfig::paper(PaperConfig::C, 8))
    }

    #[test]
    fn round_trips_a_real_result() {
        let store = CellStore::new(tmpdir("roundtrip"));
        let result = sample_result();
        assert!(store.load(0xBEEF, result.config).is_none(), "cold miss");
        store.save(0xBEEF, &result).unwrap();
        let back = store.load(0xBEEF, result.config).expect("warm hit");
        assert_eq!(back, result);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corruption_and_foreign_digests_miss() {
        let store = CellStore::new(tmpdir("corrupt"));
        let result = sample_result();
        store.save(7, &result).unwrap();
        let path = store.path_for(7);

        // A different digest misses even if a file exists at its path.
        fs::rename(&path, store.path_for(8)).unwrap();
        assert!(store.load(8, result.config).is_none(), "digest mismatch");
        fs::rename(store.path_for(8), &path).unwrap();

        // Flip a payload byte: the checksum must catch it.
        let clean = fs::read(&path).unwrap();
        let mut bytes = clean.clone();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(store.load(7, result.config).is_none(), "bit flip");

        // Truncate at every 97th prefix (cheap but covers header,
        // counter block and collapse payload regions).
        for cut in (0..clean.len()).step_by(97) {
            fs::write(&path, &clean[..cut]).unwrap();
            assert!(store.load(7, result.config).is_none(), "truncated at {cut}");
        }

        // Trailing garbage is rejected too.
        let mut long = clean.clone();
        long.extend_from_slice(b"xx");
        // Fix up payload_len/checksum so only the decode-length check fires.
        let payload = long[HEADER_LEN..].to_vec();
        long[16..24].copy_from_slice(&(payload.len() as u64).to_le_bytes());
        long[24..32].copy_from_slice(&fnv1a(&payload).to_le_bytes());
        fs::write(&path, &long).unwrap();
        assert!(store.load(7, result.config).is_none(), "trailing bytes");

        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn save_surfaces_filesystem_errors_without_panicking() {
        // Root the store under a path whose parent is a regular file:
        // directory creation fails with a typed error, and the caller
        // (the lab treats a failed save as non-fatal) gets an Err, not
        // a panic. Permission-denied is unreliable under root, so the
        // blocking file stands in for every "cannot write here" fault.
        let base = tmpdir("badroot");
        fs::create_dir_all(&base).unwrap();
        let blocker = base.join("blocker");
        fs::write(&blocker, b"file").unwrap();
        let store = CellStore::new(blocker.join("cells"));
        let err = store.save(1, &sample_result()).expect_err("must fail");
        assert_ne!(err.kind(), std::io::ErrorKind::Other);
        assert!(store.load(1, sample_result().config).is_none());
        let _ = fs::remove_dir_all(&base);
    }

    #[test]
    fn saves_leave_no_temp_files_behind() {
        let store = CellStore::new(tmpdir("atomic"));
        let result = sample_result();
        store.save(1, &result).unwrap();
        store.save(1, &result).unwrap(); // overwrite
        let entries: Vec<_> = fs::read_dir(store.dir())
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(entries, vec![format!("cell-{:016x}.bin", 1)]);
        let _ = fs::remove_dir_all(store.dir());
    }
}
