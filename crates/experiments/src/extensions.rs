//! Extension experiments beyond the paper's figures: the ablations its
//! text calls for and its stated future-work directions.
//!
//! * [`address_predictors`] — §6: "there are large benefits to be gained
//!   if the load-speculation scheme is improved". Compares the paper's
//!   two-delta stride table against last-address, finite-context and
//!   hybrid predictors on every benchmark.
//! * [`node_elimination`] — §1/Figure 1f: eliminating fully-absorbed
//!   producers.
//! * [`collapse_depth`] — §5.3: "collapsing greater than 4-1 dependences
//!   may offer very little performance benefit" — sweeps pairs-only /
//!   triples / quads.
//! * [`zero_detection`] — §5.3: the 0-op mechanism's worth.
//! * [`within_block`] — §5.3: "we may not need to implement across basic
//!   blocks" — restricts collapsing to within basic blocks.
//! * [`value_predictors`] / [`value_speculation`] — §1/Figure 1d: the
//!   paper's *other* d-speculation ("predict data values such as those
//!   loaded from memory ... and in general the data result of any
//!   instruction"), which it describes but never evaluates.

use ddsc_core::{
    simulate_prepared, ConfidenceParams, PaperConfig, PreparedTrace, SimConfig, ValueSpecMode,
};
use ddsc_predict::{
    branch_stats, AddressPredictor, Bimodal, ContextAddr, DirectionPredictor, Gshare, HybridAddr,
    LastAddr, LastValue, LocalHistory, McFarling, TwoDeltaStride, TwoDeltaValue, ValuePredictor,
};
use ddsc_util::stats::harmonic_mean;
use ddsc_util::TextTable;
use ddsc_workloads::Benchmark;

use crate::parallel::{num_threads, par_map};
use crate::Lab;

/// A configuration factory parameterised by issue width.
type ConfigFactory = Box<dyn Fn(u32) -> SimConfig>;

/// Address-predictor comparison: confidently-correct prediction rate per
/// benchmark and predictor.
#[derive(Debug, Clone)]
pub struct AddrPredictorComparison {
    /// Predictor names, in column order.
    pub predictors: Vec<&'static str>,
    /// (benchmark, correct-and-confident % per predictor).
    pub rows: Vec<(Benchmark, Vec<f64>)>,
}

impl AddrPredictorComparison {
    /// The rate for one benchmark and predictor name.
    pub fn rate(&self, b: Benchmark, predictor: &str) -> Option<f64> {
        let col = self.predictors.iter().position(|&p| p == predictor)?;
        self.rows.iter().find(|(x, _)| *x == b).map(|(_, v)| v[col])
    }

    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut header = vec!["benchmark".to_string()];
        header.extend(self.predictors.iter().map(|s| s.to_string()));
        let mut t = TextTable::new(header);
        for (b, rates) in &self.rows {
            let mut row = vec![b.name().to_string()];
            row.extend(rates.iter().map(|r| format!("{r:.1}")));
            t.row(row);
        }
        format!("## Extension — address predictors (confident-correct % of loads)\n{t}")
    }
}

/// Compares address predictors over each benchmark's load stream.
pub fn address_predictors(lab: &Lab) -> AddrPredictorComparison {
    let predictors: Vec<&'static str> = vec!["two-delta", "last-addr", "context", "hybrid"];
    let rows = lab
        .suite()
        .iter()
        .map(|(b, trace)| {
            let mut preds: Vec<Box<dyn AddressPredictor>> = vec![
                Box::new(TwoDeltaStride::paper_default()),
                Box::new(LastAddr::new(12)),
                Box::new(ContextAddr::new(12, 16)),
                Box::new(HybridAddr::new(12, 16)),
            ];
            let mut hits = vec![0u64; preds.len()];
            let mut loads = 0u64;
            for inst in trace {
                if inst.is_load() {
                    loads += 1;
                    for (k, p) in preds.iter_mut().enumerate() {
                        let r = p.access(inst.pc, inst.ea.unwrap_or(0));
                        if r.confident && r.correct {
                            hits[k] += 1;
                        }
                    }
                }
            }
            let rates = hits
                .iter()
                .map(|&h| {
                    if loads == 0 {
                        0.0
                    } else {
                        100.0 * h as f64 / loads as f64
                    }
                })
                .collect();
            (b, rates)
        })
        .collect();
    AddrPredictorComparison { predictors, rows }
}

/// A generic ablation result: harmonic-mean IPC per (variant, width).
#[derive(Debug, Clone)]
pub struct Ablation {
    /// Experiment name.
    pub title: String,
    /// Variant labels.
    pub variants: Vec<String>,
    /// (width, hmean IPC per variant).
    pub rows: Vec<(u32, Vec<f64>)>,
}

impl Ablation {
    /// The value for one width and variant label.
    pub fn value(&self, width: u32, variant: &str) -> Option<f64> {
        let col = self.variants.iter().position(|v| v == variant)?;
        self.rows
            .iter()
            .find(|(w, _)| *w == width)
            .map(|(_, v)| v[col])
    }

    /// Renders the ablation.
    pub fn render(&self) -> String {
        let mut header = vec!["width".to_string()];
        header.extend(self.variants.clone());
        let mut t = TextTable::new(header);
        for (w, vals) in &self.rows {
            let mut row = vec![w.to_string()];
            row.extend(vals.iter().map(|v| format!("{v:.3}")));
            t.row(row);
        }
        format!(
            "## {} (harmonic-mean IPC, all benchmarks)\n{}",
            self.title, t
        )
    }
}

fn run_variants(
    lab: &Lab,
    title: &str,
    widths: &[u32],
    variants: Vec<(String, ConfigFactory)>,
) -> Ablation {
    let labels: Vec<String> = variants.iter().map(|(l, _)| l.clone()).collect();
    let suite = lab.suite();
    let benches: Vec<Benchmark> = suite.iter().map(|(b, _)| b).collect();
    // The boxed factories are not Sync; materialise the cheap SimConfigs
    // on this thread, then fan the actual simulations out. Cells are
    // benchmark-innermost so each variant's IPCs form one chunk.
    let mut cells: Vec<(Benchmark, SimConfig)> = Vec::new();
    for &w in widths {
        for (_, mk) in &variants {
            let cfg = mk(w);
            for &b in &benches {
                cells.push((b, cfg));
            }
        }
    }
    let ipcs = par_map(&cells, num_threads(), |&(b, ref cfg)| {
        simulate_prepared(&lab.prepared(b), cfg).ipc()
    });
    let mut chunks = ipcs.chunks(benches.len().max(1));
    let rows = widths
        .iter()
        .map(|&w| {
            let vals = variants
                .iter()
                .map(|_| harmonic_mean(chunks.next().unwrap_or(&[])).unwrap_or(0.0))
                .collect();
            (w, vals)
        })
        .collect();
    Ablation {
        title: title.to_string(),
        variants: labels,
        rows,
    }
}

/// Node elimination (Figure 1f) on top of configuration D.
pub fn node_elimination(lab: &Lab, widths: &[u32]) -> Ablation {
    run_variants(
        lab,
        "Extension — node elimination",
        widths,
        vec![
            (
                "D".into(),
                Box::new(|w| SimConfig::paper(PaperConfig::D, w)),
            ),
            (
                "D + elimination".into(),
                Box::new(|w| {
                    let mut c = SimConfig::paper(PaperConfig::D, w);
                    c.node_elimination = true;
                    c
                }),
            ),
        ],
    )
}

/// Collapse-group-depth ablation: pairs only vs. triples vs. the full
/// paper device (quads via zero detection).
pub fn collapse_depth(lab: &Lab, widths: &[u32]) -> Ablation {
    let mk = |members: usize| -> ConfigFactory {
        Box::new(move |w| {
            let mut c = SimConfig::paper(PaperConfig::D, w);
            c.max_collapse_members = members;
            c
        })
    };
    run_variants(
        lab,
        "Ablation — collapse group depth",
        widths,
        vec![
            (
                "no collapse".into(),
                Box::new(|w| SimConfig::paper(PaperConfig::B, w)),
            ),
            ("pairs".into(), mk(2)),
            ("triples".into(), mk(3)),
            ("quads (paper)".into(), mk(4)),
        ],
    )
}

/// Zero-operand-detection ablation under configuration D.
pub fn zero_detection(lab: &Lab, widths: &[u32]) -> Ablation {
    run_variants(
        lab,
        "Ablation — zero-operand detection",
        widths,
        vec![
            (
                "without 0-op".into(),
                Box::new(|w| {
                    let mut c = SimConfig::paper(PaperConfig::D, w);
                    c.zero_detection = false;
                    c
                }),
            ),
            (
                "with 0-op (paper)".into(),
                Box::new(|w| SimConfig::paper(PaperConfig::D, w)),
            ),
        ],
    )
}

/// Basic-block-restriction ablation: collapsing within basic blocks only
/// versus across them (the paper's §5.3 cost/benefit question).
pub fn within_block(lab: &Lab, widths: &[u32]) -> Ablation {
    run_variants(
        lab,
        "Ablation — collapsing across basic blocks",
        widths,
        vec![
            (
                "within block".into(),
                Box::new(|w| {
                    let mut c = SimConfig::paper(PaperConfig::D, w);
                    c.collapse_within_block_only = true;
                    c
                }),
            ),
            (
                "across blocks (paper)".into(),
                Box::new(|w| SimConfig::paper(PaperConfig::D, w)),
            ),
        ],
    )
}

/// Value-predictor comparison: confident-correct prediction rate on
/// *loaded values* per benchmark.
#[derive(Debug, Clone)]
pub struct ValuePredictorComparison {
    /// Predictor names, in column order.
    pub predictors: Vec<&'static str>,
    /// (benchmark, correct-and-confident % per predictor).
    pub rows: Vec<(Benchmark, Vec<f64>)>,
}

impl ValuePredictorComparison {
    /// The rate for one benchmark and predictor name.
    pub fn rate(&self, b: Benchmark, predictor: &str) -> Option<f64> {
        let col = self.predictors.iter().position(|&p| p == predictor)?;
        self.rows.iter().find(|(x, _)| *x == b).map(|(_, v)| v[col])
    }

    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut header = vec!["benchmark".to_string()];
        header.extend(self.predictors.iter().map(|s| s.to_string()));
        let mut t = TextTable::new(header);
        for (b, rates) in &self.rows {
            let mut row = vec![b.name().to_string()];
            row.extend(rates.iter().map(|r| format!("{r:.1}")));
            t.row(row);
        }
        format!("## Extension — value predictors (confident-correct % of loaded values)\n{t}")
    }
}

/// Compares value predictors over each benchmark's loaded values —
/// quantifying the value locality the paper cites from Lipasti et al.
pub fn value_predictors(lab: &Lab) -> ValuePredictorComparison {
    let predictors: Vec<&'static str> = vec!["last-value", "two-delta-value"];
    let rows = lab
        .suite()
        .iter()
        .map(|(b, trace)| {
            let mut preds: Vec<Box<dyn ValuePredictor>> = vec![
                Box::new(LastValue::new(12)),
                Box::new(TwoDeltaValue::paper_sized()),
            ];
            let mut hits = vec![0u64; preds.len()];
            let mut loads = 0u64;
            for inst in trace {
                if inst.is_load() {
                    let Some(v) = inst.value else { continue };
                    loads += 1;
                    for (k, p) in preds.iter_mut().enumerate() {
                        let r = p.access(inst.pc, v);
                        if r.confident && r.correct {
                            hits[k] += 1;
                        }
                    }
                }
            }
            let rates = hits
                .iter()
                .map(|&h| {
                    if loads == 0 {
                        0.0
                    } else {
                        100.0 * h as f64 / loads as f64
                    }
                })
                .collect();
            (b, rates)
        })
        .collect();
    ValuePredictorComparison { predictors, rows }
}

/// Value speculation on top of configuration D: realistic load-value
/// prediction, the ideal load-value envelope (Figure 1d), and the full
/// "any instruction" dataflow envelope.
pub fn value_speculation(lab: &Lab, widths: &[u32]) -> Ablation {
    let mk = |mode: ValueSpecMode| -> ConfigFactory {
        Box::new(move |w| {
            let mut c = SimConfig::paper(PaperConfig::D, w);
            c.value_spec = mode;
            c
        })
    };
    run_variants(
        lab,
        "Extension — value speculation (on top of D)",
        widths,
        vec![
            ("D".into(), mk(ValueSpecMode::Off)),
            ("D + real LVP".into(), mk(ValueSpecMode::Real)),
            ("D + ideal loads".into(), mk(ValueSpecMode::Ideal)),
            ("D + ideal all".into(), mk(ValueSpecMode::IdealAll)),
        ],
    )
}

/// Confidence-counter variations for the address table (§3: "possible
/// variations are currently being explored to determine even more
/// accurate confidence measurements"), under configuration D.
pub fn confidence_sweep(lab: &Lab, widths: &[u32]) -> Ablation {
    let mk = |label: &str, params: ConfidenceParams| -> (String, ConfigFactory) {
        (
            label.to_string(),
            Box::new(move |w| {
                let mut c = SimConfig::paper(PaperConfig::D, w);
                c.confidence = params;
                c
            }),
        )
    };
    run_variants(
        lab,
        "Ablation — address-prediction confidence counter",
        widths,
        vec![
            mk(
                "eager (>0, -1)",
                ConfidenceParams {
                    max: 3,
                    inc: 1,
                    dec: 1,
                    threshold: 0,
                },
            ),
            mk("paper (>1, -2)", ConfidenceParams::default()),
            mk(
                "wary (>2, -2)",
                ConfidenceParams {
                    max: 3,
                    inc: 1,
                    dec: 2,
                    threshold: 2,
                },
            ),
            mk(
                "3-bit (>3, -4)",
                ConfidenceParams {
                    max: 7,
                    inc: 1,
                    dec: 4,
                    threshold: 3,
                },
            ),
        ],
    )
}

/// Perfect vs. realistic branch prediction (§2: limit studies show
/// "gains are diminished when using realistic prediction") on the base
/// and full machines.
pub fn perfect_branches(lab: &Lab, widths: &[u32]) -> Ablation {
    let mk = |cfg: PaperConfig, perfect: bool| -> ConfigFactory {
        Box::new(move |w| {
            let mut c = SimConfig::paper(cfg, w);
            c.perfect_branches = perfect;
            c
        })
    };
    run_variants(
        lab,
        "Ablation — branch prediction quality",
        widths,
        vec![
            ("A real".into(), mk(PaperConfig::A, false)),
            ("A perfect".into(), mk(PaperConfig::A, true)),
            ("D real".into(), mk(PaperConfig::D, false)),
            ("D perfect".into(), mk(PaperConfig::D, true)),
        ],
    )
}

/// Window-size decoupling: the paper fixes window = 2 × width; this
/// sweeps the multiplier at a fixed issue width.
pub fn window_sweep(lab: &Lab, width: u32) -> Ablation {
    let mk = |mult: u32| -> ConfigFactory {
        Box::new(move |w| {
            let mut c = SimConfig::paper(PaperConfig::D, w);
            c.window_size = w * mult;
            c
        })
    };
    let mut a = run_variants(
        lab,
        &format!("Ablation — window size at issue width {width}"),
        &[width],
        vec![
            ("1x width".into(), mk(1)),
            ("2x width (paper)".into(), mk(2)),
            ("4x width".into(), mk(4)),
            ("8x width".into(), mk(8)),
        ],
    );
    a.title = format!("Ablation — window size at issue width {width}");
    a
}

/// Branch-predictor family comparison at comparable hardware budgets.
#[derive(Debug, Clone)]
pub struct BranchPredictorComparison {
    /// Predictor names, in column order.
    pub predictors: Vec<&'static str>,
    /// (benchmark, accuracy % per predictor).
    pub rows: Vec<(Benchmark, Vec<f64>)>,
}

impl BranchPredictorComparison {
    /// The accuracy for one benchmark and predictor name.
    pub fn accuracy(&self, b: Benchmark, predictor: &str) -> Option<f64> {
        let col = self.predictors.iter().position(|&p| p == predictor)?;
        self.rows.iter().find(|(x, _)| *x == b).map(|(_, v)| v[col])
    }

    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut header = vec!["benchmark".to_string()];
        header.extend(self.predictors.iter().map(|s| s.to_string()));
        let mut t = TextTable::new(header);
        for (b, accs) in &self.rows {
            let mut row = vec![b.name().to_string()];
            row.extend(accs.iter().map(|a| format!("{a:.1}")));
            t.row(row);
        }
        format!("## Extension — branch predictors at ~8 KB (accuracy %)\n{t}")
    }
}

/// Compares branch-predictor families at roughly the paper's 8 KB budget
/// (bimodal-only, gshare-only, local-history PAg, and the paper's
/// McFarling hybrid).
pub fn branch_predictors(lab: &Lab) -> BranchPredictorComparison {
    let predictors: Vec<&'static str> = vec!["bimodal", "gshare", "local (PAg)", "mcfarling"];
    let rows = lab
        .suite()
        .iter()
        .map(|(b, trace)| {
            let mut accs = Vec::new();
            let run = |p: &mut dyn DirectionPredictor, accs: &mut Vec<f64>| {
                let mut correct = 0u64;
                let mut total = 0u64;
                for inst in trace {
                    if inst.op.is_cond_branch() {
                        total += 1;
                        if p.predict_and_train(inst.pc, inst.taken) {
                            correct += 1;
                        }
                    }
                }
                accs.push(if total == 0 {
                    0.0
                } else {
                    100.0 * correct as f64 / total as f64
                });
            };
            run(&mut Bimodal::new(15), &mut accs); // 32K counters = 8KB
            run(&mut Gshare::new(15), &mut accs);
            run(&mut LocalHistory::budget_8kb(), &mut accs);
            let s = branch_stats(trace, &mut McFarling::paper_8kb());
            accs.push(s.accuracy_pct().value());
            (b, accs)
        })
        .collect();
    BranchPredictorComparison { predictors, rows }
}

/// A bottleneck profile: per benchmark, the share of waiting cycles by
/// cause, under two configurations (showing what d-speculation and
/// d-collapsing actually remove).
#[derive(Debug, Clone)]
pub struct BottleneckProfile {
    /// Issue width profiled.
    pub width: u32,
    /// (benchmark, config label, [data, address, memory, branch,
    /// bandwidth] shares in %).
    pub rows: Vec<(Benchmark, &'static str, [f64; 5])>,
}

impl BottleneckProfile {
    /// Renders the profile.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "benchmark".into(),
            "config".into(),
            "data %".into(),
            "address %".into(),
            "memory %".into(),
            "branch %".into(),
            "bandwidth %".into(),
        ]);
        for (b, cfg, shares) in &self.rows {
            let mut row = vec![b.name().to_string(), cfg.to_string()];
            row.extend(shares.iter().map(|v| format!("{v:.1}")));
            t.row(row);
        }
        format!(
            "## Extension — where the cycles go (stall shares, width {})\n{t}",
            self.width
        )
    }
}

/// Profiles waiting-cycle attribution for configurations A and D.
pub fn bottlenecks(lab: &Lab, width: u32) -> BottleneckProfile {
    let suite = lab.suite();
    let cells: Vec<(Benchmark, PaperConfig)> = suite
        .iter()
        .flat_map(|(b, _)| [(b, PaperConfig::A), (b, PaperConfig::D)])
        .collect();
    let rows = par_map(&cells, num_threads(), |&(b, cfg)| {
        let r = simulate_prepared(&lab.prepared(b), &SimConfig::paper(cfg, width));
        let s = r.stalls;
        let shares = [
            s.share(s.data).value(),
            s.share(s.address).value(),
            s.share(s.memory).value(),
            s.share(s.branch).value(),
            s.share(s.bandwidth).value(),
        ];
        (b, cfg.label(), shares)
    });
    BottleneckProfile { width, rows }
}

/// Code-scheduling sensitivity: the hand-written workloads leave
/// dependent instructions adjacent, where `gcc -O4` (the paper's
/// compiler) would separate them. Re-running Figure 8's collapse
/// fraction and the D speedup over list-scheduled programs quantifies
/// how much of the Figure 8 gap is code layout.
#[derive(Debug, Clone)]
pub struct SchedulingSensitivity {
    /// Issue width used.
    pub width: u32,
    /// (benchmark, collapsed % as-written, collapsed % scheduled,
    /// D speedup as-written, D speedup scheduled).
    pub rows: Vec<(Benchmark, f64, f64, f64, f64)>,
}

impl SchedulingSensitivity {
    /// Suite-mean collapsed fraction for (as-written, scheduled).
    pub fn mean_collapsed(&self) -> (f64, f64) {
        let n = self.rows.len().max(1) as f64;
        (
            self.rows.iter().map(|r| r.1).sum::<f64>() / n,
            self.rows.iter().map(|r| r.2).sum::<f64>() / n,
        )
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "benchmark".into(),
            "collapsed % (as written)".into(),
            "collapsed % (scheduled)".into(),
            "D speedup (as written)".into(),
            "D speedup (scheduled)".into(),
        ]);
        for (b, c1, c2, s1, s2) in &self.rows {
            t.row(vec![
                b.name().to_string(),
                format!("{c1:.1}"),
                format!("{c2:.1}"),
                format!("{s1:.3}"),
                format!("{s2:.3}"),
            ]);
        }
        format!(
            "## Extension — compiler-scheduling sensitivity (width {})\n{t}",
            self.width
        )
    }
}

/// Measures collapse fraction and D-vs-A speedup over list-scheduled
/// workload programs (the `gcc -O4` stand-in).
pub fn scheduling_sensitivity(seed: u64, trace_len: usize, width: u32) -> SchedulingSensitivity {
    let rows = par_map(&Benchmark::ALL, num_threads(), |&b| {
        let measure = |trace: &ddsc_trace::Trace| {
            // One pre-pass serves both configurations.
            let p = PreparedTrace::build(trace);
            let base = simulate_prepared(&p, &SimConfig::paper(PaperConfig::A, width));
            let d = simulate_prepared(&p, &SimConfig::paper(PaperConfig::D, width));
            (d.collapse.collapsed_pct().value(), d.speedup_over(&base))
        };
        let plain = b.trace(seed, trace_len).expect("workload runs");
        let sched = b
            .trace_compiled(seed, trace_len)
            .expect("scheduled workload runs");
        let (c1, s1) = measure(&plain);
        let (c2, s2) = measure(&sched);
        (b, c1, c2, s1, s2)
    });
    SchedulingSensitivity { width, rows }
}

/// Seed-robustness check: configuration D's harmonic-mean speedup over A
/// across independently-seeded workload suites.
#[derive(Debug, Clone)]
pub struct Robustness {
    /// Issue width used.
    pub width: u32,
    /// (seed, harmonic-mean D speedup).
    pub rows: Vec<(u64, f64)>,
}

impl Robustness {
    /// The spread (max − min) across seeds.
    pub fn spread(&self) -> f64 {
        let lo = self.rows.iter().map(|(_, v)| *v).fold(f64::MAX, f64::min);
        let hi = self.rows.iter().map(|(_, v)| *v).fold(0.0, f64::max);
        hi - lo
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec!["seed".into(), "D speedup".into()]);
        for (seed, v) in &self.rows {
            t.row(vec![seed.to_string(), format!("{v:.3}")]);
        }
        format!(
            "## Extension — seed robustness (width {}, spread {:.3})\n{t}",
            self.width,
            self.spread()
        )
    }
}

/// Re-runs the headline D-vs-A comparison over several workload seeds.
pub fn robustness(seeds: &[u64], trace_len: usize, width: u32) -> Robustness {
    use ddsc_util::stats::harmonic_mean;
    let rows = par_map(seeds, num_threads(), |&seed| {
        let suite = crate::Suite::generate(crate::SuiteConfig {
            seed,
            trace_len,
            widths: vec![width],
        });
        let speedups: Vec<f64> = suite
            .iter()
            .map(|(_, trace)| {
                let p = PreparedTrace::build(trace);
                let base = simulate_prepared(&p, &SimConfig::paper(PaperConfig::A, width));
                let d = simulate_prepared(&p, &SimConfig::paper(PaperConfig::D, width));
                d.speedup_over(&base)
            })
            .collect();
        (seed, harmonic_mean(&speedups).unwrap_or(0.0))
    });
    Robustness { width, rows }
}

/// Renders every extension experiment (the `ddsc repro extensions`
/// payload).
pub fn render_all(lab: &Lab) -> String {
    let widths: Vec<u32> = lab.widths().into_iter().filter(|&w| w <= 32).collect();
    let mut out = String::new();
    out.push_str(&address_predictors(lab).render());
    out.push('\n');
    out.push_str(&node_elimination(lab, &widths).render());
    out.push('\n');
    out.push_str(&collapse_depth(lab, &widths).render());
    out.push('\n');
    out.push_str(&zero_detection(lab, &widths).render());
    out.push('\n');
    out.push_str(&within_block(lab, &widths).render());
    out.push('\n');
    out.push_str(&value_predictors(lab).render());
    out.push('\n');
    out.push_str(&value_speculation(lab, &widths).render());
    out.push('\n');
    out.push_str(&confidence_sweep(lab, &widths).render());
    out.push('\n');
    out.push_str(&perfect_branches(lab, &widths).render());
    out.push('\n');
    out.push_str(&window_sweep(lab, 16).render());
    out.push('\n');
    out.push_str(&bottlenecks(lab, 16).render());
    out.push('\n');
    out.push_str(&branch_predictors(lab).render());
    out.push('\n');
    let len = lab.suite().config().trace_len.min(60_000);
    out.push_str(&robustness(&[1996, 7, 42], len, 16).render());
    out.push('\n');
    out.push_str(&scheduling_sensitivity(1996, len, 16).render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SuiteConfig;

    fn lab() -> Lab {
        Lab::new(SuiteConfig {
            seed: 4,
            trace_len: 6_000,
            widths: vec![8],
        })
    }

    #[test]
    fn predictor_comparison_covers_all_benchmarks() {
        let lab = lab();
        let c = address_predictors(&lab);
        assert_eq!(c.rows.len(), 6);
        assert_eq!(c.predictors.len(), 4);
        // ijpeg is strided: the stride predictor must do well there.
        let r = c.rate(Benchmark::Ijpeg, "two-delta").unwrap();
        assert!(r > 50.0, "ijpeg stride rate {r:.1}%");
    }

    #[test]
    fn pointer_chasing_benefits_from_context_prediction() {
        // go's group chains are re-walked identically on every board
        // scan, so a context predictor can learn them while strides
        // cannot. Needs a trace long enough to cover several scans.
        let lab = Lab::new(SuiteConfig {
            seed: 4,
            trace_len: 60_000,
            widths: vec![8],
        });
        let c = address_predictors(&lab);
        let stride = c.rate(Benchmark::Go, "two-delta").unwrap();
        let ctx = c.rate(Benchmark::Go, "context").unwrap();
        let hybrid = c.rate(Benchmark::Go, "hybrid").unwrap();
        assert!(
            ctx > stride,
            "context ({ctx:.1}%) should beat stride ({stride:.1}%) on go"
        );
        assert!(
            hybrid > stride * 0.95,
            "hybrid ({hybrid:.1}%) must not lose much to stride ({stride:.1}%)"
        );
    }

    #[test]
    fn deeper_collapsing_never_hurts() {
        let lab = lab();
        let a = collapse_depth(&lab, &[8]);
        let none = a.value(8, "no collapse").unwrap();
        let pairs = a.value(8, "pairs").unwrap();
        let quads = a.value(8, "quads (paper)").unwrap();
        assert!(pairs >= none * 0.999);
        assert!(quads >= pairs * 0.999);
    }

    #[test]
    fn node_elimination_does_not_lose() {
        let lab = lab();
        let a = node_elimination(&lab, &[8]);
        let d = a.value(8, "D").unwrap();
        let e = a.value(8, "D + elimination").unwrap();
        assert!(e >= d * 0.999, "elimination must not hurt: {d} -> {e}");
    }

    #[test]
    fn value_speculation_orders_correctly() {
        let lab = lab();
        let a = value_speculation(&lab, &[8]);
        let d = a.value(8, "D").unwrap();
        let real = a.value(8, "D + real LVP").unwrap();
        let ideal = a.value(8, "D + ideal loads").unwrap();
        let all = a.value(8, "D + ideal all").unwrap();
        assert!(real >= d * 0.999, "real LVP must not hurt: {d} -> {real}");
        assert!(ideal >= real * 0.999, "{real} -> {ideal}");
        assert!(all >= ideal * 0.999, "{ideal} -> {all}");
        assert!(all > d * 1.05, "the full envelope must be clearly above D");
    }

    #[test]
    fn value_predictor_comparison_has_signal() {
        let lab = lab();
        let c = value_predictors(&lab);
        assert_eq!(c.rows.len(), 6);
        // Some benchmark must show exploitable value locality.
        let best = c
            .rows
            .iter()
            .flat_map(|(_, v)| v.iter().copied())
            .fold(0.0f64, f64::max);
        assert!(best > 10.0, "no value locality anywhere? best {best:.1}%");
    }

    #[test]
    fn perfect_branches_dominate_real() {
        let lab = lab();
        let a = perfect_branches(&lab, &[8]);
        assert!(a.value(8, "A perfect").unwrap() >= a.value(8, "A real").unwrap());
        assert!(a.value(8, "D perfect").unwrap() >= a.value(8, "D real").unwrap());
    }

    #[test]
    fn bigger_windows_never_hurt_much() {
        let lab = lab();
        let a = window_sweep(&lab, 8);
        let w1 = a.value(8, "1x width").unwrap();
        let w8 = a.value(8, "8x width").unwrap();
        assert!(w8 >= w1, "8x window {w8} vs 1x {w1}");
    }

    #[test]
    fn confidence_sweep_runs_all_variants() {
        let lab = lab();
        let a = confidence_sweep(&lab, &[8]);
        assert_eq!(a.variants.len(), 4);
        for v in &a.variants {
            assert!(a.value(8, v).unwrap() > 0.0);
        }
    }

    #[test]
    fn scheduling_reduces_collapsible_interlocks() {
        let s = scheduling_sensitivity(3, 12_000, 16);
        let (plain, scheduled) = s.mean_collapsed();
        assert!(
            scheduled < plain,
            "list scheduling must reduce executed collapses: {plain:.1} -> {scheduled:.1}"
        );
        for (b, _, _, s1, s2) in &s.rows {
            assert!(*s1 > 0.9 && *s2 > 0.9, "{b}: speedups sane ({s1}, {s2})");
        }
    }

    #[test]
    fn robustness_is_tight_across_seeds() {
        let r = robustness(&[1, 2, 3], 10_000, 8);
        assert_eq!(r.rows.len(), 3);
        for (seed, v) in &r.rows {
            assert!(*v > 1.0, "seed {seed}: D must win, got {v}");
        }
        assert!(
            r.spread() < 0.4,
            "headline result should be seed-stable, spread {}",
            r.spread()
        );
    }

    #[test]
    fn branch_predictor_comparison_is_sane() {
        let lab = lab();
        let c = branch_predictors(&lab);
        assert_eq!(c.rows.len(), 6);
        for (b, accs) in &c.rows {
            for a in accs {
                assert!((30.0..=100.0).contains(a), "{b}: accuracy {a}");
            }
        }
        // The hybrid should be at least competitive with bimodal on the
        // suite harmonic structure (go especially).
        let mc = c.accuracy(Benchmark::Go, "mcfarling").unwrap();
        let bi = c.accuracy(Benchmark::Go, "bimodal").unwrap();
        assert!(mc + 5.0 > bi, "mcfarling {mc} vs bimodal {bi}");
    }

    #[test]
    fn bottleneck_shares_are_percentages() {
        let lab = lab();
        let p = bottlenecks(&lab, 8);
        assert_eq!(p.rows.len(), 12, "6 benchmarks x 2 configs");
        for (b, cfg, shares) in &p.rows {
            let sum: f64 = shares.iter().sum();
            assert!(
                (sum - 100.0).abs() < 1.0 || sum == 0.0,
                "{b}/{cfg}: shares sum {sum}"
            );
        }
    }

    #[test]
    fn ablations_render() {
        let lab = lab();
        let s = zero_detection(&lab, &[8]).render();
        assert!(s.contains("0-op"));
        let s = within_block(&lab, &[8]).render();
        assert!(s.contains("basic blocks"));
    }
}
