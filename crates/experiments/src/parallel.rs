//! A dependency-free scoped thread pool for embarrassingly parallel
//! experiment grids.
//!
//! The reproduction's unit of work is one `simulate(trace, config)`
//! call: pure, CPU-bound, seconds-long. Work-stealing frameworks buy
//! nothing at that granularity, so [`par_map`] is just scoped threads
//! pulling indices off a shared atomic counter — deterministic output
//! order, no allocation games, no dependencies.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The number of worker threads to use: the `DDSC_THREADS` environment
/// variable if set (clamped to at least 1), otherwise the host's
/// available parallelism.
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("DDSC_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` on `threads` scoped workers, preserving input
/// order in the output.
///
/// With `threads <= 1` (or one item) this degenerates to a plain serial
/// map on the calling thread — no spawn overhead, identical results.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.min(items.len()).max(1);
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let done = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    local.push((i, f(item)));
                }
                done.lock()
                    .expect("worker poisoned the results")
                    .extend(local);
            });
        }
    });
    let mut indexed = done.into_inner().expect("worker poisoned the results");
    indexed.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(indexed.len(), items.len());
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_order_matches_input_order() {
        let items: Vec<u64> = (0..257).collect();
        for threads in [1, 2, 3, 8] {
            let out = par_map(&items, threads, |&x| x * x);
            let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
            assert_eq!(out, expect, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs_work() {
        let none: Vec<u32> = Vec::new();
        assert!(par_map(&none, 4, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], 4, |&x| x + 1), vec![8]);
    }

    #[test]
    fn every_item_is_processed_exactly_once() {
        use std::sync::atomic::AtomicU64;
        let calls = AtomicU64::new(0);
        let items: Vec<u32> = (0..100).collect();
        let out = par_map(&items, 4, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 100);
        assert_eq!(calls.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn thread_override_parses() {
        // Only exercises the parse path indirectly: num_threads() must
        // return something sane whatever the environment says.
        assert!(num_threads() >= 1);
    }
}
