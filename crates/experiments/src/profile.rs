//! Cycle-attribution profiles: where every simulated cycle went, per
//! paper configuration.
//!
//! The observability layer (`ddsc_core::metrics`) classifies every cycle
//! of a simulation into exactly one bucket — issuing, or idle behind one
//! of six causes (branch squash, memory serialisation, address
//! speculation, long-latency arithmetic, full window, dependence
//! height). This module aggregates those per-cell [`SimMetrics`] into a
//! [`ConfigProfile`] per paper configuration, renders the
//! cycle-attribution table shown by `ddsc repro --profile`, and
//! serialises each profile as `results/profile_<config>.json` with a
//! stable field order (schema `ddsc-profile-v1`).
//!
//! The accounting identity — attributed cycles sum exactly to total
//! cycles — is audited inside `simulate_with_metrics` itself and
//! re-checked here per cell, so a profile can never silently misplace a
//! cycle.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use ddsc_core::{PaperConfig, SimMetrics, StallCause};
use ddsc_util::{Histogram, TextTable};
use ddsc_workloads::Benchmark;

use crate::Lab;

/// The profiled metrics of one `(benchmark, width)` cell under one
/// configuration.
#[derive(Debug, Clone)]
pub struct ProfileCell {
    /// The benchmark simulated.
    pub benchmark: Benchmark,
    /// Issue width.
    pub width: u32,
    /// Dynamic instructions simulated.
    pub instructions: u64,
    /// Total cycles (equals `metrics.attribution.total()` by the audited
    /// accounting identity).
    pub cycles: u64,
    /// Retired instructions per cycle.
    pub ipc: f64,
    /// The full metrics record, shared with the lab's cache.
    pub metrics: Arc<SimMetrics>,
}

/// Cycle attribution for one paper configuration over the whole
/// `benchmark x width` grid of a lab.
///
/// Cell order is deterministic whatever order the lab computed them in:
/// benchmarks in [`Benchmark::ALL`] order, widths ascending within each
/// benchmark. Rendering and serialisation preserve that order, so two
/// labs over the same suite produce byte-identical profiles.
#[derive(Debug, Clone)]
pub struct ConfigProfile {
    /// The paper configuration profiled.
    pub config: PaperConfig,
    /// The widths swept, ascending.
    pub widths: Vec<u32>,
    /// One entry per `(benchmark, width)`, in deterministic order.
    pub cells: Vec<ProfileCell>,
}

impl ConfigProfile {
    /// Collects (simulating on demand) the profile of `config` across
    /// the lab's full grid.
    ///
    /// # Panics
    ///
    /// Panics if `lab` was built without [`Lab::with_profiling`], or if
    /// a cell violates the cycle-accounting identity (which would be a
    /// simulator bug).
    pub fn collect(lab: &Lab, config: PaperConfig) -> ConfigProfile {
        let mut widths = lab.widths();
        widths.sort_unstable();
        widths.dedup();
        let mut cells = Vec::new();
        for (b, _) in lab.suite().iter() {
            for &w in &widths {
                let r = lab.result(b, config, w);
                let m = lab.metrics(b, config, w);
                m.attribution
                    .audit(r.cycles)
                    .expect("cycle-attribution identity must hold");
                cells.push(ProfileCell {
                    benchmark: b,
                    width: w,
                    instructions: r.instructions,
                    cycles: r.cycles,
                    ipc: r.ipc(),
                    metrics: m,
                });
            }
        }
        ConfigProfile {
            config,
            widths,
            cells,
        }
    }

    /// The width the rendered table shows: the widest bounded machine
    /// (≤ 32) in the sweep. The paper's width 2048 stands in for an
    /// unbounded window and would drown the table in dependence-height
    /// cycles.
    pub fn headline_width(&self) -> u32 {
        self.widths
            .iter()
            .copied()
            .filter(|&w| w <= 32)
            .max()
            .or_else(|| self.widths.first().copied())
            .expect("profile has at least one width")
    }

    /// Renders the cycle-attribution table at the headline width: one
    /// row per benchmark, one column per attribution bucket, as a
    /// percentage of that cell's total cycles.
    pub fn render(&self) -> String {
        let width = self.headline_width();
        let mut header = vec!["benchmark".into(), "cycles".into(), "issue %".into()];
        for cause in StallCause::ALL {
            header.push(format!("{cause} %"));
        }
        let mut t = TextTable::new(header);
        for cell in self.cells.iter().filter(|c| c.width == width) {
            let a = &cell.metrics.attribution;
            let pct = |n: u64| {
                if cell.cycles == 0 {
                    "0.0".to_string()
                } else {
                    format!("{:.1}", n as f64 * 100.0 / cell.cycles as f64)
                }
            };
            let mut row = vec![
                cell.benchmark.models().to_string(),
                cell.cycles.to_string(),
                pct(a.issue),
            ];
            for cause in StallCause::ALL {
                row.push(pct(a.idle(cause)));
            }
            t.row(row);
        }
        format!(
            "### Where the cycles go — config {} ({}), width {width}\n{t}",
            self.config.label(),
            self.config.description(),
        )
    }

    /// Serialises the profile as JSON (schema `ddsc-profile-v1`).
    ///
    /// Hand-rolled (the repo deliberately has no serde) with a fixed key
    /// order, so equal profiles serialise to equal bytes. Histograms are
    /// emitted sparsely as `[value, count]` pairs over the non-empty
    /// buckets.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"ddsc-profile-v1\",\n");
        let _ = writeln!(out, "  \"config\": \"{}\",", self.config.label());
        let _ = writeln!(out, "  \"description\": \"{}\",", self.config.description());
        out.push_str("  \"widths\": [");
        for (i, w) in self.widths.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{w}");
        }
        out.push_str("],\n");
        out.push_str("  \"cells\": [\n");
        for (i, cell) in self.cells.iter().enumerate() {
            out.push_str(&cell_json(cell));
            out.push_str(if i + 1 < self.cells.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// One profile cell as a JSON object (no trailing newline or comma).
fn cell_json(cell: &ProfileCell) -> String {
    let m = &cell.metrics;
    let a = &m.attribution;
    let mut out = String::new();
    out.push_str("    {\n");
    let _ = writeln!(out, "      \"benchmark\": \"{}\",", cell.benchmark.models());
    let _ = writeln!(out, "      \"width\": {},", cell.width);
    let _ = writeln!(out, "      \"instructions\": {},", cell.instructions);
    let _ = writeln!(out, "      \"cycles\": {},", cell.cycles);
    let _ = writeln!(out, "      \"ipc\": {:.4},", cell.ipc);
    let _ = writeln!(
        out,
        "      \"attribution\": {{\"issue\": {}, \"branch\": {}, \"memory\": {}, \
         \"address\": {}, \"long_latency\": {}, \"window_full\": {}, \"dep_height\": {}}},",
        a.issue, a.branch, a.memory, a.address, a.long_latency, a.window_full, a.dep_height
    );
    let _ = writeln!(out, "      \"issue_util\": {},", sparse_hist(&m.issue_util));
    let _ = writeln!(
        out,
        "      \"window_occupancy\": {},",
        sparse_hist(&m.window_occupancy)
    );
    let _ = writeln!(
        out,
        "      \"collapse_sizes\": {},",
        sparse_hist(&m.collapse_sizes)
    );
    let _ = writeln!(
        out,
        "      \"branch\": {{\"hits\": {}, \"misses\": {}}},",
        m.branch_hits, m.branch_misses
    );
    let _ = writeln!(
        out,
        "      \"addr_pred\": {{\"confident_correct\": {}, \"confident_incorrect\": {}, \
         \"unconfident_correct\": {}, \"unconfident_incorrect\": {}}}",
        m.addr_pred.confident_correct,
        m.addr_pred.confident_incorrect,
        m.addr_pred.unconfident_correct,
        m.addr_pred.unconfident_incorrect
    );
    out.push_str("    }");
    out
}

/// A histogram as `[[value, count], ...]` over its non-empty buckets.
fn sparse_hist(h: &Histogram) -> String {
    let mut out = String::from("[");
    let mut first = true;
    for (v, c) in h.iter().filter(|&(_, c)| c > 0) {
        if !first {
            out.push_str(", ");
        }
        first = false;
        let _ = write!(out, "[{v}, {c}]");
    }
    out.push(']');
    out
}

/// Collects the profile of every paper configuration, prewarming the
/// grid first so the fan-out runs in parallel.
pub fn collect_profiles(lab: &Lab) -> Vec<ConfigProfile> {
    lab.prewarm_all();
    PaperConfig::ALL
        .iter()
        .map(|&c| ConfigProfile::collect(lab, c))
        .collect()
}

/// Renders the cycle-attribution tables of all five configurations (the
/// `ddsc repro --profile` payload).
pub fn render_profiles(profiles: &[ConfigProfile]) -> String {
    let mut out = String::from("## Cycle attribution (audited: buckets sum to total cycles)\n");
    for p in profiles {
        out.push_str(&p.render());
        out.push('\n');
    }
    out
}

/// Writes each profile to `<dir>/profile_<config>.json`, creating `dir`
/// as needed. Each file is published atomically
/// ([`ddsc_util::publish_atomic`]), so a crash mid-report never leaves
/// a torn profile behind. Returns the written paths in configuration
/// order.
pub fn write_profiles(profiles: &[ConfigProfile], dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut paths = Vec::new();
    for p in profiles {
        let path = dir.join(format!("profile_{}.json", p.config.label()));
        ddsc_util::publish_atomic(&path, p.to_json().as_bytes())?;
        paths.push(path);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lab, SuiteConfig};

    fn tiny_lab() -> Lab {
        Lab::new(SuiteConfig {
            seed: 3,
            trace_len: 3_000,
            widths: vec![4, 8],
        })
        .with_profiling()
    }

    #[test]
    fn profiles_cover_the_grid_in_deterministic_order() {
        let lab = tiny_lab();
        let profiles = collect_profiles(&lab);
        assert_eq!(profiles.len(), 5);
        for p in &profiles {
            assert_eq!(p.widths, vec![4, 8]);
            assert_eq!(p.cells.len(), 12); // 6 benchmarks x 2 widths
                                           // Benchmark::ALL order, widths ascending inside each.
            let expect: Vec<(Benchmark, u32)> = Benchmark::ALL
                .iter()
                .flat_map(|&b| [(b, 4), (b, 8)])
                .collect();
            let got: Vec<(Benchmark, u32)> =
                p.cells.iter().map(|c| (c.benchmark, c.width)).collect();
            assert_eq!(got, expect);
            for c in &p.cells {
                assert_eq!(c.metrics.attribution.total(), c.cycles);
            }
        }
    }

    #[test]
    fn rendering_shows_every_benchmark_and_cause() {
        let lab = tiny_lab();
        let profiles = collect_profiles(&lab);
        let text = render_profiles(&profiles);
        for b in Benchmark::ALL {
            assert!(text.contains(b.models()));
        }
        for cause in StallCause::ALL {
            assert!(text.contains(&format!("{cause} %")));
        }
        for c in PaperConfig::ALL {
            assert!(text.contains(&format!("config {}", c.label())));
        }
        // Headline width is the widest bounded machine in the sweep.
        assert!(text.contains("width 8"));
    }

    #[test]
    fn json_is_stable_and_written_per_config() {
        let lab = tiny_lab();
        let profiles = collect_profiles(&lab);
        // Two collections over the same lab serialise identically.
        let again = ConfigProfile::collect(&lab, PaperConfig::D);
        let d = profiles
            .iter()
            .find(|p| p.config == PaperConfig::D)
            .unwrap();
        assert_eq!(d.to_json(), again.to_json());
        let dir = std::env::temp_dir().join(format!("ddsc-profile-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let paths = write_profiles(&profiles, &dir).unwrap();
        assert_eq!(paths.len(), 5);
        for (p, path) in profiles.iter().zip(&paths) {
            assert!(path
                .file_name()
                .unwrap()
                .to_str()
                .unwrap()
                .contains(p.config.label()));
            let on_disk = std::fs::read_to_string(path).unwrap();
            assert_eq!(on_disk, p.to_json());
            assert!(on_disk.contains("\"schema\": \"ddsc-profile-v1\""));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
