//! Trace-length convergence study (the paper-scale run).
//!
//! The paper simulates up to 250M dynamic instructions per benchmark;
//! the reproduction's default grid uses 300k. This module quantifies
//! what that truncation costs: it simulates one `(benchmark, config,
//! width)` cell at a ladder of trace lengths through the streaming
//! pipeline ([`ddsc_core::simulate_stream`] over a lazily-stepped VM
//! source), so even the 250M point runs in bounded memory, and reports
//! how IPC converges as the trace grows.
//!
//! The output is both human-readable ([`ConvergenceReport::render`])
//! and machine-readable ([`ConvergenceReport::to_json`], published as
//! `results/BENCH_convergence.json` by `ddsc convergence`).

use std::fmt::Write as _;
use std::time::Instant;

use ddsc_core::{simulate_stream, PaperConfig, SimConfig, StreamError};
use ddsc_workloads::Benchmark;

/// One rung of the convergence ladder: a full streamed simulation at a
/// given trace length.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergencePoint {
    /// Requested trace length (dynamic instructions).
    pub len: usize,
    /// Instructions actually simulated (equals `len` for the looping
    /// workloads; less only if a program halts early).
    pub instructions: u64,
    /// Machine cycles the cell took.
    pub cycles: u64,
    /// Instructions per cycle at this length.
    pub ipc: f64,
    /// Host wall-clock seconds of the streamed simulation.
    pub seconds: f64,
    /// Process peak RSS (`VmHWM`) in bytes when this point finished; 0
    /// where unavailable. Points run in ladder order within one
    /// process, so a flat profile across rungs is the bounded-memory
    /// evidence: a 1000× longer trace must not grow the high-water
    /// mark materially.
    pub peak_rss_bytes: u64,
}

impl ConvergencePoint {
    /// Simulated millions of instructions per host wall-clock second.
    pub fn mips(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.instructions as f64 / self.seconds / 1.0e6
        }
    }
}

/// The full ladder for one `(benchmark, config, width)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceReport {
    /// Benchmark under study.
    pub benchmark: Benchmark,
    /// Machine configuration (paper A..E).
    pub config: PaperConfig,
    /// Issue width.
    pub width: u32,
    /// Workload data seed.
    pub seed: u64,
    /// Streaming chunk size (instructions pulled per refill).
    pub chunk_size: usize,
    /// One point per requested length, in request order.
    pub points: Vec<ConvergencePoint>,
}

impl ConvergenceReport {
    /// IPC of the longest (final) rung — the reference the shorter
    /// rungs are compared against.
    pub fn reference_ipc(&self) -> f64 {
        self.points.last().map(|p| p.ipc).unwrap_or(0.0)
    }

    /// Renders the human-readable convergence table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "## Convergence: {} config {} width {} (seed {}, chunk {})",
            self.benchmark.models(),
            self.config.label(),
            self.width,
            self.seed,
            self.chunk_size
        );
        let reference = self.reference_ipc();
        let mut t = ddsc_util::TextTable::new(vec![
            "len".into(),
            "insts".into(),
            "cycles".into(),
            "IPC".into(),
            "vs longest".into(),
            "seconds".into(),
            "MIPS".into(),
            "peak RSS MiB".into(),
        ]);
        for p in &self.points {
            let delta = if reference > 0.0 {
                format!("{:+.3}%", 100.0 * (p.ipc - reference) / reference)
            } else {
                "n/a".into()
            };
            t.row(vec![
                p.len.to_string(),
                p.instructions.to_string(),
                p.cycles.to_string(),
                format!("{:.4}", p.ipc),
                delta,
                format!("{:.3}", p.seconds),
                format!("{:.2}", p.mips()),
                format!("{:.1}", p.peak_rss_bytes as f64 / (1024.0 * 1024.0)),
            ]);
        }
        let _ = write!(out, "{t}");
        out
    }

    /// Serialises the report as JSON (the `results/BENCH_convergence.json`
    /// payload). Hand-rolled: the repo deliberately has no serde.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"ddsc-convergence-v1\",");
        let _ = writeln!(out, "  \"benchmark\": \"{}\",", self.benchmark.models());
        let _ = writeln!(out, "  \"config\": \"{}\",", self.config.label());
        let _ = writeln!(out, "  \"width\": {},", self.width);
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"chunk_size\": {},", self.chunk_size);
        let _ = writeln!(out, "  \"reference_ipc\": {:.6},", self.reference_ipc());
        out.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"len\": {}, \"instructions\": {}, \"cycles\": {}, \"ipc\": {:.6}, \
                 \"seconds\": {:.6}, \"mips\": {:.4}, \"peak_rss_bytes\": {}}}",
                p.len,
                p.instructions,
                p.cycles,
                p.ipc,
                p.seconds,
                p.mips(),
                p.peak_rss_bytes
            );
            out.push_str(if i + 1 < self.points.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Runs the convergence ladder: one streamed simulation per length in
/// `lens`, in order. Memory stays bounded by the streaming window
/// regardless of length; `chunk_size` is clamped to at least 1.
///
/// # Errors
///
/// Propagates the first [`StreamError`] — a workload fault, trace
/// validation failure, or an unsupported streaming configuration.
pub fn convergence_study(
    benchmark: Benchmark,
    config: PaperConfig,
    width: u32,
    seed: u64,
    lens: &[usize],
    chunk_size: usize,
) -> Result<ConvergenceReport, StreamError> {
    let sim_config = SimConfig::paper(config, width);
    let mut points = Vec::with_capacity(lens.len());
    for &len in lens {
        let mut src = benchmark.source(seed, len);
        let t0 = Instant::now();
        let r = simulate_stream(&mut src, &sim_config, chunk_size)?;
        let seconds = t0.elapsed().as_secs_f64();
        points.push(ConvergencePoint {
            len,
            instructions: r.instructions,
            cycles: r.cycles,
            ipc: r.ipc(),
            seconds,
            peak_rss_bytes: ddsc_util::peak_rss_bytes().unwrap_or(0),
        });
    }
    Ok(ConvergenceReport {
        benchmark,
        config,
        width,
        seed,
        chunk_size,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddsc_core::simulate;

    #[test]
    fn the_ladder_matches_whole_trace_simulation_bit_for_bit() {
        let report =
            convergence_study(Benchmark::Li, PaperConfig::D, 8, 1996, &[2_000, 8_000], 512)
                .unwrap();
        assert_eq!(report.points.len(), 2);
        for p in &report.points {
            assert_eq!(p.instructions, p.len as u64);
            assert!(p.ipc > 0.0);
            let whole = Benchmark::Li.trace(1996, p.len).unwrap();
            let r = simulate(&whole, &SimConfig::paper(PaperConfig::D, 8));
            assert_eq!(p.cycles, r.cycles, "len {}", p.len);
            assert_eq!(p.ipc, r.ipc(), "len {}", p.len);
        }
        assert_eq!(report.reference_ipc(), report.points[1].ipc);
    }

    #[test]
    fn report_renders_and_serialises() {
        let report = convergence_study(
            Benchmark::Compress,
            PaperConfig::A,
            4,
            7,
            &[1_000, 3_000],
            256,
        )
        .unwrap();
        let text = report.render();
        assert!(text.contains("Convergence: 026.compress config A width 4"));
        assert!(text.contains("vs longest"));
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"ddsc-convergence-v1\""));
        assert!(json.contains("\"benchmark\": \"026.compress\""));
        assert!(json.contains("\"points\""));
        assert!(json.contains("\"peak_rss_bytes\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn an_empty_ladder_is_harmless() {
        let report = convergence_study(Benchmark::Go, PaperConfig::B, 4, 1, &[], 64).unwrap();
        assert!(report.points.is_empty());
        assert_eq!(report.reference_ipc(), 0.0);
        assert!(report.render().contains("Convergence"));
    }
}
