//! Trace-suite generation and a thread-safe memoising simulation lab.
//!
//! [`Lab`] owns one generated trace [`Suite`] plus a concurrent result
//! cache keyed by `(benchmark, configuration, width)`. Drivers take
//! `&Lab` and call [`Lab::result`] freely from any thread; the batch
//! entry point [`Lab::prewarm`] fans a cell grid out over a thread pool
//! so figures and tables consume already-computed results.
//!
//! The lab also owns the per-benchmark **analysis pre-pass**: the first
//! cell that touches a benchmark builds its [`PreparedTrace`] (dependence
//! edges, predictor verdict streams, collapse eligibility — everything a
//! configuration sweep would otherwise recompute per cell) exactly once
//! behind a `OnceLock`, and every subsequent cell for that benchmark
//! reuses it through [`Lab::prepared`]. A full grid pays the pre-pass
//! six times (once per benchmark) instead of once per cell.
//!
//! Determinism guarantee: `simulate` is a pure function of
//! `(trace, config)`, the prepared path is bit-identical to it (asserted
//! by `ddsc-core`'s reference tests), every cell is simulated at most
//! once, and cached results are shared by `Arc` — so the parallel path
//! is bit-identical to the serial one (asserted by the root
//! `prewarm_determinism` test). Each simulation's wall-clock is recorded
//! as a [`CellTiming`]; [`Lab::report`] aggregates them into a
//! [`LabReport`] with per-cell MIPS, pre-pass cost and the
//! parallel-vs-serial speedup.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

use ddsc_core::{
    simulate_prepared, simulate_with_metrics, try_simulate_prepared, try_simulate_with_metrics,
    CancelToken, CycleAttribution, PaperConfig, PreparedTrace, SimConfig, SimMetrics, SimResult,
    TraceValidator,
};
use ddsc_trace::io::write_trace;
use ddsc_trace::Trace;
use ddsc_util::fnv1a;
use ddsc_util::journal::{Journal, JournalRecord};
use ddsc_workloads::Benchmark;

use crate::cache::CacheError;
use crate::cellstore::CellStore;
use crate::parallel::{num_threads, par_map};

/// Transient cache-read retries before falling back to regeneration.
const CACHE_RETRIES: usize = 3;

/// Prefix of the panic message a cell raises when it exceeds its
/// wall-clock budget ([`Lab::with_cell_timeout`]). Containment sites
/// classify a contained failure as a timeout by this prefix, so the
/// cancellation signal survives the panic-payload round trip without a
/// side channel.
const TIMEOUT_PREFIX: &str = "cell timed out";

/// One cell of the experiment grid.
pub type Cell = (Benchmark, PaperConfig, u32);

/// Parameters for one reproduction run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuiteConfig {
    /// Workload data seed (the paper's "input file").
    pub seed: u64,
    /// Dynamic instructions per benchmark trace (the paper caps at 250M;
    /// our loop-dominated kernels converge far earlier — see
    /// EXPERIMENTS.md for the convergence check).
    pub trace_len: usize,
    /// The issue widths to sweep.
    pub widths: Vec<u32>,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            seed: 1996,
            trace_len: 300_000,
            widths: SimConfig::PAPER_WIDTHS.to_vec(),
        }
    }
}

/// The generated benchmark traces, shareable across worker threads.
#[derive(Debug, Clone)]
pub struct Suite {
    traces: Vec<(Benchmark, Arc<Trace>)>,
    config: SuiteConfig,
}

impl Suite {
    /// Executes all six benchmarks (in parallel) and collects their
    /// traces.
    ///
    /// # Panics
    ///
    /// Panics if a workload program faults — that would be a bug in
    /// `ddsc-workloads`, covered by its tests.
    pub fn generate(config: SuiteConfig) -> Suite {
        let benches: Vec<Benchmark> = Benchmark::ALL.to_vec();
        let traces = par_map(&benches, num_threads(), |&b| {
            let t = b
                .trace(config.seed, config.trace_len)
                .unwrap_or_else(|e| panic!("workload {b} faulted: {e}"));
            (b, Arc::new(t))
        });
        Suite { traces, config }
    }

    /// Like [`Suite::generate`], but consults an on-disk
    /// [`TraceCache`](crate::TraceCache) first and stores fresh traces
    /// back into it. The load path degrades gracefully, never fatally:
    /// transient I/O errors are retried with bounded backoff, and a
    /// corrupt entry — or one that passes the checksum but fails
    /// [`TraceValidator`] — is reported on stderr and regenerated.
    /// Store failures are reported but never fail the run.
    pub fn generate_cached(config: SuiteConfig, cache: &crate::TraceCache) -> Suite {
        let benches: Vec<Benchmark> = Benchmark::ALL.to_vec();
        let traces = par_map(&benches, num_threads(), |&b| {
            let cached =
                match cache.load_with_retry(b.name(), config.seed, config.trace_len, CACHE_RETRIES)
                {
                    Ok(t) => match TraceValidator::new().validate(&t) {
                        Ok(()) => Some(t),
                        Err(e) => {
                            eprintln!(
                                "warning: cached {} trace fails validation ({e}); regenerating",
                                b.name()
                            );
                            None
                        }
                    },
                    Err(CacheError::Missing) => None,
                    Err(e) => {
                        eprintln!(
                            "warning: could not load cached {} trace ({e}); regenerating",
                            b.name()
                        );
                        None
                    }
                };
            // On a miss the workload is streamed straight into the
            // cache file chunk by chunk (generation never holds the
            // whole trace in memory) and loaded back for the in-memory
            // suite. Any failure on that path falls back to plain
            // in-memory generation, reported but never fatal.
            let t = match cached {
                Some(t) => t,
                None => {
                    let mut src = b.source(config.seed, config.trace_len);
                    let streamed = cache
                        .store_source(
                            b.name(),
                            config.seed,
                            config.trace_len,
                            &mut src,
                            crate::cache::DEFAULT_FRAME_RECORDS,
                        )
                        .map_err(|e| e.to_string())
                        .and_then(|_| {
                            cache
                                .try_load(b.name(), config.seed, config.trace_len)
                                .map_err(|e| e.to_string())
                        });
                    match streamed {
                        Ok(t) => t,
                        Err(e) => {
                            eprintln!(
                                "warning: could not cache {} trace ({e}); generating in memory",
                                b.name()
                            );
                            b.trace(config.seed, config.trace_len)
                                .unwrap_or_else(|e| panic!("workload {b} faulted: {e}"))
                        }
                    }
                }
            };
            (b, Arc::new(t))
        });
        Suite { traces, config }
    }

    /// The trace of one benchmark.
    pub fn trace(&self, b: Benchmark) -> &Trace {
        &self
            .traces
            .iter()
            .find(|(x, _)| *x == b)
            .expect("suite has all benchmarks")
            .1
    }

    /// The trace of one benchmark, shared.
    pub fn trace_arc(&self, b: Benchmark) -> Arc<Trace> {
        Arc::clone(
            &self
                .traces
                .iter()
                .find(|(x, _)| *x == b)
                .expect("suite has all benchmarks")
                .1,
        )
    }

    /// The suite parameters.
    pub fn config(&self) -> &SuiteConfig {
        &self.config
    }

    /// Benchmarks with their traces.
    pub fn iter(&self) -> impl Iterator<Item = (Benchmark, &Trace)> {
        self.traces.iter().map(|(b, t)| (*b, t.as_ref()))
    }
}

/// Wall-clock and throughput of one executed simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct CellTiming {
    /// The benchmark simulated.
    pub benchmark: Benchmark,
    /// Cell label (a paper configuration, or a free-form tag for
    /// extension/ablation work).
    pub label: String,
    /// Issue width.
    pub width: u32,
    /// Dynamic instructions simulated.
    pub instructions: u64,
    /// Host wall-clock seconds the simulation took.
    pub seconds: f64,
    /// Process peak RSS (`VmHWM`) observed when the cell finished, in
    /// bytes; 0 where the platform cannot report it.
    ///
    /// The name says what it is: a *process-wide* high-water mark, not
    /// a per-cell measurement. VmHWM never decreases, so within one run
    /// the values are monotone in completion order — a later cell
    /// "inherits" every earlier cell's peak — and only the final value
    /// (the run-level `peak_rss_bytes`) means anything in isolation.
    /// Serialised as `process_peak_rss_bytes` to keep readers from
    /// summing or comparing cells as if it were per-cell usage.
    pub process_peak_rss_bytes: u64,
}

impl CellTiming {
    /// Simulated (dynamic) instructions per host second, in millions.
    pub fn mips(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.instructions as f64 / self.seconds / 1e6
        }
    }
}

/// A worker failure surfaced by [`Lab::try_prewarm`], naming the grid
/// cell whose simulation panicked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrewarmError {
    /// The `(benchmark, configuration, width)` cell that failed.
    pub cell: Cell,
    /// The panic payload, rendered best-effort.
    pub message: String,
}

impl std::fmt::Display for PrewarmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (b, c, width) = self.cell;
        write!(
            f,
            "prewarm worker panicked on cell ({}, config {}, width {}): {}",
            b.models(),
            c.label(),
            width,
            self.message
        )
    }
}

impl std::error::Error for PrewarmError {}

/// How one grid cell ended up: simulated to a result, or failed with a
/// contained, rendered error. Failure of one cell never takes down the
/// rest of the grid — see [`Lab::prewarm_degraded`].
#[derive(Debug, Clone)]
pub enum CellOutcome {
    /// The cell simulated normally.
    Completed(Arc<SimResult>),
    /// The cell's simulation panicked or failed validation; the error
    /// is recorded and the cell is skipped by degraded rendering.
    Failed {
        /// The rendered failure message.
        error: String,
    },
    /// The cell exceeded its wall-clock budget
    /// ([`Lab::with_cell_timeout`]) and was cancelled cooperatively.
    /// Degraded rendering skips it like any other failure, but drivers
    /// report timeouts distinctly — a timeout usually means the budget
    /// is wrong, not the simulator.
    TimedOut {
        /// The rendered timeout message (names the cell and budget).
        error: String,
    },
}

impl CellOutcome {
    /// The result, if the cell completed.
    pub fn result(&self) -> Option<&Arc<SimResult>> {
        match self {
            CellOutcome::Completed(r) => Some(r),
            CellOutcome::Failed { .. } | CellOutcome::TimedOut { .. } => None,
        }
    }
}

/// One recorded cell failure: the rendered message plus whether the
/// cell was cancelled on its wall-clock deadline (reported distinctly
/// from a genuine simulation failure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFailure {
    /// The rendered failure message.
    pub error: String,
    /// Whether the failure was a cooperative deadline cancellation.
    pub timed_out: bool,
}

impl CellFailure {
    fn from_message(error: String) -> CellFailure {
        CellFailure {
            timed_out: error.starts_with(TIMEOUT_PREFIX),
            error,
        }
    }

    fn into_outcome(self) -> CellOutcome {
        if self.timed_out {
            CellOutcome::TimedOut { error: self.error }
        } else {
            CellOutcome::Failed { error: self.error }
        }
    }
}

/// One failed grid cell as reported by [`LabReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailedCell {
    /// Benchmark display name (`Benchmark::models`).
    pub benchmark: String,
    /// Paper configuration label (`A`..`E`).
    pub config: String,
    /// Issue width.
    pub width: u32,
    /// Whether this cell hit its wall-clock deadline rather than
    /// failing outright.
    pub timed_out: bool,
    /// The rendered failure message.
    pub error: String,
}

/// Renders a caught panic payload (`&str` or `String` in practice).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Escapes a string for the hand-rolled JSON output (failure messages
/// are free-form and may contain quotes or newlines).
fn json_escape(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The run-supervision hooks of one lab: the write-ahead journal every
/// cell transition is appended to, and the on-disk store finished cell
/// results are published into (so a resumed run can restore them).
#[derive(Debug)]
struct Supervision {
    journal: Arc<Journal>,
    store: CellStore,
}

/// A thread-safe memoising simulation driver: each `(benchmark,
/// configuration, width)` triple is simulated at most once per lab.
#[derive(Debug)]
pub struct Lab {
    suite: Suite,
    cache: RwLock<HashMap<Cell, Arc<SimResult>>>,
    /// When set, every cell also runs the metrics observer and its
    /// [`SimMetrics`] are cached alongside the result.
    profiling: bool,
    metrics: RwLock<HashMap<Cell, Arc<SimMetrics>>>,
    /// One lazily-built analysis pre-pass per benchmark, shared by every
    /// cell that simulates that benchmark.
    prepared: HashMap<Benchmark, OnceLock<Arc<PreparedTrace>>>,
    /// Wall-clock seconds each executed pre-pass took, keyed like
    /// `prepared`.
    prepass_timings: Mutex<Vec<(Benchmark, f64)>>,
    timings: Mutex<Vec<CellTiming>>,
    /// Wall-clock seconds spent inside `prewarm` fan-outs (the parallel
    /// path) — the numerator of the speedup-vs-serial estimate.
    prewarm_wall: Mutex<f64>,
    /// Cells forced to panic inside `run_cell` — the deterministic
    /// fault hook that degraded-mode tests and `repro --inject-fault`
    /// are written against.
    injected_faults: HashSet<Cell>,
    /// Cells whose simulation failed during a degraded prewarm, with
    /// their rendered failure messages. Lookups of a recorded cell fail
    /// fast with the same message instead of re-running the simulation.
    failed: RwLock<HashMap<Cell, CellFailure>>,
    /// Per-cell wall-clock budget; cells exceeding it are cancelled
    /// cooperatively and recorded as timed out. `None` (the default)
    /// keeps the timing loop on the uncancellable hot path.
    cell_timeout: Option<Duration>,
    /// Journal + cell store, when this lab runs supervised.
    supervision: Option<Supervision>,
    /// Deterministic crash hook: exit the *process* once this many
    /// cells have finished. Crash-consistency tests use it to die
    /// between journal records at a reproducible point.
    abort_after: Option<usize>,
    /// Cells finished by this lab (drives `abort_after`).
    completed: AtomicUsize,
    /// Cells restored from the cell store by [`Lab::resume`].
    resumed: AtomicUsize,
    /// Cells the journal named but that had to be re-run.
    replayed: AtomicUsize,
    /// Memoized FNV-1a checksum of each benchmark's serialized trace —
    /// the trace component of [`Lab::cell_digest`].
    trace_checksums: Mutex<HashMap<Benchmark, u64>>,
}

impl Lab {
    /// Generates the trace suite and an empty result cache.
    pub fn new(config: SuiteConfig) -> Lab {
        Lab::from_suite(Suite::generate(config))
    }

    /// Wraps an existing suite.
    pub fn from_suite(suite: Suite) -> Lab {
        let prepared = suite.iter().map(|(b, _)| (b, OnceLock::new())).collect();
        Lab {
            suite,
            cache: RwLock::new(HashMap::new()),
            profiling: false,
            metrics: RwLock::new(HashMap::new()),
            prepared,
            prepass_timings: Mutex::new(Vec::new()),
            timings: Mutex::new(Vec::new()),
            prewarm_wall: Mutex::new(0.0),
            injected_faults: HashSet::new(),
            failed: RwLock::new(HashMap::new()),
            cell_timeout: None,
            supervision: None,
            abort_after: None,
            completed: AtomicUsize::new(0),
            resumed: AtomicUsize::new(0),
            replayed: AtomicUsize::new(0),
            trace_checksums: Mutex::new(HashMap::new()),
        }
    }

    /// Forces `cell` to fail when it is simulated — a deterministic
    /// stand-in for "this one simulation panics" that fault-containment
    /// tests and `repro --inject-fault` use. May be called repeatedly
    /// to arm several cells.
    pub fn with_injected_fault(mut self, cell: Cell) -> Lab {
        self.injected_faults.insert(cell);
        self
    }

    /// Gives every cell a wall-clock budget: a simulation still running
    /// when it expires is cancelled cooperatively (see
    /// [`ddsc_core::CancelToken`]) and recorded as timed out. With no
    /// budget (the default) the timing loop monomorphizes to the
    /// uncancellable hot path — arming a timeout is the only thing that
    /// puts the poll in the loop.
    pub fn with_cell_timeout(mut self, budget: Duration) -> Lab {
        self.cell_timeout = Some(budget);
        self
    }

    /// The per-cell wall-clock budget, if one is armed.
    pub fn cell_timeout(&self) -> Option<Duration> {
        self.cell_timeout
    }

    /// Supervises this lab's run: every cell transition is appended to
    /// `journal` (write-ahead, before results are visible anywhere
    /// else) and every finished cell's result is published into
    /// `store`, keyed by [`Lab::cell_digest`]. Together they make a
    /// killed run resumable — see [`Lab::resume`].
    pub fn with_supervision(mut self, journal: Arc<Journal>, store: CellStore) -> Lab {
        self.supervision = Some(Supervision { journal, store });
        self
    }

    /// Arms the deterministic crash hook: the process exits (code 3,
    /// without unwinding) immediately after the `n`-th cell finishes —
    /// after its `CellFinished` journal record, before `RunFinished`.
    /// Crash-consistency tests use this to die at a reproducible point
    /// between journal records; it has no place in a normal run.
    pub fn with_abort_after(mut self, n: usize) -> Lab {
        self.abort_after = Some(n);
        self
    }

    /// Turns on the metrics observer for every cell this lab simulates.
    ///
    /// Profiled results are bit-identical to unprofiled ones (the
    /// observer never feeds back into the timing loop — asserted by the
    /// `ddsc-core` bit-identity tests); the only cost is the bookkeeping
    /// itself, so profiling is opt-in per lab rather than per call.
    pub fn with_profiling(mut self) -> Lab {
        self.profiling = true;
        self
    }

    /// Whether this lab records [`SimMetrics`] per cell.
    pub fn is_profiling(&self) -> bool {
        self.profiling
    }

    /// The analysis pre-pass of one benchmark, built on first use and
    /// shared across every configuration cell afterwards. Racing callers
    /// block on the `OnceLock` until the single builder finishes, so the
    /// pre-pass runs exactly once per benchmark per lab.
    pub fn prepared(&self, b: Benchmark) -> Arc<PreparedTrace> {
        let slot = self.prepared.get(&b).expect("suite has all benchmarks");
        Arc::clone(slot.get_or_init(|| {
            let t0 = Instant::now();
            let p = Arc::new(PreparedTrace::build(self.suite.trace(b)));
            self.prepass_timings
                .lock()
                .expect("lab prepass timings poisoned")
                .push((b, t0.elapsed().as_secs_f64()));
            p
        }))
    }

    /// `(benchmark, seconds)` for every pre-pass actually executed, in
    /// completion order.
    pub fn prepass_timings(&self) -> Vec<(Benchmark, f64)> {
        self.prepass_timings
            .lock()
            .expect("lab prepass timings poisoned")
            .clone()
    }

    /// The underlying suite.
    pub fn suite(&self) -> &Suite {
        &self.suite
    }

    /// The widths this lab sweeps.
    pub fn widths(&self) -> Vec<u32> {
        self.suite.config().widths.clone()
    }

    /// The full `(benchmark, configuration, width)` grid this lab's
    /// suite spans.
    pub fn grid(&self) -> Vec<Cell> {
        let mut cells = Vec::new();
        for &w in &self.suite.config().widths {
            for c in PaperConfig::ALL {
                for (b, _) in self.suite.iter() {
                    cells.push((b, c, w));
                }
            }
        }
        cells
    }

    fn cached(&self, cell: &Cell) -> Option<Arc<SimResult>> {
        self.cache
            .read()
            .expect("lab cache poisoned")
            .get(cell)
            .map(Arc::clone)
    }

    /// The FNV-1a checksum of one benchmark's serialized trace,
    /// computed once per lab. Racing callers serialize on the map lock
    /// so the (cheap but not free) serialization runs at most once.
    fn trace_checksum(&self, b: Benchmark) -> u64 {
        let mut map = self
            .trace_checksums
            .lock()
            .expect("lab trace checksums poisoned");
        if let Some(&sum) = map.get(&b) {
            return sum;
        }
        let mut bytes = Vec::new();
        write_trace(&mut bytes, self.suite.trace(b)).expect("in-memory writes cannot fail");
        let sum = fnv1a(&bytes);
        map.insert(b, sum);
        sum
    }

    /// The identity of one cell's *inputs*: an FNV-1a digest of the
    /// serialized trace checksum, the configuration label and the issue
    /// width. Simulation is a pure function of exactly those inputs, so
    /// a journal record carrying a matching digest proves the stored
    /// result is the one this lab would recompute — and any drift
    /// (different seed, trace length, workload code, config) changes
    /// the digest and forces a re-run.
    pub fn cell_digest(&self, (b, c, width): Cell) -> u64 {
        let mut key = Vec::new();
        key.extend_from_slice(&self.trace_checksum(b).to_le_bytes());
        key.extend_from_slice(c.label().as_bytes());
        key.extend_from_slice(&width.to_le_bytes());
        fnv1a(&key)
    }

    /// Appends one record to the supervision journal, if supervision is
    /// on. Journal I/O failures degrade the run to unsupervised (with a
    /// warning) rather than failing it — the journal exists to make
    /// crashes recoverable, not to add a new way to crash.
    fn journal_append(&self, rec: &JournalRecord) {
        if let Some(sup) = &self.supervision {
            if let Err(e) = sup.journal.append(rec) {
                eprintln!("warning: could not append to run journal: {e}");
            }
        }
    }

    /// Records one contained cell failure (classifying timeouts by
    /// message prefix), journals it, and returns what was stored. The
    /// first recording of a cell wins; duplicates neither overwrite nor
    /// re-journal.
    fn record_failure(&self, cell: Cell, message: String) -> CellFailure {
        {
            let mut map = self.failed.write().expect("lab failure map poisoned");
            if let Some(existing) = map.get(&cell) {
                return existing.clone();
            }
            map.insert(cell, CellFailure::from_message(message.clone()));
        }
        let (b, c, width) = cell;
        self.journal_append(&JournalRecord::CellFailed {
            bench: b.name().to_string(),
            config: c.label().to_string(),
            width,
            error: message.clone(),
        });
        CellFailure::from_message(message)
    }

    fn record_metrics(&self, cell: Cell, metrics: SimMetrics) {
        self.metrics
            .write()
            .expect("lab metrics poisoned")
            .entry(cell)
            .or_insert_with(|| Arc::new(metrics));
    }

    /// Runs one cell and records its timing. Pure per (trace, config),
    /// so concurrent duplicate runs return identical results. The shared
    /// pre-pass is resolved first so `CellTiming` measures only the
    /// timing loop.
    ///
    /// Under supervision the cell's lifecycle brackets the work:
    /// `CellStarted` is journaled before the simulation, and on success
    /// the result is published to the cell store *before* `CellFinished`
    /// is journaled — so a `CellFinished` record always points at a
    /// restorable result, whatever instant the process dies at.
    fn run_cell(&self, (b, c, width): Cell) -> Arc<SimResult> {
        let cell = (b, c, width);
        self.journal_append(&JournalRecord::CellStarted {
            bench: b.name().to_string(),
            config: c.label().to_string(),
            width,
        });
        if self.injected_faults.contains(&cell) {
            panic!(
                "injected fault: cell ({}, config {}, width {})",
                b.models(),
                c.label(),
                width
            );
        }
        let prepared = self.prepared(b);
        let config = SimConfig::paper(c, width);
        let t0 = Instant::now();
        // Four paths, not two wrappers: the timeout-off arms call the
        // plain entry points so the loop monomorphizes without the
        // cancellation poll (the observer seam's zero-cost contract).
        let outcome = match (self.cell_timeout, self.profiling) {
            (None, false) => Ok(simulate_prepared(&prepared, &config)),
            (None, true) => {
                let (sim, metrics) = simulate_with_metrics(&prepared, &config);
                self.record_metrics(cell, metrics);
                Ok(sim)
            }
            (Some(budget), false) => {
                try_simulate_prepared(&prepared, &config, &CancelToken::with_deadline(budget))
            }
            (Some(budget), true) => {
                try_simulate_with_metrics(&prepared, &config, &CancelToken::with_deadline(budget))
                    .map(|(sim, metrics)| {
                        self.record_metrics(cell, metrics);
                        sim
                    })
            }
        };
        let sim = outcome.unwrap_or_else(|_| {
            let budget = self.cell_timeout.expect("only deadline-armed paths cancel");
            panic!(
                "{TIMEOUT_PREFIX}: cell ({}, config {}, width {}) exceeded its {:.3} s wall-clock budget",
                b.models(),
                c.label(),
                width,
                budget.as_secs_f64()
            );
        });
        let seconds = t0.elapsed().as_secs_f64();
        self.timings
            .lock()
            .expect("lab timings poisoned")
            .push(CellTiming {
                benchmark: b,
                label: c.label().to_string(),
                width,
                instructions: sim.instructions,
                seconds,
                process_peak_rss_bytes: ddsc_util::peak_rss_bytes().unwrap_or(0),
            });
        if let Some(sup) = &self.supervision {
            let digest = self.cell_digest(cell);
            if let Err(e) = sup.store.save(digest, &sim) {
                eprintln!(
                    "warning: could not store result of cell ({}, config {}, width {}): {e}",
                    b.name(),
                    c.label(),
                    width
                );
            }
            self.journal_append(&JournalRecord::CellFinished {
                bench: b.name().to_string(),
                config: c.label().to_string(),
                width,
                digest,
            });
        }
        let done = self.completed.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some(n) = self.abort_after {
            if done >= n {
                eprintln!("injected abort: exiting after {done} finished cells");
                std::process::exit(3);
            }
        }
        Arc::new(sim)
    }

    fn insert(&self, cell: Cell, result: Arc<SimResult>) -> Arc<SimResult> {
        let mut cache = self.cache.write().expect("lab cache poisoned");
        // Keep the first insertion so every caller shares one allocation
        // (a racing duplicate computed the same bits anyway).
        Arc::clone(cache.entry(cell).or_insert(result))
    }

    /// Installs a cell result computed *outside* this process (a
    /// distributed worker), through the same supervision path
    /// [`Lab::result`] uses: the result is published to the cell store
    /// before `CellFinished` is journaled, a [`CellTiming`] carrying the
    /// worker-reported seconds is recorded, and the result lands in the
    /// shared cache. Already-cached cells are left untouched (the first
    /// result wins, as everywhere else in the lab).
    pub fn install_result(&self, cell: Cell, result: SimResult, seconds: f64) {
        if self.cached(&cell).is_some() {
            return;
        }
        let (b, c, width) = cell;
        self.timings
            .lock()
            .expect("lab timings poisoned")
            .push(CellTiming {
                benchmark: b,
                label: c.label().to_string(),
                width,
                instructions: result.instructions,
                seconds,
                process_peak_rss_bytes: ddsc_util::peak_rss_bytes().unwrap_or(0),
            });
        if let Some(sup) = &self.supervision {
            let digest = self.cell_digest(cell);
            if let Err(e) = sup.store.save(digest, &result) {
                eprintln!(
                    "warning: could not store result of cell ({}, config {}, width {}): {e}",
                    b.name(),
                    c.label(),
                    width
                );
            }
            self.journal_append(&JournalRecord::CellFinished {
                bench: b.name().to_string(),
                config: c.label().to_string(),
                width,
                digest,
            });
        }
        self.completed.fetch_add(1, Ordering::SeqCst);
        self.insert(cell, Arc::new(result));
    }

    /// Records a cell failure decided *outside* this process (a
    /// distributed quarantine): journaled as `CellFailed` and visible to
    /// [`Lab::outcome`] / [`Lab::failed_cells`] exactly like a locally
    /// contained panic, so it feeds the same degraded-run contract.
    pub fn install_failure(&self, cell: Cell, message: String) {
        self.record_failure(cell, message);
    }

    /// The subset of `cells` that is neither cached nor recorded as
    /// failed, deduplicated, in input order — the work a distributed run
    /// still has to dispatch after a journal resume.
    pub fn uncached_cells(&self, cells: &[Cell]) -> Vec<Cell> {
        let cache = self.cache.read().expect("lab cache poisoned");
        let failed = self.failed.read().expect("lab failure map poisoned");
        let mut seen = HashSet::new();
        cells
            .iter()
            .filter(|c| !cache.contains_key(*c) && !failed.contains_key(*c) && seen.insert(**c))
            .copied()
            .collect()
    }

    /// Simulates (or returns the cached result of) one combination.
    ///
    /// # Panics
    ///
    /// Panics if the cell's simulation panics, or — immediately, with
    /// the recorded message — if a degraded prewarm already saw this
    /// cell fail. Renderers that must survive failed cells catch this
    /// per artifact; see [`Lab::outcome`] for the non-panicking form.
    pub fn result(&self, b: Benchmark, c: PaperConfig, width: u32) -> Arc<SimResult> {
        let cell = (b, c, width);
        if let Some(r) = self.cached(&cell) {
            return r;
        }
        if let Some(failure) = self.recorded_failure(&cell) {
            panic!("{}", failure.error);
        }
        let r = self.run_cell(cell);
        self.insert(cell, r)
    }

    fn recorded_failure(&self, cell: &Cell) -> Option<CellFailure> {
        self.failed
            .read()
            .expect("lab failure map poisoned")
            .get(cell)
            .cloned()
    }

    /// How one combination ends up, with any failure contained: a
    /// previously recorded failure is returned as-is, an uncached cell
    /// is simulated under a panic guard, and a fresh failure is
    /// recorded so later lookups fail fast.
    pub fn outcome(&self, b: Benchmark, c: PaperConfig, width: u32) -> CellOutcome {
        let cell = (b, c, width);
        if let Some(r) = self.cached(&cell) {
            return CellOutcome::Completed(r);
        }
        if let Some(failure) = self.recorded_failure(&cell) {
            return failure.into_outcome();
        }
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.run_cell(cell))) {
            Ok(r) => CellOutcome::Completed(self.insert(cell, r)),
            Err(payload) => self
                .record_failure(cell, panic_message(payload.as_ref()))
                .into_outcome(),
        }
    }

    /// Every cell recorded as failed, in stable `(benchmark, config,
    /// width)` order, with its rendered failure message.
    pub fn failed_cells(&self) -> Vec<(Cell, String)> {
        self.cell_failures()
            .into_iter()
            .map(|(cell, failure)| (cell, failure.error))
            .collect()
    }

    /// Like [`Lab::failed_cells`], but keeping the full
    /// [`CellFailure`] (message + timeout classification).
    pub fn cell_failures(&self) -> Vec<(Cell, CellFailure)> {
        let mut cells: Vec<(Cell, CellFailure)> = self
            .failed
            .read()
            .expect("lab failure map poisoned")
            .iter()
            .map(|(cell, failure)| (*cell, failure.clone()))
            .collect();
        cells.sort_by(|((ab, ac, aw), _), ((bb, bc, bw), _)| {
            (ab.models(), ac.label(), aw).cmp(&(bb.models(), bc.label(), bw))
        });
        cells
    }

    /// Restores as much of a previous run as a recovered journal
    /// proves: every `CellFinished` record whose digest matches this
    /// lab's current inputs (see [`Lab::cell_digest`]) is loaded from
    /// the cell store straight into the result cache, and everything
    /// else the journal names — started-but-unfinished cells, failed
    /// cells, finished cells whose digest or stored bytes no longer
    /// check out — is left to re-run.
    ///
    /// Returns `(resumed, replayed)`: cells restored without
    /// re-simulation, and journal-named cells that must re-run. The
    /// counts also land in the [`LabReport`] as `resumed_cells` /
    /// `replayed_cells`.
    ///
    /// # Panics
    ///
    /// Panics if the lab has no supervision ([`Lab::with_supervision`])
    /// — there is no store to restore from.
    pub fn resume(&self, records: &[JournalRecord]) -> (usize, usize) {
        let sup = self
            .supervision
            .as_ref()
            .expect("Lab::resume requires supervision (Lab::with_supervision)");
        let by_name: HashMap<&str, Benchmark> =
            Benchmark::ALL.iter().map(|&b| (b.name(), b)).collect();
        let by_label: HashMap<&str, PaperConfig> =
            PaperConfig::ALL.iter().map(|&c| (c.label(), c)).collect();
        let grid: HashSet<Cell> = self.grid().into_iter().collect();
        let decode = |bench: &str, config: &str, width: u32| -> Option<Cell> {
            let cell = (*by_name.get(bench)?, *by_label.get(config)?, width);
            // A record outside the current grid belongs to some other
            // sweep (different widths, say); it neither restores nor
            // re-runs anything here.
            grid.contains(&cell).then_some(cell)
        };
        let mut resumed: HashSet<Cell> = HashSet::new();
        let mut named: HashSet<Cell> = HashSet::new();
        for rec in records {
            let (bench, config, width) = match rec {
                JournalRecord::CellStarted {
                    bench,
                    config,
                    width,
                } => (bench, config, *width),
                JournalRecord::CellFinished {
                    bench,
                    config,
                    width,
                    ..
                } => (bench, config, *width),
                JournalRecord::CellFailed {
                    bench,
                    config,
                    width,
                    ..
                } => (bench, config, *width),
                _ => continue,
            };
            let Some(cell) = decode(bench, config, width) else {
                continue;
            };
            named.insert(cell);
            let JournalRecord::CellFinished { digest, .. } = rec else {
                continue;
            };
            let (_, c, w) = cell;
            if *digest != self.cell_digest(cell) {
                continue;
            }
            if let Some(result) = sup.store.load(*digest, SimConfig::paper(c, w)) {
                self.insert(cell, Arc::new(result));
                resumed.insert(cell);
            }
        }
        let replayed = named.iter().filter(|c| !resumed.contains(c)).count();
        self.resumed.store(resumed.len(), Ordering::SeqCst);
        self.replayed.store(replayed, Ordering::SeqCst);
        (resumed.len(), replayed)
    }

    /// The metrics of one combination; simulates the cell first when
    /// necessary. Only available on a profiling lab
    /// ([`Lab::with_profiling`]).
    ///
    /// # Panics
    ///
    /// Panics if this lab was built without profiling — the cell results
    /// would exist but no metrics were ever collected for them.
    pub fn metrics(&self, b: Benchmark, c: PaperConfig, width: u32) -> Arc<SimMetrics> {
        assert!(
            self.profiling,
            "Lab::metrics requires a profiling lab (Lab::with_profiling)"
        );
        let cell = (b, c, width);
        // run_cell stores metrics before the result is cached, so after
        // result() the entry is guaranteed present.
        let _ = self.result(b, c, width);
        Arc::clone(
            self.metrics
                .read()
                .expect("lab metrics poisoned")
                .get(&cell)
                .expect("profiling run_cell always records metrics"),
        )
    }

    /// Simulates every not-yet-cached cell of `cells` in parallel over
    /// [`num_threads`] workers. Returns the number of cells actually
    /// simulated.
    ///
    /// # Panics
    ///
    /// Panics with the offending cell's name if a worker simulation
    /// panics — see [`Lab::try_prewarm`] for the non-panicking form.
    pub fn prewarm(&self, cells: &[Cell]) -> usize {
        self.try_prewarm(cells).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`Lab::prewarm`], but a panicking worker surfaces as a
    /// [`PrewarmError`] naming the `(benchmark, configuration, width)`
    /// cell that died, instead of poisoning the shared caches.
    ///
    /// Cells that completed before (or alongside) the failure stay
    /// cached, and the lab remains fully usable afterwards. When several
    /// workers fail, the error reports the first failing cell in grid
    /// order.
    pub fn try_prewarm(&self, cells: &[Cell]) -> Result<usize, PrewarmError> {
        let todo: Vec<Cell> = {
            let cache = self.cache.read().expect("lab cache poisoned");
            let mut seen = std::collections::HashSet::new();
            cells
                .iter()
                .filter(|c| !cache.contains_key(*c) && seen.insert(**c))
                .copied()
                .collect()
        };
        if todo.is_empty() {
            return Ok(0);
        }
        let t0 = Instant::now();
        let results = par_map(&todo, num_threads(), |&cell| {
            // Catch the panic on the worker itself: letting it unwind
            // through `par_map`'s scope would poison the result mutex
            // and turn a named failure into an opaque one.
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.run_cell(cell))).map_err(
                |payload| PrewarmError {
                    cell,
                    // `payload.as_ref()`, not `&payload`: a `&Box<dyn
                    // Any>` would itself unsize to `&dyn Any` and the
                    // downcast to the inner `&str` would never match.
                    message: panic_message(payload.as_ref()),
                },
            )
        });
        *self.prewarm_wall.lock().expect("lab wall poisoned") += t0.elapsed().as_secs_f64();
        let mut ran = 0usize;
        let mut first_err = None;
        for (cell, r) in todo.iter().zip(results) {
            match r {
                Ok(res) => {
                    self.insert(*cell, res);
                    ran += 1;
                }
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(ran),
        }
    }

    /// Prewarms the full paper grid ([`Lab::grid`]).
    pub fn prewarm_all(&self) -> usize {
        self.prewarm(&self.grid())
    }

    /// Like [`Lab::try_prewarm`], but failures are *contained* instead
    /// of surfaced: every panicking cell is recorded (all of them, not
    /// just the first) while the rest of the grid completes normally.
    /// Returns the number of cells simulated successfully; the failures
    /// are available from [`Lab::failed_cells`] and appear as
    /// `failed_cells` in the [`LabReport`].
    pub fn prewarm_degraded(&self, cells: &[Cell]) -> usize {
        let todo: Vec<Cell> = {
            let cache = self.cache.read().expect("lab cache poisoned");
            let failed = self.failed.read().expect("lab failure map poisoned");
            let mut seen = HashSet::new();
            // Cells with a recorded failure fail fast (matching
            // `Lab::outcome`) instead of re-running — a distributed run
            // quarantines poison cells before this prewarm sees them.
            cells
                .iter()
                .filter(|c| !cache.contains_key(*c) && !failed.contains_key(*c) && seen.insert(**c))
                .copied()
                .collect()
        };
        if todo.is_empty() {
            return 0;
        }
        let t0 = Instant::now();
        let results = par_map(&todo, num_threads(), |&cell| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.run_cell(cell)))
                .map_err(|payload| panic_message(payload.as_ref()))
        });
        *self.prewarm_wall.lock().expect("lab wall poisoned") += t0.elapsed().as_secs_f64();
        let mut ran = 0usize;
        for (cell, r) in todo.iter().zip(results) {
            match r {
                Ok(res) => {
                    self.insert(*cell, res);
                    ran += 1;
                }
                Err(message) => {
                    self.record_failure(*cell, message);
                }
            }
        }
        ran
    }

    /// Per-benchmark IPCs for one configuration and width.
    pub fn ipcs(&self, benches: &[Benchmark], c: PaperConfig, width: u32) -> Vec<f64> {
        benches
            .iter()
            .map(|&b| self.result(b, c, width).ipc())
            .collect()
    }

    /// Per-benchmark speedups of `c` over configuration A at the same
    /// width.
    pub fn speedups(&self, benches: &[Benchmark], c: PaperConfig, width: u32) -> Vec<f64> {
        benches
            .iter()
            .map(|&b| {
                let base = self.result(b, PaperConfig::A, width);
                let r = self.result(b, c, width);
                r.speedup_over(&base)
            })
            .collect()
    }

    /// Number of simulations run so far (for cache tests).
    pub fn simulations_run(&self) -> usize {
        self.cache.read().expect("lab cache poisoned").len()
    }

    /// A snapshot of every recorded cell timing, in completion order.
    pub fn timings(&self) -> Vec<CellTiming> {
        self.timings.lock().expect("lab timings poisoned").clone()
    }

    /// Aggregates recorded timings into a throughput report. On a
    /// profiling lab the report also carries per-cell cycle attribution
    /// ([`CellMetrics`]), sorted by `(benchmark, config, width)` so the
    /// serialisation is stable whatever order the cells completed in.
    pub fn report(&self) -> LabReport {
        let cells = self.timings();
        // fold from +0.0: `Sum for f64` starts at -0.0, which an empty
        // report would render as "-0.000 s".
        let serial_seconds: f64 = cells.iter().map(|c| c.seconds).fold(0.0, |a, c| a + c);
        let prewarm_wall = *self.prewarm_wall.lock().expect("lab wall poisoned");
        let prepass = self
            .prepass_timings()
            .into_iter()
            .map(|(b, s)| (b.models().to_string(), s))
            .collect();
        let mut cell_metrics: Vec<CellMetrics> = self
            .metrics
            .read()
            .expect("lab metrics poisoned")
            .iter()
            .map(|(&(b, c, width), m)| CellMetrics {
                benchmark: b.models().to_string(),
                config: c.label().to_string(),
                width,
                // The audited identity: attributed cycles == total cycles.
                cycles: m.attribution.total(),
                attribution: m.attribution,
            })
            .collect();
        cell_metrics.sort_by(|a, b| {
            (&a.benchmark, &a.config, a.width).cmp(&(&b.benchmark, &b.config, b.width))
        });
        let failed_cells = self
            .cell_failures()
            .into_iter()
            .map(|((b, c, width), failure)| FailedCell {
                benchmark: b.models().to_string(),
                config: c.label().to_string(),
                width,
                timed_out: failure.timed_out,
                error: failure.error,
            })
            .collect();
        LabReport {
            threads: num_threads(),
            cells,
            cell_metrics,
            failed_cells,
            resumed_cells: self.resumed.load(Ordering::SeqCst),
            replayed_cells: self.replayed.load(Ordering::SeqCst),
            prepass,
            serial_seconds,
            // Cells simulated outside a prewarm fan-out ran serially on
            // the caller; count their time as wall time too.
            wall_seconds: if prewarm_wall > 0.0 {
                prewarm_wall
            } else {
                serial_seconds
            },
        }
    }
}

/// Cause-attributed cycle accounting for one profiled grid cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellMetrics {
    /// Benchmark display name (`Benchmark::models`).
    pub benchmark: String,
    /// Paper configuration label (`A`..`E`).
    pub config: String,
    /// Issue width.
    pub width: u32,
    /// Total simulated cycles (equal to `attribution.total()` by the
    /// audited accounting identity).
    pub cycles: u64,
    /// Where those cycles went.
    pub attribution: CycleAttribution,
}

/// Aggregated throughput over everything a [`Lab`] simulated.
#[derive(Debug, Clone)]
pub struct LabReport {
    /// Worker threads the lab fans out over.
    pub threads: usize,
    /// Every executed simulation.
    pub cells: Vec<CellTiming>,
    /// Per-cell cycle attribution, sorted by `(benchmark, config,
    /// width)`. Empty unless the lab ran with profiling on.
    pub cell_metrics: Vec<CellMetrics>,
    /// Cells whose simulation failed under degraded prewarming, sorted
    /// by `(benchmark, config, width)`. Empty on a clean run.
    pub failed_cells: Vec<FailedCell>,
    /// Cells restored from the cell store by [`Lab::resume`] instead of
    /// being re-simulated. Zero on a fresh (non-resumed) run.
    pub resumed_cells: usize,
    /// Cells a resumed journal named that had to re-run anyway
    /// (unfinished, failed, or stale). Zero on a fresh run.
    pub replayed_cells: usize,
    /// `(benchmark, seconds)` for every analysis pre-pass executed —
    /// one entry per benchmark touched, however many cells reused it.
    pub prepass: Vec<(String, f64)>,
    /// Sum of per-cell wall times — what a serial run would have cost.
    pub serial_seconds: f64,
    /// Wall-clock of the actual (parallel) execution.
    pub wall_seconds: f64,
}

impl LabReport {
    /// Total dynamic instructions simulated.
    pub fn instructions(&self) -> u64 {
        self.cells.iter().map(|c| c.instructions).sum()
    }

    /// Total seconds spent in analysis pre-passes.
    pub fn prepass_seconds(&self) -> f64 {
        self.prepass.iter().map(|(_, s)| s).fold(0.0, |a, s| a + s)
    }

    /// Cells served per executed pre-pass — how far the shared analysis
    /// amortises. A full paper grid gives `widths x configs` per
    /// benchmark.
    pub fn cells_per_prepass(&self) -> f64 {
        if self.prepass.is_empty() {
            0.0
        } else {
            self.cells.len() as f64 / self.prepass.len() as f64
        }
    }

    /// Aggregate simulated instructions per host second, in millions,
    /// against the real (parallel) wall clock.
    pub fn mips(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.instructions() as f64 / self.wall_seconds / 1e6
        }
    }

    /// Estimated wall-clock speedup of the parallel fan-out over a
    /// serial evaluation of the same cells, or `None` on a
    /// single-threaded lab — with one worker the "serial equivalent"
    /// *is* the wall clock, and reporting the residual ratio (≈0.99
    /// from accounting noise) misread as a parallel slowdown.
    pub fn speedup_vs_serial(&self) -> Option<f64> {
        if self.threads <= 1 || self.wall_seconds <= 0.0 {
            None
        } else {
            Some(self.serial_seconds / self.wall_seconds)
        }
    }

    /// The run's peak RSS in bytes: the largest per-cell observation
    /// (the process high-water mark at the last completed cell), 0 when
    /// unavailable.
    pub fn peak_rss_bytes(&self) -> u64 {
        self.cells
            .iter()
            .map(|c| c.process_peak_rss_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Renders the human-readable `--timing` report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "## Lab throughput report");
        let _ = writeln!(
            out,
            "{} cells, {} simulated instructions, {} threads",
            self.cells.len(),
            self.instructions(),
            self.threads
        );
        let speedup = match self.speedup_vs_serial() {
            Some(s) => format!("{s:.2}x"),
            None => "n/a".to_string(),
        };
        let _ = writeln!(
            out,
            "wall {:.3} s (serial-equivalent {:.3} s, speedup {speedup}), {:.2} MIPS aggregate",
            self.wall_seconds,
            self.serial_seconds,
            self.mips()
        );
        let peak = self.peak_rss_bytes();
        if peak > 0 {
            let _ = writeln!(out, "peak RSS {:.1} MiB", peak as f64 / (1024.0 * 1024.0));
        }
        let _ = writeln!(
            out,
            "analysis pre-pass: {:.3} s over {} traces ({:.1} cells amortised per pre-pass)",
            self.prepass_seconds(),
            self.prepass.len(),
            self.cells_per_prepass()
        );
        if self.resumed_cells > 0 || self.replayed_cells > 0 {
            let _ = writeln!(
                out,
                "resumed from journal: {} cells restored, {} replayed",
                self.resumed_cells, self.replayed_cells
            );
        }
        if !self.failed_cells.is_empty() {
            let _ = writeln!(out, "failed cells: {}", self.failed_cells.len());
            for fc in &self.failed_cells {
                let _ = writeln!(
                    out,
                    "  {} config {} width {}{}: {}",
                    fc.benchmark,
                    fc.config,
                    fc.width,
                    if fc.timed_out { " (timed out)" } else { "" },
                    fc.error
                );
            }
        }
        let mut t = ddsc_util::TextTable::new(vec![
            "benchmark".into(),
            "config".into(),
            "width".into(),
            "insts".into(),
            "seconds".into(),
            "MIPS".into(),
        ]);
        for c in &self.cells {
            t.row(vec![
                c.benchmark.models().to_string(),
                c.label.clone(),
                c.width.to_string(),
                c.instructions.to_string(),
                format!("{:.4}", c.seconds),
                format!("{:.2}", c.mips()),
            ]);
        }
        let _ = write!(out, "{t}");
        out
    }

    /// Serialises the report as JSON (the `results/BENCH_lab.json`
    /// payload). Hand-rolled: the repo deliberately has no serde.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        let _ = writeln!(out, "  \"resumed_cells\": {},", self.resumed_cells);
        let _ = writeln!(out, "  \"replayed_cells\": {},", self.replayed_cells);
        let _ = writeln!(out, "  \"total_wall_seconds\": {:.6},", self.wall_seconds);
        let _ = writeln!(
            out,
            "  \"serial_equivalent_seconds\": {:.6},",
            self.serial_seconds
        );
        match self.speedup_vs_serial() {
            Some(s) => {
                let _ = writeln!(out, "  \"speedup_vs_serial\": {s:.4},");
            }
            None => {
                let _ = writeln!(out, "  \"speedup_vs_serial\": null,");
            }
        }
        let _ = writeln!(out, "  \"peak_rss_bytes\": {},", self.peak_rss_bytes());
        let _ = writeln!(out, "  \"total_instructions\": {},", self.instructions());
        let _ = writeln!(out, "  \"aggregate_mips\": {:.4},", self.mips());
        let _ = writeln!(out, "  \"prepass_seconds\": {:.6},", self.prepass_seconds());
        let _ = writeln!(
            out,
            "  \"cells_per_prepass\": {:.2},",
            self.cells_per_prepass()
        );
        out.push_str("  \"prepass\": [\n");
        for (i, (b, s)) in self.prepass.iter().enumerate() {
            let _ = write!(out, "    {{\"benchmark\": \"{b}\", \"seconds\": {s:.6}}}");
            out.push_str(if i + 1 < self.prepass.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"benchmark\": \"{}\", \"config\": \"{}\", \"width\": {}, \"instructions\": {}, \"seconds\": {:.6}, \"mips\": {:.4}, \"process_peak_rss_bytes\": {}}}",
                c.benchmark.models(),
                c.label,
                c.width,
                c.instructions,
                c.seconds,
                c.mips(),
                c.process_peak_rss_bytes
            );
            out.push_str(if i + 1 < self.cells.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str("  \"cell_metrics\": [\n");
        for (i, m) in self.cell_metrics.iter().enumerate() {
            let a = &m.attribution;
            let _ = write!(
                out,
                "    {{\"benchmark\": \"{}\", \"config\": \"{}\", \"width\": {}, \"cycles\": {}, \
                 \"issue\": {}, \"branch\": {}, \"memory\": {}, \"address\": {}, \
                 \"long_latency\": {}, \"window_full\": {}, \"dep_height\": {}}}",
                m.benchmark,
                m.config,
                m.width,
                m.cycles,
                a.issue,
                a.branch,
                a.memory,
                a.address,
                a.long_latency,
                a.window_full,
                a.dep_height
            );
            out.push_str(if i + 1 < self.cell_metrics.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str("  \"failed_cells\": [\n");
        for (i, fc) in self.failed_cells.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"benchmark\": \"{}\", \"config\": \"{}\", \"width\": {}, \"timed_out\": {}, \"error\": \"{}\"}}",
                fc.benchmark,
                fc.config,
                fc.width,
                fc.timed_out,
                json_escape(&fc.error)
            );
            out.push_str(if i + 1 < self.failed_cells.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SuiteConfig {
        SuiteConfig {
            seed: 3,
            trace_len: 3_000,
            widths: vec![4],
        }
    }

    #[test]
    fn suite_has_all_benchmarks_at_the_requested_length() {
        let s = Suite::generate(tiny());
        for b in Benchmark::ALL {
            assert_eq!(s.trace(b).len(), 3_000);
        }
        assert_eq!(s.iter().count(), 6);
    }

    #[test]
    fn cached_suite_generation_matches_direct_generation() {
        let dir = std::env::temp_dir().join(format!("ddsc-lab-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = crate::TraceCache::new(&dir);
        let cold = Suite::generate_cached(tiny(), &cache); // generates + stores
        let warm = Suite::generate_cached(tiny(), &cache); // loads from disk
        let direct = Suite::generate(tiny());
        for b in Benchmark::ALL {
            assert_eq!(cold.trace(b), direct.trace(b));
            assert_eq!(warm.trace(b), direct.trace(b));
        }
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn results_are_cached() {
        let lab = Lab::new(tiny());
        let a = lab.result(Benchmark::Compress, PaperConfig::A, 4);
        let b = lab.result(Benchmark::Compress, PaperConfig::A, 4);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(lab.simulations_run(), 1);
    }

    #[test]
    fn speedup_of_a_over_itself_is_one() {
        let lab = Lab::new(tiny());
        let s = lab.speedups(&[Benchmark::Eqntott], PaperConfig::A, 4);
        assert_eq!(s, vec![1.0]);
    }

    #[test]
    fn prewarm_fills_the_grid_and_skips_cached_cells() {
        let lab = Lab::new(tiny());
        // Warm one cell serially first; prewarm must not redo it.
        lab.result(Benchmark::Compress, PaperConfig::A, 4);
        let grid = lab.grid();
        assert_eq!(grid.len(), 6 * 5); // 6 benchmarks x A-E x one width
        let ran = lab.prewarm(&grid);
        assert_eq!(ran, grid.len() - 1);
        assert_eq!(lab.simulations_run(), grid.len());
        // A second prewarm is a no-op.
        assert_eq!(lab.prewarm(&grid), 0);
    }

    #[test]
    fn prewarmed_results_are_shared_with_later_lookups() {
        let lab = Lab::new(tiny());
        lab.prewarm(&[(Benchmark::Li, PaperConfig::C, 4)]);
        let a = lab.result(Benchmark::Li, PaperConfig::C, 4);
        let b = lab.result(Benchmark::Li, PaperConfig::C, 4);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(lab.simulations_run(), 1);
    }

    #[test]
    fn timings_cover_every_simulation() {
        let lab = Lab::new(tiny());
        lab.prewarm_all();
        let timings = lab.timings();
        assert_eq!(timings.len(), lab.simulations_run());
        for t in &timings {
            assert_eq!(t.instructions, 3_000);
            assert!(t.seconds >= 0.0);
        }
        let report = lab.report();
        assert_eq!(report.instructions(), 3_000 * 30);
        assert!(report.serial_seconds > 0.0);
        assert!(report.wall_seconds > 0.0);
        // Single-threaded labs report no parallel speedup at all;
        // multi-threaded ones report a positive ratio.
        match report.speedup_vs_serial() {
            Some(s) => {
                assert!(report.threads > 1);
                assert!(s > 0.0);
            }
            None => assert!(report.threads <= 1),
        }
    }

    #[test]
    fn prepass_runs_once_per_benchmark() {
        let lab = Lab::new(tiny());
        lab.prewarm_all();
        // 30 cells simulated, but each benchmark's analysis ran once.
        assert_eq!(lab.simulations_run(), 30);
        let mut benches: Vec<Benchmark> =
            lab.prepass_timings().into_iter().map(|(b, _)| b).collect();
        benches.sort_by_key(|b| b.name());
        let mut expected = Benchmark::ALL.to_vec();
        expected.sort_by_key(|b| b.name());
        assert_eq!(benches, expected);
        // Later lookups keep sharing the same PreparedTrace allocation.
        let a = lab.prepared(Benchmark::Compress);
        let b = lab.prepared(Benchmark::Compress);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(lab.prepass_timings().len(), 6);
        let report = lab.report();
        assert_eq!(report.prepass.len(), 6);
        assert_eq!(report.cells_per_prepass(), 5.0); // 30 cells / 6 traces
    }

    #[test]
    fn profiling_never_moves_a_bit_and_audits_every_cell() {
        let suite = Suite::generate(tiny());
        let plain = Lab::from_suite(suite.clone());
        let profiled = Lab::from_suite(suite).with_profiling();
        assert!(!plain.is_profiling());
        assert!(profiled.is_profiling());
        profiled.prewarm_all();
        for (b, c, w) in profiled.grid() {
            assert_eq!(
                *plain.result(b, c, w),
                *profiled.result(b, c, w),
                "metrics observer changed the simulation of ({b}, {c:?}, {w})"
            );
            let m = profiled.metrics(b, c, w);
            let r = profiled.result(b, c, w);
            // The accounting identity, re-checked at the lab layer.
            assert_eq!(m.attribution.total(), r.cycles);
            m.attribution.audit(r.cycles).unwrap();
        }
        let report = profiled.report();
        assert_eq!(report.cell_metrics.len(), 30);
        // Sorted and stable: (benchmark, config, width) ascending.
        let keys: Vec<_> = report
            .cell_metrics
            .iter()
            .map(|m| (m.benchmark.clone(), m.config.clone(), m.width))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        let json = report.to_json();
        assert!(json.contains("\"cell_metrics\""));
        assert!(json.contains("\"dep_height\""));
        // An unprofiled lab reports an empty attribution section.
        plain.result(Benchmark::Compress, PaperConfig::A, 4);
        let plain_report = plain.report();
        assert!(plain_report.cell_metrics.is_empty());
        assert!(plain_report.to_json().contains("\"cell_metrics\": [\n  ]"));
    }

    #[test]
    fn metrics_on_an_unprofiled_lab_panic_with_a_clear_message() {
        let lab = Lab::new(tiny());
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            lab.metrics(Benchmark::Compress, PaperConfig::A, 4)
        }))
        .unwrap_err();
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("with_profiling"), "got: {msg}");
    }

    #[test]
    fn a_panicking_prewarm_worker_names_its_cell_and_spares_the_lab() {
        let lab = Lab::new(SuiteConfig {
            widths: vec![0], // SimConfig::base(0) panics: width must be positive
            ..tiny()
        });
        let good = (Benchmark::Compress, PaperConfig::A, 4);
        let bad = (Benchmark::Eqntott, PaperConfig::B, 0);
        let err = lab.try_prewarm(&[good, bad]).unwrap_err();
        assert_eq!(err.cell, bad);
        let text = err.to_string();
        assert!(text.contains("023.eqntott"), "got: {text}");
        assert!(text.contains("config B"), "got: {text}");
        assert!(text.contains("width 0"), "got: {text}");
        assert!(text.contains("issue width"), "got: {text}");
        // The healthy cell completed and the caches are not poisoned:
        // the lab stays fully usable after the failure.
        assert_eq!(lab.simulations_run(), 1);
        let r = lab.result(good.0, good.1, good.2);
        assert!(r.cycles > 0);
        // The panicking front-door prewarm carries the same message.
        let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            lab.prewarm(&[bad]);
        }))
        .unwrap_err();
        assert!(panic_message(panic.as_ref()).contains("023.eqntott"));
    }

    #[test]
    fn degraded_prewarm_contains_injected_faults() {
        let bad = (Benchmark::Eqntott, PaperConfig::B, 4);
        let lab = Lab::new(tiny()).with_injected_fault(bad);
        let grid = lab.grid();
        let ran = lab.prewarm_degraded(&grid);
        assert_eq!(ran, grid.len() - 1, "every other cell completes");
        assert_eq!(lab.simulations_run(), grid.len() - 1);

        let failed = lab.failed_cells();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].0, bad);
        assert!(
            failed[0].1.contains("injected fault"),
            "got: {}",
            failed[0].1
        );

        // Lookups of the failed cell fail fast with the recorded
        // message instead of re-running the simulation...
        let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            lab.result(bad.0, bad.1, bad.2)
        }))
        .unwrap_err();
        assert!(panic_message(panic.as_ref()).contains("injected fault"));
        // ...and the contained front door reports it as an outcome.
        match lab.outcome(bad.0, bad.1, bad.2) {
            CellOutcome::Failed { error } => assert!(error.contains("injected fault")),
            CellOutcome::Completed(_) => panic!("injected fault must not complete"),
            CellOutcome::TimedOut { .. } => panic!("injected fault is not a timeout"),
        }
        // Healthy cells are unaffected.
        assert!(lab
            .outcome(Benchmark::Compress, PaperConfig::A, 4)
            .result()
            .is_some());

        // The report carries the failure, JSON-escaped and stable.
        let report = lab.report();
        assert_eq!(report.failed_cells.len(), 1);
        assert_eq!(report.failed_cells[0].benchmark, "023.eqntott");
        assert_eq!(report.failed_cells[0].config, "B");
        let json = report.to_json();
        assert!(json.contains("\"failed_cells\""));
        assert!(json.contains("injected fault"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let text = report.render();
        assert!(text.contains("failed cells: 1"), "got: {text}");
    }

    #[test]
    fn outcome_records_fresh_failures_without_rerunning() {
        let bad = (Benchmark::Li, PaperConfig::D, 4);
        let lab = Lab::new(tiny()).with_injected_fault(bad);
        assert!(lab.outcome(bad.0, bad.1, bad.2).result().is_none());
        // Recorded: the second call answers from the failure map.
        assert_eq!(lab.failed_cells().len(), 1);
        assert!(lab.outcome(bad.0, bad.1, bad.2).result().is_none());
        assert_eq!(lab.simulations_run(), 0);
    }

    #[test]
    fn json_escape_neutralises_control_and_quote_characters() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(
            json_escape("a \"quote\"\nand \\ tab\t"),
            "a \\\"quote\\\"\\nand \\\\ tab\\t"
        );
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn cached_generation_recovers_from_corrupt_entries() {
        let dir = std::env::temp_dir().join(format!("ddsc-lab-heal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = crate::TraceCache::new(&dir);
        let cfg = tiny();
        let _ = Suite::generate_cached(cfg.clone(), &cache); // warm

        // Smash one entry; generation must heal it, not fail.
        let path = cache.path_for(Benchmark::Compress.name(), cfg.seed, cfg.trace_len);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes.truncate(mid);
        std::fs::write(&path, &bytes).unwrap();

        let healed = Suite::generate_cached(cfg.clone(), &cache);
        let direct = Suite::generate(cfg.clone());
        for b in Benchmark::ALL {
            assert_eq!(healed.trace(b), direct.trace(b));
        }
        // The corrupt entry was regenerated and re-stored.
        assert!(cache
            .try_load(Benchmark::Compress.name(), cfg.seed, cfg.trace_len)
            .is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cached_generation_rides_out_transient_io() {
        let dir = std::env::temp_dir().join(format!("ddsc-lab-flaky-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = crate::TraceCache::new(&dir);
        let cfg = tiny();
        let _ = Suite::generate_cached(cfg.clone(), &cache); // warm
                                                             // Two transient faults across six loads: the bounded retry
                                                             // absorbs them and the suite still matches direct generation.
        let cache = cache.with_transient_faults(2);
        let suite = Suite::generate_cached(cfg.clone(), &cache);
        let direct = Suite::generate(cfg);
        for b in Benchmark::ALL {
            assert_eq!(suite.trace(b), direct.trace(b));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_generous_cell_timeout_never_moves_a_bit() {
        let suite = Suite::generate(tiny());
        let plain = Lab::from_suite(suite.clone());
        let timed = Lab::from_suite(suite).with_cell_timeout(Duration::from_secs(3600));
        assert_eq!(timed.cell_timeout(), Some(Duration::from_secs(3600)));
        let cell = (Benchmark::Compress, PaperConfig::C, 4);
        assert_eq!(
            *plain.result(cell.0, cell.1, cell.2),
            *timed.result(cell.0, cell.1, cell.2),
            "the cancellable path must be bit-identical when the deadline survives"
        );
        assert!(timed.failed_cells().is_empty());
    }

    #[test]
    fn an_expired_timeout_is_contained_and_classified() {
        let lab = Lab::new(SuiteConfig {
            trace_len: 300_000, // long enough to outlive a zero budget
            ..tiny()
        })
        .with_cell_timeout(Duration::ZERO);
        let cell = (Benchmark::Compress, PaperConfig::A, 4);
        match lab.outcome(cell.0, cell.1, cell.2) {
            CellOutcome::TimedOut { error } => {
                assert!(error.starts_with(TIMEOUT_PREFIX), "got: {error}");
                assert!(error.contains("026.compress"), "got: {error}");
            }
            other => panic!("expected TimedOut, got {other:?}"),
        }
        // Recorded, classified, and reported as a timeout.
        let failures = lab.cell_failures();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].1.timed_out);
        let report = lab.report();
        assert!(report.failed_cells[0].timed_out);
        assert!(report.to_json().contains("\"timed_out\": true"));
        assert!(report.render().contains("(timed out)"));
        // Profiled labs time out the same way (the metrics wrapper
        // composes with the cancel observer).
        let profiled = Lab::new(SuiteConfig {
            trace_len: 300_000,
            ..tiny()
        })
        .with_profiling()
        .with_cell_timeout(Duration::ZERO);
        assert!(profiled.outcome(cell.0, cell.1, cell.2).result().is_none());
    }

    #[test]
    fn supervised_runs_journal_and_resume_without_resimulating() {
        let dir = std::env::temp_dir().join(format!("ddsc-lab-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let journal_path = dir.join("run_journal.bin");
        let store_dir = dir.join("cells");

        // First run: supervised, one cell fails by injection.
        let bad = (Benchmark::Eqntott, PaperConfig::B, 4);
        let (journal, records) = Journal::open(&journal_path).unwrap();
        assert!(records.is_empty());
        let lab = Lab::new(tiny())
            .with_injected_fault(bad)
            .with_supervision(Arc::new(journal), CellStore::new(&store_dir));
        let grid = lab.grid();
        lab.prewarm_degraded(&grid);

        // The journal saw every start, every finish, and the failure.
        let records = ddsc_util::read_journal(&journal_path).unwrap();
        let starts = records
            .iter()
            .filter(|r| matches!(r, JournalRecord::CellStarted { .. }))
            .count();
        let finishes = records
            .iter()
            .filter(|r| matches!(r, JournalRecord::CellFinished { .. }))
            .count();
        let failures = records
            .iter()
            .filter(|r| matches!(r, JournalRecord::CellFailed { .. }))
            .count();
        assert_eq!(starts, grid.len());
        assert_eq!(finishes, grid.len() - 1);
        assert_eq!(failures, 1);

        // Second lab over the same inputs: resume restores every
        // finished cell bit-identically with zero re-simulation, and
        // the failed cell is left to replay.
        let (journal2, records) = Journal::open(&journal_path).unwrap();
        let lab2 =
            Lab::new(tiny()).with_supervision(Arc::new(journal2), CellStore::new(&store_dir));
        let (resumed, replayed) = lab2.resume(&records);
        assert_eq!(resumed, grid.len() - 1);
        assert_eq!(replayed, 1);
        assert_eq!(lab2.simulations_run(), grid.len() - 1);
        assert_eq!(lab2.timings().len(), 0, "no cell was re-simulated");
        for &(b, c, w) in &grid {
            if (b, c, w) == bad {
                continue;
            }
            assert_eq!(*lab2.result(b, c, w), *lab.result(b, c, w));
        }
        assert_eq!(lab2.timings().len(), 0, "lookups were all cache hits");
        let report = lab2.report();
        assert_eq!(report.resumed_cells, grid.len() - 1);
        assert_eq!(report.replayed_cells, 1);
        let json = report.to_json();
        assert!(json.contains(&format!("\"resumed_cells\": {}", grid.len() - 1)));
        assert!(json.contains("\"replayed_cells\": 1"));

        // A lab with *different* inputs matches no digests: nothing
        // resumes, everything the journal names replays.
        let (journal3, records) = Journal::open(&journal_path).unwrap();
        let other = Lab::new(SuiteConfig { seed: 4, ..tiny() })
            .with_supervision(Arc::new(journal3), CellStore::new(&store_dir));
        let (resumed, replayed) = other.resume(&records);
        assert_eq!(resumed, 0);
        assert_eq!(replayed, grid.len());
        assert_eq!(other.simulations_run(), 0);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_renders_and_serialises() {
        let lab = Lab::new(tiny());
        lab.result(Benchmark::Compress, PaperConfig::A, 4);
        let report = lab.report();
        let text = report.render();
        assert!(text.contains("Lab throughput report"));
        assert!(text.contains("026.compress"));
        let json = report.to_json();
        assert!(json.contains("\"speedup_vs_serial\""));
        if report.threads <= 1 {
            assert!(json.contains("\"speedup_vs_serial\": null"));
        }
        // Top-level key keeps the plain name (it genuinely is the run's
        // process peak); per-cell rows carry the process_ prefix so the
        // monotone-inherited values can't be misread as per-cell usage.
        assert!(json.contains("\"peak_rss_bytes\""));
        assert!(json.contains("\"process_peak_rss_bytes\""));
        assert!(json.contains("\"prepass_seconds\""));
        assert!(json.contains("\"cells_per_prepass\""));
        assert!(json.contains("\"benchmark\": \"026.compress\""));
        // Must be balanced JSON at least structurally.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
