//! Trace-suite generation and a memoising simulation lab.

use std::collections::HashMap;
use std::rc::Rc;

use ddsc_core::{simulate, PaperConfig, SimConfig, SimResult};
use ddsc_trace::Trace;
use ddsc_workloads::Benchmark;

/// Parameters for one reproduction run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuiteConfig {
    /// Workload data seed (the paper's "input file").
    pub seed: u64,
    /// Dynamic instructions per benchmark trace (the paper caps at 250M;
    /// our loop-dominated kernels converge far earlier — see
    /// EXPERIMENTS.md for the convergence check).
    pub trace_len: usize,
    /// The issue widths to sweep.
    pub widths: Vec<u32>,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            seed: 1996,
            trace_len: 300_000,
            widths: SimConfig::PAPER_WIDTHS.to_vec(),
        }
    }
}

/// The generated benchmark traces.
#[derive(Debug, Clone)]
pub struct Suite {
    traces: Vec<(Benchmark, Rc<Trace>)>,
    config: SuiteConfig,
}

impl Suite {
    /// Executes all six benchmarks and collects their traces.
    ///
    /// # Panics
    ///
    /// Panics if a workload program faults — that would be a bug in
    /// `ddsc-workloads`, covered by its tests.
    pub fn generate(config: SuiteConfig) -> Suite {
        let traces = Benchmark::ALL
            .iter()
            .map(|&b| {
                let t = b
                    .trace(config.seed, config.trace_len)
                    .unwrap_or_else(|e| panic!("workload {b} faulted: {e}"));
                (b, Rc::new(t))
            })
            .collect();
        Suite { traces, config }
    }

    /// The trace of one benchmark.
    pub fn trace(&self, b: Benchmark) -> &Trace {
        &self.traces.iter().find(|(x, _)| *x == b).expect("suite has all benchmarks").1
    }

    /// The suite parameters.
    pub fn config(&self) -> &SuiteConfig {
        &self.config
    }

    /// Benchmarks with their traces.
    pub fn iter(&self) -> impl Iterator<Item = (Benchmark, &Trace)> {
        self.traces.iter().map(|(b, t)| (*b, t.as_ref()))
    }
}

/// A memoising simulation driver: each `(benchmark, configuration,
/// width)` triple is simulated at most once per lab.
#[derive(Debug)]
pub struct Lab {
    suite: Suite,
    cache: HashMap<(Benchmark, PaperConfig, u32), Rc<SimResult>>,
}

impl Lab {
    /// Generates the trace suite and an empty result cache.
    pub fn new(config: SuiteConfig) -> Lab {
        Lab {
            suite: Suite::generate(config),
            cache: HashMap::new(),
        }
    }

    /// Wraps an existing suite.
    pub fn from_suite(suite: Suite) -> Lab {
        Lab {
            suite,
            cache: HashMap::new(),
        }
    }

    /// The underlying suite.
    pub fn suite(&self) -> &Suite {
        &self.suite
    }

    /// The widths this lab sweeps.
    pub fn widths(&self) -> Vec<u32> {
        self.suite.config().widths.clone()
    }

    /// Simulates (or returns the cached result of) one combination.
    pub fn result(&mut self, b: Benchmark, c: PaperConfig, width: u32) -> Rc<SimResult> {
        if let Some(r) = self.cache.get(&(b, c, width)) {
            return Rc::clone(r);
        }
        let sim = simulate(self.suite.trace(b), &SimConfig::paper(c, width));
        let rc = Rc::new(sim);
        self.cache.insert((b, c, width), Rc::clone(&rc));
        rc
    }

    /// Per-benchmark IPCs for one configuration and width.
    pub fn ipcs(&mut self, benches: &[Benchmark], c: PaperConfig, width: u32) -> Vec<f64> {
        benches.iter().map(|&b| self.result(b, c, width).ipc()).collect()
    }

    /// Per-benchmark speedups of `c` over configuration A at the same
    /// width.
    pub fn speedups(&mut self, benches: &[Benchmark], c: PaperConfig, width: u32) -> Vec<f64> {
        benches
            .iter()
            .map(|&b| {
                let base = self.result(b, PaperConfig::A, width);
                let r = self.result(b, c, width);
                r.speedup_over(&base)
            })
            .collect()
    }

    /// Number of simulations run so far (for cache tests).
    pub fn simulations_run(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SuiteConfig {
        SuiteConfig {
            seed: 3,
            trace_len: 3_000,
            widths: vec![4],
        }
    }

    #[test]
    fn suite_has_all_benchmarks_at_the_requested_length() {
        let s = Suite::generate(tiny());
        for b in Benchmark::ALL {
            assert_eq!(s.trace(b).len(), 3_000);
        }
        assert_eq!(s.iter().count(), 6);
    }

    #[test]
    fn results_are_cached() {
        let mut lab = Lab::new(tiny());
        let a = lab.result(Benchmark::Compress, PaperConfig::A, 4);
        let b = lab.result(Benchmark::Compress, PaperConfig::A, 4);
        assert!(Rc::ptr_eq(&a, &b));
        assert_eq!(lab.simulations_run(), 1);
    }

    #[test]
    fn speedup_of_a_over_itself_is_one() {
        let mut lab = Lab::new(tiny());
        let s = lab.speedups(&[Benchmark::Eqntott], PaperConfig::A, 4);
        assert_eq!(s, vec![1.0]);
    }
}
