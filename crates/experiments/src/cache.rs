//! An on-disk cache of generated benchmark traces.
//!
//! Workload execution is deterministic in `(benchmark, seed, length)`,
//! so a generated trace never changes — regenerating it at every
//! `ddsc repro` invocation is pure waste once traces get long. A
//! [`TraceCache`] stores each trace as one file
//! (`{benchmark}-s{seed}-n{len}.bin`, conventionally under
//! `results/traces/`) and serves it back on the next run.
//!
//! Robustness rules:
//!
//! * every file carries a header with a magic, a format version, the
//!   generation key and an FNV-1a checksum of the payload — any
//!   mismatch (truncation, corruption, stale format, foreign file)
//!   makes [`TraceCache::load`] return `None` and the caller
//!   regenerates;
//! * writes go to a temporary sibling file first and are atomically
//!   renamed into place, so a crashed or concurrent run can never
//!   publish a half-written cache entry;
//! * the cache is an optimisation only: store failures are reported to
//!   the caller but safe to ignore (the in-memory trace is already
//!   correct).

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use ddsc_trace::io::{read_trace, write_trace};
use ddsc_trace::Trace;
use ddsc_util::fault::{is_transient, Backoff};
use ddsc_util::{fnv1a, publish_atomic};

/// Cache-file magic: "DDSC Trace Cache".
const MAGIC: &[u8; 4] = b"DDTC";
/// Bump on any incompatible layout change; old files then just miss.
const VERSION: u32 = 1;
/// Magic + version + seed + len + payload_len + checksum.
const HEADER_LEN: usize = 4 + 4 + 8 + 8 + 8 + 8;

/// Why a cache lookup failed — so callers can distinguish "never
/// cached" from "cached but damaged" from "the filesystem hiccuped",
/// each of which wants a different response (generate / regenerate /
/// retry).
#[derive(Debug)]
pub enum CacheError {
    /// No entry exists for the key.
    Missing,
    /// An entry exists but fails validation; the message names the
    /// first check that failed.
    Corrupt(String),
    /// The entry could not be read at all. Transient kinds (see
    /// [`ddsc_util::fault::is_transient`]) are worth retrying.
    Io(std::io::Error),
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::Missing => write!(f, "no cache entry"),
            CacheError::Corrupt(why) => write!(f, "corrupt cache entry: {why}"),
            CacheError::Io(e) => write!(f, "cache read failed: {e}"),
        }
    }
}

impl std::error::Error for CacheError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CacheError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// A directory of cached benchmark traces.
#[derive(Debug, Clone)]
pub struct TraceCache {
    dir: PathBuf,
    /// Injected transient faults remaining: while non-zero, each load
    /// decrements it and fails with a timed-out error. Shared across
    /// clones so a fault budget set on the cache survives being handed
    /// to worker threads.
    transient_faults: Arc<AtomicU32>,
}

impl TraceCache {
    /// A cache rooted at `dir`. The directory is created lazily on the
    /// first store.
    pub fn new(dir: impl Into<PathBuf>) -> TraceCache {
        TraceCache {
            dir: dir.into(),
            transient_faults: Arc::new(AtomicU32::new(0)),
        }
    }

    /// Arms the cache to fail its next `n` loads with a transient
    /// (timed-out) I/O error before behaving normally — the
    /// deterministic stand-in for a flaky mount that retry-path tests
    /// are written against.
    pub fn with_transient_faults(self, n: u32) -> TraceCache {
        self.transient_faults.store(n, Ordering::SeqCst);
        self
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file a given generation key lives at.
    pub fn path_for(&self, name: &str, seed: u64, len: usize) -> PathBuf {
        self.dir.join(format!("{name}-s{seed}-n{len}.bin"))
    }

    /// Loads a cached trace, or `None` on any failure. Convenience
    /// wrapper over [`TraceCache::try_load`] for callers that treat
    /// every miss the same way.
    pub fn load(&self, name: &str, seed: u64, len: usize) -> Option<Trace> {
        self.try_load(name, seed, len).ok()
    }

    /// Loads a cached trace, classifying any failure: [`CacheError::Missing`]
    /// if no entry exists, [`CacheError::Corrupt`] naming the first failed
    /// validation check, [`CacheError::Io`] for read failures.
    ///
    /// # Errors
    ///
    /// See [`CacheError`]; transient `Io` errors are worth retrying
    /// ([`TraceCache::load_with_retry`] does).
    pub fn try_load(&self, name: &str, seed: u64, len: usize) -> Result<Trace, CacheError> {
        if self
            .transient_faults
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
        {
            return Err(CacheError::Io(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "injected transient cache fault",
            )));
        }
        let bytes = match fs::read(self.path_for(name, seed, len)) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(CacheError::Missing),
            Err(e) => return Err(CacheError::Io(e)),
        };
        let corrupt = |why: &str| CacheError::Corrupt(why.to_string());
        if bytes.len() < HEADER_LEN {
            return Err(corrupt("file shorter than the header"));
        }
        if &bytes[..4] != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let u32_at = |o: usize| {
            bytes[o..o + 4]
                .first_chunk::<4>()
                .map(|c| u32::from_le_bytes(*c))
        };
        let u64_at = |o: usize| {
            bytes[o..o + 8]
                .first_chunk::<8>()
                .map(|c| u64::from_le_bytes(*c))
        };
        if u32_at(4) != Some(VERSION) {
            return Err(corrupt("format version mismatch"));
        }
        if u64_at(8) != Some(seed) || u64_at(16) != Some(len as u64) {
            // The key is in the file name, so an in-file mismatch means
            // the entry was renamed or overwritten — corruption, not a
            // plain miss.
            return Err(corrupt("generation key does not match the file name"));
        }
        let payload = &bytes[HEADER_LEN..];
        if u64_at(24) != Some(payload.len() as u64) {
            return Err(corrupt("payload length disagrees with the header"));
        }
        if u64_at(32) != Some(fnv1a(payload)) {
            return Err(corrupt("payload checksum mismatch"));
        }
        let trace = match read_trace(payload) {
            Ok(trace) => trace,
            Err(e) => return Err(CacheError::Corrupt(format!("payload does not decode: {e}"))),
        };
        // Belt and braces: the payload parsed, but it must also be the
        // trace the key promises.
        if trace.len() != len {
            return Err(corrupt("decoded trace length does not match the key"));
        }
        Ok(trace)
    }

    /// [`TraceCache::try_load`] with up to `retries` bounded-backoff
    /// retries of *transient* I/O errors. Missing entries, corruption
    /// and hard I/O errors return immediately — retrying cannot fix
    /// those.
    ///
    /// # Errors
    ///
    /// The final [`CacheError`] once retries are exhausted.
    pub fn load_with_retry(
        &self,
        name: &str,
        seed: u64,
        len: usize,
        retries: usize,
    ) -> Result<Trace, CacheError> {
        let mut delays = Backoff::for_cache().delays();
        let mut left = retries;
        loop {
            match self.try_load(name, seed, len) {
                Err(CacheError::Io(e)) if is_transient(&e) && left > 0 => {
                    left -= 1;
                    if let Some(delay) = delays.next() {
                        std::thread::sleep(delay);
                    }
                }
                outcome => return outcome,
            }
        }
    }

    /// Stores a trace under its generation key, atomically (via
    /// [`publish_atomic`]: write to a temporary sibling, fsync, then
    /// rename into place).
    ///
    /// # Errors
    ///
    /// Returns any underlying filesystem error. Callers may treat a
    /// failure as non-fatal — the cache is an optimisation.
    pub fn store(&self, name: &str, seed: u64, len: usize, trace: &Trace) -> std::io::Result<()> {
        let mut payload = Vec::new();
        write_trace(&mut payload, trace).map_err(std::io::Error::other)?;

        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&seed.to_le_bytes());
        bytes.extend_from_slice(&(len as u64).to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);

        publish_atomic(&self.path_for(name, seed, len), &bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddsc_isa::{Opcode, Reg};
    use ddsc_trace::TraceInst;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ddsc-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn sample(n: usize) -> Trace {
        let mut t = Trace::new("sample");
        for i in 0..n {
            t.push(TraceInst::alu(
                4 * i as u32,
                Opcode::Add,
                Reg::new(1),
                Reg::new(2),
                None,
                Some(i as i32),
                0,
            ));
        }
        t
    }

    #[test]
    fn round_trips_a_trace() {
        let cache = TraceCache::new(tmpdir("roundtrip"));
        let t = sample(100);
        assert!(cache.load("sample", 7, 100).is_none(), "cold cache misses");
        cache.store("sample", 7, 100, &t).unwrap();
        let back = cache.load("sample", 7, 100).expect("warm cache hits");
        assert_eq!(back, t);
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn key_mismatches_miss() {
        let cache = TraceCache::new(tmpdir("keys"));
        let t = sample(50);
        cache.store("sample", 7, 50, &t).unwrap();
        assert!(cache.load("sample", 8, 50).is_none(), "wrong seed");
        assert!(cache.load("sample", 7, 51).is_none(), "wrong length");
        assert!(cache.load("other", 7, 50).is_none(), "wrong benchmark");
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corruption_is_detected() {
        let cache = TraceCache::new(tmpdir("corrupt"));
        let t = sample(80);
        cache.store("sample", 3, 80, &t).unwrap();
        let path = cache.path_for("sample", 3, 80);

        // Flip one payload byte: the checksum must catch it.
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(cache.load("sample", 3, 80).is_none(), "bit flip");

        // Truncate mid-payload: the length check must catch it.
        cache.store("sample", 3, 80, &t).unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(cache.load("sample", 3, 80).is_none(), "truncation");

        // Garbage shorter than a header.
        fs::write(&path, b"DD").unwrap();
        assert!(cache.load("sample", 3, 80).is_none(), "tiny file");
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn try_load_classifies_failures() {
        let cache = TraceCache::new(tmpdir("classify"));
        assert!(matches!(
            cache.try_load("sample", 3, 80),
            Err(CacheError::Missing)
        ));

        let t = sample(80);
        cache.store("sample", 3, 80, &t).unwrap();
        let path = cache.path_for("sample", 3, 80);
        let clean = fs::read(&path).unwrap();

        // Truncated mid-header: shorter than HEADER_LEN.
        fs::write(&path, &clean[..HEADER_LEN / 2]).unwrap();
        match cache.try_load("sample", 3, 80) {
            Err(CacheError::Corrupt(why)) => assert!(why.contains("header"), "{why}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }

        // Truncated mid-payload: header intact, payload short.
        fs::write(&path, &clean[..clean.len() - 13]).unwrap();
        match cache.try_load("sample", 3, 80) {
            Err(CacheError::Corrupt(why)) => assert!(why.contains("length"), "{why}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }

        // In-file key mismatch (file renamed under a foreign key).
        fs::write(&path, &clean).unwrap();
        fs::rename(&path, cache.path_for("sample", 4, 80)).unwrap();
        match cache.try_load("sample", 4, 80) {
            Err(CacheError::Corrupt(why)) => assert!(why.contains("key"), "{why}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }

        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn transient_faults_fail_loads_then_clear() {
        let cache = TraceCache::new(tmpdir("transient")).with_transient_faults(2);
        let t = sample(30);
        cache.store("sample", 9, 30, &t).unwrap();
        for _ in 0..2 {
            match cache.try_load("sample", 9, 30) {
                Err(CacheError::Io(e)) => assert!(ddsc_util::fault::is_transient(&e)),
                other => panic!("expected transient Io, got {other:?}"),
            }
        }
        assert_eq!(cache.try_load("sample", 9, 30).unwrap(), t);
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn retry_rides_out_transient_faults() {
        let cache = TraceCache::new(tmpdir("retry")).with_transient_faults(2);
        let t = sample(30);
        cache.store("sample", 9, 30, &t).unwrap();
        assert_eq!(cache.load_with_retry("sample", 9, 30, 3).unwrap(), t);

        // Exhausted retries surface the transient error.
        let cache = cache.with_transient_faults(5);
        assert!(matches!(
            cache.load_with_retry("sample", 9, 30, 2),
            Err(CacheError::Io(_))
        ));

        // Non-transient failures do not retry (would hang otherwise if
        // they decremented nothing; here just assert classification).
        let cache = cache.with_transient_faults(0);
        assert!(matches!(
            cache.load_with_retry("missing", 9, 30, 3),
            Err(CacheError::Missing)
        ));
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn stores_leave_no_temp_files_behind() {
        let cache = TraceCache::new(tmpdir("atomic"));
        cache.store("sample", 1, 20, &sample(20)).unwrap();
        cache.store("sample", 1, 20, &sample(20)).unwrap(); // overwrite
        let entries: Vec<_> = fs::read_dir(cache.dir())
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(entries, vec!["sample-s1-n20.bin".to_string()]);
        let _ = fs::remove_dir_all(cache.dir());
    }
}
