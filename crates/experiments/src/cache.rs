//! An on-disk cache of generated benchmark traces.
//!
//! Workload execution is deterministic in `(benchmark, seed, length)`,
//! so a generated trace never changes — regenerating it at every
//! `ddsc repro` invocation is pure waste once traces get long. A
//! [`TraceCache`] stores each trace as one file
//! (`{benchmark}-s{seed}-n{len}.bin`, conventionally under
//! `results/traces/`) and serves it back on the next run.
//!
//! # Chunked format (version 2)
//!
//! Paper-scale traces (250M instructions ≈ 6.5 GB of records) rule out
//! the version-1 layout, which checksummed and decoded the file as one
//! unit. Version 2 stores the records as a sequence of independently
//! checksummed *frames*:
//!
//! ```text
//! header : magic "DDTC", version:u32, seed:u64, len:u64,
//!          frame_records:u64, total:u64          (40 bytes)
//! frame  : count:u64, fnv1a(payload):u64, payload (count × 26 bytes)
//! ...
//! ```
//!
//! Frames let both directions stream in O(frame) memory:
//! [`TraceCache::store_source`] writes records as a
//! [`TraceSource`] produces them, and [`TraceCache::open_stream`]
//! returns a [`ChunkedReader`] — itself a [`TraceSource`] — that
//! validates each frame's checksum as it is pulled, never holding more
//! than one decoded frame.
//!
//! Robustness rules:
//!
//! * every frame carries its own FNV-1a checksum, and the header binds
//!   the generation key — any mismatch (truncation, corruption, stale
//!   format, foreign file) fails the load and the caller regenerates;
//! * writes go to a temporary sibling file first and are atomically
//!   renamed into place, so a crashed or concurrent run can never
//!   publish a half-written cache entry;
//! * the cache is an optimisation only: store failures are reported to
//!   the caller but safe to ignore (the trace can be regenerated).

use std::fmt;
use std::fs;
use std::io::{BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use ddsc_trace::io::{decode_record, encode_record, TraceIoError, RECORD_LEN};
use ddsc_trace::{SliceSource, SourceError, Trace, TraceInst, TraceSource};
use ddsc_util::fault::{is_transient, Backoff};
use ddsc_util::{fnv1a, publish_atomic_with};

/// Cache-file magic: "DDSC Trace Cache".
const MAGIC: &[u8; 4] = b"DDTC";
/// Bump on any incompatible layout change; old files then just miss.
const VERSION: u32 = 2;
/// Magic + version + seed + len + frame_records + total.
const HEADER_LEN: usize = 4 + 4 + 8 + 8 + 8 + 8;
/// Byte offset of the header's `total` field (patched after a
/// streaming store discovers the final record count).
const TOTAL_OFFSET: u64 = 32;
/// Frame header: record count + payload checksum.
const FRAME_HEADER_LEN: usize = 8 + 8;

/// Records per frame when the caller does not choose: ~1.7 MB of
/// payload — large enough to amortise the per-frame syscalls and
/// checksum, small enough that one decoded frame is negligible next to
/// the simulator's own window.
pub const DEFAULT_FRAME_RECORDS: usize = 1 << 16;

/// Why a cache lookup failed — so callers can distinguish "never
/// cached" from "cached but damaged" from "the filesystem hiccuped",
/// each of which wants a different response (generate / regenerate /
/// retry).
#[derive(Debug)]
pub enum CacheError {
    /// No entry exists for the key.
    Missing,
    /// An entry exists but fails validation; the message names the
    /// first check that failed.
    Corrupt(String),
    /// The entry could not be read at all. Transient kinds (see
    /// [`ddsc_util::fault::is_transient`]) are worth retrying.
    Io(std::io::Error),
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::Missing => write!(f, "no cache entry"),
            CacheError::Corrupt(why) => write!(f, "corrupt cache entry: {why}"),
            CacheError::Io(e) => write!(f, "cache read failed: {e}"),
        }
    }
}

impl std::error::Error for CacheError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CacheError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// A directory of cached benchmark traces.
#[derive(Debug, Clone)]
pub struct TraceCache {
    dir: PathBuf,
    /// Injected transient faults remaining: while non-zero, each load
    /// decrements it and fails with a timed-out error. Shared across
    /// clones so a fault budget set on the cache survives being handed
    /// to worker threads.
    transient_faults: Arc<AtomicU32>,
}

impl TraceCache {
    /// A cache rooted at `dir`. The directory is created lazily on the
    /// first store.
    pub fn new(dir: impl Into<PathBuf>) -> TraceCache {
        TraceCache {
            dir: dir.into(),
            transient_faults: Arc::new(AtomicU32::new(0)),
        }
    }

    /// Arms the cache to fail its next `n` loads with a transient
    /// (timed-out) I/O error before behaving normally — the
    /// deterministic stand-in for a flaky mount that retry-path tests
    /// are written against.
    pub fn with_transient_faults(self, n: u32) -> TraceCache {
        self.transient_faults.store(n, Ordering::SeqCst);
        self
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file a given generation key lives at.
    pub fn path_for(&self, name: &str, seed: u64, len: usize) -> PathBuf {
        self.dir.join(format!("{name}-s{seed}-n{len}.bin"))
    }

    fn take_injected_fault(&self) -> Option<CacheError> {
        self.transient_faults
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
            .then(|| {
                CacheError::Io(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "injected transient cache fault",
                ))
            })
    }

    /// Loads a cached trace, or `None` on any failure. Convenience
    /// wrapper over [`TraceCache::try_load`] for callers that treat
    /// every miss the same way.
    pub fn load(&self, name: &str, seed: u64, len: usize) -> Option<Trace> {
        self.try_load(name, seed, len).ok()
    }

    /// Loads a cached trace whole, classifying any failure:
    /// [`CacheError::Missing`] if no entry exists, [`CacheError::Corrupt`]
    /// naming the first failed validation check, [`CacheError::Io`] for
    /// read failures. Bounded-memory callers should prefer
    /// [`TraceCache::open_stream`].
    ///
    /// # Errors
    ///
    /// See [`CacheError`]; transient `Io` errors are worth retrying
    /// ([`TraceCache::load_with_retry`] does).
    pub fn try_load(&self, name: &str, seed: u64, len: usize) -> Result<Trace, CacheError> {
        let mut reader = self.open_stream(name, seed, len)?;
        let mut insts = Vec::with_capacity(reader.remaining_total().min(1 << 24));
        while reader.pull_into(&mut insts, usize::MAX)? > 0 {}
        Ok(Trace::from_parts(name.to_string(), insts))
    }

    /// Opens a cached trace for streamed reading: the header and key
    /// are validated up front, each frame's checksum as it is pulled.
    ///
    /// # Errors
    ///
    /// As for [`TraceCache::try_load`]; frame-level corruption surfaces
    /// later, from the reads themselves.
    pub fn open_stream(
        &self,
        name: &str,
        seed: u64,
        len: usize,
    ) -> Result<ChunkedReader, CacheError> {
        if let Some(fault) = self.take_injected_fault() {
            return Err(fault);
        }
        let file = match fs::File::open(self.path_for(name, seed, len)) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(CacheError::Missing),
            Err(e) => return Err(CacheError::Io(e)),
        };
        let corrupt = |why: &str| CacheError::Corrupt(why.to_string());
        let mut file = BufReader::new(file);
        let mut header = [0u8; HEADER_LEN];
        match file.read_exact(&mut header) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                return Err(corrupt("file shorter than the header"))
            }
            Err(e) => return Err(CacheError::Io(e)),
        }
        if &header[..4] != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let u64_at = |o: usize| u64::from_le_bytes(header[o..o + 8].try_into().expect("in range"));
        if header[4..8] != VERSION.to_le_bytes() {
            return Err(corrupt("format version mismatch"));
        }
        if u64_at(8) != seed || u64_at(16) != len as u64 {
            // The key is in the file name, so an in-file mismatch means
            // the entry was renamed or overwritten — corruption, not a
            // plain miss.
            return Err(corrupt("generation key does not match the file name"));
        }
        let frame_records = u64_at(24);
        if frame_records == 0 {
            return Err(corrupt("zero frame size"));
        }
        let total = u64_at(32);
        if total > len as u64 {
            return Err(corrupt("record total exceeds the generation key length"));
        }
        Ok(ChunkedReader {
            file,
            name: name.to_string(),
            total,
            loaded: 0,
            pending: Vec::new(),
            cursor: 0,
        })
    }

    /// [`TraceCache::try_load`] with up to `retries` bounded-backoff
    /// retries of *transient* I/O errors. Missing entries, corruption
    /// and hard I/O errors return immediately — retrying cannot fix
    /// those.
    ///
    /// # Errors
    ///
    /// The final [`CacheError`] once retries are exhausted.
    pub fn load_with_retry(
        &self,
        name: &str,
        seed: u64,
        len: usize,
        retries: usize,
    ) -> Result<Trace, CacheError> {
        let mut delays = Backoff::for_cache().delays();
        let mut left = retries;
        loop {
            match self.try_load(name, seed, len) {
                Err(CacheError::Io(e)) if is_transient(&e) && left > 0 => {
                    left -= 1;
                    if let Some(delay) = delays.next() {
                        std::thread::sleep(delay);
                    }
                }
                outcome => return outcome,
            }
        }
    }

    /// Stores a trace under its generation key, atomically (write to a
    /// temporary sibling, fsync, then rename into place).
    ///
    /// # Errors
    ///
    /// Returns any underlying filesystem error. Callers may treat a
    /// failure as non-fatal — the cache is an optimisation.
    pub fn store(&self, name: &str, seed: u64, len: usize, trace: &Trace) -> std::io::Result<()> {
        self.store_source(
            name,
            seed,
            len,
            &mut SliceSource::new(trace),
            DEFAULT_FRAME_RECORDS,
        )
        .map(drop)
    }

    /// Stores the records a [`TraceSource`] produces, frame by frame,
    /// never holding more than `frame_records` records in memory —
    /// the write path for traces too large to materialise. Returns the
    /// number of records stored.
    ///
    /// # Errors
    ///
    /// Any underlying filesystem error, or a source failure (as
    /// [`std::io::ErrorKind::Other`]); either way the target path is
    /// untouched.
    pub fn store_source<S: TraceSource>(
        &self,
        name: &str,
        seed: u64,
        len: usize,
        source: &mut S,
        frame_records: usize,
    ) -> std::io::Result<u64> {
        let frame_records = frame_records.max(1);
        let mut total: u64 = 0;
        publish_atomic_with(&self.path_for(name, seed, len), |f| {
            let mut header = Vec::with_capacity(HEADER_LEN);
            header.extend_from_slice(MAGIC);
            header.extend_from_slice(&VERSION.to_le_bytes());
            header.extend_from_slice(&seed.to_le_bytes());
            header.extend_from_slice(&(len as u64).to_le_bytes());
            header.extend_from_slice(&(frame_records as u64).to_le_bytes());
            header.extend_from_slice(&0u64.to_le_bytes()); // total, patched below
            f.write_all(&header)?;

            let mut records = Vec::with_capacity(frame_records);
            let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + frame_records * RECORD_LEN);
            loop {
                records.clear();
                let n = source
                    .fill(&mut records, frame_records)
                    .map_err(std::io::Error::other)?;
                if n == 0 {
                    break;
                }
                frame.clear();
                frame.extend_from_slice(&(n as u64).to_le_bytes());
                frame.extend_from_slice(&[0u8; 8]); // checksum, patched below
                for rec in &records {
                    encode_record(rec, &mut frame);
                }
                let checksum = fnv1a(&frame[FRAME_HEADER_LEN..]);
                frame[8..16].copy_from_slice(&checksum.to_le_bytes());
                f.write_all(&frame)?;
                total += n as u64;
            }
            f.seek(SeekFrom::Start(TOTAL_OFFSET))?;
            f.write_all(&total.to_le_bytes())?;
            Ok(())
        })?;
        Ok(total)
    }
}

/// A streamed view of one cached trace: a [`TraceSource`] that decodes
/// and checksum-validates one frame at a time.
#[derive(Debug)]
pub struct ChunkedReader {
    file: BufReader<fs::File>,
    name: String,
    /// Records the header promises.
    total: u64,
    /// Records decoded from frames so far.
    loaded: u64,
    /// The current decoded frame and the next record to serve from it.
    pending: Vec<TraceInst>,
    cursor: usize,
}

impl ChunkedReader {
    /// Total records the cache entry holds.
    pub fn total(&self) -> u64 {
        self.total
    }

    fn remaining_total(&self) -> usize {
        usize::try_from(self.total - self.loaded).unwrap_or(usize::MAX)
            + (self.pending.len() - self.cursor)
    }

    /// Reads and validates the next frame into `pending`.
    fn read_frame(&mut self) -> Result<(), CacheError> {
        let corrupt = |why: &str| CacheError::Corrupt(why.to_string());
        let mut head = [0u8; FRAME_HEADER_LEN];
        match self.file.read_exact(&mut head) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                return Err(corrupt("file ends before the promised record total"))
            }
            Err(e) => return Err(CacheError::Io(e)),
        }
        let count = u64::from_le_bytes(head[..8].try_into().expect("in range"));
        let checksum = u64::from_le_bytes(head[8..].try_into().expect("in range"));
        if count == 0 || self.loaded + count > self.total {
            return Err(corrupt(
                "frame record count disagrees with the header total",
            ));
        }
        let mut payload = vec![0u8; count as usize * RECORD_LEN];
        match self.file.read_exact(&mut payload) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                return Err(corrupt("frame payload is truncated"))
            }
            Err(e) => return Err(CacheError::Io(e)),
        }
        if fnv1a(&payload) != checksum {
            return Err(corrupt("frame checksum mismatch"));
        }
        self.pending.clear();
        self.cursor = 0;
        for rec in payload.chunks_exact(RECORD_LEN) {
            let rec: &[u8; RECORD_LEN] = rec.try_into().expect("chunks are exact");
            self.pending.push(
                decode_record(rec)
                    .map_err(|e: TraceIoError| CacheError::Corrupt(format!("bad record: {e}")))?,
            );
        }
        self.loaded += count;
        Ok(())
    }

    /// The classified-error twin of [`TraceSource::fill`].
    ///
    /// # Errors
    ///
    /// [`CacheError::Corrupt`] or [`CacheError::Io`] per frame.
    pub fn pull_into(&mut self, out: &mut Vec<TraceInst>, max: usize) -> Result<usize, CacheError> {
        let mut served = 0;
        while served < max {
            if self.cursor == self.pending.len() {
                if self.loaded == self.total {
                    break;
                }
                self.read_frame()?;
            }
            let take = (max - served).min(self.pending.len() - self.cursor);
            out.extend_from_slice(&self.pending[self.cursor..self.cursor + take]);
            self.cursor += take;
            served += take;
        }
        Ok(served)
    }
}

impl TraceSource for ChunkedReader {
    fn name(&self) -> &str {
        &self.name
    }

    fn fill(&mut self, out: &mut Vec<TraceInst>, max: usize) -> Result<usize, SourceError> {
        self.pull_into(out, max)
            .map_err(|e| SourceError::new(format!("trace cache: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddsc_isa::{Opcode, Reg};
    use ddsc_trace::TraceInst;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ddsc-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn sample(n: usize) -> Trace {
        let mut t = Trace::new("sample");
        for i in 0..n {
            t.push(TraceInst::alu(
                4 * i as u32,
                Opcode::Add,
                Reg::new(1),
                Reg::new(2),
                None,
                Some(i as i32),
                0,
            ));
        }
        t
    }

    #[test]
    fn round_trips_a_trace() {
        let cache = TraceCache::new(tmpdir("roundtrip"));
        let t = sample(100);
        assert!(cache.load("sample", 7, 100).is_none(), "cold cache misses");
        cache.store("sample", 7, 100, &t).unwrap();
        let back = cache.load("sample", 7, 100).expect("warm cache hits");
        assert_eq!(back, t);
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn round_trips_across_frame_boundaries() {
        let cache = TraceCache::new(tmpdir("frames"));
        let t = sample(1000);
        // Frame sizes that divide, straddle, and exceed the trace.
        for frames in [1usize, 7, 1000, 4096] {
            let stored = cache
                .store_source("sample", 7, 1000, &mut SliceSource::new(&t), frames)
                .unwrap();
            assert_eq!(stored, 1000);
            assert_eq!(
                cache.load("sample", 7, 1000).expect("hits"),
                t,
                "frame size {frames}"
            );
        }
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn streamed_reads_match_whole_loads_at_any_pull_size() {
        let cache = TraceCache::new(tmpdir("pulls"));
        let t = sample(500);
        cache
            .store_source("sample", 7, 500, &mut SliceSource::new(&t), 64)
            .unwrap();
        for pull in [1usize, 13, 64, 100, 10_000] {
            let mut reader = cache.open_stream("sample", 7, 500).unwrap();
            assert_eq!(reader.total(), 500);
            let mut insts = Vec::new();
            loop {
                let before = insts.len();
                let n = reader.fill(&mut insts, pull).expect("clean read");
                assert_eq!(insts.len() - before, n);
                if n == 0 {
                    break;
                }
            }
            assert_eq!(insts, t.insts(), "pull size {pull}");
        }
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn key_mismatches_miss() {
        let cache = TraceCache::new(tmpdir("keys"));
        let t = sample(50);
        cache.store("sample", 7, 50, &t).unwrap();
        assert!(cache.load("sample", 8, 50).is_none(), "wrong seed");
        assert!(cache.load("sample", 7, 51).is_none(), "wrong length");
        assert!(cache.load("other", 7, 50).is_none(), "wrong benchmark");
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corruption_is_detected() {
        let cache = TraceCache::new(tmpdir("corrupt"));
        let t = sample(80);
        cache.store("sample", 3, 80, &t).unwrap();
        let path = cache.path_for("sample", 3, 80);

        // Flip one payload byte: the frame checksum must catch it.
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(cache.load("sample", 3, 80).is_none(), "bit flip");

        // Truncate mid-payload: the frame read must catch it.
        cache.store("sample", 3, 80, &t).unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(cache.load("sample", 3, 80).is_none(), "truncation");

        // Garbage shorter than a header.
        fs::write(&path, b"DD").unwrap();
        assert!(cache.load("sample", 3, 80).is_none(), "tiny file");
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corruption_in_a_late_frame_fails_the_streamed_read_midway() {
        let cache = TraceCache::new(tmpdir("lateframe"));
        let t = sample(300);
        cache
            .store_source("sample", 3, 300, &mut SliceSource::new(&t), 100)
            .unwrap();
        // Flip a byte in the last frame's payload.
        let path = cache.path_for("sample", 3, 300);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let mut reader = cache.open_stream("sample", 3, 300).unwrap();
        let mut insts = Vec::new();
        // The first two frames are intact and serve fine.
        assert_eq!(reader.pull_into(&mut insts, 200).unwrap(), 200);
        assert_eq!(insts, t.insts()[..200]);
        // The damaged frame fails — and classifies as corruption.
        match reader.pull_into(&mut insts, 100) {
            Err(CacheError::Corrupt(why)) => assert!(why.contains("checksum"), "{why}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn try_load_classifies_failures() {
        let cache = TraceCache::new(tmpdir("classify"));
        assert!(matches!(
            cache.try_load("sample", 3, 80),
            Err(CacheError::Missing)
        ));

        let t = sample(80);
        cache.store("sample", 3, 80, &t).unwrap();
        let path = cache.path_for("sample", 3, 80);
        let clean = fs::read(&path).unwrap();

        // Truncated mid-header: shorter than HEADER_LEN.
        fs::write(&path, &clean[..HEADER_LEN / 2]).unwrap();
        match cache.try_load("sample", 3, 80) {
            Err(CacheError::Corrupt(why)) => assert!(why.contains("header"), "{why}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }

        // Truncated mid-payload: header intact, frames short.
        fs::write(&path, &clean[..clean.len() - 13]).unwrap();
        match cache.try_load("sample", 3, 80) {
            Err(CacheError::Corrupt(why)) => assert!(why.contains("truncated"), "{why}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }

        // In-file key mismatch (file renamed under a foreign key).
        fs::write(&path, &clean).unwrap();
        fs::rename(&path, cache.path_for("sample", 4, 80)).unwrap();
        match cache.try_load("sample", 4, 80) {
            Err(CacheError::Corrupt(why)) => assert!(why.contains("key"), "{why}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }

        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn transient_faults_fail_loads_then_clear() {
        let cache = TraceCache::new(tmpdir("transient")).with_transient_faults(2);
        let t = sample(30);
        cache.store("sample", 9, 30, &t).unwrap();
        for _ in 0..2 {
            match cache.try_load("sample", 9, 30) {
                Err(CacheError::Io(e)) => assert!(ddsc_util::fault::is_transient(&e)),
                other => panic!("expected transient Io, got {other:?}"),
            }
        }
        assert_eq!(cache.try_load("sample", 9, 30).unwrap(), t);
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn retry_rides_out_transient_faults() {
        let cache = TraceCache::new(tmpdir("retry")).with_transient_faults(2);
        let t = sample(30);
        cache.store("sample", 9, 30, &t).unwrap();
        assert_eq!(cache.load_with_retry("sample", 9, 30, 3).unwrap(), t);

        // Exhausted retries surface the transient error.
        let cache = cache.with_transient_faults(5);
        assert!(matches!(
            cache.load_with_retry("sample", 9, 30, 2),
            Err(CacheError::Io(_))
        ));

        // Non-transient failures do not retry (would hang otherwise if
        // they decremented nothing; here just assert classification).
        let cache = cache.with_transient_faults(0);
        assert!(matches!(
            cache.load_with_retry("missing", 9, 30, 3),
            Err(CacheError::Missing)
        ));
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn stores_leave_no_temp_files_behind() {
        let cache = TraceCache::new(tmpdir("atomic"));
        cache.store("sample", 1, 20, &sample(20)).unwrap();
        cache.store("sample", 1, 20, &sample(20)).unwrap(); // overwrite
        let entries: Vec<_> = fs::read_dir(cache.dir())
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(entries, vec!["sample-s1-n20.bin".to_string()]);
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn an_empty_trace_round_trips() {
        let cache = TraceCache::new(tmpdir("empty"));
        cache.store("sample", 1, 0, &sample(0)).unwrap();
        let back = cache.load("sample", 1, 0).expect("hits");
        assert!(back.is_empty());
        let _ = fs::remove_dir_all(cache.dir());
    }
}
