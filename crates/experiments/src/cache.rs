//! An on-disk cache of generated benchmark traces.
//!
//! Workload execution is deterministic in `(benchmark, seed, length)`,
//! so a generated trace never changes — regenerating it at every
//! `ddsc repro` invocation is pure waste once traces get long. A
//! [`TraceCache`] stores each trace as one file
//! (`{benchmark}-s{seed}-n{len}.bin`, conventionally under
//! `results/traces/`) and serves it back on the next run.
//!
//! Robustness rules:
//!
//! * every file carries a header with a magic, a format version, the
//!   generation key and an FNV-1a checksum of the payload — any
//!   mismatch (truncation, corruption, stale format, foreign file)
//!   makes [`TraceCache::load`] return `None` and the caller
//!   regenerates;
//! * writes go to a temporary sibling file first and are atomically
//!   renamed into place, so a crashed or concurrent run can never
//!   publish a half-written cache entry;
//! * the cache is an optimisation only: store failures are reported to
//!   the caller but safe to ignore (the in-memory trace is already
//!   correct).

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use ddsc_trace::io::{read_trace, write_trace};
use ddsc_trace::Trace;
use ddsc_util::fnv1a;

/// Cache-file magic: "DDSC Trace Cache".
const MAGIC: &[u8; 4] = b"DDTC";
/// Bump on any incompatible layout change; old files then just miss.
const VERSION: u32 = 1;
/// Magic + version + seed + len + payload_len + checksum.
const HEADER_LEN: usize = 4 + 4 + 8 + 8 + 8 + 8;

/// A directory of cached benchmark traces.
#[derive(Debug, Clone)]
pub struct TraceCache {
    dir: PathBuf,
}

impl TraceCache {
    /// A cache rooted at `dir`. The directory is created lazily on the
    /// first store.
    pub fn new(dir: impl Into<PathBuf>) -> TraceCache {
        TraceCache { dir: dir.into() }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file a given generation key lives at.
    pub fn path_for(&self, name: &str, seed: u64, len: usize) -> PathBuf {
        self.dir.join(format!("{name}-s{seed}-n{len}.bin"))
    }

    /// Loads a cached trace, or `None` if the entry is missing, does not
    /// match the requested key, or fails validation in any way.
    pub fn load(&self, name: &str, seed: u64, len: usize) -> Option<Trace> {
        let bytes = fs::read(self.path_for(name, seed, len)).ok()?;
        if bytes.len() < HEADER_LEN || &bytes[..4] != MAGIC {
            return None;
        }
        let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().unwrap());
        let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap());
        if u32_at(4) != VERSION || u64_at(8) != seed || u64_at(16) != len as u64 {
            return None;
        }
        let payload = &bytes[HEADER_LEN..];
        if u64_at(24) != payload.len() as u64 || u64_at(32) != fnv1a(payload) {
            return None;
        }
        let trace = read_trace(payload).ok()?;
        // Belt and braces: the payload parsed, but it must also be the
        // trace the key promises.
        (trace.len() == len).then_some(trace)
    }

    /// Stores a trace under its generation key, atomically (write to a
    /// temporary sibling, then rename into place).
    ///
    /// # Errors
    ///
    /// Returns any underlying filesystem error. Callers may treat a
    /// failure as non-fatal — the cache is an optimisation.
    pub fn store(&self, name: &str, seed: u64, len: usize, trace: &Trace) -> std::io::Result<()> {
        fs::create_dir_all(&self.dir)?;
        let mut payload = Vec::new();
        write_trace(&mut payload, trace).map_err(std::io::Error::other)?;

        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&seed.to_le_bytes());
        bytes.extend_from_slice(&(len as u64).to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);

        let target = self.path_for(name, seed, len);
        let tmp = target.with_extension(format!("tmp.{}", std::process::id()));
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
        drop(f);
        let renamed = fs::rename(&tmp, &target);
        if renamed.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        renamed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddsc_isa::{Opcode, Reg};
    use ddsc_trace::TraceInst;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ddsc-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn sample(n: usize) -> Trace {
        let mut t = Trace::new("sample");
        for i in 0..n {
            t.push(TraceInst::alu(
                4 * i as u32,
                Opcode::Add,
                Reg::new(1),
                Reg::new(2),
                None,
                Some(i as i32),
                0,
            ));
        }
        t
    }

    #[test]
    fn round_trips_a_trace() {
        let cache = TraceCache::new(tmpdir("roundtrip"));
        let t = sample(100);
        assert!(cache.load("sample", 7, 100).is_none(), "cold cache misses");
        cache.store("sample", 7, 100, &t).unwrap();
        let back = cache.load("sample", 7, 100).expect("warm cache hits");
        assert_eq!(back, t);
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn key_mismatches_miss() {
        let cache = TraceCache::new(tmpdir("keys"));
        let t = sample(50);
        cache.store("sample", 7, 50, &t).unwrap();
        assert!(cache.load("sample", 8, 50).is_none(), "wrong seed");
        assert!(cache.load("sample", 7, 51).is_none(), "wrong length");
        assert!(cache.load("other", 7, 50).is_none(), "wrong benchmark");
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corruption_is_detected() {
        let cache = TraceCache::new(tmpdir("corrupt"));
        let t = sample(80);
        cache.store("sample", 3, 80, &t).unwrap();
        let path = cache.path_for("sample", 3, 80);

        // Flip one payload byte: the checksum must catch it.
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(cache.load("sample", 3, 80).is_none(), "bit flip");

        // Truncate mid-payload: the length check must catch it.
        cache.store("sample", 3, 80, &t).unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(cache.load("sample", 3, 80).is_none(), "truncation");

        // Garbage shorter than a header.
        fs::write(&path, b"DD").unwrap();
        assert!(cache.load("sample", 3, 80).is_none(), "tiny file");
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn stores_leave_no_temp_files_behind() {
        let cache = TraceCache::new(tmpdir("atomic"));
        cache.store("sample", 1, 20, &sample(20)).unwrap();
        cache.store("sample", 1, 20, &sample(20)).unwrap(); // overwrite
        let entries: Vec<_> = fs::read_dir(cache.dir())
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(entries, vec!["sample-s1-n20.bin".to_string()]);
        let _ = fs::remove_dir_all(cache.dir());
    }
}
