//! Experiment drivers regenerating every table and figure of the paper.
//!
//! The mapping from paper artifact to driver:
//!
//! | artifact | driver |
//! |---|---|
//! | Table 1 (benchmark characteristics) | [`tables::table1`] |
//! | Table 2 (branch prediction) | [`tables::table2`] |
//! | Figure 2 (IPC, all benchmarks) | [`figures::fig2`] |
//! | Figure 3 (speedup, all benchmarks) | [`figures::fig3`] |
//! | Figures 4/5 (pointer-chasing subset) | [`figures::fig4`], [`figures::fig5`] |
//! | Figures 6/7 (non-pointer subset) | [`figures::fig6`], [`figures::fig7`] |
//! | Table 3 (loads, pointer-chasing, config D) | [`tables::table3`] |
//! | Table 4 (loads, non-pointer, config D) | [`tables::table4`] |
//! | Figure 8 (% instructions collapsed) | [`figures::fig8`] |
//! | Figure 9 (collapsing mechanism contributions) | [`figures::fig9`] |
//! | Figure 10 (collapse distances) | [`figures::fig10`] |
//! | Table 5 (top 3-1 sequences) | [`tables::table5`] |
//! | Table 6 (top 4-1 sequences) | [`tables::table6`] |
//!
//! Beyond the paper, [`extensions`] holds the ablations and future-work
//! experiments (address-predictor upgrades, node elimination, collapse
//! depth/zero-detection/basic-block restrictions).
//!
//! All drivers consume a `&`[`Lab`] — a thread-safe memoising driver
//! that simulates and caches `(benchmark, configuration, width)` results
//! over one generated trace suite, so a full reproduction simulates each
//! combination exactly once. [`Lab::prewarm`] evaluates a cell grid in
//! parallel; [`render_all`] prewarms the full paper grid first, so the
//! figure/table drivers only consume cached results.
//!
//! # Examples
//!
//! ```
//! use ddsc_experiments::{Lab, SuiteConfig};
//!
//! let lab = Lab::new(SuiteConfig {
//!     trace_len: 5_000,
//!     widths: vec![4, 8],
//!     ..SuiteConfig::default()
//! });
//! let fig2 = ddsc_experiments::figures::fig2(&lab);
//! assert_eq!(fig2.series.len(), 5); // configurations A..E
//! ```

pub mod cache;
pub mod extensions;
pub mod figures;
pub mod lab;
pub mod parallel;
pub mod profile;
pub mod tables;

pub use cache::TraceCache;
pub use lab::{Cell, CellMetrics, CellTiming, Lab, LabReport, PrewarmError, Suite, SuiteConfig};
pub use profile::{collect_profiles, render_profiles, write_profiles, ConfigProfile, ProfileCell};

/// Renders every paper artifact in order (the `ddsc repro all` payload).
///
/// Prewarms the full grid over the thread pool first; the individual
/// drivers then consume cached results, so the output is byte-identical
/// to a serial evaluation.
pub fn render_all(lab: &Lab) -> String {
    lab.prewarm_all();
    let mut out = String::new();
    out.push_str(&tables::table1(lab.suite()).render());
    out.push('\n');
    out.push_str(&tables::table2(lab.suite()).render());
    out.push('\n');
    out.push_str(&figures::fig2(lab).render());
    out.push('\n');
    out.push_str(&figures::fig3(lab).render());
    out.push('\n');
    out.push_str(&figures::fig4(lab).render());
    out.push('\n');
    out.push_str(&figures::fig5(lab).render());
    out.push('\n');
    out.push_str(&figures::fig6(lab).render());
    out.push('\n');
    out.push_str(&figures::fig7(lab).render());
    out.push('\n');
    out.push_str(&tables::table3(lab).render());
    out.push('\n');
    out.push_str(&tables::table4(lab).render());
    out.push('\n');
    out.push_str(&figures::fig8(lab).render());
    out.push('\n');
    out.push_str(&figures::fig9(lab).render());
    out.push('\n');
    out.push_str(&figures::fig10(lab).render());
    out.push('\n');
    out.push_str(&tables::table5(lab).render());
    out.push('\n');
    out.push_str(&tables::table6(lab).render());
    out
}
