//! Experiment drivers regenerating every table and figure of the paper.
//!
//! The mapping from paper artifact to driver:
//!
//! | artifact | driver |
//! |---|---|
//! | Table 1 (benchmark characteristics) | [`tables::table1`] |
//! | Table 2 (branch prediction) | [`tables::table2`] |
//! | Figure 2 (IPC, all benchmarks) | [`figures::fig2`] |
//! | Figure 3 (speedup, all benchmarks) | [`figures::fig3`] |
//! | Figures 4/5 (pointer-chasing subset) | [`figures::fig4`], [`figures::fig5`] |
//! | Figures 6/7 (non-pointer subset) | [`figures::fig6`], [`figures::fig7`] |
//! | Table 3 (loads, pointer-chasing, config D) | [`tables::table3`] |
//! | Table 4 (loads, non-pointer, config D) | [`tables::table4`] |
//! | Figure 8 (% instructions collapsed) | [`figures::fig8`] |
//! | Figure 9 (collapsing mechanism contributions) | [`figures::fig9`] |
//! | Figure 10 (collapse distances) | [`figures::fig10`] |
//! | Table 5 (top 3-1 sequences) | [`tables::table5`] |
//! | Table 6 (top 4-1 sequences) | [`tables::table6`] |
//!
//! Beyond the paper, [`extensions`] holds the ablations and future-work
//! experiments (address-predictor upgrades, node elimination, collapse
//! depth/zero-detection/basic-block restrictions).
//!
//! All drivers consume a `&`[`Lab`] — a thread-safe memoising driver
//! that simulates and caches `(benchmark, configuration, width)` results
//! over one generated trace suite, so a full reproduction simulates each
//! combination exactly once. [`Lab::prewarm`] evaluates a cell grid in
//! parallel; [`render_all`] prewarms the full paper grid first, so the
//! figure/table drivers only consume cached results.
//!
//! # Examples
//!
//! ```
//! use ddsc_experiments::{Lab, SuiteConfig};
//!
//! let lab = Lab::new(SuiteConfig {
//!     trace_len: 5_000,
//!     widths: vec![4, 8],
//!     ..SuiteConfig::default()
//! });
//! let fig2 = ddsc_experiments::figures::fig2(&lab);
//! assert_eq!(fig2.series.len(), 5); // configurations A..E
//! ```

pub mod cache;
pub mod cellstore;
pub mod converge;
pub mod extensions;
pub mod figures;
pub mod lab;
pub mod parallel;
pub mod profile;
pub mod tables;

pub use cache::{CacheError, ChunkedReader, TraceCache, DEFAULT_FRAME_RECORDS};
pub use cellstore::CellStore;
pub use converge::{convergence_study, ConvergencePoint, ConvergenceReport};
pub use lab::{
    Cell, CellFailure, CellMetrics, CellOutcome, CellTiming, FailedCell, Lab, LabReport,
    PrewarmError, Suite, SuiteConfig,
};
pub use profile::{collect_profiles, render_profiles, write_profiles, ConfigProfile, ProfileCell};

/// Renders one paper artifact from a (prewarmed) lab.
pub type ArtifactRenderer = fn(&Lab) -> String;

/// The paper artifacts in publication order, each with its renderer —
/// the single source of truth both [`render_all`] (all-or-nothing) and
/// [`render_all_contained`] (per-artifact fault containment) walk, so
/// the two cannot drift apart.
pub fn paper_artifacts() -> Vec<(&'static str, ArtifactRenderer)> {
    vec![
        ("table1", |lab| tables::table1(lab.suite()).render()),
        ("table2", |lab| tables::table2(lab.suite()).render()),
        ("fig2", |lab| figures::fig2(lab).render()),
        ("fig3", |lab| figures::fig3(lab).render()),
        ("fig4", |lab| figures::fig4(lab).render()),
        ("fig5", |lab| figures::fig5(lab).render()),
        ("fig6", |lab| figures::fig6(lab).render()),
        ("fig7", |lab| figures::fig7(lab).render()),
        ("table3", |lab| tables::table3(lab).render()),
        ("table4", |lab| tables::table4(lab).render()),
        ("fig8", |lab| figures::fig8(lab).render()),
        ("fig9", |lab| figures::fig9(lab).render()),
        ("fig10", |lab| figures::fig10(lab).render()),
        ("table5", |lab| tables::table5(lab).render()),
        ("table6", |lab| tables::table6(lab).render()),
    ]
}

/// Renders every paper artifact in order (the `ddsc repro all` payload).
///
/// Prewarms the full grid over the thread pool first; the individual
/// drivers then consume cached results, so the output is byte-identical
/// to a serial evaluation.
pub fn render_all(lab: &Lab) -> String {
    lab.prewarm_all();
    let parts: Vec<String> = paper_artifacts().iter().map(|(_, f)| f(lab)).collect();
    parts.join("\n")
}

/// Like [`render_all`], but degrades instead of dying: the grid is
/// prewarmed with per-cell fault containment ([`Lab::prewarm_degraded`])
/// and each artifact renders under its own panic guard, so an artifact
/// that touches a failed cell becomes a one-line `[skipped]` note while
/// every other artifact renders normally. On a clean lab the output is
/// byte-identical to [`render_all`].
pub fn render_all_contained(lab: &Lab) -> String {
    lab.prewarm_degraded(&lab.grid());
    let parts: Vec<String> = paper_artifacts()
        .iter()
        .map(|&(name, f)| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(lab))).unwrap_or_else(
                |payload| {
                    let msg = payload
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    format!("## {name} [skipped: {msg}]\n")
                },
            )
        })
        .collect();
    parts.join("\n")
}
