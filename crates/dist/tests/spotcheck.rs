//! Byzantine-resilience tests for the spot-check consensus layer.
//!
//! Structural validation (`tests/ingest_proptest.rs`) guarantees that
//! whatever merges is canonical, *decodable* bytes — it cannot catch a
//! well-formed body with wrong counters. These tests pin the layer
//! built for exactly that adversary: with `--spot-check 100`, every
//! cell needs two distinct workers to agree byte-for-byte before it
//! merges, so a worker that lies (honest simulation, perturbed cycle
//! count, canonical re-encode — the `--byzantine` worker mode) is
//! outvoted by the tiebreak and banned. The property under every
//! interleaving proptest can generate: **a minority or non-canonical
//! body never reaches the merge sink** — the merged grid is
//! byte-identical to a clean serial run's.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use ddsc_core::{simulate_prepared, PaperConfig, PreparedTrace, SimConfig, SimResult};
use ddsc_dist::{
    run_worker, Assignment, CellSpec, Coordinator, DistSinks, Ingest, SchedOptions, Scheduler,
    WorkerOptions,
};
use ddsc_trace::io::write_trace;
use ddsc_util::fnv1a;
use ddsc_workloads::Benchmark;
use proptest::prelude::*;

const SEED: u64 = 1996;
const LEN: u64 = 1200;

/// The grid under test: one prepared trace, four (config, width)
/// cells, with each cell's clean canonical bytes. Computed once.
fn grid() -> &'static Vec<(CellSpec, Vec<u8>)> {
    static GRID: OnceLock<Vec<(CellSpec, Vec<u8>)>> = OnceLock::new();
    GRID.get_or_init(|| {
        let bench = Benchmark::ALL
            .iter()
            .copied()
            .find(|b| b.name() == "compress")
            .unwrap();
        let trace = bench.trace(SEED, LEN as usize).unwrap();
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &trace).unwrap();
        let checksum = fnv1a(&bytes);
        let prepared = PreparedTrace::build(&trace);
        let mut out = Vec::new();
        for config in [PaperConfig::A, PaperConfig::D] {
            for width in [4u32, 8] {
                let mut ident = Vec::new();
                ident.extend_from_slice(&checksum.to_le_bytes());
                ident.extend_from_slice(config.label().as_bytes());
                ident.extend_from_slice(&width.to_le_bytes());
                let spec = CellSpec {
                    bench: "compress".into(),
                    config: config.label().into(),
                    width,
                    trace_len: LEN,
                    seed: SEED,
                    digest: fnv1a(&ident),
                };
                let result = simulate_prepared(&prepared, &SimConfig::paper(config, width));
                let mut body = Vec::new();
                result.encode_to(&mut body);
                out.push((spec, body));
            }
        }
        out
    })
}

/// The deterministic lie the `--byzantine` worker mode tells: decode
/// the honest result, inflate the cycle count, re-encode canonically.
/// Well-formed, stable across re-computation, never equal to the truth.
fn perturb(spec: &CellSpec, clean: &[u8]) -> Vec<u8> {
    let pc = PaperConfig::ALL
        .iter()
        .copied()
        .find(|c| c.label() == spec.config)
        .unwrap();
    let mut pos = 0;
    let mut result = SimResult::decode(clean, &mut pos, SimConfig::paper(pc, spec.width))
        .expect("clean decodes");
    result.cycles += 1 + result.cycles / 64;
    let mut body = Vec::new();
    result.encode_to(&mut body);
    body
}

fn spot_check_all_opts() -> SchedOptions {
    SchedOptions {
        lease_timeout: Duration::from_secs(60),
        heartbeat_timeout: Duration::from_secs(60),
        poison_threshold: usize::MAX,
        idle_wait_ms: 1,
        adaptive_lease: false,
        spot_check_percent: 100,
        ..SchedOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Three workers — two honest, one byzantine — pull and submit in a
    /// proptest-chosen interleaving with every cell spot-checked. No
    /// matter the order, only clean bytes merge, the full grid
    /// completes, and the liar is identified and banned.
    #[test]
    fn mismatches_never_merge_minority_bytes(order in proptest::collection::vec(0..3usize, 0..96)) {
        let cells = grid();
        let clean: HashMap<u64, &Vec<u8>> = cells.iter().map(|(s, b)| (s.digest, b)).collect();
        let lies: HashMap<u64, Vec<u8>> =
            cells.iter().map(|(s, b)| (s.digest, perturb(s, b))).collect();
        let mut sched = Scheduler::new(
            cells.iter().map(|(s, _)| s.clone()).collect(),
            spot_check_all_opts(),
        );
        let t = Instant::now();
        let workers: Vec<u64> = (0..3).map(|_| sched.register(0, t)).collect();
        let byz = workers[2];

        let mut merged: HashMap<u64, Vec<u8>> = HashMap::new();
        let step = |sched: &mut Scheduler, worker: u64, merged: &mut HashMap<u64, Vec<u8>>| {
            match sched.next_assignment(worker, t) {
                Assignment::Cell(spec) => {
                    let body: &[u8] = if worker == byz {
                        &lies[&spec.digest]
                    } else {
                        clean[&spec.digest]
                    };
                    match sched.submit_result(worker, spec.digest, 0.01, body, t) {
                        Ingest::Merged { spec, result, .. } => {
                            let mut bytes = Vec::new();
                            result.encode_to(&mut bytes);
                            merged.insert(spec.digest, bytes);
                        }
                        Ingest::HeldForVerification | Ingest::Duplicate => {}
                        other => panic!("unexpected ingest: {other:?}"),
                    }
                }
                Assignment::Idle { .. } | Assignment::AllDone => {}
            }
        };

        // The proptest-chosen prefix of the interleaving...
        for &wi in &order {
            step(&mut sched, workers[wi], &mut merged);
        }
        // ...then honest workers finish whatever is left.
        let mut safety = 0;
        while !sched.is_complete() {
            safety += 1;
            prop_assert!(safety < 10_000, "campaign failed to converge");
            for &w in &workers[..2] {
                step(&mut sched, w, &mut merged);
            }
        }

        // The core property: every merged body is the clean bytes.
        prop_assert_eq!(merged.len(), cells.len());
        for (digest, body) in &merged {
            prop_assert_eq!(Some(body), clean.get(digest).copied(),
                "non-canonical bytes merged for {:#x}", digest);
        }
        let report = sched.report(1.0);
        prop_assert_eq!(report.cells_completed, cells.len());
        prop_assert_eq!(report.cells_quarantined, 0);
        prop_assert_eq!(report.revocation_false_positives, 0);
        // If the liar ever got a cell in edgewise, it was caught.
        if report.mismatches > 0 {
            prop_assert_eq!(&report.byzantine_workers, &vec![byz]);
        } else {
            prop_assert!(report.byzantine_workers.is_empty());
        }
    }
}

/// End-to-end over real sockets: a coordinator with every cell
/// spot-checked, three in-process workers of which one runs the hidden
/// `--byzantine` mode. The merged grid must be byte-identical to the
/// clean bodies, the liar banned, and no revocation false-positives
/// recorded.
#[test]
fn byzantine_worker_is_outvoted_end_to_end() {
    let cells = grid();
    let clean: HashMap<u64, &Vec<u8>> = cells.iter().map(|(s, b)| (s.digest, b)).collect();
    let coord = Coordinator::bind(
        "127.0.0.1:0",
        cells.iter().map(|(s, _)| s.clone()).collect(),
        spot_check_all_opts(),
    )
    .expect("bind");
    let addr = coord.local_addr().to_string();

    let threads: Vec<_> = (0..3)
        .map(|i| {
            let mut opts = WorkerOptions::new(addr.clone());
            opts.byzantine = i == 0;
            std::thread::spawn(move || run_worker(&opts).expect("worker runs"))
        })
        .collect();

    let merged: Mutex<HashMap<u64, Vec<u8>>> = Mutex::new(HashMap::new());
    let on_result = |spec: &CellSpec, result: &SimResult, _seconds: f64| {
        let mut bytes = Vec::new();
        result.encode_to(&mut bytes);
        merged.lock().unwrap().insert(spec.digest, bytes);
    };
    let on_quarantine = |spec: &CellSpec, error: &str| {
        panic!("cell {:#x} quarantined: {error}", spec.digest);
    };
    let report = coord.run(&DistSinks {
        on_result: &on_result,
        on_quarantine: &on_quarantine,
    });
    for t in threads {
        t.join().expect("worker thread");
    }

    let merged = merged.into_inner().unwrap();
    assert_eq!(merged.len(), cells.len());
    for (digest, body) in &merged {
        assert_eq!(
            Some(body),
            clean.get(digest).copied(),
            "non-canonical bytes merged for {digest:#x}"
        );
    }
    assert_eq!(report.cells_completed, cells.len());
    assert_eq!(report.cells_quarantined, 0);
    assert_eq!(report.spot_checked as usize, cells.len());
    assert_eq!(report.revocation_false_positives, 0);
    // The byzantine worker must have been caught at least once (its
    // first spot-checked conflict) and banned for the run.
    assert!(
        report.mismatches >= 1,
        "the liar was never even contradicted"
    );
    assert_eq!(report.byzantine_workers.len(), 1);
    let banned = report.byzantine_workers[0];
    let liar = report
        .workers
        .iter()
        .find(|w| w.id == banned)
        .expect("banned worker reported");
    assert!(liar.byzantine);
}
