//! End-to-end chaos drills through the deterministic network proxy.
//!
//! The proxy's fault scripts are pure functions of (seed, connection
//! index, direction) — no wall clock, no OS entropy — so a drill that
//! fails in CI replays bit-identically from the same seed. These tests
//! pin both halves of that claim: the *scripts* are reproducible, and
//! a real coordinator/worker fleet pushed through the proxy still
//! merges a grid byte-identical to a clean serial run, twice in a row.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

use ddsc_core::{simulate_prepared, PaperConfig, PreparedTrace, SimConfig, SimResult};
use ddsc_dist::chaos::script;
use ddsc_dist::{
    run_worker, CellSpec, ChaosOptions, ChaosProxy, Coordinator, DistSinks, SchedOptions,
    WorkerOptions,
};
use ddsc_trace::io::write_trace;
use ddsc_util::fnv1a;
use ddsc_workloads::Benchmark;

const SEED: u64 = 1996;
const LEN: u64 = 1200;
const CHAOS_SEED: u64 = 0xC4A05;

fn grid() -> &'static Vec<(CellSpec, Vec<u8>)> {
    static GRID: OnceLock<Vec<(CellSpec, Vec<u8>)>> = OnceLock::new();
    GRID.get_or_init(|| {
        let bench = Benchmark::ALL
            .iter()
            .copied()
            .find(|b| b.name() == "compress")
            .unwrap();
        let trace = bench.trace(SEED, LEN as usize).unwrap();
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &trace).unwrap();
        let checksum = fnv1a(&bytes);
        let prepared = PreparedTrace::build(&trace);
        let mut out = Vec::new();
        for config in [PaperConfig::A, PaperConfig::D] {
            for width in [4u32, 8] {
                let mut ident = Vec::new();
                ident.extend_from_slice(&checksum.to_le_bytes());
                ident.extend_from_slice(config.label().as_bytes());
                ident.extend_from_slice(&width.to_le_bytes());
                let spec = CellSpec {
                    bench: "compress".into(),
                    config: config.label().into(),
                    width,
                    trace_len: LEN,
                    seed: SEED,
                    digest: fnv1a(&ident),
                };
                let result = simulate_prepared(&prepared, &SimConfig::paper(config, width));
                let mut body = Vec::new();
                result.encode_to(&mut body);
                out.push((spec, body));
            }
        }
        out
    })
}

fn chaos_opts() -> ChaosOptions {
    ChaosOptions {
        seed: CHAOS_SEED,
        events_per_conn: 8,
        min_gap: 200,
        max_gap: 1500,
    }
}

/// One full drill: coordinator ← chaos proxy ← three workers. Returns
/// the merged digest → bytes map, the rendered scripts of the first
/// connections, and whether any cell quarantined.
fn drill() -> (HashMap<u64, Vec<u8>>, String) {
    use ddsc_dist::Direction;

    let cells = grid();
    let opts = SchedOptions {
        lease_timeout: Duration::from_secs(60),
        heartbeat_timeout: Duration::from_secs(60),
        poison_threshold: usize::MAX, // chaos must never quarantine
        idle_wait_ms: 1,
        adaptive_lease: false,
        ..SchedOptions::default()
    };
    let coord = Coordinator::bind(
        "127.0.0.1:0",
        cells.iter().map(|(s, _)| s.clone()).collect(),
        opts,
    )
    .expect("coordinator binds");
    let proxy = ChaosProxy::bind("127.0.0.1:0", coord.local_addr().to_string(), chaos_opts())
        .expect("proxy binds");
    let stop = proxy.stop_handle();
    let proxy_addr = proxy.local_addr().to_string();
    let proxy_thread = std::thread::spawn(move || proxy.run());

    let workers: Vec<_> = (0..3)
        .map(|_| {
            let opts = WorkerOptions::new(proxy_addr.clone());
            std::thread::spawn(move || run_worker(&opts).expect("worker runs"))
        })
        .collect();

    let merged: Mutex<HashMap<u64, Vec<u8>>> = Mutex::new(HashMap::new());
    let on_result = |spec: &CellSpec, result: &SimResult, _seconds: f64| {
        let mut bytes = Vec::new();
        result.encode_to(&mut bytes);
        merged.lock().unwrap().insert(spec.digest, bytes);
    };
    let on_quarantine = |spec: &CellSpec, error: &str| {
        panic!("cell {:#x} quarantined under chaos: {error}", spec.digest);
    };
    let report = coord.run(&DistSinks {
        on_result: &on_result,
        on_quarantine: &on_quarantine,
    });
    for w in workers {
        w.join().expect("worker thread");
    }
    stop.stop();
    let _ = proxy_thread.join();

    assert_eq!(report.cells_completed, cells.len());
    assert_eq!(report.cells_quarantined, 0);

    // The scripts the first four connections suffered, rendered — a
    // pure function of the seed, so identical across drills.
    let mut scripts = String::new();
    for conn in 0..4 {
        for dir in [Direction::Upstream, Direction::Downstream] {
            scripts.push_str(&script(&chaos_opts(), conn, dir).render());
        }
    }
    (merged.into_inner().unwrap(), scripts)
}

#[test]
fn scripts_are_pure_functions_of_seed_connection_and_direction() {
    use ddsc_dist::Direction;
    let a = chaos_opts();
    for conn in 0..8u64 {
        for dir in [Direction::Upstream, Direction::Downstream] {
            assert_eq!(
                script(&a, conn, dir).render(),
                script(&chaos_opts(), conn, dir).render(),
                "same seed must give the same script"
            );
        }
    }
    // Different seeds, connections and directions all decorrelate.
    let mut other = chaos_opts();
    other.seed ^= 1;
    assert_ne!(
        script(&a, 0, Direction::Upstream).render(),
        script(&other, 0, Direction::Upstream).render()
    );
    assert_ne!(
        script(&a, 0, Direction::Upstream).render(),
        script(&a, 1, Direction::Upstream).render()
    );
    assert_ne!(
        script(&a, 0, Direction::Upstream).render(),
        script(&a, 0, Direction::Downstream).render()
    );
}

#[test]
fn chaos_drill_merges_clean_bytes_and_replays_identically() {
    let cells = grid();
    let clean: HashMap<u64, &Vec<u8>> = cells.iter().map(|(s, b)| (s.digest, b)).collect();

    let (first, first_scripts) = drill();
    assert_eq!(first.len(), cells.len());
    for (digest, body) in &first {
        assert_eq!(
            Some(body),
            clean.get(digest).copied(),
            "chaos corrupted merged bytes for {digest:#x}"
        );
    }

    // Same seed, fresh sockets: identical scripts, identical merge.
    let (second, second_scripts) = drill();
    assert_eq!(first_scripts, second_scripts, "scripts must replay");
    assert_eq!(first, second, "merged outputs must be byte-identical");
}
