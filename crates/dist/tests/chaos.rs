//! Deterministic seeded chaos over the scheduling state machine.
//!
//! The scheduler takes `now` as an argument everywhere, so this test
//! drives it with a synthetic clock and a scripted adversary: workers
//! desert mid-lease, stall past the lease deadline, submit corrupted
//! bodies, and deliver straggler duplicates — all decided by a seeded
//! [`Pcg32`], so every run of this test replays the same chaos. The
//! invariant under all of it: the run completes and the merged
//! digest → bytes map is byte-identical to an undisturbed run's, for
//! every chaos seed.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use ddsc_core::{simulate_prepared, PaperConfig, PreparedTrace, SimConfig};
use ddsc_dist::{Assignment, CellSpec, Ingest, SchedOptions, Scheduler};
use ddsc_trace::io::write_trace;
use ddsc_util::{fnv1a, Pcg32};
use ddsc_workloads::Benchmark;

const SEED: u64 = 1996;
const LEN: u64 = 1200;

fn bench(name: &str) -> Benchmark {
    Benchmark::ALL
        .iter()
        .copied()
        .find(|b| b.name() == name)
        .unwrap()
}

/// The grid under test with each cell's canonical result bytes — what
/// an undisturbed single-process run merges.
fn grid_with_bodies() -> Vec<(CellSpec, Vec<u8>)> {
    let mut out = Vec::new();
    for bench_name in ["compress", "li"] {
        let trace = bench(bench_name).trace(SEED, LEN as usize).unwrap();
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &trace).unwrap();
        let checksum = fnv1a(&bytes);
        let prepared = PreparedTrace::build(&trace);
        for config in [PaperConfig::A, PaperConfig::D] {
            for width in [4u32, 8] {
                let mut ident = Vec::new();
                ident.extend_from_slice(&checksum.to_le_bytes());
                ident.extend_from_slice(config.label().as_bytes());
                ident.extend_from_slice(&width.to_le_bytes());
                let spec = CellSpec {
                    bench: bench_name.into(),
                    config: config.label().into(),
                    width,
                    trace_len: LEN,
                    seed: SEED,
                    digest: fnv1a(&ident),
                };
                let result = simulate_prepared(&prepared, &SimConfig::paper(config, width));
                let mut body = Vec::new();
                result.encode_to(&mut body);
                out.push((spec, body));
            }
        }
    }
    out
}

/// Runs one chaos campaign: a fleet of simulated workers pulls cells
/// while the adversary kills, stalls and corrupts per the seed. Returns
/// the merged digest → bytes map.
fn chaos_campaign(
    grid: &[(CellSpec, Vec<u8>)],
    chaos_seed: u64,
    opts: &SchedOptions,
) -> (HashMap<u64, Vec<u8>>, Scheduler) {
    let bodies: HashMap<u64, &Vec<u8>> = grid.iter().map(|(s, b)| (s.digest, b)).collect();
    let mut sched = Scheduler::new(grid.iter().map(|(s, _)| s.clone()).collect(), *opts);
    let mut rng = Pcg32::new(chaos_seed);
    let t0 = Instant::now();
    let mut tick: u64 = 0;
    let now = move |tick: u64| t0 + Duration::from_millis(tick * 10);

    // Stalled leases the adversary sat on: (due tick, worker, spec).
    let mut stalled: Vec<(u64, u64, CellSpec)> = Vec::new();
    let mut merged: HashMap<u64, Vec<u8>> = HashMap::new();
    let mut deaths = 0u64;
    let mut corruptions = 0u64;
    let mut stalls = 0u64;

    let mut workers: Vec<u64> = (0..4).map(|_| sched.register(0, now(0))).collect();
    let mut safety = 0;
    while !sched.is_complete() {
        safety += 1;
        assert!(safety < 10_000, "chaos campaign failed to converge");
        tick += 1;
        let t = now(tick);
        sched.reap(t);

        // Stalled submissions eventually arrive — long after their
        // lease was revoked and the cell re-dispatched, so most of
        // these land as duplicates.
        stalled.retain(|(due, worker, spec)| {
            if *due <= tick {
                let body = bodies[&spec.digest];
                if let Ingest::Merged { spec, result, .. } =
                    sched.submit_result(*worker, spec.digest, 0.01, body, t)
                {
                    // The straggler delivered the winning copy after all.
                    let mut bytes = Vec::new();
                    result.encode_to(&mut bytes);
                    merged.insert(spec.digest, bytes);
                }
                false
            } else {
                true
            }
        });

        let wi = rng.range(0, workers.len() as u32) as usize;
        let worker = workers[wi];
        match sched.next_assignment(worker, t) {
            Assignment::AllDone => break,
            Assignment::Idle { .. } => continue,
            Assignment::Cell(spec) => {
                if rng.chance(1, 5) {
                    // Desert: the connection drops mid-cell. The worker
                    // re-registers under a fresh identity next round.
                    for (s, _e) in sched.disconnect(worker) {
                        assert_eq!(s.digest, spec.digest);
                    }
                    deaths += 1;
                    workers[wi] = sched.register(0, t);
                } else if rng.chance(1, 5) {
                    // Corrupt: a truncated or trailing-garbage body —
                    // the corruption classes ingest validation is
                    // *guaranteed* to catch (bit flips in transit are
                    // the frame checksum's job, pinned by the ingest
                    // proptests).
                    let mut body = bodies[&spec.digest].clone();
                    if rng.chance(1, 2) {
                        let cut = body.len() - 1 - rng.range(0, 8) as usize;
                        body.truncate(cut);
                    } else {
                        body.push(rng.range(0, 255) as u8);
                    }
                    corruptions += 1;
                    match sched.submit_result(worker, spec.digest, 0.01, &body, t) {
                        Ingest::Rejected { .. }
                        | Ingest::Duplicate
                        | Ingest::Quarantined { .. } => {}
                        other => panic!("corrupt body must not merge: {other:?}"),
                    }
                } else if rng.chance(1, 4) {
                    // Stall: sit on the lease past its deadline, then
                    // deliver the (valid) result as a straggler.
                    let lease_ticks = opts.lease_timeout.as_millis() as u64 / 10;
                    stalls += 1;
                    stalled.push((tick + lease_ticks + 2, worker, spec));
                } else {
                    // Honest: compute and submit promptly.
                    let body = bodies[&spec.digest];
                    match sched.submit_result(worker, spec.digest, 0.01, body, t) {
                        Ingest::Merged { spec, result, .. } => {
                            let mut bytes = Vec::new();
                            result.encode_to(&mut bytes);
                            merged.insert(spec.digest, bytes);
                        }
                        Ingest::Duplicate => {}
                        other => panic!("honest submission refused: {other:?}"),
                    }
                }
            }
        }
    }
    // Whatever was still stalled at completion drains as duplicates.
    let t = now(tick + 1);
    for (_, worker, spec) in stalled.drain(..) {
        let body = bodies[&spec.digest];
        assert!(matches!(
            sched.submit_result(worker, spec.digest, 0.01, body, t),
            Ingest::Duplicate | Ingest::Merged { .. }
        ));
    }
    assert!(
        deaths + corruptions + stalls > 0,
        "the adversary never acted; raise the campaign length"
    );
    (merged, sched)
}

#[test]
fn merged_grid_is_byte_identical_across_chaos_seeds() {
    let grid = grid_with_bodies();
    let clean: HashMap<u64, Vec<u8>> = grid.iter().map(|(s, b)| (s.digest, b.clone())).collect();
    let opts = SchedOptions {
        lease_timeout: Duration::from_millis(300),
        heartbeat_timeout: Duration::from_millis(200),
        poison_threshold: usize::MAX, // chaos must never quarantine a cell
        idle_wait_ms: 1,
        adaptive_lease: false, // the campaign's stall timing assumes fixed leases
        ..SchedOptions::default()
    };
    for chaos_seed in [7, 1996, 0xDDC5] {
        let (merged, sched) = chaos_campaign(&grid, chaos_seed, &opts);
        assert_eq!(
            merged, clean,
            "chaos seed {chaos_seed} merged a different grid"
        );
        assert_eq!(sched.cells_done(), grid.len());
        let report = sched.report(1.0);
        assert_eq!(report.cells_completed, grid.len());
        assert_eq!(report.cells_quarantined, 0);
        assert_eq!(
            report.cells_completed + report.cells_quarantined,
            report.cells_total
        );
    }
}

/// The same campaign with a finite poison threshold: cells struck by
/// enough distinct workers quarantine instead of wedging the run, and
/// whatever did merge is still byte-identical to the clean bytes.
#[test]
fn poison_threshold_quarantines_instead_of_wedging() {
    let grid = grid_with_bodies();
    let opts = SchedOptions {
        lease_timeout: Duration::from_millis(300),
        heartbeat_timeout: Duration::from_millis(200),
        poison_threshold: 2,
        idle_wait_ms: 1,
        adaptive_lease: false,
        ..SchedOptions::default()
    };
    let (merged, sched) = chaos_campaign(&grid, 42, &opts);
    let report = sched.report(1.0);
    assert_eq!(
        report.cells_completed + report.cells_quarantined,
        report.cells_total,
        "every cell must settle one way or the other"
    );
    let clean: HashMap<u64, Vec<u8>> = grid.iter().map(|(s, b)| (s.digest, b.clone())).collect();
    for (digest, bytes) in &merged {
        assert_eq!(clean.get(digest), Some(bytes));
    }
}
