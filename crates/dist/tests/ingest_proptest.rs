//! Property tests for the coordinator's result-ingest path.
//!
//! The serve-layer proptests pin the *frame* codec down; these pin the
//! layer above it: a corrupted result — truncated, bit-flipped, random
//! soup — must never be merged into the grid, and a rejected result
//! must leave its cell re-dispatchable. The one thing validation
//! cannot catch is a well-formed body with plausibly wrong counters
//! (a byzantine worker); that is the spot-check layer's job
//! (DESIGN.md §8.2, pinned by `tests/spotcheck.rs`) — these tests
//! assert exactly the contract structural validation does make:
//! whatever merges is canonical bytes that satisfy the simulator's
//! structural invariants.

use std::sync::OnceLock;
use std::time::Instant;

use ddsc_core::{simulate_prepared, PaperConfig, PreparedTrace, SimConfig};
use ddsc_dist::proto::{read_worker_msg, write_worker_msg};
use ddsc_dist::{validate_body, Assignment, CellSpec, Ingest, SchedOptions, Scheduler, WorkerMsg};
use ddsc_trace::io::write_trace;
use ddsc_util::{fnv1a, FaultPlan};
use proptest::prelude::*;

/// One real cell with its canonical result body, computed once: the
/// per-case work is mutation + validation, not simulation.
fn fixture() -> &'static (CellSpec, Vec<u8>) {
    static FIXTURE: OnceLock<(CellSpec, Vec<u8>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let bench = ddsc_workloads::Benchmark::ALL
            .iter()
            .copied()
            .find(|b| b.name() == "compress")
            .unwrap();
        let (config, width, len) = (PaperConfig::D, 4u32, 1200u64);
        let trace = bench.trace(1996, len as usize).unwrap();
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &trace).unwrap();
        let mut ident = Vec::new();
        ident.extend_from_slice(&fnv1a(&bytes).to_le_bytes());
        ident.extend_from_slice(config.label().as_bytes());
        ident.extend_from_slice(&width.to_le_bytes());
        let spec = CellSpec {
            bench: "compress".into(),
            config: config.label().into(),
            width,
            trace_len: len,
            seed: 1996,
            digest: fnv1a(&ident),
        };
        let prepared = PreparedTrace::build(&trace);
        let result = simulate_prepared(&prepared, &SimConfig::paper(config, width));
        let mut body = Vec::new();
        result.encode_to(&mut body);
        (spec, body)
    })
}

fn one_cell_scheduler() -> (Scheduler, u64) {
    let (spec, _) = fixture();
    let opts = SchedOptions {
        poison_threshold: usize::MAX, // rejection must never quarantine here
        ..SchedOptions::default()
    };
    let mut sched = Scheduler::new(vec![spec.clone()], opts);
    let worker = sched.register(0, Instant::now());
    (sched, worker)
}

proptest! {
    /// A fault-plan-mutated result *frame* either fails to decode with
    /// a typed error or decodes to the exact original message — the
    /// checksummed frame gives corruption no way to alias one worker
    /// message into another.
    #[test]
    fn mutated_result_frames_never_alias(seed in any::<u64>(), faults in 1usize..8) {
        let (spec, body) = fixture();
        let msg = WorkerMsg::Result {
            worker_id: 7,
            digest: spec.digest,
            seconds_bits: 0.25f64.to_bits(),
            body: body.clone(),
        };
        let mut clean = Vec::new();
        write_worker_msg(&mut clean, &msg).unwrap();
        let mut bytes = clean.clone();
        FaultPlan::seeded(seed, faults, bytes.len()).apply(&mut bytes);
        let mut stream = &bytes[..];
        // Anything else is rejected at the frame layer, which is fine.
        if let Ok(Some(decoded)) = read_worker_msg(&mut stream) {
            prop_assert_eq!(decoded, msg.clone());
        }
        if bytes == clean {
            let mut stream = &bytes[..];
            prop_assert_eq!(read_worker_msg(&mut stream).unwrap(), Some(msg));
        }
    }

    /// A fault-plan-mutated result *body* submitted to the scheduler is
    /// either merged as canonical invariant-satisfying bytes or
    /// rejected — and a rejected cell is immediately re-dispatchable,
    /// so corruption costs a round-trip, never a grid cell.
    #[test]
    fn mutated_bodies_reject_and_redispatch_or_merge_canonically(
        seed in any::<u64>(),
        faults in 1usize..8,
    ) {
        let (spec, clean) = fixture();
        let mut body = clean.clone();
        FaultPlan::seeded(seed, faults, body.len()).apply(&mut body);
        let (mut sched, worker) = one_cell_scheduler();
        let now = Instant::now();
        let Assignment::Cell(assigned) = sched.next_assignment(worker, now) else {
            panic!("one pending cell must dispatch");
        };
        prop_assert_eq!(&assigned.digest, &spec.digest);
        match sched.submit_result(worker, assigned.digest, 0.1, &body, now) {
            Ingest::Merged { result, .. } => {
                let mut reencoded = Vec::new();
                result.encode_to(&mut reencoded);
                prop_assert_eq!(&reencoded, &body, "merged bodies are canonical");
                prop_assert_eq!(result.instructions, spec.trace_len);
                prop_assert!(result.cycles >= spec.trace_len.div_ceil(spec.width as u64));
                prop_assert!(sched.is_complete());
            }
            Ingest::Rejected { .. } => {
                prop_assert_ne!(&body, clean, "the untouched body must merge");
                prop_assert!(!sched.is_complete());
                let rescuer = sched.register(0, now);
                prop_assert!(
                    matches!(sched.next_assignment(rescuer, now), Assignment::Cell(_)),
                    "a rejected cell must be re-dispatchable"
                );
            }
            other => prop_assert!(false, "unexpected ingest decision {other:?}"),
        }
        if &body == clean {
            prop_assert!(sched.is_complete());
        }
    }

    /// Every strict prefix of a canonical body is rejected: truncation
    /// can never merge.
    #[test]
    fn truncated_bodies_always_reject(cut_scale in 0.0f64..1.0) {
        let (spec, clean) = fixture();
        let cut = ((clean.len() - 1) as f64 * cut_scale) as usize;
        prop_assert!(validate_body(spec, &clean[..cut]).is_err());
    }

    /// Random byte soup never panics validation, and in the
    /// astronomically unlikely event it validates, it satisfies the
    /// same invariants every merged body does.
    #[test]
    fn random_bodies_validate_totally(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        let (spec, _) = fixture();
        if let Ok(result) = validate_body(spec, &bytes) {
            let mut reencoded = Vec::new();
            result.encode_to(&mut reencoded);
            prop_assert_eq!(reencoded, bytes);
            prop_assert_eq!(result.instructions, spec.trace_len);
        }
    }

    /// Results for digests outside the run are ignored without touching
    /// any cell state.
    #[test]
    fn unknown_digests_are_ignored(digest in any::<u64>()) {
        let (spec, clean) = fixture();
        if digest != spec.digest {
            let (mut sched, worker) = one_cell_scheduler();
            let now = Instant::now();
            prop_assert!(matches!(
                sched.submit_result(worker, digest, 0.1, clean, now),
                Ingest::Unknown
            ));
            prop_assert_eq!(sched.cells_done(), 0);
        }
    }
}
