//! Loopback TCP integration tests: a real [`Coordinator`] serving real
//! [`run_worker`] loops (in threads, not processes — the process-level
//! SIGKILL drills live in the CLI's `dist.rs` tests) plus hand-rolled
//! protocol clients playing misbehaving workers.

use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::Mutex;
use std::thread;

use ddsc_core::{simulate_prepared, PaperConfig, PreparedTrace, SimConfig};
use ddsc_dist::proto::{read_coord_msg, write_worker_msg};
use ddsc_dist::{
    run_worker, CellSpec, CoordMsg, Coordinator, DistSinks, SchedOptions, WorkerMsg, WorkerOptions,
};
use ddsc_trace::io::write_trace;
use ddsc_util::fnv1a;
use ddsc_workloads::Benchmark;

const SEED: u64 = 1996;

fn bench(name: &str) -> Benchmark {
    Benchmark::ALL
        .iter()
        .copied()
        .find(|b| b.name() == name)
        .expect("known benchmark")
}

/// A cell spec whose digest matches what a worker will recompute from
/// its own trace bytes — the lab's `fnv1a(checksum ‖ label ‖ width)`.
fn spec_for(bench_name: &str, config: &str, width: u32, len: u64) -> CellSpec {
    let trace = bench(bench_name).trace(SEED, len as usize).unwrap();
    let mut bytes = Vec::new();
    write_trace(&mut bytes, &trace).unwrap();
    let mut ident = Vec::new();
    ident.extend_from_slice(&fnv1a(&bytes).to_le_bytes());
    ident.extend_from_slice(config.as_bytes());
    ident.extend_from_slice(&width.to_le_bytes());
    CellSpec {
        bench: bench_name.into(),
        config: config.into(),
        width,
        trace_len: len,
        seed: SEED,
        digest: fnv1a(&ident),
    }
}

/// The canonical result bytes a local single-process run produces.
fn local_body(spec: &CellSpec) -> Vec<u8> {
    let trace = bench(&spec.bench)
        .trace(spec.seed, spec.trace_len as usize)
        .unwrap();
    let prepared = PreparedTrace::build(&trace);
    let config = PaperConfig::ALL
        .iter()
        .copied()
        .find(|c| c.label() == spec.config)
        .unwrap();
    let result = simulate_prepared(&prepared, &SimConfig::paper(config, spec.width));
    let mut body = Vec::new();
    result.encode_to(&mut body);
    body
}

fn collecting_run(
    coord: Coordinator,
    quarantines: &Mutex<Vec<(u64, String)>>,
    merged: &Mutex<HashMap<u64, Vec<u8>>>,
) -> ddsc_dist::DistReport {
    let on_result = |spec: &CellSpec, result: &ddsc_core::SimResult, _seconds: f64| {
        let mut body = Vec::new();
        result.encode_to(&mut body);
        merged.lock().unwrap().insert(spec.digest, body);
    };
    let on_quarantine = |spec: &CellSpec, error: &str| {
        quarantines
            .lock()
            .unwrap()
            .push((spec.digest, error.to_string()));
    };
    coord.run(&DistSinks {
        on_result: &on_result,
        on_quarantine: &on_quarantine,
    })
}

#[test]
fn worker_fleet_over_tcp_merges_byte_identical_grid() {
    let mut specs = Vec::new();
    for bench_name in ["compress", "li"] {
        for config in ["A", "D"] {
            for width in [4, 8] {
                specs.push(spec_for(bench_name, config, width, 1500));
            }
        }
    }
    let expected: HashMap<u64, Vec<u8>> = specs.iter().map(|s| (s.digest, local_body(s))).collect();
    let coord = Coordinator::bind("127.0.0.1:0", specs.clone(), SchedOptions::default()).unwrap();
    let addr = coord.local_addr().to_string();
    let workers: Vec<_> = (0..3)
        .map(|_| {
            let addr = addr.clone();
            thread::spawn(move || run_worker(&WorkerOptions::new(addr)).unwrap())
        })
        .collect();
    let merged = Mutex::new(HashMap::new());
    let quarantines = Mutex::new(Vec::new());
    let report = collecting_run(coord, &quarantines, &merged);
    let summaries: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();

    assert_eq!(report.cells_completed, specs.len());
    assert_eq!(report.cells_quarantined, 0);
    assert_eq!(report.worker_deaths, 0);
    assert!(quarantines.lock().unwrap().is_empty());
    assert_eq!(
        *merged.lock().unwrap(),
        expected,
        "merged grid must be byte-identical"
    );
    // Every worker saw the clean shutdown and together they did all the work.
    assert!(summaries.iter().all(|s| s.all_done));
    assert_eq!(
        summaries.iter().map(|s| s.completed).sum::<u64>(),
        specs.len() as u64
    );
    assert!(report.compute_seconds > 0.0 && report.wall_seconds > 0.0);
}

#[test]
fn deserting_worker_dies_and_its_cell_is_redispatched() {
    let specs = vec![spec_for("compress", "B", 4, 1200)];
    let expected = local_body(&specs[0]);
    let coord = Coordinator::bind("127.0.0.1:0", specs, SchedOptions::default()).unwrap();
    let addr = coord.local_addr();
    let merged = Mutex::new(HashMap::new());
    let quarantines = Mutex::new(Vec::new());

    let (report, leased, summary) = thread::scope(|s| {
        let run = s.spawn(|| collecting_run(coord, &quarantines, &merged));

        // A protocol-fluent deserter: takes the lease, then vanishes.
        let mut stream = TcpStream::connect(addr).unwrap();
        write_worker_msg(
            &mut stream,
            &WorkerMsg::Hello {
                worker_id: 0,
                pid: 1,
            },
        )
        .unwrap();
        let Some(CoordMsg::Welcome { worker_id }) = read_coord_msg(&mut stream).unwrap() else {
            panic!("expected Welcome");
        };
        write_worker_msg(&mut stream, &WorkerMsg::Request { worker_id }).unwrap();
        let Some(CoordMsg::Assign(leased)) = read_coord_msg(&mut stream).unwrap() else {
            panic!("expected Assign");
        };
        drop(stream); // the desertion

        let addr = addr.to_string();
        let honest = s.spawn(move || run_worker(&WorkerOptions::new(addr)).unwrap());
        (run.join().unwrap(), leased, honest.join().unwrap())
    });
    assert_eq!(leased.bench, "compress");

    assert_eq!(report.cells_completed, 1);
    assert_eq!(
        report.worker_deaths, 1,
        "the deserter must be declared dead"
    );
    assert!(report.redispatched >= 1, "its lease must be re-dispatched");
    assert_eq!(summary.completed, 1);
    assert_eq!(merged.lock().unwrap().get(&leased.digest), Some(&expected));
}

#[test]
fn corrupt_result_is_rejected_and_cell_still_completes() {
    let specs = vec![spec_for("eqntott", "C", 8, 1200)];
    let digest = specs[0].digest;
    let expected = local_body(&specs[0]);
    let opts = SchedOptions {
        poison_threshold: 3, // one strike must not quarantine
        ..SchedOptions::default()
    };
    let coord = Coordinator::bind("127.0.0.1:0", specs, opts).unwrap();
    let addr = coord.local_addr();
    let merged = Mutex::new(HashMap::new());
    let quarantines = Mutex::new(Vec::new());

    let report = thread::scope(|s| {
        let run = s.spawn(|| collecting_run(coord, &quarantines, &merged));

        // A liar: takes the lease, submits garbage bytes as the result.
        let mut stream = TcpStream::connect(addr).unwrap();
        write_worker_msg(
            &mut stream,
            &WorkerMsg::Hello {
                worker_id: 0,
                pid: 2,
            },
        )
        .unwrap();
        let Some(CoordMsg::Welcome { worker_id }) = read_coord_msg(&mut stream).unwrap() else {
            panic!("expected Welcome");
        };
        write_worker_msg(&mut stream, &WorkerMsg::Request { worker_id }).unwrap();
        let Some(CoordMsg::Assign(spec)) = read_coord_msg(&mut stream).unwrap() else {
            panic!("expected Assign");
        };
        write_worker_msg(
            &mut stream,
            &WorkerMsg::Result {
                worker_id,
                digest: spec.digest,
                seconds_bits: 0.0f64.to_bits(),
                body: b"not a simulation result".to_vec(),
            },
        )
        .unwrap();
        // The coordinator acknowledges receipt even of a rejected result.
        assert!(matches!(
            read_coord_msg(&mut stream).unwrap(),
            Some(CoordMsg::Ack)
        ));
        drop(stream);

        let addr = addr.to_string();
        let honest = s.spawn(move || run_worker(&WorkerOptions::new(addr)).unwrap());
        let report = run.join().unwrap();
        honest.join().unwrap();
        report
    });

    assert_eq!(report.cells_completed, 1);
    assert_eq!(report.cells_quarantined, 0);
    assert!(
        report.corrupt_results >= 1,
        "the garbage body must be counted"
    );
    assert_eq!(merged.lock().unwrap().get(&digest), Some(&expected));
}
