//! The coordinator/worker wire protocol: the same checksummed frame
//! recipe as `ddsc serve` ([`ddsc_serve::proto`]), carrying a private
//! message vocabulary.
//!
//! Framing is reused verbatim — `len:u32 ‖ payload ‖ fnv1a(payload):u64`
//! via [`encode_frame`]/[`read_frame`] — so torn or corrupted frames are
//! *detected*, never misparsed, and the fault-plan proptests that pin
//! the serve codec pin this one too. Payloads open with a dist-protocol
//! version byte and a kind byte:
//!
//! ```text
//! payload := version:u8 kind:u8 fields...
//! string  := len:u16 utf8[len]
//! bytes   := len:u32 raw[len]
//! ```
//!
//! The conversation is strictly worker-driven request/response: every
//! worker frame except [`WorkerMsg::Heartbeat`] is answered by exactly
//! one coordinator frame, and heartbeats are one-way, so neither side
//! ever has two responses in flight to disambiguate. A cell result
//! travels as the canonical [`SimResult::encode_to`] bytes — the same
//! codec the cell store persists — which is what makes the coordinator's
//! merge byte-identical to local simulation.
//!
//! Decoding is total: any byte sequence yields a value or a typed
//! [`WireError`]; untrusted worker input can never panic the
//! coordinator.

use std::io::{Read, Write};

pub use ddsc_serve::proto::WireError;
use ddsc_serve::proto::{encode_frame, read_frame, MAX_FRAME_LEN};

/// Dist protocol version; leads every payload. Distinct from the serve
/// protocol's version byte so a worker pointed at a `ddsc serve` port
/// (or vice versa) fails with `UnknownVersion`, not a misparse.
pub const DIST_VERSION: u8 = 2;

/// One grid cell as the coordinator dispatches it: the full input
/// identity (benchmark, config label, width, trace length, seed) plus
/// the cell digest the result will be keyed by. The worker recomputes
/// the digest from its own trace bytes and refuses the cell on any
/// mismatch — catching binary or workload drift before it can produce a
/// plausible-but-wrong result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellSpec {
    /// Benchmark short name (`compress`, `li`, ...).
    pub bench: String,
    /// Paper configuration label (`A`..`E`).
    pub config: String,
    /// Issue width.
    pub width: u32,
    /// Dynamic instructions to simulate.
    pub trace_len: u64,
    /// Workload data seed.
    pub seed: u64,
    /// `fnv1a(trace checksum ‖ config label ‖ width)` — the same digest
    /// the lab journals and the cell store keys by.
    pub digest: u64,
}

/// A frame from a worker to the coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerMsg {
    /// First frame on every connection: introduces the worker.
    /// `worker_id` 0 asks for a fresh identity; a reconnecting worker
    /// passes the id it was welcomed with so its history carries over.
    Hello {
        /// Previously assigned id, or 0 for a new worker.
        worker_id: u64,
        /// The worker's OS process id (diagnostics only).
        pid: u64,
    },
    /// Ask for the next cell.
    Request {
        /// The requesting worker.
        worker_id: u64,
    },
    /// One-way liveness signal, sent on a timer while computing. The
    /// coordinator does not respond (responding would race the
    /// request/response conversation on the same stream).
    Heartbeat {
        /// The living worker.
        worker_id: u64,
    },
    /// A finished cell: `body` is the canonical
    /// [`SimResult::encode_to`](ddsc_core::SimResult::encode_to) bytes.
    Result {
        /// The reporting worker.
        worker_id: u64,
        /// The cell digest from the [`CellSpec`].
        digest: u64,
        /// Worker-side compute seconds, as `f64::to_bits`.
        seconds_bits: u64,
        /// Encoded `SimResult`.
        body: Vec<u8>,
    },
    /// The worker could not compute the cell (contained panic, digest
    /// mismatch, trace generation error).
    Failed {
        /// The reporting worker.
        worker_id: u64,
        /// The cell digest from the [`CellSpec`].
        digest: u64,
        /// Rendered failure message.
        error: String,
    },
}

/// A frame from the coordinator to a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordMsg {
    /// Answer to [`WorkerMsg::Hello`]: the worker's identity.
    Welcome {
        /// The id the worker must present from now on.
        worker_id: u64,
    },
    /// Answer to [`WorkerMsg::Request`]: one cell to compute.
    Assign(CellSpec),
    /// Answer to [`WorkerMsg::Request`] when nothing is dispatchable
    /// right now (everything leased, nothing stealable): ask again
    /// after `wait_ms`.
    Idle {
        /// Suggested poll delay in milliseconds.
        wait_ms: u32,
    },
    /// Answer to any request once the grid is complete: the worker
    /// should exit cleanly.
    AllDone,
    /// Answer to [`WorkerMsg::Result`] / [`WorkerMsg::Failed`]:
    /// received (whatever the scheduler decided about it).
    Ack,
}

const W_HELLO: u8 = 1;
const W_REQUEST: u8 = 2;
const W_HEARTBEAT: u8 = 3;
const W_RESULT: u8 = 4;
const W_FAILED: u8 = 5;

const C_WELCOME: u8 = 1;
const C_ASSIGN: u8 = 2;
const C_IDLE: u8 = 3;
const C_ALL_DONE: u8 = 4;
const C_ACK: u8 = 5;

fn put_str(out: &mut Vec<u8>, s: &str) {
    let len = s.len().min(u16::MAX as usize) as u16;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&s.as_bytes()[..len as usize]);
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

/// A bounds-checked cursor over one payload; every getter returns
/// `Truncated` instead of slicing past the end.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let slice = self
            .bytes
            .get(self.pos..self.pos.checked_add(n).ok_or(WireError::Truncated)?)
            .ok_or(WireError::Truncated)?;
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, WireError> {
        let len = self.u16()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let len = self.u32()?;
        if len > MAX_FRAME_LEN {
            return Err(WireError::BadLength(len));
        }
        Ok(self.take(len as usize)?.to_vec())
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

fn version_checked(bytes: &[u8]) -> Result<Cursor<'_>, WireError> {
    let mut c = Cursor::new(bytes);
    let version = c.u8()?;
    if version != DIST_VERSION {
        return Err(WireError::UnknownVersion(version));
    }
    Ok(c)
}

impl CellSpec {
    fn encode_to(&self, out: &mut Vec<u8>) {
        put_str(out, &self.bench);
        put_str(out, &self.config);
        out.extend_from_slice(&self.width.to_le_bytes());
        out.extend_from_slice(&self.trace_len.to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&self.digest.to_le_bytes());
    }

    fn decode(c: &mut Cursor<'_>) -> Result<CellSpec, WireError> {
        Ok(CellSpec {
            bench: c.str()?,
            config: c.str()?,
            width: c.u32()?,
            trace_len: c.u64()?,
            seed: c.u64()?,
            digest: c.u64()?,
        })
    }
}

impl WorkerMsg {
    /// Encodes the payload (version, kind, fields — no framing).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.push(DIST_VERSION);
        match self {
            WorkerMsg::Hello { worker_id, pid } => {
                out.push(W_HELLO);
                out.extend_from_slice(&worker_id.to_le_bytes());
                out.extend_from_slice(&pid.to_le_bytes());
            }
            WorkerMsg::Request { worker_id } => {
                out.push(W_REQUEST);
                out.extend_from_slice(&worker_id.to_le_bytes());
            }
            WorkerMsg::Heartbeat { worker_id } => {
                out.push(W_HEARTBEAT);
                out.extend_from_slice(&worker_id.to_le_bytes());
            }
            WorkerMsg::Result {
                worker_id,
                digest,
                seconds_bits,
                body,
            } => {
                out.push(W_RESULT);
                out.extend_from_slice(&worker_id.to_le_bytes());
                out.extend_from_slice(&digest.to_le_bytes());
                out.extend_from_slice(&seconds_bits.to_le_bytes());
                put_bytes(&mut out, body);
            }
            WorkerMsg::Failed {
                worker_id,
                digest,
                error,
            } => {
                out.push(W_FAILED);
                out.extend_from_slice(&worker_id.to_le_bytes());
                out.extend_from_slice(&digest.to_le_bytes());
                put_str(&mut out, error);
            }
        }
        out
    }

    /// Decodes one payload. Total: any input yields a value or a typed
    /// [`WireError`].
    pub fn decode_payload(bytes: &[u8]) -> Result<WorkerMsg, WireError> {
        let mut c = version_checked(bytes)?;
        let kind = c.u8()?;
        let msg = match kind {
            W_HELLO => WorkerMsg::Hello {
                worker_id: c.u64()?,
                pid: c.u64()?,
            },
            W_REQUEST => WorkerMsg::Request {
                worker_id: c.u64()?,
            },
            W_HEARTBEAT => WorkerMsg::Heartbeat {
                worker_id: c.u64()?,
            },
            W_RESULT => WorkerMsg::Result {
                worker_id: c.u64()?,
                digest: c.u64()?,
                seconds_bits: c.u64()?,
                body: c.bytes()?,
            },
            W_FAILED => WorkerMsg::Failed {
                worker_id: c.u64()?,
                digest: c.u64()?,
                error: c.str()?,
            },
            other => return Err(WireError::UnknownKind(other)),
        };
        c.finish()?;
        Ok(msg)
    }
}

impl CoordMsg {
    /// Encodes the payload (version, kind, fields — no framing).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.push(DIST_VERSION);
        match self {
            CoordMsg::Welcome { worker_id } => {
                out.push(C_WELCOME);
                out.extend_from_slice(&worker_id.to_le_bytes());
            }
            CoordMsg::Assign(spec) => {
                out.push(C_ASSIGN);
                spec.encode_to(&mut out);
            }
            CoordMsg::Idle { wait_ms } => {
                out.push(C_IDLE);
                out.extend_from_slice(&wait_ms.to_le_bytes());
            }
            CoordMsg::AllDone => out.push(C_ALL_DONE),
            CoordMsg::Ack => out.push(C_ACK),
        }
        out
    }

    /// Decodes one payload. Total: any input yields a value or a typed
    /// [`WireError`].
    pub fn decode_payload(bytes: &[u8]) -> Result<CoordMsg, WireError> {
        let mut c = version_checked(bytes)?;
        let kind = c.u8()?;
        let msg = match kind {
            C_WELCOME => CoordMsg::Welcome {
                worker_id: c.u64()?,
            },
            C_ASSIGN => CoordMsg::Assign(CellSpec::decode(&mut c)?),
            C_IDLE => CoordMsg::Idle { wait_ms: c.u32()? },
            C_ALL_DONE => CoordMsg::AllDone,
            C_ACK => CoordMsg::Ack,
            other => return Err(WireError::UnknownKind(other)),
        };
        c.finish()?;
        Ok(msg)
    }
}

/// Writes one worker frame.
pub fn write_worker_msg(w: &mut impl Write, msg: &WorkerMsg) -> std::io::Result<()> {
    w.write_all(&encode_frame(&msg.encode_payload()))
}

/// Writes one coordinator frame.
pub fn write_coord_msg(w: &mut impl Write, msg: &CoordMsg) -> std::io::Result<()> {
    w.write_all(&encode_frame(&msg.encode_payload()))
}

/// Reads one worker frame; `Ok(None)` is clean end-of-stream.
pub fn read_worker_msg(r: &mut impl Read) -> Result<Option<WorkerMsg>, WireError> {
    match read_frame(r)? {
        None => Ok(None),
        Some(payload) => WorkerMsg::decode_payload(&payload).map(Some),
    }
}

/// Reads one coordinator frame; `Ok(None)` is clean end-of-stream.
pub fn read_coord_msg(r: &mut impl Read) -> Result<Option<CoordMsg>, WireError> {
    match read_frame(r)? {
        None => Ok(None),
        Some(payload) => CoordMsg::decode_payload(&payload).map(Some),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddsc_serve::proto::decode_frame;

    fn sample_spec() -> CellSpec {
        CellSpec {
            bench: "compress".into(),
            config: "D".into(),
            width: 8,
            trace_len: 300_000,
            seed: 1996,
            digest: 0xfeed_beef_dead_cafe,
        }
    }

    fn sample_worker_msgs() -> Vec<WorkerMsg> {
        vec![
            WorkerMsg::Hello {
                worker_id: 0,
                pid: 4242,
            },
            WorkerMsg::Request { worker_id: 7 },
            WorkerMsg::Heartbeat { worker_id: 7 },
            WorkerMsg::Result {
                worker_id: 7,
                digest: 99,
                seconds_bits: 1.25f64.to_bits(),
                body: vec![1, 2, 3],
            },
            WorkerMsg::Failed {
                worker_id: 7,
                digest: 99,
                error: "cell panicked".into(),
            },
        ]
    }

    fn sample_coord_msgs() -> Vec<CoordMsg> {
        vec![
            CoordMsg::Welcome { worker_id: 3 },
            CoordMsg::Assign(sample_spec()),
            CoordMsg::Idle { wait_ms: 50 },
            CoordMsg::AllDone,
            CoordMsg::Ack,
        ]
    }

    #[test]
    fn every_message_round_trips_through_frames() {
        for msg in sample_worker_msgs() {
            let frame = encode_frame(&msg.encode_payload());
            let (payload, used) = decode_frame(&frame).unwrap();
            assert_eq!(used, frame.len());
            assert_eq!(WorkerMsg::decode_payload(&payload).unwrap(), msg);
        }
        for msg in sample_coord_msgs() {
            let frame = encode_frame(&msg.encode_payload());
            let (payload, used) = decode_frame(&frame).unwrap();
            assert_eq!(used, frame.len());
            assert_eq!(CoordMsg::decode_payload(&payload).unwrap(), msg);
        }
    }

    #[test]
    fn stream_io_round_trips_and_sees_clean_eof() {
        let mut buf = Vec::new();
        for msg in sample_worker_msgs() {
            write_worker_msg(&mut buf, &msg).unwrap();
        }
        let mut r = &buf[..];
        for msg in sample_worker_msgs() {
            assert_eq!(read_worker_msg(&mut r).unwrap(), Some(msg));
        }
        assert!(read_worker_msg(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn serve_frames_are_rejected_by_version() {
        // A `ddsc serve` payload leads with the serve protocol version;
        // pointing a worker at the wrong port is an UnknownVersion, not
        // a misparse.
        let serve_payload = ddsc_serve::proto::Request::Ping.encode_payload();
        assert!(matches!(
            CoordMsg::decode_payload(&serve_payload),
            Err(WireError::UnknownVersion(_))
        ));
    }

    #[test]
    fn unknown_kind_and_trailing_bytes_are_rejected() {
        let mut payload = CoordMsg::Ack.encode_payload();
        payload[1] = 200;
        assert!(matches!(
            CoordMsg::decode_payload(&payload).unwrap_err(),
            WireError::UnknownKind(200)
        ));
        let mut payload = WorkerMsg::Request { worker_id: 1 }.encode_payload();
        payload.push(0);
        assert!(matches!(
            WorkerMsg::decode_payload(&payload).unwrap_err(),
            WireError::TrailingBytes
        ));
    }

    #[test]
    fn every_truncation_of_every_message_is_a_typed_error() {
        for msg in sample_worker_msgs() {
            let payload = msg.encode_payload();
            for cut in 0..payload.len() {
                assert!(WorkerMsg::decode_payload(&payload[..cut]).is_err());
            }
        }
        for msg in sample_coord_msgs() {
            let payload = msg.encode_payload();
            for cut in 0..payload.len() {
                assert!(CoordMsg::decode_payload(&payload[..cut]).is_err());
            }
        }
    }
}
