//! The coordinator: a pull-based cell scheduler with a failure model,
//! and the TCP server that exposes it to worker processes.
//!
//! The scheduling logic lives in [`Scheduler`], a pure state machine
//! that takes the current `Instant` as an argument everywhere — the
//! seeded chaos tests drive it with synthetic clocks and scripted
//! worker failures, while the [`Coordinator`] drives it with wall time
//! and real sockets. One body of logic, two harnesses.
//!
//! The failure model, in one pass:
//!
//! - every dispatched cell carries a **lease** (worker, start time);
//! - workers send **heartbeats** while computing; a silent worker is
//!   declared dead after `heartbeat_timeout`, a closed connection
//!   immediately;
//! - a dead worker's leases **strike** their cells and re-enqueue them
//!   at the front of the queue;
//! - a cell struck by `poison_threshold` *distinct* workers is
//!   **quarantined** — recorded as failed (the exit-2 degraded
//!   contract) instead of wedging the run;
//! - a lease older than `lease_timeout` is revoked and its cell
//!   re-enqueued (deadline re-dispatch); an idle worker may also
//!   duplicate a lease older than half the timeout (**straggler
//!   re-dispatch** / work stealing) — the first valid result wins and
//!   late duplicates are discarded by digest, which is safe because
//!   simulation is a pure function of the digest-keyed inputs: every
//!   valid result for a digest is byte-identical.
//!
//! Result ingest is paranoid about the bytes, not the physics: frames
//! are checksummed, the body must decode as a canonical
//! [`SimResult::encode_to`] encoding with no trailing bytes, and the
//! counters must satisfy the simulator's structural invariants
//! (instructions match the requested trace length, cycles bounded
//! below by the issue-width limit). A rejected result strikes the
//! sending worker and re-dispatches the cell — it is never merged.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt::Write as _;
use std::io::{self, BufReader, BufWriter, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use ddsc_core::{PaperConfig, SimConfig, SimResult};

use crate::proto::{read_worker_msg, write_coord_msg, CellSpec, CoordMsg, WireError, WorkerMsg};

/// Tunables of the scheduler's failure model.
#[derive(Debug, Clone, Copy)]
pub struct SchedOptions {
    /// Age at which a lease is revoked and its cell re-enqueued.
    pub lease_timeout: Duration,
    /// Silence after which a worker is declared dead.
    pub heartbeat_timeout: Duration,
    /// Distinct workers a cell may strike (kill or fail on) before it
    /// is quarantined as failed.
    pub poison_threshold: usize,
    /// Poll delay suggested to workers when nothing is dispatchable.
    pub idle_wait_ms: u32,
}

impl Default for SchedOptions {
    fn default() -> SchedOptions {
        SchedOptions {
            lease_timeout: Duration::from_secs(60),
            heartbeat_timeout: Duration::from_secs(10),
            poison_threshold: 3,
            idle_wait_ms: 50,
        }
    }
}

/// What a worker's work request yields.
#[derive(Debug, Clone, PartialEq)]
pub enum Assignment {
    /// Compute this cell.
    Cell(CellSpec),
    /// Nothing dispatchable; ask again after `wait_ms`.
    Idle {
        /// Suggested poll delay in milliseconds.
        wait_ms: u32,
    },
    /// The grid is complete; exit.
    AllDone,
}

/// What the scheduler decided about a submitted result or failure.
///
/// A short-lived, one-per-submission value, so the size of the
/// `Merged` variant is irrelevant — no point boxing it.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)]
pub enum Ingest {
    /// First valid result for its cell: merge it.
    Merged {
        /// The completed cell.
        spec: CellSpec,
        /// The decoded, validated result.
        result: SimResult,
        /// Worker-reported compute seconds.
        seconds: f64,
    },
    /// The cell was already completed (or quarantined) — a straggler's
    /// duplicate, discarded by digest.
    Duplicate,
    /// The body failed validation; the worker was struck and the cell
    /// re-dispatched. Never merged.
    Rejected {
        /// Why the body was refused.
        reason: String,
    },
    /// The strike tipped the cell over the poison threshold.
    Quarantined {
        /// The quarantined cell.
        spec: CellSpec,
        /// The rendered quarantine reason.
        error: String,
    },
    /// A failure was recorded and the cell re-dispatched.
    Recorded,
    /// No cell with that digest exists in this run.
    Unknown,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CellState {
    Pending,
    Leased,
    Done,
    Quarantined,
}

#[derive(Debug)]
struct CellEntry {
    spec: CellSpec,
    state: CellState,
    /// Distinct workers that died on or failed this cell.
    strikes: HashSet<u64>,
    /// Outstanding leases on this cell (0, 1 or 2 — duplicates capped).
    active_leases: usize,
}

#[derive(Debug)]
struct Lease {
    cell: usize,
    worker: u64,
    since: Instant,
}

#[derive(Debug)]
struct WorkerInfo {
    last_seen: Instant,
    alive: bool,
    completed: u64,
}

/// Per-worker slice of the run report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerReport {
    /// The worker's assigned id.
    pub id: u64,
    /// Cells whose first valid result this worker delivered.
    pub cells: u64,
    /// Whether the worker was still alive at the end of the run.
    pub alive: bool,
}

/// The distributed run's outcome counters (`BENCH_dist.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct DistReport {
    /// Cells the run was asked to complete.
    pub cells_total: usize,
    /// Cells completed with a valid result.
    pub cells_completed: usize,
    /// Cells quarantined as poison.
    pub cells_quarantined: usize,
    /// Re-dispatch decisions: death re-enqueues, deadline revocations
    /// and straggler duplicates.
    pub redispatched: u64,
    /// Valid-but-late results discarded by digest.
    pub duplicate_results: u64,
    /// Results rejected by ingest validation.
    pub corrupt_results: u64,
    /// Workers declared dead (connection loss or heartbeat silence
    /// while holding a lease).
    pub worker_deaths: u64,
    /// Per-worker completion counts.
    pub workers: Vec<WorkerReport>,
    /// Sum of worker-reported per-cell compute seconds — the serial
    /// cost the run avoided paying on one core.
    pub compute_seconds: f64,
    /// Coordinator wall-clock seconds for the whole run.
    pub wall_seconds: f64,
}

impl DistReport {
    /// Wall-clock speedup over computing the same cells serially:
    /// `compute_seconds / wall_seconds`.
    pub fn speedup_vs_serial(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.compute_seconds / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Renders the report as stable JSON (`ddsc-dist-bench-v1`).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": \"ddsc-dist-bench-v1\",");
        let _ = writeln!(out, "  \"cells_total\": {},", self.cells_total);
        let _ = writeln!(out, "  \"cells_completed\": {},", self.cells_completed);
        let _ = writeln!(out, "  \"cells_quarantined\": {},", self.cells_quarantined);
        let _ = writeln!(out, "  \"redispatched\": {},", self.redispatched);
        let _ = writeln!(out, "  \"duplicate_results\": {},", self.duplicate_results);
        let _ = writeln!(out, "  \"corrupt_results\": {},", self.corrupt_results);
        let _ = writeln!(out, "  \"worker_deaths\": {},", self.worker_deaths);
        let _ = writeln!(out, "  \"compute_seconds\": {:.6},", self.compute_seconds);
        let _ = writeln!(out, "  \"wall_seconds\": {:.6},", self.wall_seconds);
        let _ = writeln!(
            out,
            "  \"speedup_vs_serial\": {:.4},",
            self.speedup_vs_serial()
        );
        let _ = writeln!(out, "  \"workers\": [");
        for (i, w) in self.workers.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"id\": {}, \"cells\": {}, \"alive\": {}}}{}",
                w.id,
                w.cells,
                w.alive,
                if i + 1 < self.workers.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }
}

/// Validates one result body against its cell: canonical codec,
/// no trailing bytes, and the structural invariants the simulator
/// guarantees. `Err` is the rejection reason.
pub fn validate_body(spec: &CellSpec, body: &[u8]) -> Result<SimResult, String> {
    let pc = PaperConfig::ALL
        .iter()
        .copied()
        .find(|c| c.label() == spec.config)
        .ok_or_else(|| format!("unknown config label `{}`", spec.config))?;
    let config = SimConfig::paper(pc, spec.width);
    let mut pos = 0usize;
    let result = SimResult::decode(body, &mut pos, config)
        .ok_or_else(|| "undecodable result body".to_string())?;
    if pos != body.len() {
        return Err(format!(
            "trailing bytes after result body ({pos} of {})",
            body.len()
        ));
    }
    if result.instructions != spec.trace_len {
        return Err(format!(
            "instruction count {} does not match trace length {}",
            result.instructions, spec.trace_len
        ));
    }
    // No machine issues more than `width` instructions per cycle, so
    // any valid run satisfies cycles ≥ ⌈insts / width⌉.
    let floor = spec.trace_len.div_ceil(spec.width.max(1) as u64);
    if result.cycles < floor {
        return Err(format!(
            "cycle count {} below the width-{} issue floor {floor}",
            result.cycles, spec.width
        ));
    }
    let mut canonical = Vec::with_capacity(body.len());
    result.encode_to(&mut canonical);
    if canonical != body {
        return Err("non-canonical result encoding".to_string());
    }
    Ok(result)
}

/// The pure scheduling state machine. All methods take `now` so tests
/// can drive it with a synthetic clock; the TCP layer passes
/// `Instant::now()`.
#[derive(Debug)]
pub struct Scheduler {
    cells: Vec<CellEntry>,
    by_digest: HashMap<u64, usize>,
    pending: VecDeque<usize>,
    leases: Vec<Lease>,
    workers: HashMap<u64, WorkerInfo>,
    next_worker_id: u64,
    opts: SchedOptions,
    done: usize,
    quarantined: usize,
    redispatched: u64,
    duplicate_results: u64,
    corrupt_results: u64,
    worker_deaths: u64,
    compute_seconds: f64,
}

impl Scheduler {
    /// A scheduler over `cells`, dispatched in input order.
    pub fn new(cells: Vec<CellSpec>, opts: SchedOptions) -> Scheduler {
        let mut by_digest = HashMap::with_capacity(cells.len());
        let entries: Vec<CellEntry> = cells
            .into_iter()
            .map(|spec| CellEntry {
                spec,
                state: CellState::Pending,
                strikes: HashSet::new(),
                active_leases: 0,
            })
            .collect();
        for (i, e) in entries.iter().enumerate() {
            let prev = by_digest.insert(e.spec.digest, i);
            debug_assert!(prev.is_none(), "duplicate cell digest in grid");
        }
        Scheduler {
            pending: (0..entries.len()).collect(),
            cells: entries,
            by_digest,
            leases: Vec::new(),
            workers: HashMap::new(),
            next_worker_id: 1,
            opts,
            done: 0,
            quarantined: 0,
            redispatched: 0,
            duplicate_results: 0,
            corrupt_results: 0,
            worker_deaths: 0,
            compute_seconds: 0.0,
        }
    }

    /// Registers (or revives) a worker. `want_id` 0 — or an id this
    /// scheduler never issued — yields a fresh identity; a known id
    /// reconnects with its history (completion counts, strikes against
    /// it) intact.
    pub fn register(&mut self, want_id: u64, now: Instant) -> u64 {
        if want_id != 0 {
            if let Some(info) = self.workers.get_mut(&want_id) {
                info.alive = true;
                info.last_seen = now;
                return want_id;
            }
        }
        let id = self.next_worker_id;
        self.next_worker_id += 1;
        self.workers.insert(
            id,
            WorkerInfo {
                last_seen: now,
                alive: true,
                completed: 0,
            },
        );
        id
    }

    fn touch(&mut self, worker: u64, now: Instant) {
        if let Some(info) = self.workers.get_mut(&worker) {
            info.last_seen = now;
            info.alive = true;
        }
    }

    /// Records a heartbeat.
    pub fn heartbeat(&mut self, worker: u64, now: Instant) {
        self.touch(worker, now);
    }

    /// Whether every cell is completed or quarantined.
    pub fn is_complete(&self) -> bool {
        self.done + self.quarantined == self.cells.len()
    }

    /// Completed-cell count (progress probes).
    pub fn cells_done(&self) -> usize {
        self.done
    }

    /// Strikes `cell` on behalf of `worker` (death or failure). Either
    /// quarantines the cell (returned for the failure sink) or makes
    /// sure it is re-dispatched.
    fn strike(&mut self, ci: usize, worker: u64, reason: &str) -> Option<(CellSpec, String)> {
        let threshold = self.opts.poison_threshold;
        let entry = &mut self.cells[ci];
        if matches!(entry.state, CellState::Done | CellState::Quarantined) {
            return None;
        }
        entry.strikes.insert(worker);
        if entry.strikes.len() >= threshold {
            entry.state = CellState::Quarantined;
            let spec = entry.spec.clone();
            let error = format!(
                "cell quarantined as poison: struck {} distinct workers (last: {reason})",
                entry.strikes.len()
            );
            entry.active_leases = 0;
            self.quarantined += 1;
            self.leases.retain(|l| l.cell != ci);
            return Some((spec, error));
        }
        if entry.active_leases == 0 && entry.state != CellState::Pending {
            entry.state = CellState::Pending;
            self.pending.push_front(ci);
            self.redispatched += 1;
        }
        None
    }

    /// Declares a worker dead: its leases strike their cells and are
    /// re-enqueued (or quarantined — returned for the failure sink).
    fn kill_worker(&mut self, worker: u64, reason: &str) -> Vec<(CellSpec, String)> {
        let Some(info) = self.workers.get_mut(&worker) else {
            return Vec::new();
        };
        if !info.alive {
            return Vec::new();
        }
        info.alive = false;
        let held: Vec<usize> = self
            .leases
            .iter()
            .filter(|l| l.worker == worker)
            .map(|l| l.cell)
            .collect();
        if held.is_empty() {
            // A leaving worker with nothing in flight is a clean exit,
            // not a death.
            return Vec::new();
        }
        self.worker_deaths += 1;
        self.leases.retain(|l| l.worker != worker);
        let mut quarantines = Vec::new();
        for ci in held {
            self.cells[ci].active_leases = self.cells[ci].active_leases.saturating_sub(1);
            if let Some(q) = self.strike(ci, worker, reason) {
                quarantines.push(q);
            }
        }
        quarantines
    }

    /// Handles a closed or corrupted worker connection.
    pub fn disconnect(&mut self, worker: u64) -> Vec<(CellSpec, String)> {
        self.kill_worker(worker, "connection lost")
    }

    /// Applies the timeouts: silent workers die, expired leases are
    /// revoked and their cells re-enqueued. Returns fresh quarantines.
    pub fn reap(&mut self, now: Instant) -> Vec<(CellSpec, String)> {
        let silent: Vec<u64> = self
            .workers
            .iter()
            .filter(|(_, info)| {
                info.alive && now.duration_since(info.last_seen) > self.opts.heartbeat_timeout
            })
            .map(|(&id, _)| id)
            .collect();
        let mut quarantines = Vec::new();
        for w in silent {
            quarantines.extend(self.kill_worker(w, "heartbeat timeout"));
        }
        // Deadline re-dispatch: revoke expired leases. The straggler
        // may still deliver — its late result is merged if first,
        // discarded as a duplicate otherwise.
        let lease_timeout = self.opts.lease_timeout;
        let expired: Vec<usize> = self
            .leases
            .iter()
            .enumerate()
            .filter(|(_, l)| now.duration_since(l.since) >= lease_timeout)
            .map(|(i, _)| i)
            .collect();
        for i in expired.into_iter().rev() {
            let lease = self.leases.swap_remove(i);
            let entry = &mut self.cells[lease.cell];
            entry.active_leases = entry.active_leases.saturating_sub(1);
            if entry.state == CellState::Leased && entry.active_leases == 0 {
                entry.state = CellState::Pending;
                self.pending.push_back(lease.cell);
                self.redispatched += 1;
            }
        }
        quarantines
    }

    /// Answers a worker's work request: the next pending cell, a
    /// straggler duplicate to steal, or idle/done.
    pub fn next_assignment(&mut self, worker: u64, now: Instant) -> Assignment {
        self.touch(worker, now);
        if self.is_complete() {
            return Assignment::AllDone;
        }
        while let Some(ci) = self.pending.pop_front() {
            if self.cells[ci].state != CellState::Pending {
                continue; // stale queue entry (completed or quarantined meanwhile)
            }
            self.cells[ci].state = CellState::Leased;
            self.cells[ci].active_leases += 1;
            self.leases.push(Lease {
                cell: ci,
                worker,
                since: now,
            });
            return Assignment::Cell(self.cells[ci].spec.clone());
        }
        // Straggler re-dispatch: duplicate the oldest single-leased
        // cell another worker has been sitting on for more than half
        // the lease timeout. First valid result wins; the duplicate is
        // capped at two leases so a slow grid tail cannot stampede.
        let steal_after = self.opts.lease_timeout / 2;
        let candidate = self
            .leases
            .iter()
            .filter(|l| {
                l.worker != worker
                    && self.cells[l.cell].state == CellState::Leased
                    && self.cells[l.cell].active_leases == 1
                    && now.duration_since(l.since) >= steal_after
            })
            .min_by_key(|l| l.since)
            .map(|l| l.cell);
        if let Some(ci) = candidate {
            self.cells[ci].active_leases += 1;
            self.leases.push(Lease {
                cell: ci,
                worker,
                since: now,
            });
            self.redispatched += 1;
            return Assignment::Cell(self.cells[ci].spec.clone());
        }
        Assignment::Idle {
            wait_ms: self.opts.idle_wait_ms,
        }
    }

    /// Ingests one submitted result: validate, dedup by digest, merge
    /// the first valid body per cell.
    pub fn submit_result(
        &mut self,
        worker: u64,
        digest: u64,
        seconds: f64,
        body: &[u8],
        now: Instant,
    ) -> Ingest {
        self.touch(worker, now);
        let Some(&ci) = self.by_digest.get(&digest) else {
            return Ingest::Unknown;
        };
        // This worker's lease (if any) is settled by this submission.
        if let Some(i) = self
            .leases
            .iter()
            .position(|l| l.cell == ci && l.worker == worker)
        {
            self.leases.swap_remove(i);
            self.cells[ci].active_leases = self.cells[ci].active_leases.saturating_sub(1);
        }
        if matches!(
            self.cells[ci].state,
            CellState::Done | CellState::Quarantined
        ) {
            self.duplicate_results += 1;
            return Ingest::Duplicate;
        }
        match validate_body(&self.cells[ci].spec, body) {
            Ok(result) => {
                self.cells[ci].state = CellState::Done;
                self.done += 1;
                // Any other outstanding leases on this cell are now
                // moot; their late results will dedup as duplicates.
                self.leases.retain(|l| l.cell != ci);
                self.cells[ci].active_leases = 0;
                self.compute_seconds += seconds;
                if let Some(info) = self.workers.get_mut(&worker) {
                    info.completed += 1;
                }
                Ingest::Merged {
                    spec: self.cells[ci].spec.clone(),
                    result,
                    seconds,
                }
            }
            Err(reason) => {
                self.corrupt_results += 1;
                match self.strike(ci, worker, &reason) {
                    Some((spec, error)) => Ingest::Quarantined { spec, error },
                    None => Ingest::Rejected { reason },
                }
            }
        }
    }

    /// Ingests a worker-reported failure (contained panic, digest
    /// mismatch, trace generation error).
    pub fn submit_failure(
        &mut self,
        worker: u64,
        digest: u64,
        error: &str,
        now: Instant,
    ) -> Ingest {
        self.touch(worker, now);
        let Some(&ci) = self.by_digest.get(&digest) else {
            return Ingest::Unknown;
        };
        if let Some(i) = self
            .leases
            .iter()
            .position(|l| l.cell == ci && l.worker == worker)
        {
            self.leases.swap_remove(i);
            self.cells[ci].active_leases = self.cells[ci].active_leases.saturating_sub(1);
        }
        if matches!(
            self.cells[ci].state,
            CellState::Done | CellState::Quarantined
        ) {
            return Ingest::Duplicate;
        }
        match self.strike(ci, worker, error) {
            Some((spec, error)) => Ingest::Quarantined { spec, error },
            None => Ingest::Recorded,
        }
    }

    /// The run's counters as a report; `wall_seconds` comes from the
    /// caller (the scheduler has no clock of its own).
    pub fn report(&self, wall_seconds: f64) -> DistReport {
        let mut workers: Vec<WorkerReport> = self
            .workers
            .iter()
            .map(|(&id, info)| WorkerReport {
                id,
                cells: info.completed,
                alive: info.alive,
            })
            .collect();
        workers.sort_by_key(|w| w.id);
        DistReport {
            cells_total: self.cells.len(),
            cells_completed: self.done,
            cells_quarantined: self.quarantined,
            redispatched: self.redispatched,
            duplicate_results: self.duplicate_results,
            corrupt_results: self.corrupt_results,
            worker_deaths: self.worker_deaths,
            workers,
            compute_seconds: self.compute_seconds,
            wall_seconds,
        }
    }
}

/// Merge sinks the coordinator calls as cells settle. `on_result`
/// receives each cell's first valid result exactly once, in completion
/// order; `on_quarantine` receives each poisoned cell exactly once.
pub struct DistSinks<'a> {
    /// Called with (cell, validated result, worker-reported seconds).
    pub on_result: &'a (dyn Fn(&CellSpec, &SimResult, f64) + Sync),
    /// Called with (cell, quarantine reason).
    pub on_quarantine: &'a (dyn Fn(&CellSpec, &str) + Sync),
}

struct Shared {
    sched: Mutex<Scheduler>,
    complete: Condvar,
}

/// The TCP face of the [`Scheduler`]: accepts worker connections,
/// answers the dist protocol, reaps timeouts on a timer, and returns
/// when the grid is complete.
pub struct Coordinator {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Shared,
}

impl Coordinator {
    /// Binds the coordinator (pass port 0 for an ephemeral port; read
    /// it back with [`Coordinator::local_addr`]).
    pub fn bind(addr: &str, cells: Vec<CellSpec>, opts: SchedOptions) -> io::Result<Coordinator> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Coordinator {
            listener,
            addr,
            shared: Shared {
                sched: Mutex::new(Scheduler::new(cells, opts)),
                complete: Condvar::new(),
            },
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serves workers until every cell is completed or quarantined,
    /// then returns the run report. Blocks; sinks are invoked from
    /// connection-handler threads as cells settle.
    pub fn run(self, sinks: &DistSinks<'_>) -> DistReport {
        let t0 = Instant::now();
        let stop = AtomicBool::new(false);
        let shared = &self.shared;
        let addr = self.addr;
        std::thread::scope(|s| {
            // Reaper + completion monitor: applies the timeouts, sinks
            // any quarantines, and unblocks the accept loop when the
            // grid is complete.
            s.spawn(|| loop {
                let (quarantines, complete) = {
                    let mut sched = shared.sched.lock().expect("scheduler poisoned");
                    (sched.reap(Instant::now()), sched.is_complete())
                };
                for (spec, why) in &quarantines {
                    (sinks.on_quarantine)(spec, why);
                }
                if complete {
                    stop.store(true, Ordering::SeqCst);
                    shared.complete.notify_all();
                    let _ = TcpStream::connect(addr); // unblock accept
                    return;
                }
                std::thread::sleep(Duration::from_millis(100));
            });
            for stream in self.listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                s.spawn(|| handle_conn(stream, shared, sinks));
            }
        });
        let sched = shared.sched.lock().expect("scheduler poisoned");
        sched.report(t0.elapsed().as_secs_f64())
    }
}

/// One worker connection: a strict request/response loop (heartbeats
/// are one-way). Read timeouts double as a completion poll so handler
/// threads always exit shortly after the grid finishes, even if their
/// worker hangs mid-cell.
fn handle_conn(stream: TcpStream, shared: &Shared, sinks: &DistSinks<'_>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut worker_id = 0u64;
    let mut quiet_ticks = 0u32;
    loop {
        let msg = match read_worker_msg(&mut reader) {
            Ok(Some(msg)) => msg,
            Ok(None) => break, // clean close
            Err(WireError::Io(e))
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // No frame within the poll window. Once the grid is
                // complete, give the worker a few windows to come back
                // for its AllDone, then hang up.
                let complete = shared
                    .sched
                    .lock()
                    .expect("scheduler poisoned")
                    .is_complete();
                if complete {
                    quiet_ticks += 1;
                    if quiet_ticks > 10 {
                        break;
                    }
                } else {
                    quiet_ticks = 0;
                }
                continue;
            }
            Err(_) => {
                // Corrupt frame or transport error: the checksummed
                // framing can no longer be trusted — treat the worker
                // as lost so its leases re-dispatch.
                disconnect(shared, sinks, worker_id);
                return;
            }
        };
        quiet_ticks = 0;
        let now = Instant::now();
        let reply = match msg {
            WorkerMsg::Hello {
                worker_id: want, ..
            } => {
                let id = {
                    let mut sched = shared.sched.lock().expect("scheduler poisoned");
                    sched.register(want, now)
                };
                worker_id = id;
                Some(CoordMsg::Welcome { worker_id: id })
            }
            WorkerMsg::Heartbeat { worker_id: w } => {
                let mut sched = shared.sched.lock().expect("scheduler poisoned");
                sched.heartbeat(w, now);
                None
            }
            WorkerMsg::Request { worker_id: w } => {
                let assignment = {
                    let mut sched = shared.sched.lock().expect("scheduler poisoned");
                    sched.next_assignment(w, now)
                };
                Some(match assignment {
                    Assignment::Cell(spec) => CoordMsg::Assign(spec),
                    Assignment::Idle { wait_ms } => CoordMsg::Idle { wait_ms },
                    Assignment::AllDone => CoordMsg::AllDone,
                })
            }
            WorkerMsg::Result {
                worker_id: w,
                digest,
                seconds_bits,
                body,
            } => {
                let ingest = {
                    let mut sched = shared.sched.lock().expect("scheduler poisoned");
                    sched.submit_result(w, digest, f64::from_bits(seconds_bits), &body, now)
                };
                settle(shared, sinks, ingest);
                Some(CoordMsg::Ack)
            }
            WorkerMsg::Failed {
                worker_id: w,
                digest,
                error,
            } => {
                let ingest = {
                    let mut sched = shared.sched.lock().expect("scheduler poisoned");
                    sched.submit_failure(w, digest, &error, now)
                };
                settle(shared, sinks, ingest);
                Some(CoordMsg::Ack)
            }
        };
        if let Some(reply) = reply {
            if write_coord_msg(&mut writer, &reply)
                .and_then(|()| writer.flush())
                .is_err()
            {
                disconnect(shared, sinks, worker_id);
                return;
            }
        }
    }
    disconnect(shared, sinks, worker_id);
}

/// Runs the sinks for one settled ingest (outside the scheduler lock)
/// and wakes the completion monitor.
fn settle(shared: &Shared, sinks: &DistSinks<'_>, ingest: Ingest) {
    match ingest {
        Ingest::Merged {
            spec,
            result,
            seconds,
        } => (sinks.on_result)(&spec, &result, seconds),
        Ingest::Quarantined { spec, error } => (sinks.on_quarantine)(&spec, &error),
        Ingest::Duplicate | Ingest::Rejected { .. } | Ingest::Recorded | Ingest::Unknown => {}
    }
    let complete = shared
        .sched
        .lock()
        .expect("scheduler poisoned")
        .is_complete();
    if complete {
        shared.complete.notify_all();
    }
}

fn disconnect(shared: &Shared, sinks: &DistSinks<'_>, worker_id: u64) {
    if worker_id == 0 {
        return;
    }
    let quarantines = {
        let mut sched = shared.sched.lock().expect("scheduler poisoned");
        sched.disconnect(worker_id)
    };
    for (spec, why) in &quarantines {
        (sinks.on_quarantine)(spec, why);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(digest: u64) -> CellSpec {
        CellSpec {
            bench: "compress".into(),
            config: "A".into(),
            width: 4,
            trace_len: 1000,
            seed: 1996,
            digest,
        }
    }

    fn opts() -> SchedOptions {
        SchedOptions {
            lease_timeout: Duration::from_millis(100),
            heartbeat_timeout: Duration::from_millis(50),
            poison_threshold: 2,
            idle_wait_ms: 5,
        }
    }

    #[test]
    fn cells_dispatch_in_order_and_complete() {
        let mut s = Scheduler::new(vec![spec(1), spec(2)], opts());
        let t = Instant::now();
        let w = s.register(0, t);
        let Assignment::Cell(c1) = s.next_assignment(w, t) else {
            panic!("expected a cell");
        };
        assert_eq!(c1.digest, 1);
        assert!(!s.is_complete());
        // An unknown digest is not merged.
        assert!(matches!(
            s.submit_result(w, 999, 0.0, &[], t),
            Ingest::Unknown
        ));
    }

    #[test]
    fn dead_worker_cells_requeue_and_poison_quarantines() {
        let mut s = Scheduler::new(vec![spec(1)], opts());
        let t = Instant::now();
        let w1 = s.register(0, t);
        assert!(matches!(s.next_assignment(w1, t), Assignment::Cell(_)));
        // First death: requeued, not quarantined.
        assert!(s.disconnect(w1).is_empty());
        let w2 = s.register(0, t);
        assert!(matches!(s.next_assignment(w2, t), Assignment::Cell(_)));
        // Second distinct death crosses poison_threshold 2.
        let quarantined = s.disconnect(w2);
        assert_eq!(quarantined.len(), 1);
        assert!(s.is_complete());
        let report = s.report(1.0);
        assert_eq!(report.cells_quarantined, 1);
        assert_eq!(report.worker_deaths, 2);
    }

    #[test]
    fn heartbeat_timeout_reaps_silent_workers() {
        let mut s = Scheduler::new(vec![spec(1)], opts());
        let t = Instant::now();
        let w = s.register(0, t);
        assert!(matches!(s.next_assignment(w, t), Assignment::Cell(_)));
        // Within the window: nothing happens.
        assert!(s.reap(t + Duration::from_millis(10)).is_empty());
        assert_eq!(s.report(0.0).worker_deaths, 0);
        // Past the window: the worker dies, the cell requeues.
        let _ = s.reap(t + Duration::from_millis(60));
        assert_eq!(s.report(0.0).worker_deaths, 1);
        let w2 = s.register(0, t + Duration::from_millis(61));
        assert!(matches!(
            s.next_assignment(w2, t + Duration::from_millis(61)),
            Assignment::Cell(_)
        ));
    }

    #[test]
    fn straggler_lease_is_stolen_once() {
        let mut s = Scheduler::new(vec![spec(1)], opts());
        let t = Instant::now();
        let w1 = s.register(0, t);
        let w2 = s.register(0, t);
        assert!(matches!(s.next_assignment(w1, t), Assignment::Cell(_)));
        // Too early to steal.
        let early = t + Duration::from_millis(10);
        s.heartbeat(w1, early);
        assert!(matches!(
            s.next_assignment(w2, early),
            Assignment::Idle { .. }
        ));
        // Past half the lease timeout: the idle worker duplicates it.
        let late = t + Duration::from_millis(60);
        s.heartbeat(w1, late);
        assert!(matches!(s.next_assignment(w2, late), Assignment::Cell(_)));
        // Both leases outstanding; a third worker cannot triple it.
        let w3 = s.register(0, late);
        assert!(matches!(
            s.next_assignment(w3, late),
            Assignment::Idle { .. }
        ));
        assert_eq!(s.report(0.0).redispatched, 1);
    }

    #[test]
    fn corrupt_results_are_rejected_and_requeued() {
        let mut s = Scheduler::new(vec![spec(1)], opts());
        let t = Instant::now();
        let w = s.register(0, t);
        let Assignment::Cell(c) = s.next_assignment(w, t) else {
            panic!("expected a cell");
        };
        let ingest = s.submit_result(w, c.digest, 0.1, b"garbage", t);
        assert!(matches!(ingest, Ingest::Rejected { .. }));
        assert!(!s.is_complete());
        // The cell is immediately dispatchable again.
        let w2 = s.register(0, t);
        assert!(matches!(s.next_assignment(w2, t), Assignment::Cell(_)));
        assert_eq!(s.report(0.0).corrupt_results, 1);
    }

    #[test]
    fn report_json_shape() {
        let s = Scheduler::new(vec![spec(1)], opts());
        let json = s.report(2.0).to_json();
        for key in [
            "\"schema\": \"ddsc-dist-bench-v1\"",
            "\"cells_total\"",
            "\"redispatched\"",
            "\"speedup_vs_serial\"",
            "\"workers\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
