//! The coordinator: a pull-based cell scheduler with a failure model,
//! and the TCP server that exposes it to worker processes.
//!
//! The scheduling logic lives in [`Scheduler`], a pure state machine
//! that takes the current `Instant` as an argument everywhere — the
//! seeded chaos tests drive it with synthetic clocks and scripted
//! worker failures, while the [`Coordinator`] drives it with wall time
//! and real sockets. One body of logic, two harnesses.
//!
//! The failure model, in one pass:
//!
//! - every dispatched cell carries a **lease** (worker, start time);
//! - workers send **heartbeats** while computing; a silent worker is
//!   declared dead after `heartbeat_timeout`, a closed connection
//!   immediately;
//! - a dead worker's leases **strike** their cells and re-enqueue them
//!   at the front of the queue;
//! - a cell struck by `poison_threshold` *distinct* workers is
//!   **quarantined** — recorded as failed (the exit-2 degraded
//!   contract) instead of wedging the run;
//! - every lease carries a **deadline fixed at dispatch time**
//!   (adaptive: per-benchmark EWMA + p95 of observed compute times,
//!   with the fixed `lease_timeout` as fallback and floor — see
//!   [`estimate`](crate::estimate)); an expired lease is revoked and
//!   its cell re-enqueued (deadline re-dispatch); an idle worker may
//!   also duplicate a lease past half its deadline (**straggler
//!   re-dispatch** / work stealing) — the first valid result wins and
//!   late duplicates are discarded by digest, which is safe because
//!   simulation is a pure function of the digest-keyed inputs: every
//!   valid result for a digest is byte-identical.
//!
//! Result ingest is paranoid about the bytes, not the physics: frames
//! are checksummed, the body must decode as a canonical
//! [`SimResult::encode_to`] encoding with no trailing bytes, and the
//! counters must satisfy the simulator's structural invariants
//! (instructions match the requested trace length, cycles bounded
//! below by the issue-width limit). A rejected result strikes the
//! sending worker and re-dispatches the cell — it is never merged.
//!
//! Structural validation cannot catch a **byzantine** worker emitting
//! well-formed but wrong counters, so the scheduler adds
//! **double-compute spot checks**: a seeded, deterministic K% of cells
//! require the same canonical bytes from two *distinct* workers before
//! merging. On a byte mismatch both candidates' pending trust is
//! quarantined (their other leases are revoked, their future results
//! are held for verification), the cell is re-dispatched to a third
//! worker as tiebreak, and the minority side of the vote is marked
//! byzantine — its leases drain, its results are discarded, and a
//! reconnect under the same identity is refused for the rest of the
//! run. Each incident lands in `BENCH_dist.json`.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt::Write as _;
use std::io::{self, BufReader, BufWriter, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use ddsc_core::{PaperConfig, SimConfig, SimResult};
use ddsc_util::fnv1a;

use crate::estimate::{ComputeEstimator, LeaseStat};
use crate::proto::{read_worker_msg, write_coord_msg, CellSpec, CoordMsg, WireError, WorkerMsg};

/// Distinct result bodies a spot-checked cell may accumulate before
/// the conflict is declared unresolvable and the cell quarantined.
const MAX_CANDIDATES: usize = 4;

/// Tunables of the scheduler's failure model.
#[derive(Debug, Clone, Copy)]
pub struct SchedOptions {
    /// Fixed lease timeout: the deadline granted before enough compute
    /// samples exist, and the fallback when `adaptive_lease` is off.
    pub lease_timeout: Duration,
    /// Silence after which a worker is declared dead.
    pub heartbeat_timeout: Duration,
    /// Distinct workers a cell may strike (kill or fail on) before it
    /// is quarantined as failed.
    pub poison_threshold: usize,
    /// Poll delay suggested to workers when nothing is dispatchable.
    pub idle_wait_ms: u32,
    /// Derive lease deadlines from observed per-benchmark compute
    /// times (EWMA + p95) instead of the fixed `lease_timeout`.
    pub adaptive_lease: bool,
    /// Hard floor under adaptive deadlines: the estimate never revokes
    /// a lease younger than this.
    pub lease_floor: Duration,
    /// Percentage of cells (seeded, deterministic selection) that must
    /// be confirmed by a second, distinct worker before merging.
    pub spot_check_percent: u8,
    /// Seed for the deterministic spot-check selection.
    pub spot_check_seed: u64,
}

impl Default for SchedOptions {
    fn default() -> SchedOptions {
        SchedOptions {
            lease_timeout: Duration::from_secs(60),
            heartbeat_timeout: Duration::from_secs(10),
            poison_threshold: 3,
            idle_wait_ms: 50,
            adaptive_lease: true,
            lease_floor: Duration::from_secs(1),
            spot_check_percent: 0,
            spot_check_seed: 0xDD5C,
        }
    }
}

/// Whether `digest`'s cell is spot-checked under `seed`/`percent`: a
/// pure function, so the selection is identical across coordinator
/// restarts and reproducible from the seed alone.
pub fn spot_selected(seed: u64, digest: u64, percent: u8) -> bool {
    if percent == 0 {
        return false;
    }
    if percent >= 100 {
        return true;
    }
    let mut key = [0u8; 16];
    key[..8].copy_from_slice(&seed.to_le_bytes());
    key[8..].copy_from_slice(&digest.to_le_bytes());
    fnv1a(&key) % 100 < percent as u64
}

/// What a worker's work request yields.
#[derive(Debug, Clone, PartialEq)]
pub enum Assignment {
    /// Compute this cell.
    Cell(CellSpec),
    /// Nothing dispatchable; ask again after `wait_ms`.
    Idle {
        /// Suggested poll delay in milliseconds.
        wait_ms: u32,
    },
    /// The grid is complete; exit.
    AllDone,
}

/// What the scheduler decided about a submitted result or failure.
///
/// A short-lived, one-per-submission value, so the size of the
/// `Merged` variant is irrelevant — no point boxing it.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)]
pub enum Ingest {
    /// First valid result for its cell: merge it.
    Merged {
        /// The completed cell.
        spec: CellSpec,
        /// The decoded, validated result.
        result: SimResult,
        /// Worker-reported compute seconds.
        seconds: f64,
    },
    /// The cell was already completed (or quarantined) — a straggler's
    /// duplicate, discarded by digest.
    Duplicate,
    /// The body failed validation; the worker was struck and the cell
    /// re-dispatched. Never merged.
    Rejected {
        /// Why the body was refused.
        reason: String,
    },
    /// The strike tipped the cell over the poison threshold.
    Quarantined {
        /// The quarantined cell.
        spec: CellSpec,
        /// The rendered quarantine reason.
        error: String,
    },
    /// A failure was recorded and the cell re-dispatched.
    Recorded,
    /// A valid result for a spot-checked cell was recorded as a
    /// candidate; the merge waits for a confirming byte-identical
    /// result from a distinct worker.
    HeldForVerification,
    /// No cell with that digest exists in this run.
    Unknown,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CellState {
    Pending,
    Leased,
    Done,
    Quarantined,
}

/// One held result body on a spot-checked cell, awaiting confirmation.
#[derive(Debug)]
struct Candidate {
    worker: u64,
    body: Vec<u8>,
    seconds: f64,
}

#[derive(Debug)]
struct CellEntry {
    spec: CellSpec,
    state: CellState,
    /// Distinct workers that died on or failed this cell.
    strikes: HashSet<u64>,
    /// Outstanding leases on this cell (0, 1 or 2 — duplicates capped).
    active_leases: usize,
    /// Whether merging requires two distinct workers to agree on the
    /// canonical bytes (seeded selection, or escalated because a
    /// suspect worker submitted first).
    spot_check: bool,
    /// Held result bodies, one per distinct submitting worker.
    candidates: Vec<Candidate>,
    /// Workers whose body is (or was) on file for this cell — they may
    /// not confirm their own computation.
    verifiers: HashSet<u64>,
    /// When the first candidate disagreement was observed, for the
    /// unresolvable-conflict quarantine clock.
    mismatch_since: Option<Instant>,
}

#[derive(Debug)]
struct Lease {
    cell: usize,
    worker: u64,
    since: Instant,
    /// Revocation deadline fixed at dispatch time — later estimate
    /// changes never retro-extend (or retro-shrink) a granted lease.
    deadline: Instant,
}

#[derive(Debug)]
struct WorkerInfo {
    last_seen: Instant,
    alive: bool,
    completed: u64,
    /// Trust on hold: this worker was party to an unresolved
    /// spot-check mismatch. Its results are held for verification
    /// until a consensus exonerates it.
    suspect: bool,
    /// Lost the spot-check vote: leases drained, results discarded,
    /// reconnect refused for the rest of the run.
    banned: bool,
}

/// Per-worker slice of the run report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerReport {
    /// The worker's assigned id.
    pub id: u64,
    /// Cells whose first valid result this worker delivered.
    pub cells: u64,
    /// Whether the worker was still alive at the end of the run.
    pub alive: bool,
    /// Whether the worker was marked byzantine (lost a spot-check
    /// vote) and drained from the run.
    pub byzantine: bool,
}

/// One spot-check mismatch, as recorded in `BENCH_dist.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MismatchIncident {
    /// The contested cell's digest.
    pub digest: u64,
    /// The contested cell's benchmark.
    pub bench: String,
    /// The contested cell's config label.
    pub config: String,
    /// The contested cell's issue width.
    pub width: u32,
    /// Candidate submitters, in submission order.
    pub workers: Vec<u64>,
    /// The minority side of the resolved vote (empty if unresolved).
    pub byzantine: Vec<u64>,
    /// Whether a tiebreak consensus settled the cell (false: the cell
    /// was quarantined with the conflict undecided).
    pub resolved: bool,
}

/// The distributed run's outcome counters (`BENCH_dist.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct DistReport {
    /// Cells the run was asked to complete.
    pub cells_total: usize,
    /// Cells completed with a valid result.
    pub cells_completed: usize,
    /// Cells quarantined as poison.
    pub cells_quarantined: usize,
    /// Re-dispatch decisions: death re-enqueues, deadline revocations
    /// and straggler duplicates.
    pub redispatched: u64,
    /// Valid-but-late results discarded by digest.
    pub duplicate_results: u64,
    /// Results rejected by ingest validation.
    pub corrupt_results: u64,
    /// Workers declared dead (connection loss or heartbeat silence
    /// while holding a lease).
    pub worker_deaths: u64,
    /// Cells merged only after a second distinct worker confirmed the
    /// canonical bytes.
    pub spot_checked: u64,
    /// Spot-check byte mismatches observed (each one is a byzantine
    /// incident; see `incidents`).
    pub mismatches: u64,
    /// Workers marked byzantine and drained from the run, in ban order.
    pub byzantine_workers: Vec<u64>,
    /// Revoked leases whose worker later delivered a valid result
    /// after genuinely computing for the whole allotment — the
    /// deadline was too tight (adaptive-timeout quality signal; a
    /// fast result merely *delivered* late counts against the
    /// network, not the estimator).
    pub revocation_false_positives: u64,
    /// Whether lease deadlines were derived from observed compute
    /// times.
    pub adaptive_lease: bool,
    /// Per-benchmark observed compute percentiles and the lease
    /// timeout in force.
    pub lease_stats: Vec<LeaseStat>,
    /// Spot-check mismatch incidents, in detection order.
    pub incidents: Vec<MismatchIncident>,
    /// Per-worker completion counts.
    pub workers: Vec<WorkerReport>,
    /// Sum of worker-reported per-cell compute seconds — the serial
    /// cost the run avoided paying on one core.
    pub compute_seconds: f64,
    /// Coordinator wall-clock seconds for the whole run.
    pub wall_seconds: f64,
}

impl DistReport {
    /// Wall-clock speedup over computing the same cells serially:
    /// `compute_seconds / wall_seconds`.
    pub fn speedup_vs_serial(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.compute_seconds / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Renders the report as stable JSON (`ddsc-dist-bench-v2`; every
    /// v1 field is unchanged, v2 appends the trust and adaptive-lease
    /// accounting).
    pub fn to_json(&self) -> String {
        fn ids(ids: &[u64]) -> String {
            let inner: Vec<String> = ids.iter().map(|id| id.to_string()).collect();
            format!("[{}]", inner.join(", "))
        }
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": \"ddsc-dist-bench-v2\",");
        let _ = writeln!(out, "  \"cells_total\": {},", self.cells_total);
        let _ = writeln!(out, "  \"cells_completed\": {},", self.cells_completed);
        let _ = writeln!(out, "  \"cells_quarantined\": {},", self.cells_quarantined);
        let _ = writeln!(out, "  \"redispatched\": {},", self.redispatched);
        let _ = writeln!(out, "  \"duplicate_results\": {},", self.duplicate_results);
        let _ = writeln!(out, "  \"corrupt_results\": {},", self.corrupt_results);
        let _ = writeln!(out, "  \"worker_deaths\": {},", self.worker_deaths);
        let _ = writeln!(out, "  \"spot_checked\": {},", self.spot_checked);
        let _ = writeln!(out, "  \"mismatches\": {},", self.mismatches);
        let _ = writeln!(
            out,
            "  \"byzantine_workers\": {},",
            ids(&self.byzantine_workers)
        );
        let _ = writeln!(
            out,
            "  \"revocation_false_positives\": {},",
            self.revocation_false_positives
        );
        let _ = writeln!(out, "  \"adaptive_lease\": {},", self.adaptive_lease);
        let _ = writeln!(out, "  \"compute_seconds\": {:.6},", self.compute_seconds);
        let _ = writeln!(out, "  \"wall_seconds\": {:.6},", self.wall_seconds);
        let _ = writeln!(
            out,
            "  \"speedup_vs_serial\": {:.4},",
            self.speedup_vs_serial()
        );
        let _ = writeln!(out, "  \"lease_stats\": [");
        for (i, s) in self.lease_stats.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"bench\": \"{}\", \"samples\": {}, \"p50_s\": {:.6}, \"p95_s\": {:.6}, \"timeout_s\": {:.3}}}{}",
                s.bench,
                s.samples,
                s.p50_s,
                s.p95_s,
                s.timeout_s,
                if i + 1 < self.lease_stats.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "  \"incidents\": [");
        for (i, inc) in self.incidents.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"digest\": \"0x{:016x}\", \"bench\": \"{}\", \"config\": \"{}\", \"width\": {}, \"workers\": {}, \"byzantine\": {}, \"resolved\": {}}}{}",
                inc.digest,
                inc.bench,
                inc.config,
                inc.width,
                ids(&inc.workers),
                ids(&inc.byzantine),
                inc.resolved,
                if i + 1 < self.incidents.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "  \"workers\": [");
        for (i, w) in self.workers.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"id\": {}, \"cells\": {}, \"alive\": {}, \"byzantine\": {}}}{}",
                w.id,
                w.cells,
                w.alive,
                w.byzantine,
                if i + 1 < self.workers.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }
}

/// Validates one result body against its cell: canonical codec,
/// no trailing bytes, and the structural invariants the simulator
/// guarantees. `Err` is the rejection reason.
pub fn validate_body(spec: &CellSpec, body: &[u8]) -> Result<SimResult, String> {
    let pc = PaperConfig::ALL
        .iter()
        .copied()
        .find(|c| c.label() == spec.config)
        .ok_or_else(|| format!("unknown config label `{}`", spec.config))?;
    let config = SimConfig::paper(pc, spec.width);
    let mut pos = 0usize;
    let result = SimResult::decode(body, &mut pos, config)
        .ok_or_else(|| "undecodable result body".to_string())?;
    if pos != body.len() {
        return Err(format!(
            "trailing bytes after result body ({pos} of {})",
            body.len()
        ));
    }
    if result.instructions != spec.trace_len {
        return Err(format!(
            "instruction count {} does not match trace length {}",
            result.instructions, spec.trace_len
        ));
    }
    // No machine issues more than `width` instructions per cycle, so
    // any valid run satisfies cycles ≥ ⌈insts / width⌉.
    let floor = spec.trace_len.div_ceil(spec.width.max(1) as u64);
    if result.cycles < floor {
        return Err(format!(
            "cycle count {} below the width-{} issue floor {floor}",
            result.cycles, spec.width
        ));
    }
    let mut canonical = Vec::with_capacity(body.len());
    result.encode_to(&mut canonical);
    if canonical != body {
        return Err("non-canonical result encoding".to_string());
    }
    Ok(result)
}

/// The pure scheduling state machine. All methods take `now` so tests
/// can drive it with a synthetic clock; the TCP layer passes
/// `Instant::now()`.
#[derive(Debug)]
pub struct Scheduler {
    cells: Vec<CellEntry>,
    by_digest: HashMap<u64, usize>,
    pending: VecDeque<usize>,
    leases: Vec<Lease>,
    workers: HashMap<u64, WorkerInfo>,
    next_worker_id: u64,
    opts: SchedOptions,
    estimator: ComputeEstimator,
    done: usize,
    quarantined: usize,
    redispatched: u64,
    duplicate_results: u64,
    corrupt_results: u64,
    worker_deaths: u64,
    compute_seconds: f64,
    spot_checked: u64,
    mismatches: u64,
    byzantine: Vec<u64>,
    /// (digest, worker) pairs whose lease was revoked at deadline,
    /// with the lease's allotted duration. A later valid delivery
    /// whose reported compute time filled the allotment is a
    /// revocation false positive — the estimator under-budgeted. A
    /// *fast* result arriving late was delayed in transit; that is
    /// the network's fault, not the deadline's, and does not count.
    revoked: HashMap<(u64, u64), Duration>,
    revocation_false_positives: u64,
    incidents: Vec<MismatchIncident>,
}

impl Scheduler {
    /// A scheduler over `cells`, dispatched in input order.
    pub fn new(cells: Vec<CellSpec>, opts: SchedOptions) -> Scheduler {
        let mut by_digest = HashMap::with_capacity(cells.len());
        let entries: Vec<CellEntry> = cells
            .into_iter()
            .map(|spec| {
                let spot_check =
                    spot_selected(opts.spot_check_seed, spec.digest, opts.spot_check_percent);
                CellEntry {
                    spec,
                    state: CellState::Pending,
                    strikes: HashSet::new(),
                    active_leases: 0,
                    spot_check,
                    candidates: Vec::new(),
                    verifiers: HashSet::new(),
                    mismatch_since: None,
                }
            })
            .collect();
        for (i, e) in entries.iter().enumerate() {
            let prev = by_digest.insert(e.spec.digest, i);
            debug_assert!(prev.is_none(), "duplicate cell digest in grid");
        }
        Scheduler {
            pending: (0..entries.len()).collect(),
            cells: entries,
            by_digest,
            leases: Vec::new(),
            workers: HashMap::new(),
            next_worker_id: 1,
            opts,
            estimator: ComputeEstimator::new(),
            done: 0,
            quarantined: 0,
            redispatched: 0,
            duplicate_results: 0,
            corrupt_results: 0,
            worker_deaths: 0,
            compute_seconds: 0.0,
            spot_checked: 0,
            mismatches: 0,
            byzantine: Vec::new(),
            revoked: HashMap::new(),
            revocation_false_positives: 0,
            incidents: Vec::new(),
        }
    }

    /// Registers (or revives) a worker. `want_id` 0 — or an id this
    /// scheduler never issued — yields a fresh identity; a known id
    /// reconnects with its history (completion counts, strikes against
    /// it, and any byzantine ban) intact.
    pub fn register(&mut self, want_id: u64, now: Instant) -> u64 {
        if want_id != 0 {
            if let Some(info) = self.workers.get_mut(&want_id) {
                // A banned identity stays banned: the reconnect is
                // answered, but every work request it makes gets
                // `AllDone` — refused for the rest of the run.
                info.alive = true;
                info.last_seen = now;
                return want_id;
            }
        }
        let id = self.next_worker_id;
        self.next_worker_id += 1;
        self.workers.insert(
            id,
            WorkerInfo {
                last_seen: now,
                alive: true,
                completed: 0,
                suspect: false,
                banned: false,
            },
        );
        id
    }

    /// Whether `worker` has been marked byzantine.
    pub fn is_banned(&self, worker: u64) -> bool {
        self.workers.get(&worker).is_some_and(|i| i.banned)
    }

    /// The lease timeout a fresh lease on `ci` would get right now.
    fn cell_timeout(&self, ci: usize) -> Duration {
        if !self.opts.adaptive_lease {
            return self.opts.lease_timeout;
        }
        self.estimator.timeout_for(
            &self.cells[ci].spec.bench,
            self.opts.lease_timeout,
            self.opts.lease_floor,
        )
    }

    /// Whether any alive, non-banned worker other than `exclude`
    /// exists — the guard for single-worker liveness fallbacks.
    fn other_live_worker(&self, exclude: u64) -> bool {
        self.workers
            .iter()
            .any(|(&id, info)| id != exclude && info.alive && !info.banned)
    }

    /// Whether some alive, non-banned worker that has *not* yet
    /// submitted a body for `ci` exists to confirm or tiebreak it.
    fn eligible_verifier_exists(&self, ci: usize) -> bool {
        self.workers.iter().any(|(&id, info)| {
            info.alive && !info.banned && !self.cells[ci].verifiers.contains(&id)
        })
    }

    /// Re-enqueues `ci` at the front of the queue unless it is already
    /// pending, settled, or still leased elsewhere.
    fn ensure_dispatchable(&mut self, ci: usize) {
        let entry = &mut self.cells[ci];
        if entry.state == CellState::Leased && entry.active_leases == 0 {
            entry.state = CellState::Pending;
            self.pending.push_front(ci);
            self.redispatched += 1;
        }
    }

    /// Puts a worker's trust on hold after a spot-check mismatch: its
    /// in-flight leases are revoked (the cells re-dispatch to workers
    /// still in good standing) and its future results are held for
    /// verification until a consensus exonerates it.
    fn mark_suspect(&mut self, worker: u64) {
        if let Some(info) = self.workers.get_mut(&worker) {
            if info.banned || info.suspect {
                return;
            }
            info.suspect = true;
        } else {
            return;
        }
        self.drain_leases(worker);
    }

    /// Marks a worker byzantine: leases drained, results discarded,
    /// reconnects refused, and its held candidates on other cells
    /// purged (they are known-bad).
    fn mark_byzantine(&mut self, worker: u64) {
        if let Some(info) = self.workers.get_mut(&worker) {
            if info.banned {
                return;
            }
            info.banned = true;
            info.suspect = false;
        } else {
            return;
        }
        self.byzantine.push(worker);
        self.drain_leases(worker);
        for ci in 0..self.cells.len() {
            let entry = &mut self.cells[ci];
            if matches!(entry.state, CellState::Done | CellState::Quarantined) {
                continue;
            }
            entry.candidates.retain(|c| c.worker != worker);
            if entry.candidates.len() < 2 {
                entry.mismatch_since = None;
            }
        }
    }

    /// Revokes every lease `worker` holds and re-dispatches the cells.
    /// Not a death: the worker may still be connected.
    fn drain_leases(&mut self, worker: u64) {
        let held: Vec<usize> = self
            .leases
            .iter()
            .filter(|l| l.worker == worker)
            .map(|l| l.cell)
            .collect();
        self.leases.retain(|l| l.worker != worker);
        for ci in held {
            self.cells[ci].active_leases = self.cells[ci].active_leases.saturating_sub(1);
            self.ensure_dispatchable(ci);
        }
    }

    fn touch(&mut self, worker: u64, now: Instant) {
        if let Some(info) = self.workers.get_mut(&worker) {
            info.last_seen = now;
            info.alive = true;
        }
    }

    /// Records a heartbeat.
    pub fn heartbeat(&mut self, worker: u64, now: Instant) {
        self.touch(worker, now);
    }

    /// Whether every cell is completed or quarantined.
    pub fn is_complete(&self) -> bool {
        self.done + self.quarantined == self.cells.len()
    }

    /// Completed-cell count (progress probes).
    pub fn cells_done(&self) -> usize {
        self.done
    }

    /// Strikes `cell` on behalf of `worker` (death or failure). Either
    /// quarantines the cell (returned for the failure sink) or makes
    /// sure it is re-dispatched.
    fn strike(&mut self, ci: usize, worker: u64, reason: &str) -> Option<(CellSpec, String)> {
        let threshold = self.opts.poison_threshold;
        let entry = &mut self.cells[ci];
        if matches!(entry.state, CellState::Done | CellState::Quarantined) {
            return None;
        }
        entry.strikes.insert(worker);
        if entry.strikes.len() >= threshold {
            entry.state = CellState::Quarantined;
            let spec = entry.spec.clone();
            let error = format!(
                "cell quarantined as poison: struck {} distinct workers (last: {reason})",
                entry.strikes.len()
            );
            entry.active_leases = 0;
            self.quarantined += 1;
            self.leases.retain(|l| l.cell != ci);
            return Some((spec, error));
        }
        if entry.active_leases == 0 && entry.state != CellState::Pending {
            entry.state = CellState::Pending;
            self.pending.push_front(ci);
            self.redispatched += 1;
        }
        None
    }

    /// Declares a worker dead: its leases strike their cells and are
    /// re-enqueued (or quarantined — returned for the failure sink).
    fn kill_worker(&mut self, worker: u64, reason: &str) -> Vec<(CellSpec, String)> {
        let Some(info) = self.workers.get_mut(&worker) else {
            return Vec::new();
        };
        if !info.alive {
            return Vec::new();
        }
        info.alive = false;
        let held: Vec<usize> = self
            .leases
            .iter()
            .filter(|l| l.worker == worker)
            .map(|l| l.cell)
            .collect();
        if held.is_empty() {
            // A leaving worker with nothing in flight is a clean exit,
            // not a death.
            return Vec::new();
        }
        self.worker_deaths += 1;
        self.leases.retain(|l| l.worker != worker);
        let mut quarantines = Vec::new();
        for ci in held {
            self.cells[ci].active_leases = self.cells[ci].active_leases.saturating_sub(1);
            if let Some(q) = self.strike(ci, worker, reason) {
                quarantines.push(q);
            }
        }
        quarantines
    }

    /// Handles a closed or corrupted worker connection.
    pub fn disconnect(&mut self, worker: u64) -> Vec<(CellSpec, String)> {
        self.kill_worker(worker, "connection lost")
    }

    /// Applies the timeouts: silent workers die, expired leases are
    /// revoked and their cells re-enqueued. Returns fresh quarantines.
    pub fn reap(&mut self, now: Instant) -> Vec<(CellSpec, String)> {
        let silent: Vec<u64> = self
            .workers
            .iter()
            .filter(|(_, info)| {
                info.alive && now.duration_since(info.last_seen) > self.opts.heartbeat_timeout
            })
            .map(|(&id, _)| id)
            .collect();
        let mut quarantines = Vec::new();
        for w in silent {
            quarantines.extend(self.kill_worker(w, "heartbeat timeout"));
        }
        // Deadline re-dispatch: revoke expired leases against the
        // deadline fixed when each lease was granted — an estimate
        // that moved since never retro-extends an already-expired
        // lease. The straggler may still deliver; if its result is
        // valid the revocation is counted as a false positive.
        let expired: Vec<usize> = self
            .leases
            .iter()
            .enumerate()
            .filter(|(_, l)| now >= l.deadline)
            .map(|(i, _)| i)
            .collect();
        for i in expired.into_iter().rev() {
            let lease = self.leases.swap_remove(i);
            self.revoked.insert(
                (self.cells[lease.cell].spec.digest, lease.worker),
                lease.deadline.duration_since(lease.since),
            );
            let entry = &mut self.cells[lease.cell];
            entry.active_leases = entry.active_leases.saturating_sub(1);
            if entry.state == CellState::Leased && entry.active_leases == 0 {
                entry.state = CellState::Pending;
                self.pending.push_back(lease.cell);
                self.redispatched += 1;
            }
        }
        // A mismatched spot-check needs a worker that has not yet
        // weighed in to tiebreak it. If no such worker exists and none
        // has shown up within the fixed lease window, the conflict is
        // undecidable (e.g. a 1-vs-1 fleet) — quarantine instead of
        // wedging the run.
        let stuck: Vec<usize> = (0..self.cells.len())
            .filter(|&ci| {
                let entry = &self.cells[ci];
                !matches!(entry.state, CellState::Done | CellState::Quarantined)
                    && entry.candidates.len() >= 2
                    && entry
                        .mismatch_since
                        .is_some_and(|t| now.duration_since(t) >= self.opts.lease_timeout)
                    && !self.eligible_verifier_exists(ci)
            })
            .collect();
        for ci in stuck {
            quarantines.push(self.quarantine_unresolved(ci));
        }
        quarantines
    }

    /// Quarantines a spot-checked cell whose candidate conflict cannot
    /// be resolved, recording the incident as unresolved.
    fn quarantine_unresolved(&mut self, ci: usize) -> (CellSpec, String) {
        let entry = &mut self.cells[ci];
        let workers: Vec<u64> = entry.candidates.iter().map(|c| c.worker).collect();
        entry.state = CellState::Quarantined;
        entry.active_leases = 0;
        self.quarantined += 1;
        self.leases.retain(|l| l.cell != ci);
        let spec = self.cells[ci].spec.clone();
        let error = format!(
            "spot-check mismatch unresolved: {} distinct result bodies from workers {workers:?}, no eligible tiebreak worker",
            self.cells[ci].candidates.len()
        );
        self.incidents.push(MismatchIncident {
            digest: spec.digest,
            bench: spec.bench.clone(),
            config: spec.config.clone(),
            width: spec.width,
            workers,
            byzantine: Vec::new(),
            resolved: false,
        });
        (spec, error)
    }

    /// Grants `worker` a lease on `ci`, with the deadline fixed now.
    fn grant(&mut self, ci: usize, worker: u64, now: Instant) -> Assignment {
        let timeout = self.cell_timeout(ci);
        self.cells[ci].state = CellState::Leased;
        self.cells[ci].active_leases += 1;
        self.leases.push(Lease {
            cell: ci,
            worker,
            since: now,
            deadline: now + timeout,
        });
        Assignment::Cell(self.cells[ci].spec.clone())
    }

    /// Answers a worker's work request: the next pending cell it is
    /// eligible for, a straggler duplicate to steal, or idle/done.
    pub fn next_assignment(&mut self, worker: u64, now: Instant) -> Assignment {
        self.touch(worker, now);
        if self.is_banned(worker) {
            // A byzantine worker is drained from the run: telling it
            // the grid is done makes it exit cleanly, and a reconnect
            // under the same identity lands right back here.
            return Assignment::AllDone;
        }
        if self.is_complete() {
            return Assignment::AllDone;
        }
        // The next pending cell this worker may take — it must not
        // confirm its own spot-check candidate, so cells it already
        // submitted a body for are skipped (preserving their order).
        let mut skipped: Vec<usize> = Vec::new();
        let mut chosen: Option<usize> = None;
        while let Some(ci) = self.pending.pop_front() {
            if self.cells[ci].state != CellState::Pending {
                continue; // stale queue entry (completed or quarantined meanwhile)
            }
            if self.cells[ci].verifiers.contains(&worker) {
                skipped.push(ci);
                continue;
            }
            chosen = Some(ci);
            break;
        }
        for ci in skipped.into_iter().rev() {
            self.pending.push_front(ci);
        }
        // Liveness fallback: if this worker is the whole fleet,
        // insisting on a distinct confirmer would wedge the run — let
        // it re-compute its own cell (degenerate self-confirmation;
        // mismatched cells still refuse to resolve this way).
        if chosen.is_none() && !self.other_live_worker(worker) {
            if let Some(pos) = self
                .pending
                .iter()
                .position(|&ci| self.cells[ci].state == CellState::Pending)
            {
                chosen = self.pending.remove(pos);
            }
        }
        if let Some(ci) = chosen {
            return self.grant(ci, worker, now);
        }
        // Straggler re-dispatch: duplicate the oldest single-leased
        // cell another worker has been sitting on for more than half
        // its lease deadline. First valid result wins; the duplicate
        // is capped at two leases so a slow grid tail cannot stampede.
        let candidate = self
            .leases
            .iter()
            .filter(|l| {
                l.worker != worker
                    && self.cells[l.cell].state == CellState::Leased
                    && self.cells[l.cell].active_leases == 1
                    && !self.cells[l.cell].verifiers.contains(&worker)
                    && now >= l.since + l.deadline.duration_since(l.since) / 2
            })
            .min_by_key(|l| l.since)
            .map(|l| l.cell);
        if let Some(ci) = candidate {
            self.redispatched += 1;
            return self.grant(ci, worker, now);
        }
        Assignment::Idle {
            wait_ms: self.opts.idle_wait_ms,
        }
    }

    /// Ingests one submitted result: validate, dedup by digest, merge
    /// the first valid body per cell — unless the cell is spot-checked,
    /// in which case the body is held until a distinct worker confirms
    /// the same canonical bytes.
    pub fn submit_result(
        &mut self,
        worker: u64,
        digest: u64,
        seconds: f64,
        body: &[u8],
        now: Instant,
    ) -> Ingest {
        self.touch(worker, now);
        let Some(&ci) = self.by_digest.get(&digest) else {
            return Ingest::Unknown;
        };
        // This worker's lease (if any) is settled by this submission.
        if let Some(i) = self
            .leases
            .iter()
            .position(|l| l.cell == ci && l.worker == worker)
        {
            self.leases.swap_remove(i);
            self.cells[ci].active_leases = self.cells[ci].active_leases.saturating_sub(1);
        }
        let valid = validate_body(&self.cells[ci].spec, body);
        if let Some(allotted) = self.revoked.remove(&(digest, worker)) {
            if valid.is_ok() && Duration::from_secs_f64(seconds.max(0.0)) >= allotted {
                // The worker delivered a valid result whose compute
                // time filled its revoked lease: the deadline really
                // was too tight for this cell.
                self.revocation_false_positives += 1;
            }
        }
        if matches!(
            self.cells[ci].state,
            CellState::Done | CellState::Quarantined
        ) {
            self.duplicate_results += 1;
            return Ingest::Duplicate;
        }
        let result = match valid {
            Ok(result) => result,
            Err(reason) => {
                self.corrupt_results += 1;
                return match self.strike(ci, worker, &reason) {
                    Some((spec, error)) => Ingest::Quarantined { spec, error },
                    None => Ingest::Rejected { reason },
                };
            }
        };
        self.estimator.observe(&self.cells[ci].spec.bench, seconds);
        if self.is_banned(worker) {
            // No trust left: the body is discarded outright; the cell
            // stays dispatchable for workers in good standing.
            self.duplicate_results += 1;
            self.ensure_dispatchable(ci);
            return Ingest::Duplicate;
        }
        let suspect = self.workers.get(&worker).is_some_and(|i| i.suspect);
        if !self.cells[ci].spot_check && !suspect {
            return self.complete_cell(ci, worker, result, seconds);
        }
        // A suspect's first result escalates the cell to spot-checked:
        // its trust is on hold, so the bytes need a confirmer.
        self.cells[ci].spot_check = true;
        self.verify_candidate(ci, worker, seconds, body, result, now)
    }

    /// Merges `ci` as done, crediting `worker` with the completion and
    /// `seconds` toward the serial-cost ledger.
    fn complete_cell(&mut self, ci: usize, worker: u64, result: SimResult, seconds: f64) -> Ingest {
        self.cells[ci].state = CellState::Done;
        self.done += 1;
        // Any other outstanding leases on this cell are now moot;
        // their late results will dedup as duplicates.
        self.leases.retain(|l| l.cell != ci);
        self.cells[ci].active_leases = 0;
        self.compute_seconds += seconds;
        if let Some(info) = self.workers.get_mut(&worker) {
            info.completed += 1;
        }
        Ingest::Merged {
            spec: self.cells[ci].spec.clone(),
            result,
            seconds,
        }
    }

    /// The spot-check state machine for one valid submission on a
    /// spot-checked cell.
    fn verify_candidate(
        &mut self,
        ci: usize,
        worker: u64,
        seconds: f64,
        body: &[u8],
        result: SimResult,
        now: Instant,
    ) -> Ingest {
        // Re-submission by a worker whose body is already on file?
        if let Some(prev) = self.cells[ci]
            .candidates
            .iter()
            .position(|c| c.worker == worker)
        {
            if self.cells[ci].candidates[prev].body != body {
                // Two different bodies for the same digest from one
                // worker: it is broken regardless of which (if either)
                // is right.
                self.corrupt_results += 1;
                let reason = "self-contradictory results for a spot-checked cell".to_string();
                return match self.strike(ci, worker, &reason) {
                    Some((spec, error)) => Ingest::Quarantined { spec, error },
                    None => {
                        self.ensure_dispatchable(ci);
                        Ingest::Rejected { reason }
                    }
                };
            }
            // Identical re-submission adds no information — unless no
            // distinct confirmer can ever exist (single-worker fleet),
            // where a degenerate self-confirmation beats wedging. A
            // *mismatched* cell never resolves this way: one worker
            // must not outvote another by repeating itself.
            if self.cells[ci].candidates.len() == 1 && !self.eligible_verifier_exists(ci) {
                return self.resolve_consensus(ci, prev, worker, result, now);
            }
            self.ensure_dispatchable(ci);
            return Ingest::HeldForVerification;
        }
        // Agreement with a held candidate: two distinct workers
        // reproduced the same canonical bytes — consensus.
        if let Some(winner) = self.cells[ci]
            .candidates
            .iter()
            .position(|c| c.body == body)
        {
            self.cells[ci].verifiers.insert(worker);
            return self.resolve_consensus(ci, winner, worker, result, now);
        }
        // A new, disagreeing (or first) candidate body.
        self.cells[ci].candidates.push(Candidate {
            worker,
            body: body.to_vec(),
            seconds,
        });
        self.cells[ci].verifiers.insert(worker);
        if self.cells[ci].candidates.len() == 1 {
            self.ensure_dispatchable(ci);
            return Ingest::HeldForVerification;
        }
        // Two or more distinct bodies: a byzantine incident. Every
        // candidate's pending trust is quarantined until the tiebreak
        // settles who was wrong.
        self.mismatches += 1;
        if self.cells[ci].mismatch_since.is_none() {
            self.cells[ci].mismatch_since = Some(now);
        }
        let suspects: Vec<u64> = self.cells[ci].candidates.iter().map(|c| c.worker).collect();
        for w in suspects {
            self.mark_suspect(w);
        }
        if self.cells[ci].candidates.len() >= MAX_CANDIDATES {
            let (spec, error) = self.quarantine_unresolved(ci);
            return Ingest::Quarantined { spec, error };
        }
        self.ensure_dispatchable(ci);
        Ingest::HeldForVerification
    }

    /// Settles a spot-checked cell on the candidate at `winner`:
    /// agreeing workers are exonerated, every minority candidate's
    /// worker is marked byzantine, and the cell merges with the first
    /// submitter credited.
    fn resolve_consensus(
        &mut self,
        ci: usize,
        winner: usize,
        confirmer: u64,
        result: SimResult,
        _now: Instant,
    ) -> Ingest {
        let candidates = std::mem::take(&mut self.cells[ci].candidates);
        let submitters: Vec<u64> = candidates.iter().map(|c| c.worker).collect();
        let winning_worker = candidates[winner].worker;
        let winning_seconds = candidates[winner].seconds;
        let minority: Vec<u64> = candidates
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != winner)
            .map(|(_, c)| c.worker)
            .collect();
        let had_mismatch = self.cells[ci].mismatch_since.is_some() || !minority.is_empty();
        self.cells[ci].mismatch_since = None;
        for &w in &[winning_worker, confirmer] {
            if let Some(info) = self.workers.get_mut(&w) {
                info.suspect = false;
            }
        }
        if had_mismatch {
            let spec = &self.cells[ci].spec;
            let mut workers = submitters;
            if !workers.contains(&confirmer) {
                workers.push(confirmer);
            }
            self.incidents.push(MismatchIncident {
                digest: spec.digest,
                bench: spec.bench.clone(),
                config: spec.config.clone(),
                width: spec.width,
                workers,
                byzantine: minority.clone(),
                resolved: true,
            });
        }
        for w in minority {
            self.mark_byzantine(w);
        }
        self.spot_checked += 1;
        // The serial-cost ledger counts the winning computation once;
        // the confirming duplicate is verification overhead, not
        // avoided serial work.
        self.complete_cell(ci, winning_worker, result, winning_seconds)
    }

    /// Ingests a worker-reported failure (contained panic, digest
    /// mismatch, trace generation error).
    pub fn submit_failure(
        &mut self,
        worker: u64,
        digest: u64,
        error: &str,
        now: Instant,
    ) -> Ingest {
        self.touch(worker, now);
        let Some(&ci) = self.by_digest.get(&digest) else {
            return Ingest::Unknown;
        };
        if let Some(i) = self
            .leases
            .iter()
            .position(|l| l.cell == ci && l.worker == worker)
        {
            self.leases.swap_remove(i);
            self.cells[ci].active_leases = self.cells[ci].active_leases.saturating_sub(1);
        }
        if matches!(
            self.cells[ci].state,
            CellState::Done | CellState::Quarantined
        ) {
            return Ingest::Duplicate;
        }
        if self.is_banned(worker) {
            // A byzantine worker must not be able to strike cells
            // toward quarantine by spamming failure reports.
            self.ensure_dispatchable(ci);
            return Ingest::Duplicate;
        }
        match self.strike(ci, worker, error) {
            Some((spec, error)) => Ingest::Quarantined { spec, error },
            None => Ingest::Recorded,
        }
    }

    /// The run's counters as a report; `wall_seconds` comes from the
    /// caller (the scheduler has no clock of its own).
    pub fn report(&self, wall_seconds: f64) -> DistReport {
        let mut workers: Vec<WorkerReport> = self
            .workers
            .iter()
            .map(|(&id, info)| WorkerReport {
                id,
                cells: info.completed,
                alive: info.alive,
                byzantine: info.banned,
            })
            .collect();
        workers.sort_by_key(|w| w.id);
        DistReport {
            cells_total: self.cells.len(),
            cells_completed: self.done,
            cells_quarantined: self.quarantined,
            redispatched: self.redispatched,
            duplicate_results: self.duplicate_results,
            corrupt_results: self.corrupt_results,
            worker_deaths: self.worker_deaths,
            spot_checked: self.spot_checked,
            mismatches: self.mismatches,
            byzantine_workers: self.byzantine.clone(),
            revocation_false_positives: self.revocation_false_positives,
            adaptive_lease: self.opts.adaptive_lease,
            lease_stats: self.estimator.stats(
                self.opts.lease_timeout,
                self.opts.lease_floor,
                self.opts.adaptive_lease,
            ),
            incidents: self.incidents.clone(),
            workers,
            compute_seconds: self.compute_seconds,
            wall_seconds,
        }
    }
}

/// Merge sinks the coordinator calls as cells settle. `on_result`
/// receives each cell's first valid result exactly once, in completion
/// order; `on_quarantine` receives each poisoned cell exactly once.
pub struct DistSinks<'a> {
    /// Called with (cell, validated result, worker-reported seconds).
    pub on_result: &'a (dyn Fn(&CellSpec, &SimResult, f64) + Sync),
    /// Called with (cell, quarantine reason).
    pub on_quarantine: &'a (dyn Fn(&CellSpec, &str) + Sync),
}

struct Shared {
    sched: Mutex<Scheduler>,
    complete: Condvar,
}

/// The TCP face of the [`Scheduler`]: accepts worker connections,
/// answers the dist protocol, reaps timeouts on a timer, and returns
/// when the grid is complete.
pub struct Coordinator {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Shared,
}

impl Coordinator {
    /// Binds the coordinator (pass port 0 for an ephemeral port; read
    /// it back with [`Coordinator::local_addr`]).
    pub fn bind(addr: &str, cells: Vec<CellSpec>, opts: SchedOptions) -> io::Result<Coordinator> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Coordinator {
            listener,
            addr,
            shared: Shared {
                sched: Mutex::new(Scheduler::new(cells, opts)),
                complete: Condvar::new(),
            },
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serves workers until every cell is completed or quarantined,
    /// then returns the run report. Blocks; sinks are invoked from
    /// connection-handler threads as cells settle.
    pub fn run(self, sinks: &DistSinks<'_>) -> DistReport {
        let t0 = Instant::now();
        let stop = AtomicBool::new(false);
        let shared = &self.shared;
        let addr = self.addr;
        std::thread::scope(|s| {
            // Reaper + completion monitor: applies the timeouts, sinks
            // any quarantines, and unblocks the accept loop when the
            // grid is complete.
            s.spawn(|| loop {
                let (quarantines, complete) = {
                    let mut sched = shared.sched.lock().expect("scheduler poisoned");
                    (sched.reap(Instant::now()), sched.is_complete())
                };
                for (spec, why) in &quarantines {
                    (sinks.on_quarantine)(spec, why);
                }
                if complete {
                    stop.store(true, Ordering::SeqCst);
                    shared.complete.notify_all();
                    let _ = TcpStream::connect(addr); // unblock accept
                    return;
                }
                std::thread::sleep(Duration::from_millis(100));
            });
            for stream in self.listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                s.spawn(|| handle_conn(stream, shared, sinks));
            }
        });
        let sched = shared.sched.lock().expect("scheduler poisoned");
        sched.report(t0.elapsed().as_secs_f64())
    }
}

/// One worker connection: a strict request/response loop (heartbeats
/// are one-way). Read timeouts double as a completion poll so handler
/// threads always exit shortly after the grid finishes, even if their
/// worker hangs mid-cell.
fn handle_conn(stream: TcpStream, shared: &Shared, sinks: &DistSinks<'_>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    // Writes must be bounded too: a peer (or an interposed proxy)
    // that stops draining would otherwise wedge this handler in a
    // blocked `write` forever — and `run`'s thread scope with it.
    // A timed-out write errors into the `disconnect` path below, so
    // the worker is treated as lost and its leases re-dispatch.
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut worker_id = 0u64;
    let mut quiet_ticks = 0u32;
    loop {
        let msg = match read_worker_msg(&mut reader) {
            Ok(Some(msg)) => msg,
            Ok(None) => break, // clean close
            Err(WireError::Io(e))
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // No frame within the poll window. Once the grid is
                // complete, give the worker a few windows to come back
                // for its AllDone, then hang up.
                let complete = shared
                    .sched
                    .lock()
                    .expect("scheduler poisoned")
                    .is_complete();
                if complete {
                    quiet_ticks += 1;
                    if quiet_ticks > 10 {
                        break;
                    }
                } else {
                    quiet_ticks = 0;
                }
                continue;
            }
            Err(_) => {
                // Corrupt frame or transport error: the checksummed
                // framing can no longer be trusted — treat the worker
                // as lost so its leases re-dispatch.
                disconnect(shared, sinks, worker_id);
                return;
            }
        };
        quiet_ticks = 0;
        let now = Instant::now();
        let reply = match msg {
            WorkerMsg::Hello {
                worker_id: want, ..
            } => {
                let id = {
                    let mut sched = shared.sched.lock().expect("scheduler poisoned");
                    sched.register(want, now)
                };
                worker_id = id;
                Some(CoordMsg::Welcome { worker_id: id })
            }
            WorkerMsg::Heartbeat { worker_id: w } => {
                let mut sched = shared.sched.lock().expect("scheduler poisoned");
                sched.heartbeat(w, now);
                None
            }
            WorkerMsg::Request { worker_id: w } => {
                let assignment = {
                    let mut sched = shared.sched.lock().expect("scheduler poisoned");
                    sched.next_assignment(w, now)
                };
                Some(match assignment {
                    Assignment::Cell(spec) => CoordMsg::Assign(spec),
                    Assignment::Idle { wait_ms } => CoordMsg::Idle { wait_ms },
                    Assignment::AllDone => CoordMsg::AllDone,
                })
            }
            WorkerMsg::Result {
                worker_id: w,
                digest,
                seconds_bits,
                body,
            } => {
                let ingest = {
                    let mut sched = shared.sched.lock().expect("scheduler poisoned");
                    sched.submit_result(w, digest, f64::from_bits(seconds_bits), &body, now)
                };
                settle(shared, sinks, ingest);
                Some(CoordMsg::Ack)
            }
            WorkerMsg::Failed {
                worker_id: w,
                digest,
                error,
            } => {
                let ingest = {
                    let mut sched = shared.sched.lock().expect("scheduler poisoned");
                    sched.submit_failure(w, digest, &error, now)
                };
                settle(shared, sinks, ingest);
                Some(CoordMsg::Ack)
            }
        };
        if let Some(reply) = reply {
            if write_coord_msg(&mut writer, &reply)
                .and_then(|()| writer.flush())
                .is_err()
            {
                disconnect(shared, sinks, worker_id);
                return;
            }
        }
    }
    disconnect(shared, sinks, worker_id);
}

/// Runs the sinks for one settled ingest (outside the scheduler lock)
/// and wakes the completion monitor.
fn settle(shared: &Shared, sinks: &DistSinks<'_>, ingest: Ingest) {
    match ingest {
        Ingest::Merged {
            spec,
            result,
            seconds,
        } => (sinks.on_result)(&spec, &result, seconds),
        Ingest::Quarantined { spec, error } => (sinks.on_quarantine)(&spec, &error),
        Ingest::Duplicate
        | Ingest::Rejected { .. }
        | Ingest::Recorded
        | Ingest::HeldForVerification
        | Ingest::Unknown => {}
    }
    let complete = shared
        .sched
        .lock()
        .expect("scheduler poisoned")
        .is_complete();
    if complete {
        shared.complete.notify_all();
    }
}

fn disconnect(shared: &Shared, sinks: &DistSinks<'_>, worker_id: u64) {
    if worker_id == 0 {
        return;
    }
    let quarantines = {
        let mut sched = shared.sched.lock().expect("scheduler poisoned");
        sched.disconnect(worker_id)
    };
    for (spec, why) in &quarantines {
        (sinks.on_quarantine)(spec, why);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(digest: u64) -> CellSpec {
        CellSpec {
            bench: "compress".into(),
            config: "A".into(),
            width: 4,
            trace_len: 1000,
            seed: 1996,
            digest,
        }
    }

    fn opts() -> SchedOptions {
        SchedOptions {
            lease_timeout: Duration::from_millis(100),
            heartbeat_timeout: Duration::from_millis(50),
            poison_threshold: 2,
            idle_wait_ms: 5,
            adaptive_lease: false,
            ..SchedOptions::default()
        }
    }

    /// A valid canonical body for `spec` with the given cycle count
    /// (all other counters zero) — enough to pass ingest validation.
    fn body_for(spec: &CellSpec, cycles: u64) -> Vec<u8> {
        let pc = PaperConfig::ALL
            .iter()
            .copied()
            .find(|c| c.label() == spec.config)
            .unwrap();
        let result = SimResult {
            config: SimConfig::paper(pc, spec.width),
            instructions: spec.trace_len,
            cycles,
            loads: Default::default(),
            values: Default::default(),
            branches: Default::default(),
            stalls: Default::default(),
            collapse: Default::default(),
            eliminated: 0,
        };
        let mut out = Vec::new();
        result.encode_to(&mut out);
        out
    }

    #[test]
    fn cells_dispatch_in_order_and_complete() {
        let mut s = Scheduler::new(vec![spec(1), spec(2)], opts());
        let t = Instant::now();
        let w = s.register(0, t);
        let Assignment::Cell(c1) = s.next_assignment(w, t) else {
            panic!("expected a cell");
        };
        assert_eq!(c1.digest, 1);
        assert!(!s.is_complete());
        // An unknown digest is not merged.
        assert!(matches!(
            s.submit_result(w, 999, 0.0, &[], t),
            Ingest::Unknown
        ));
    }

    #[test]
    fn dead_worker_cells_requeue_and_poison_quarantines() {
        let mut s = Scheduler::new(vec![spec(1)], opts());
        let t = Instant::now();
        let w1 = s.register(0, t);
        assert!(matches!(s.next_assignment(w1, t), Assignment::Cell(_)));
        // First death: requeued, not quarantined.
        assert!(s.disconnect(w1).is_empty());
        let w2 = s.register(0, t);
        assert!(matches!(s.next_assignment(w2, t), Assignment::Cell(_)));
        // Second distinct death crosses poison_threshold 2.
        let quarantined = s.disconnect(w2);
        assert_eq!(quarantined.len(), 1);
        assert!(s.is_complete());
        let report = s.report(1.0);
        assert_eq!(report.cells_quarantined, 1);
        assert_eq!(report.worker_deaths, 2);
    }

    #[test]
    fn heartbeat_timeout_reaps_silent_workers() {
        let mut s = Scheduler::new(vec![spec(1)], opts());
        let t = Instant::now();
        let w = s.register(0, t);
        assert!(matches!(s.next_assignment(w, t), Assignment::Cell(_)));
        // Within the window: nothing happens.
        assert!(s.reap(t + Duration::from_millis(10)).is_empty());
        assert_eq!(s.report(0.0).worker_deaths, 0);
        // Past the window: the worker dies, the cell requeues.
        let _ = s.reap(t + Duration::from_millis(60));
        assert_eq!(s.report(0.0).worker_deaths, 1);
        let w2 = s.register(0, t + Duration::from_millis(61));
        assert!(matches!(
            s.next_assignment(w2, t + Duration::from_millis(61)),
            Assignment::Cell(_)
        ));
    }

    #[test]
    fn straggler_lease_is_stolen_once() {
        let mut s = Scheduler::new(vec![spec(1)], opts());
        let t = Instant::now();
        let w1 = s.register(0, t);
        let w2 = s.register(0, t);
        assert!(matches!(s.next_assignment(w1, t), Assignment::Cell(_)));
        // Too early to steal.
        let early = t + Duration::from_millis(10);
        s.heartbeat(w1, early);
        assert!(matches!(
            s.next_assignment(w2, early),
            Assignment::Idle { .. }
        ));
        // Past half the lease timeout: the idle worker duplicates it.
        let late = t + Duration::from_millis(60);
        s.heartbeat(w1, late);
        assert!(matches!(s.next_assignment(w2, late), Assignment::Cell(_)));
        // Both leases outstanding; a third worker cannot triple it.
        let w3 = s.register(0, late);
        assert!(matches!(
            s.next_assignment(w3, late),
            Assignment::Idle { .. }
        ));
        assert_eq!(s.report(0.0).redispatched, 1);
    }

    #[test]
    fn corrupt_results_are_rejected_and_requeued() {
        let mut s = Scheduler::new(vec![spec(1)], opts());
        let t = Instant::now();
        let w = s.register(0, t);
        let Assignment::Cell(c) = s.next_assignment(w, t) else {
            panic!("expected a cell");
        };
        let ingest = s.submit_result(w, c.digest, 0.1, b"garbage", t);
        assert!(matches!(ingest, Ingest::Rejected { .. }));
        assert!(!s.is_complete());
        // The cell is immediately dispatchable again.
        let w2 = s.register(0, t);
        assert!(matches!(s.next_assignment(w2, t), Assignment::Cell(_)));
        assert_eq!(s.report(0.0).corrupt_results, 1);
    }

    #[test]
    fn report_json_shape() {
        let s = Scheduler::new(vec![spec(1)], opts());
        let json = s.report(2.0).to_json();
        for key in [
            "\"schema\": \"ddsc-dist-bench-v2\"",
            "\"cells_total\"",
            "\"redispatched\"",
            "\"speedup_vs_serial\"",
            "\"workers\"",
            "\"spot_checked\"",
            "\"mismatches\"",
            "\"byzantine_workers\"",
            "\"revocation_false_positives\"",
            "\"adaptive_lease\"",
            "\"lease_stats\"",
            "\"incidents\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    fn spot_opts() -> SchedOptions {
        SchedOptions {
            spot_check_percent: 100,
            ..opts()
        }
    }

    #[test]
    fn spot_checked_cell_waits_for_a_distinct_confirmer() {
        let mut s = Scheduler::new(vec![spec(1)], spot_opts());
        let t = Instant::now();
        let w1 = s.register(0, t);
        let w2 = s.register(0, t);
        let Assignment::Cell(c) = s.next_assignment(w1, t) else {
            panic!("expected a cell");
        };
        let body = body_for(&c, 300);
        assert!(matches!(
            s.submit_result(w1, c.digest, 0.1, &body, t),
            Ingest::HeldForVerification
        ));
        assert!(!s.is_complete());
        // The submitter must not confirm its own candidate.
        assert!(matches!(s.next_assignment(w1, t), Assignment::Idle { .. }));
        // A distinct worker gets the re-dispatch and its agreeing
        // bytes merge the cell.
        assert!(matches!(s.next_assignment(w2, t), Assignment::Cell(_)));
        assert!(matches!(
            s.submit_result(w2, c.digest, 0.1, &body, t),
            Ingest::Merged { .. }
        ));
        assert!(s.is_complete());
        let report = s.report(1.0);
        assert_eq!(report.spot_checked, 1);
        assert_eq!(report.mismatches, 0);
        assert!(report.byzantine_workers.is_empty());
        // Only the winning computation counts toward the serial ledger.
        assert!((report.compute_seconds - 0.1).abs() < 1e-9);
    }

    #[test]
    fn mismatch_tiebreak_bans_the_minority_worker() {
        let mut s = Scheduler::new(vec![spec(1), spec(2)], spot_opts());
        let t = Instant::now();
        let byz = s.register(0, t);
        let w2 = s.register(0, t);
        let w3 = s.register(0, t);
        let Assignment::Cell(c) = s.next_assignment(byz, t) else {
            panic!("expected a cell");
        };
        let honest = body_for(&c, 300);
        let perturbed = body_for(&c, 333); // well-formed, wrong counters
        assert!(matches!(
            s.submit_result(byz, c.digest, 0.1, &perturbed, t),
            Ingest::HeldForVerification
        ));
        // The honest worker disagrees: mismatch, both suspect.
        assert!(matches!(s.next_assignment(w2, t), Assignment::Cell(_)));
        assert!(matches!(
            s.submit_result(w2, c.digest, 0.1, &honest, t),
            Ingest::HeldForVerification
        ));
        assert_eq!(s.report(0.0).mismatches, 1);
        // The tiebreak worker sides with the honest bytes.
        let Assignment::Cell(c3) = s.next_assignment(w3, t) else {
            panic!("expected the tiebreak re-dispatch");
        };
        assert_eq!(c3.digest, c.digest);
        let Ingest::Merged { result, .. } = s.submit_result(w3, c.digest, 0.1, &honest, t) else {
            panic!("consensus must merge");
        };
        assert_eq!(result.cycles, 300, "the majority bytes must win");
        let report = s.report(1.0);
        assert_eq!(report.byzantine_workers, vec![byz]);
        assert_eq!(report.incidents.len(), 1);
        assert!(report.incidents[0].resolved);
        assert_eq!(report.incidents[0].byzantine, vec![byz]);
        // The banned worker is drained: refused work, its results
        // discarded, its reconnect still banned.
        assert!(matches!(s.next_assignment(byz, t), Assignment::AllDone));
        assert_eq!(s.register(byz, t), byz);
        assert!(s.is_banned(byz));
        let Assignment::Cell(c2) = s.next_assignment(w2, t) else {
            panic!("expected the second cell");
        };
        assert!(matches!(
            s.submit_result(byz, c2.digest, 0.1, &body_for(&c2, 333), t),
            Ingest::Duplicate
        ));
        assert!(!s.is_complete());
    }

    #[test]
    fn single_worker_fleet_self_confirms_instead_of_wedging() {
        let mut s = Scheduler::new(vec![spec(1)], spot_opts());
        let t = Instant::now();
        let w = s.register(0, t);
        let Assignment::Cell(c) = s.next_assignment(w, t) else {
            panic!("expected a cell");
        };
        let body = body_for(&c, 300);
        assert!(matches!(
            s.submit_result(w, c.digest, 0.1, &body, t),
            Ingest::HeldForVerification
        ));
        // Alone in the fleet: the liveness fallback re-assigns the
        // cell to the same worker, and its identical re-computation
        // resolves degenerately.
        let Assignment::Cell(c2) = s.next_assignment(w, t) else {
            panic!("expected the fallback re-dispatch");
        };
        assert_eq!(c2.digest, c.digest);
        assert!(matches!(
            s.submit_result(w, c.digest, 0.1, &body, t),
            Ingest::Merged { .. }
        ));
        assert!(s.is_complete());
    }

    #[test]
    fn unresolvable_one_vs_one_mismatch_quarantines() {
        let mut s = Scheduler::new(vec![spec(1)], spot_opts());
        let t = Instant::now();
        let w1 = s.register(0, t);
        let w2 = s.register(0, t);
        let Assignment::Cell(c) = s.next_assignment(w1, t) else {
            panic!("expected a cell");
        };
        assert!(matches!(
            s.submit_result(w1, c.digest, 0.1, &body_for(&c, 300), t),
            Ingest::HeldForVerification
        ));
        assert!(matches!(s.next_assignment(w2, t), Assignment::Cell(_)));
        assert!(matches!(
            s.submit_result(w2, c.digest, 0.1, &body_for(&c, 333), t),
            Ingest::HeldForVerification
        ));
        // No third worker exists: after the fixed lease window the
        // undecidable conflict quarantines instead of wedging.
        assert!(s.reap(t + Duration::from_millis(50)).is_empty());
        let quarantines = s.reap(t + Duration::from_millis(150));
        assert_eq!(quarantines.len(), 1);
        assert!(quarantines[0].1.contains("spot-check mismatch unresolved"));
        assert!(s.is_complete());
        let report = s.report(1.0);
        assert_eq!(report.cells_quarantined, 1);
        assert_eq!(report.incidents.len(), 1);
        assert!(!report.incidents[0].resolved);
        // Neither side can be banned on a 1-vs-1 vote.
        assert!(report.byzantine_workers.is_empty());
    }

    #[test]
    fn late_valid_result_after_revocation_counts_false_positive() {
        let mut s = Scheduler::new(vec![spec(1)], opts());
        let t = Instant::now();
        let w = s.register(0, t);
        let Assignment::Cell(c) = s.next_assignment(w, t) else {
            panic!("expected a cell");
        };
        // Past the (fixed) deadline the lease is revoked...
        s.heartbeat(w, t + Duration::from_millis(99));
        let _ = s.reap(t + Duration::from_millis(100));
        assert_eq!(s.report(0.0).redispatched, 1);
        // ...but the worker was alive all along and delivers: that
        // revocation was a false positive.
        let late = t + Duration::from_millis(110);
        assert!(matches!(
            s.submit_result(w, c.digest, 0.1, &body_for(&c, 300), late),
            Ingest::Merged { .. }
        ));
        assert_eq!(s.report(1.0).revocation_false_positives, 1);
    }

    #[test]
    fn adaptive_deadline_is_fixed_at_dispatch_time() {
        let mut s = Scheduler::new(
            (1..=8).map(spec).collect(),
            SchedOptions {
                adaptive_lease: true,
                lease_floor: Duration::from_millis(40),
                lease_timeout: Duration::from_millis(100),
                // Keep heartbeat reaping out of this test's way.
                heartbeat_timeout: Duration::from_secs(60),
                ..opts()
            },
        );
        let t = Instant::now();
        let w1 = s.register(0, t);
        let w2 = s.register(0, t);
        // Lease granted before any samples exist: fixed 100ms deadline.
        let Assignment::Cell(_c1) = s.next_assignment(w1, t) else {
            panic!("expected a cell");
        };
        // Feed the estimator fast samples so later leases get the
        // 40ms floor instead of the 100ms fallback.
        for _ in 0..6 {
            let Assignment::Cell(c) = s.next_assignment(w2, t) else {
                panic!("expected a cell");
            };
            assert!(matches!(
                s.submit_result(w2, c.digest, 0.001, &body_for(&c, 300), t),
                Ingest::Merged { .. }
            ));
        }
        // The pre-existing lease keeps its dispatch-time deadline: the
        // now-shorter estimate must not retro-shrink it...
        let _ = s.reap(t + Duration::from_millis(60));
        assert_eq!(s.report(0.0).redispatched, 0, "lease revoked early");
        // ...but does expire at its own 100ms deadline.
        let _ = s.reap(t + Duration::from_millis(100));
        assert_eq!(s.report(0.0).redispatched, 1);
        // A fresh lease granted now carries the adaptive ~40ms floor
        // deadline, so a dead worker on a short cell reclaims fast.
        let t2 = t + Duration::from_millis(200);
        let Assignment::Cell(_c) = s.next_assignment(w2, t2) else {
            panic!("expected a cell");
        };
        let _ = s.reap(t2 + Duration::from_millis(45));
        assert_eq!(s.report(0.0).redispatched, 2);
    }
}
