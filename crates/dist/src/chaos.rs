//! A deterministic network-chaos proxy for the coordinator/worker
//! fleet.
//!
//! [`ChaosProxy`] sits between workers and the coordinator on loopback
//! TCP and applies a **seeded script** of faults to each proxied
//! connection: delays, dropped bytes, bit flips, duplicated bytes,
//! stream truncations and mid-stream connection resets. The script for
//! a connection is a pure function of `(seed, connection index,
//! direction)` — see [`script`] — and events are anchored at byte
//! *offsets* in the stream, not at read-call boundaries, so the same
//! seed always yields the same event script regardless of how TCP
//! happens to chunk the bytes. Chaos drills are therefore reproducible
//! CI artifacts, not flaky luck.
//!
//! None of the faults can corrupt the merged grid: the dist protocol's
//! frames are checksummed (a flipped bit or dropped range makes the
//! frame undecodable, the connection is treated as lost, and the
//! worker reconnects with backoff), results are validated and deduped
//! by digest on ingest, and byzantine counters are the spot checks'
//! job. The proxy exists to *prove* that under a hostile transport the
//! run still completes byte-identical to a single-process run.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ddsc_util::{fnv1a, StreamFault, StreamFaultPlan};

/// Longest delay the proxy actually sleeps per event, whatever the
/// script says — keeps drills fast without changing the script.
const MAX_DELAY: Duration = Duration::from_millis(200);
/// Forwarded-bytes tail kept per direction for `Duplicate` replays.
const TAIL_CAP: usize = 256;

/// Which way bytes are flowing through one proxied connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Worker → coordinator.
    Upstream,
    /// Coordinator → worker.
    Downstream,
}

impl Direction {
    fn tag(self) -> u64 {
        match self {
            Direction::Upstream => 0x55,
            Direction::Downstream => 0xAA,
        }
    }
}

/// Tunables of the chaos schedule.
#[derive(Debug, Clone, Copy)]
pub struct ChaosOptions {
    /// Master seed; every per-connection script derives from it.
    pub seed: u64,
    /// Maximum fault events per connection direction.
    pub events_per_conn: usize,
    /// Minimum byte gap between events.
    pub min_gap: u64,
    /// Maximum byte gap between events (exclusive).
    pub max_gap: u64,
}

impl Default for ChaosOptions {
    fn default() -> ChaosOptions {
        ChaosOptions {
            seed: 0xC4A05,
            events_per_conn: 32,
            min_gap: 600,
            max_gap: 4000,
        }
    }
}

/// The deterministic fault script for connection `conn` in direction
/// `dir`: a pure function of the options, so two proxies (or two runs)
/// with the same seed produce identical scripts.
pub fn script(opts: &ChaosOptions, conn: u64, dir: Direction) -> StreamFaultPlan {
    let mut key = [0u8; 24];
    key[..8].copy_from_slice(&opts.seed.to_le_bytes());
    key[8..16].copy_from_slice(&conn.to_le_bytes());
    key[16..24].copy_from_slice(&dir.tag().to_le_bytes());
    StreamFaultPlan::seeded(
        fnv1a(&key),
        opts.events_per_conn,
        opts.min_gap,
        opts.max_gap,
    )
}

/// Counters of faults actually applied (events beyond a connection's
/// lifetime never fire, so these are ≤ the scripted totals).
#[derive(Debug, Default)]
struct ChaosStats {
    connections: AtomicU64,
    delays: AtomicU64,
    drops: AtomicU64,
    flips: AtomicU64,
    duplicates: AtomicU64,
    truncations: AtomicU64,
    resets: AtomicU64,
}

/// What one proxy run did, for logging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosSummary {
    /// Connections proxied.
    pub connections: u64,
    /// Delay events applied.
    pub delays: u64,
    /// Byte-drop events applied.
    pub drops: u64,
    /// Bit-flip events applied.
    pub flips: u64,
    /// Duplicate-bytes events applied.
    pub duplicates: u64,
    /// Stream truncations applied.
    pub truncations: u64,
    /// Connection resets applied.
    pub resets: u64,
}

/// Handle to stop a running proxy from another thread.
#[derive(Clone)]
pub struct ChaosStop {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ChaosStop {
    /// Asks the proxy's accept loop to exit.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call.
        let _ = TcpStream::connect(self.addr);
    }
}

/// The chaos proxy: listens on one loopback address, forwards every
/// accepted connection to `upstream`, and perturbs both directions per
/// the seeded per-connection scripts.
pub struct ChaosProxy {
    listener: TcpListener,
    addr: SocketAddr,
    upstream: String,
    opts: ChaosOptions,
    stop: Arc<AtomicBool>,
}

impl ChaosProxy {
    /// Binds the proxy's listen side (pass port 0 for ephemeral).
    /// `upstream` is resolved per connection, so the coordinator may
    /// bind after the proxy does.
    pub fn bind(
        listen: &str,
        upstream: impl Into<String>,
        opts: ChaosOptions,
    ) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind(listen)?;
        let addr = listener.local_addr()?;
        Ok(ChaosProxy {
            listener,
            addr,
            upstream: upstream.into(),
            opts,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound listen address workers should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that stops [`ChaosProxy::run`] from another thread.
    pub fn stop_handle(&self) -> ChaosStop {
        ChaosStop {
            stop: Arc::clone(&self.stop),
            addr: self.addr,
        }
    }

    /// Accepts and proxies connections until stopped; returns the
    /// applied-fault summary.
    pub fn run(self) -> ChaosSummary {
        let stats = Arc::new(ChaosStats::default());
        let mut conn_index = 0u64;
        std::thread::scope(|s| {
            for stream in self.listener.incoming() {
                if self.stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(client) = stream else { continue };
                let Ok(server) = TcpStream::connect(&self.upstream) else {
                    // Upstream unreachable: drop the client; it will
                    // retry with backoff.
                    continue;
                };
                let _ = client.set_nodelay(true);
                let _ = server.set_nodelay(true);
                stats.connections.fetch_add(1, Ordering::Relaxed);
                let conn = conn_index;
                conn_index += 1;
                let up_plan = script(&self.opts, conn, Direction::Upstream);
                let down_plan = script(&self.opts, conn, Direction::Downstream);
                let (Ok(c2), Ok(s2)) = (client.try_clone(), server.try_clone()) else {
                    continue;
                };
                let up_stats = Arc::clone(&stats);
                let down_stats = Arc::clone(&stats);
                s.spawn(move || pump(client, server, up_plan, &up_stats));
                s.spawn(move || pump(s2, c2, down_plan, &down_stats));
            }
        });
        ChaosSummary {
            connections: stats.connections.load(Ordering::Relaxed),
            delays: stats.delays.load(Ordering::Relaxed),
            drops: stats.drops.load(Ordering::Relaxed),
            flips: stats.flips.load(Ordering::Relaxed),
            duplicates: stats.duplicates.load(Ordering::Relaxed),
            truncations: stats.truncations.load(Ordering::Relaxed),
            resets: stats.resets.load(Ordering::Relaxed),
        }
    }
}

/// Forwards `src` → `dst`, applying `plan`'s faults at their byte
/// offsets. Returns when either side closes, errors, or a terminal
/// fault fires.
fn pump(mut src: TcpStream, mut dst: TcpStream, plan: StreamFaultPlan, stats: &ChaosStats) {
    let shutdown_both = |a: &TcpStream, b: &TcpStream| {
        let _ = a.shutdown(Shutdown::Both);
        let _ = b.shutdown(Shutdown::Both);
    };
    let mut events = plan.events().iter().peekable();
    let mut pos = 0u64; // source-stream offset
    let mut drop_left = 0u64; // bytes still to swallow
    let mut flip_bit: Option<u8> = None; // pending bit flip
    let mut truncated = false; // discard (but keep draining) after Truncate
    let mut tail: Vec<u8> = Vec::with_capacity(TAIL_CAP); // recent forwarded bytes
    let mut buf = [0u8; 1024];
    loop {
        // Fire every event at or before the current offset.
        while events.peek().is_some_and(|&&(off, _)| off <= pos) {
            let &(_, fault) = events.next().unwrap();
            match fault {
                StreamFault::Delay { ms } => {
                    stats.delays.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(u64::from(ms)).min(MAX_DELAY));
                }
                StreamFault::Drop { len } => {
                    stats.drops.fetch_add(1, Ordering::Relaxed);
                    drop_left += u64::from(len);
                }
                StreamFault::FlipBit { bit } => {
                    stats.flips.fetch_add(1, Ordering::Relaxed);
                    flip_bit = Some(bit % 8);
                }
                StreamFault::Duplicate { len } => {
                    stats.duplicates.fetch_add(1, Ordering::Relaxed);
                    let n = (len as usize).min(tail.len());
                    if n > 0 && !truncated {
                        let replay = tail[tail.len() - n..].to_vec();
                        if dst.write_all(&replay).is_err() {
                            shutdown_both(&src, &dst);
                            return;
                        }
                    }
                }
                StreamFault::Truncate => {
                    stats.truncations.fetch_add(1, Ordering::Relaxed);
                    truncated = true;
                }
                StreamFault::Reset => {
                    stats.resets.fetch_add(1, Ordering::Relaxed);
                    shutdown_both(&src, &dst);
                    return;
                }
            }
        }
        // Read at most up to the next event boundary so events land at
        // exact byte offsets.
        let until = events
            .peek()
            .map(|&&(off, _)| off - pos)
            .unwrap_or(u64::MAX)
            .min(buf.len() as u64)
            .max(1) as usize;
        let n = match src.read(&mut buf[..until]) {
            Ok(0) => {
                // EOF: tear the whole proxied connection down, both
                // directions. A half-closed lane would leave the
                // paired pump as the only drain for the peer's writes
                // — and a pump that later exits without closing its
                // sockets can wedge that peer in a blocked `write`
                // forever. Full shutdown turns every such case into a
                // visible error both ends already handle (the worker
                // reconnects, the coordinator re-leases).
                shutdown_both(&src, &dst);
                return;
            }
            Ok(n) => n,
            Err(_) => {
                shutdown_both(&src, &dst);
                return;
            }
        };
        pos += n as u64;
        let mut chunk = &mut buf[..n];
        // Swallow dropped bytes from the front of the chunk.
        if drop_left > 0 {
            let eat = (drop_left as usize).min(chunk.len());
            drop_left -= eat as u64;
            chunk = &mut chunk[eat..];
        }
        if chunk.is_empty() {
            continue;
        }
        if let Some(bit) = flip_bit.take() {
            chunk[0] ^= 1 << bit;
        }
        if truncated {
            continue; // drain the source, forward nothing
        }
        if dst.write_all(chunk).is_err() {
            shutdown_both(&src, &dst);
            return;
        }
        // Keep the duplicate-replay tail current.
        if chunk.len() >= TAIL_CAP {
            tail.clear();
            tail.extend_from_slice(&chunk[chunk.len() - TAIL_CAP..]);
        } else {
            let overflow = (tail.len() + chunk.len()).saturating_sub(TAIL_CAP);
            tail.drain(..overflow);
            tail.extend_from_slice(chunk);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_are_deterministic_per_connection_and_direction() {
        let opts = ChaosOptions::default();
        let a = script(&opts, 0, Direction::Upstream);
        let b = script(&opts, 0, Direction::Upstream);
        assert_eq!(a, b, "same (seed, conn, dir) must replay identically");
        assert_ne!(
            a,
            script(&opts, 0, Direction::Downstream),
            "directions must get independent scripts"
        );
        assert_ne!(
            a,
            script(&opts, 1, Direction::Upstream),
            "connections must get independent scripts"
        );
        let other = ChaosOptions {
            seed: opts.seed + 1,
            ..opts
        };
        assert_ne!(a, script(&other, 0, Direction::Upstream));
    }

    #[test]
    fn proxy_forwards_bytes_and_applies_scripted_faults() {
        // A quiet script (huge gaps) proxies an echo conversation
        // through untouched.
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream_addr = upstream.local_addr().unwrap();
        let echo = std::thread::spawn(move || {
            let (mut conn, _) = upstream.accept().unwrap();
            let mut buf = [0u8; 64];
            loop {
                match conn.read(&mut buf) {
                    Ok(0) | Err(_) => return,
                    Ok(n) => {
                        if conn.write_all(&buf[..n]).is_err() {
                            return;
                        }
                    }
                }
            }
        });
        let opts = ChaosOptions {
            min_gap: 1 << 30,
            max_gap: (1 << 30) + 1,
            ..ChaosOptions::default()
        };
        let proxy = ChaosProxy::bind("127.0.0.1:0", upstream_addr.to_string(), opts).unwrap();
        let addr = proxy.local_addr();
        let stop = proxy.stop_handle();
        let run = std::thread::spawn(move || proxy.run());
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(b"ping around the proxy").unwrap();
        let mut got = [0u8; 21];
        client.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"ping around the proxy");
        drop(client);
        stop.stop();
        let summary = run.join().unwrap();
        assert_eq!(summary.connections, 1);
        echo.join().unwrap();
    }
}
