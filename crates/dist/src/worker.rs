//! The worker process: connects to a coordinator, pulls cells,
//! simulates them, and reports canonical result bytes.
//!
//! Robustness properties:
//!
//! - **Reconnect with backoff** — a lost connection is retried through
//!   the `ddsc-util` [`Backoff`] schedule; when the coordinator stays
//!   unreachable (it finished and exited, or crashed for good) the
//!   worker exits cleanly rather than spinning.
//! - **Digest verification** — before simulating, the worker recomputes
//!   the cell digest from its *own* trace bytes
//!   (`fnv1a(trace checksum ‖ config label ‖ width)`); a mismatch means
//!   worker/coordinator drift (different binary, workload code or
//!   seed), reported as a failure instead of silently producing bytes
//!   that could never merge.
//! - **Containment** — a panicking simulation is caught and reported as
//!   [`WorkerMsg::Failed`]; the worker lives on to compute other cells.
//! - **Heartbeats** — a background thread emits one-way heartbeats
//!   while the main thread computes, so a long cell does not read as a
//!   dead worker.
//!
//! The prepared trace (the expensive shared pre-pass) is memoized per
//! `(benchmark, seed, length)` across cells and reconnects — the same
//! amortization [`ddsc_experiments`]'s lab does per process, and the
//! reason a small worker fleet scales near-linearly on the paper grid.

use std::collections::HashMap;
use std::io::{self, BufReader, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ddsc_core::{simulate_prepared, PaperConfig, PreparedTrace, SimConfig};
use ddsc_trace::io::write_trace;
use ddsc_util::{fnv1a, Backoff};
use ddsc_workloads::Benchmark;

use crate::proto::{read_coord_msg, write_worker_msg, CellSpec, CoordMsg, WorkerMsg};

/// Worker tunables.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Coordinator address (`host:port`).
    pub connect: String,
    /// Heartbeat period while computing.
    pub heartbeat_every: Duration,
    /// Reconnect attempts before concluding the coordinator is gone.
    pub reconnect_attempts: usize,
    /// Test-only adversary mode: simulate honestly, then perturb the
    /// cycle count before canonical re-encoding. The body stays
    /// well-formed (it passes [`crate::coordinator::validate_body`]),
    /// which is exactly what spot checks exist to catch.
    pub byzantine: bool,
}

impl WorkerOptions {
    /// Defaults for a given coordinator address.
    pub fn new(connect: impl Into<String>) -> WorkerOptions {
        WorkerOptions {
            connect: connect.into(),
            heartbeat_every: Duration::from_millis(200),
            reconnect_attempts: 8,
            byzantine: false,
        }
    }
}

/// What one worker process did with its life.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerSummary {
    /// The coordinator-assigned worker id (0 if never welcomed).
    pub worker_id: u64,
    /// Cells computed and submitted successfully.
    pub completed: u64,
    /// Cells reported as failed.
    pub failed: u64,
    /// Whether the run ended with an explicit `AllDone` (as opposed to
    /// the coordinator becoming unreachable).
    pub all_done: bool,
}

enum SessionEnd {
    AllDone,
    Lost,
}

/// One prepared benchmark trace plus its serialized checksum, memoized
/// per `(bench, seed, len)`.
struct PreparedCell {
    checksum: u64,
    prepared: Arc<PreparedTrace>,
}

type PrepCache = HashMap<(String, u64, u64), PreparedCell>;

/// Runs a worker until the coordinator reports the grid complete (or
/// stays unreachable through the whole backoff schedule — also a clean
/// exit: the coordinator owns run state, a worker holds none).
pub fn run_worker(opts: &WorkerOptions) -> io::Result<WorkerSummary> {
    let mut summary = WorkerSummary {
        worker_id: 0,
        completed: 0,
        failed: 0,
        all_done: false,
    };
    let mut cache: PrepCache = HashMap::new();
    // Sessions that die before a `Welcome` arrives count against the
    // reconnect budget too: behind a proxy (or any forwarder) the
    // TCP connect can keep succeeding while the coordinator behind it
    // is gone, and without this a worker would hot-loop forever on
    // connect → Hello → dead session.
    let mut strikes = 0usize;
    loop {
        if strikes >= opts.reconnect_attempts {
            eprintln!("ddsc worker: coordinator unreachable, exiting");
            return Ok(summary);
        }
        if strikes > 0 {
            std::thread::sleep(Duration::from_millis(50 << strikes.min(5)));
        }
        let Some(stream) = connect_with_backoff(opts) else {
            eprintln!("ddsc worker: coordinator unreachable, exiting");
            return Ok(summary);
        };
        let _ = stream.set_nodelay(true);
        // The read timeout bounds how long a worker can hang on a
        // silent coordinator before treating the session as lost; the
        // write timeout does the same for a coordinator (or proxy)
        // that stops draining — either way the session errors out and
        // the reconnect loop takes over.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
        let mut reader = BufReader::new(stream.try_clone()?);
        let writer = Arc::new(Mutex::new(stream));

        // Introduce ourselves (or re-introduce after a reconnect).
        let hello = WorkerMsg::Hello {
            worker_id: summary.worker_id,
            pid: std::process::id() as u64,
        };
        if send(&writer, &hello).is_err() {
            strikes += 1;
            continue;
        }
        match read_coord_msg(&mut reader) {
            Ok(Some(CoordMsg::Welcome { worker_id })) => {
                summary.worker_id = worker_id;
                strikes = 0;
            }
            _ => {
                strikes += 1;
                continue;
            }
        }

        // Heartbeats flow from a side thread through the shared writer;
        // the mutex serializes them against the main request stream.
        let stop = Arc::new(AtomicBool::new(false));
        let beat = {
            let writer = Arc::clone(&writer);
            let stop = Arc::clone(&stop);
            let every = opts.heartbeat_every;
            let worker_id = summary.worker_id;
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    std::thread::sleep(every);
                    if send(&writer, &WorkerMsg::Heartbeat { worker_id }).is_err() {
                        return;
                    }
                }
            })
        };

        let end = session(
            &mut reader,
            &writer,
            &mut summary,
            &mut cache,
            opts.byzantine,
        );
        stop.store(true, Ordering::SeqCst);
        let _ = beat.join();
        match end {
            SessionEnd::AllDone => {
                summary.all_done = true;
                return Ok(summary);
            }
            SessionEnd::Lost => continue,
        }
    }
}

fn connect_with_backoff(opts: &WorkerOptions) -> Option<TcpStream> {
    let backoff = Backoff::new(Duration::from_millis(50), Duration::from_secs(1));
    let mut delays = backoff.delays();
    for attempt in 0..opts.reconnect_attempts {
        match TcpStream::connect(&opts.connect) {
            Ok(stream) => return Some(stream),
            Err(_) if attempt + 1 < opts.reconnect_attempts => {
                std::thread::sleep(delays.next().unwrap_or(Duration::from_secs(1)));
            }
            Err(_) => break,
        }
    }
    None
}

fn send(writer: &Mutex<TcpStream>, msg: &WorkerMsg) -> io::Result<()> {
    let mut stream = writer.lock().expect("worker writer poisoned");
    write_worker_msg(&mut *stream, msg)?;
    stream.flush()
}

/// The request/compute/report loop over one live connection.
fn session(
    reader: &mut BufReader<TcpStream>,
    writer: &Mutex<TcpStream>,
    summary: &mut WorkerSummary,
    cache: &mut PrepCache,
    byzantine: bool,
) -> SessionEnd {
    let worker_id = summary.worker_id;
    loop {
        if send(writer, &WorkerMsg::Request { worker_id }).is_err() {
            return SessionEnd::Lost;
        }
        match read_coord_msg(reader) {
            Ok(Some(CoordMsg::AllDone)) => return SessionEnd::AllDone,
            Ok(Some(CoordMsg::Idle { wait_ms })) => {
                std::thread::sleep(Duration::from_millis(u64::from(wait_ms).min(1000)));
            }
            Ok(Some(CoordMsg::Assign(spec))) => {
                let report = match compute_with(&spec, cache, byzantine) {
                    Ok((body, seconds)) => {
                        summary.completed += 1;
                        WorkerMsg::Result {
                            worker_id,
                            digest: spec.digest,
                            seconds_bits: seconds.to_bits(),
                            body,
                        }
                    }
                    Err(error) => {
                        summary.failed += 1;
                        WorkerMsg::Failed {
                            worker_id,
                            digest: spec.digest,
                            error,
                        }
                    }
                };
                if send(writer, &report).is_err() {
                    return SessionEnd::Lost;
                }
                match read_coord_msg(reader) {
                    Ok(Some(CoordMsg::Ack)) => {}
                    Ok(Some(CoordMsg::AllDone)) => return SessionEnd::AllDone,
                    _ => return SessionEnd::Lost,
                }
            }
            // Welcome out of sequence, clean close, or any wire error:
            // tear the session down and reconnect.
            _ => return SessionEnd::Lost,
        }
    }
}

/// Simulates one cell: returns the canonical result bytes and the
/// compute seconds, or a rendered failure. The hidden `--byzantine`
/// adversary knob simulates honestly, then inflates the cycle count
/// (keeping instructions and every sub-statistic intact) and re-encodes
/// canonically, so the lie is structurally valid and only a second
/// opinion can expose it.
fn compute_with(
    spec: &CellSpec,
    cache: &mut PrepCache,
    byzantine: bool,
) -> Result<(Vec<u8>, f64), String> {
    let bench = Benchmark::ALL
        .iter()
        .copied()
        .find(|b| b.name() == spec.bench)
        .ok_or_else(|| format!("unknown benchmark `{}`", spec.bench))?;
    let pc = PaperConfig::ALL
        .iter()
        .copied()
        .find(|c| c.label() == spec.config)
        .ok_or_else(|| format!("unknown config label `{}`", spec.config))?;
    let t0 = Instant::now();
    let key = (spec.bench.clone(), spec.seed, spec.trace_len);
    if !cache.contains_key(&key) {
        let trace = bench
            .trace(spec.seed, spec.trace_len as usize)
            .map_err(|e| format!("trace generation failed: {e}"))?;
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &trace).map_err(|e| format!("trace serialization failed: {e}"))?;
        cache.insert(
            key.clone(),
            PreparedCell {
                checksum: fnv1a(&bytes),
                prepared: Arc::new(PreparedTrace::build(&trace)),
            },
        );
    }
    let cell = &cache[&key];

    // Recompute the digest from our own bytes: catches any drift
    // between this binary and the coordinator before it can produce a
    // result that looks mergeable.
    let mut ident = Vec::new();
    ident.extend_from_slice(&cell.checksum.to_le_bytes());
    ident.extend_from_slice(spec.config.as_bytes());
    ident.extend_from_slice(&spec.width.to_le_bytes());
    let digest = fnv1a(&ident);
    if digest != spec.digest {
        return Err(format!(
            "cell digest mismatch: worker computed {digest:#x}, coordinator sent {:#x} \
             (worker/coordinator version drift?)",
            spec.digest
        ));
    }

    let config = SimConfig::paper(pc, spec.width);
    let prepared = Arc::clone(&cell.prepared);
    let mut result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        simulate_prepared(&prepared, &config)
    }))
    .map_err(|payload| format!("cell panicked: {}", panic_message(payload.as_ref())))?;
    if byzantine {
        // Deterministic perturbation: always an over-count, so the lie
        // cannot collide with the honest value and is itself stable
        // across re-computation (a byzantine worker that confirms its
        // own earlier answer is the hard case for the coordinator).
        result.cycles += 1 + result.cycles / 64;
    }
    let mut body = Vec::with_capacity(256);
    result.encode_to(&mut body);
    Ok((body, t0.elapsed().as_secs_f64()))
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_for(bench: &str, config: &str, width: u32, len: u64) -> CellSpec {
        // Recompute the digest the same way the lab does.
        let b = Benchmark::ALL
            .iter()
            .copied()
            .find(|b| b.name() == bench)
            .unwrap();
        let trace = b.trace(1996, len as usize).unwrap();
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &trace).unwrap();
        let mut ident = Vec::new();
        ident.extend_from_slice(&fnv1a(&bytes).to_le_bytes());
        ident.extend_from_slice(config.as_bytes());
        ident.extend_from_slice(&width.to_le_bytes());
        CellSpec {
            bench: bench.into(),
            config: config.into(),
            width,
            trace_len: len,
            seed: 1996,
            digest: fnv1a(&ident),
        }
    }

    #[test]
    fn compute_produces_canonical_bytes_matching_local_simulation() {
        let spec = spec_for("compress", "D", 4, 2000);
        let mut cache = PrepCache::new();
        let (body, seconds) = compute_with(&spec, &mut cache, false).expect("cell computes");
        assert!(seconds >= 0.0);
        let b = Benchmark::ALL
            .iter()
            .copied()
            .find(|b| b.name() == "compress")
            .unwrap();
        let trace = b.trace(1996, 2000).unwrap();
        let prepared = PreparedTrace::build(&trace);
        let config = SimConfig::paper(PaperConfig::D, 4);
        let local = simulate_prepared(&prepared, &config);
        let mut expected = Vec::new();
        local.encode_to(&mut expected);
        assert_eq!(body, expected, "worker bytes must match local simulation");
        // And the coordinator-side validator accepts them.
        let validated = crate::coordinator::validate_body(&spec, &body).expect("validates");
        assert_eq!(validated.cycles, local.cycles);
    }

    #[test]
    fn byzantine_bytes_validate_but_differ_from_honest_bytes() {
        let spec = spec_for("compress", "D", 4, 2000);
        let mut cache = PrepCache::new();
        let (honest, _) = compute_with(&spec, &mut cache, false).expect("honest computes");
        let (lie, _) = compute_with(&spec, &mut cache, true).expect("byzantine computes");
        assert_ne!(honest, lie, "perturbation must change the bytes");
        // The lie is well-formed: it decodes and passes every structural
        // check the coordinator applies — only a second opinion differs.
        let honest_r = crate::coordinator::validate_body(&spec, &honest).expect("honest valid");
        let lie_r = crate::coordinator::validate_body(&spec, &lie).expect("lie valid");
        assert!(lie_r.cycles > honest_r.cycles);
        assert_eq!(lie_r.instructions, honest_r.instructions);
        // And it is stable: a byzantine worker re-asked for the same
        // cell confirms its own earlier lie.
        let (lie2, _) = compute_with(&spec, &mut cache, true).unwrap();
        assert_eq!(lie, lie2);
    }

    #[test]
    fn digest_mismatch_is_refused_before_simulation() {
        let mut spec = spec_for("compress", "A", 4, 2000);
        spec.digest ^= 1;
        let mut cache = PrepCache::new();
        let err = compute_with(&spec, &mut cache, false).unwrap_err();
        assert!(err.contains("digest mismatch"), "{err}");
    }

    #[test]
    fn unknown_inputs_are_clean_failures() {
        let mut cache = PrepCache::new();
        let mut spec = spec_for("compress", "A", 4, 1000);
        spec.bench = "nope".into();
        assert!(compute_with(&spec, &mut cache, false)
            .unwrap_err()
            .contains("unknown benchmark"));
        let mut spec = spec_for("compress", "A", 4, 1000);
        spec.config = "Z".into();
        assert!(compute_with(&spec, &mut cache, false)
            .unwrap_err()
            .contains("unknown config"));
    }
}
