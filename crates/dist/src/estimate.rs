//! Online per-benchmark compute-time estimation for adaptive lease
//! timeouts.
//!
//! The convergence study established an order-of-magnitude spread in
//! per-cell compute times across benchmarks and trace lengths, so one
//! fixed `--lease-timeout` is always wrong somewhere: too short and
//! long cells are falsely revoked (wasted re-computes), too long and a
//! dead worker's short cell sits unreclaimed for the full window. The
//! [`ComputeEstimator`] tracks observed compute seconds *per
//! benchmark* (an EWMA for the central tendency plus a p95 over a ring
//! of recent samples for the tail) and derives a lease timeout with
//! generous slack — the estimate only replaces the fixed timeout once
//! enough samples exist, and never drops below the configured floor,
//! so a healthy-but-slow worker is never revoked by an overconfident
//! estimate.

use std::collections::HashMap;
use std::time::Duration;

use ddsc_util::percentile;

/// Samples required per benchmark before the estimate replaces the
/// fixed fallback timeout.
pub const MIN_SAMPLES: usize = 5;
/// EWMA smoothing factor (weight of the newest sample).
const EWMA_ALPHA: f64 = 0.25;
/// Slack multiplier on the EWMA estimate.
const EWMA_SLACK: f64 = 6.0;
/// Slack multiplier on the p95 tail estimate.
const P95_SLACK: f64 = 3.0;
/// Ring capacity for the per-benchmark recent-sample window.
const RING_CAP: usize = 128;

#[derive(Debug)]
struct BenchTimes {
    ewma: f64,
    recent: Vec<f64>,
    /// Next overwrite position once `recent` is full.
    head: usize,
    observed: u64,
}

/// One benchmark's slice of the adaptive-timeout report
/// (`lease_stats` in `BENCH_dist.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct LeaseStat {
    /// Benchmark name the samples are keyed by.
    pub bench: String,
    /// Valid compute-time samples observed.
    pub samples: u64,
    /// Median observed compute seconds (over the recent window).
    pub p50_s: f64,
    /// 95th-percentile observed compute seconds.
    pub p95_s: f64,
    /// The lease timeout the scheduler currently derives for this
    /// benchmark (seconds).
    pub timeout_s: f64,
}

/// Online EWMA + p95 estimator of per-benchmark compute times.
#[derive(Debug, Default)]
pub struct ComputeEstimator {
    by_bench: HashMap<String, BenchTimes>,
}

impl ComputeEstimator {
    /// A fresh estimator with no samples.
    pub fn new() -> ComputeEstimator {
        ComputeEstimator::default()
    }

    /// Records one observed compute time. Non-finite or negative
    /// samples (a worker is free to lie about its clock) are ignored —
    /// they could only distort the estimate.
    pub fn observe(&mut self, bench: &str, seconds: f64) {
        if !seconds.is_finite() || seconds < 0.0 {
            return;
        }
        let times = self
            .by_bench
            .entry(bench.to_string())
            .or_insert_with(|| BenchTimes {
                ewma: seconds,
                recent: Vec::with_capacity(RING_CAP.min(16)),
                head: 0,
                observed: 0,
            });
        times.ewma = EWMA_ALPHA * seconds + (1.0 - EWMA_ALPHA) * times.ewma;
        if times.recent.len() < RING_CAP {
            times.recent.push(seconds);
        } else {
            times.recent[times.head] = seconds;
            times.head = (times.head + 1) % RING_CAP;
        }
        times.observed += 1;
    }

    /// Total samples recorded for `bench`.
    pub fn samples(&self, bench: &str) -> u64 {
        self.by_bench.get(bench).map_or(0, |t| t.observed)
    }

    /// The lease timeout to grant a cell of `bench`: `fallback` until
    /// [`MIN_SAMPLES`] samples exist, then
    /// `max(floor, max(6·EWMA, 3·p95))` — slack is deliberately
    /// generous because a premature revocation costs a duplicate
    /// compute while a late one only delays reclaiming a dead worker's
    /// cell.
    pub fn timeout_for(&self, bench: &str, fallback: Duration, floor: Duration) -> Duration {
        let Some(times) = self.by_bench.get(bench) else {
            return fallback;
        };
        if times.recent.len() < MIN_SAMPLES {
            return fallback;
        }
        let (_, p95) = self.tail(times);
        let est = (EWMA_SLACK * times.ewma).max(P95_SLACK * p95);
        // Clamp: a byzantine worker reporting absurd compute times can
        // stretch the estimate, never wedge the run on an infinite one.
        let est = Duration::from_secs_f64(est.clamp(0.0, 3600.0));
        est.max(floor)
    }

    fn tail(&self, times: &BenchTimes) -> (f64, f64) {
        let mut sorted = times.recent.clone();
        sorted.sort_by(|a, b| {
            a.partial_cmp(b)
                .expect("non-finite sample rejected on entry")
        });
        let p50 = percentile(&sorted, 50.0).unwrap_or(times.ewma);
        let p95 = percentile(&sorted, 95.0).unwrap_or(times.ewma);
        (p50, p95)
    }

    /// Per-benchmark observed stats plus the timeout currently in
    /// force (the fixed `fallback` when `adaptive` is off or samples
    /// are short).
    pub fn stats(&self, fallback: Duration, floor: Duration, adaptive: bool) -> Vec<LeaseStat> {
        let mut out: Vec<LeaseStat> = self
            .by_bench
            .iter()
            .map(|(bench, times)| {
                let (p50, p95) = self.tail(times);
                let timeout = if adaptive {
                    self.timeout_for(bench, fallback, floor)
                } else {
                    fallback
                };
                LeaseStat {
                    bench: bench.clone(),
                    samples: times.observed,
                    p50_s: p50,
                    p95_s: p95,
                    timeout_s: timeout.as_secs_f64(),
                }
            })
            .collect();
        out.sort_by(|a, b| a.bench.cmp(&b.bench));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FALLBACK: Duration = Duration::from_secs(60);
    const FLOOR: Duration = Duration::from_secs(1);

    #[test]
    fn falls_back_until_enough_samples() {
        let mut est = ComputeEstimator::new();
        assert_eq!(est.timeout_for("compress", FALLBACK, FLOOR), FALLBACK);
        for _ in 0..MIN_SAMPLES - 1 {
            est.observe("compress", 0.050);
        }
        assert_eq!(est.timeout_for("compress", FALLBACK, FLOOR), FALLBACK);
        est.observe("compress", 0.050);
        let t = est.timeout_for("compress", FALLBACK, FLOOR);
        assert!(t < FALLBACK, "estimate should undercut the 60s fallback");
        assert!(t >= FLOOR, "estimate must respect the floor");
    }

    #[test]
    fn long_cells_stretch_the_timeout_past_the_floor() {
        let mut est = ComputeEstimator::new();
        for _ in 0..20 {
            est.observe("li", 2.0);
        }
        let t = est.timeout_for("li", FALLBACK, FLOOR);
        // 6× the 2s EWMA: a healthy long cell gets real headroom.
        assert!(t >= Duration::from_secs(10), "got {t:?}");
    }

    #[test]
    fn keys_are_per_benchmark() {
        let mut est = ComputeEstimator::new();
        for _ in 0..10 {
            est.observe("compress", 0.01);
            est.observe("li", 5.0);
        }
        let short = est.timeout_for("compress", FALLBACK, FLOOR);
        let long = est.timeout_for("li", FALLBACK, FLOOR);
        assert!(long > short * 4, "short {short:?} long {long:?}");
    }

    #[test]
    fn bogus_samples_are_ignored() {
        let mut est = ComputeEstimator::new();
        est.observe("go", f64::NAN);
        est.observe("go", f64::INFINITY);
        est.observe("go", -3.0);
        assert_eq!(est.samples("go"), 0);
        assert_eq!(est.timeout_for("go", FALLBACK, FLOOR), FALLBACK);
    }

    #[test]
    fn stats_report_percentiles_and_timeouts() {
        let mut est = ComputeEstimator::new();
        for i in 0..20 {
            est.observe("compress", 0.010 + 0.001 * i as f64);
        }
        let stats = est.stats(FALLBACK, FLOOR, true);
        assert_eq!(stats.len(), 1);
        let s = &stats[0];
        assert_eq!(s.bench, "compress");
        assert_eq!(s.samples, 20);
        assert!(s.p50_s > 0.0 && s.p95_s >= s.p50_s);
        assert!((s.timeout_s - FLOOR.as_secs_f64()).abs() < 1e-9);
        // With adaptive off the fixed fallback is reported.
        let fixed = est.stats(FALLBACK, FLOOR, false);
        assert!((fixed[0].timeout_s - FALLBACK.as_secs_f64()).abs() < 1e-9);
    }
}
