//! Fault-tolerant distributed execution of the paper grid.
//!
//! `ddsc-dist` runs the MICRO-29 scenario grid across worker
//! *processes* while keeping the single-process guarantee: the merged
//! grid is byte-identical to a local run. Cells are identified by the
//! lab's input digests (`fnv1a(trace checksum ‖ config label ‖
//! width)`), travel over the checksummed frame protocol `ddsc serve`
//! introduced, and carry results as the canonical
//! [`SimResult::encode_to`](ddsc_core::SimResult::encode_to) bytes the
//! cell store persists — so "merge" is just "insert the first valid
//! result per digest".
//!
//! Five layers:
//!
//! - [`proto`] — the coordinator/worker message vocabulary over
//!   [`ddsc_serve::proto`] frames; decoding is total.
//! - [`coordinator`] — the [`Scheduler`] failure model (leases with
//!   dispatch-time deadlines, heartbeats, straggler re-dispatch,
//!   poison quarantine, double-compute spot checks with byzantine
//!   bans) as a pure state machine, plus the [`Coordinator`] TCP
//!   server that drives it with wall time and sinks merged results to
//!   the caller.
//! - [`estimate`] — the online per-benchmark compute-time estimator
//!   (EWMA + p95) behind adaptive lease timeouts.
//! - [`worker`] — the pull-loop worker process: reconnect with backoff,
//!   digest self-verification, contained panics, memoized prepared
//!   traces; a hidden `--byzantine` test mode emits well-formed but
//!   counter-perturbed results for trust drills.
//! - [`chaos`] — a deterministic network-chaos proxy for loopback TCP:
//!   a seeded per-connection script of delays, drops, truncations,
//!   bit-flips, duplicated bytes and mid-stream resets, so chaos
//!   drills are reproducible CI artifacts.
//!
//! Crash consistency is the caller's (the CLI's) job: merged results
//! flow into the PR 5 journal + cell store via
//! `Lab::install_result`, so a SIGKILLed coordinator `--resume`s from
//! its journal and only re-dispatches the missing cells.

pub mod chaos;
pub mod coordinator;
pub mod estimate;
pub mod proto;
pub mod worker;

pub use chaos::{ChaosOptions, ChaosProxy, ChaosStop, ChaosSummary, Direction};
pub use coordinator::{
    spot_selected, validate_body, Assignment, Coordinator, DistReport, DistSinks, Ingest,
    MismatchIncident, SchedOptions, Scheduler, WorkerReport,
};
pub use estimate::{ComputeEstimator, LeaseStat};
pub use proto::{CellSpec, CoordMsg, WireError, WorkerMsg, DIST_VERSION};
pub use worker::{run_worker, WorkerOptions, WorkerSummary};
