//! A self-contained, offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of proptest it actually uses: the
//! [`Strategy`] trait with `prop_map`, range/tuple/`any`/`Just`/oneof
//! strategies, `proptest::collection::vec`, `proptest::option::of`, and
//! the [`proptest!`]/[`prop_assert!`] macros.
//!
//! Semantics differ from real proptest in two deliberate ways:
//!
//! * **No shrinking.** A failing case panics with the ordinary assert
//!   message; the PRNG is deterministic (fixed seed per test body), so a
//!   failure reproduces exactly by re-running the test.
//! * **Fixed case count.** [`ProptestConfig::default`] runs 64 cases;
//!   `with_cases(n)` is honoured.
//!
//! Both keep the property tests meaningful (random exploration over the
//! same strategy space) while staying dependency-free.

pub mod collection;
pub mod option;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, Just, Strategy};
pub use test_runner::{ProptestConfig, TestRng};

/// Asserts a condition inside a property (plain `assert!` here: failures
/// panic instead of triggering shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Picks uniformly among several strategies producing the same value
/// type (the unweighted form only).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` body
/// runs once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$attr:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                // One deterministic stream per test, derived from the
                // test's name so sibling tests explore different points.
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for _case in 0..config.cases {
                    $(
                        let $arg = $crate::Strategy::generate(&($strat), &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = (0u8..4).generate(&mut rng);
            assert!(v < 4);
            let i = (-7i32..8).generate(&mut rng);
            assert!((-7..8).contains(&i));
            let f = (0.01f64..1e6).generate(&mut rng);
            assert!((0.01..1e6).contains(&f));
        }
    }

    #[test]
    fn vec_lengths_respect_the_range() {
        let mut rng = crate::TestRng::from_name("vec");
        for _ in 0..200 {
            let v = crate::collection::vec(0u32..10, 1..24).generate(&mut rng);
            assert!((1..24).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let s = prop_oneof![(0u8..3).prop_map(|x| x as u32), Just(99u32),];
        let mut rng = crate::TestRng::from_name("oneof");
        let mut saw_just = false;
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v < 3 || v == 99);
            saw_just |= v == 99;
        }
        assert!(saw_just, "union must reach every arm");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(
            a in 0u16..100,
            b in any::<bool>(),
            opt in crate::option::of(1i32..5),
        ) {
            prop_assert!(a < 100);
            if let Some(x) = opt {
                prop_assert!((1..5).contains(&x), "b was {b}");
            }
        }
    }
}
