//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A strategy producing `Vec`s of values from an element strategy, with
/// lengths drawn uniformly from a range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.clone().generate(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Vectors of `element` values with a length in `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}
