//! The run configuration and deterministic PRNG behind [`proptest!`].

/// How many cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// SplitMix64: tiny, fast, and plenty for test-case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from raw state.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Seeds deterministically from a test name (FNV-1a over the bytes),
    /// so each property explores its own stream.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in name.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant for test generation.
        self.next_u64() % bound
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
