//! The usual `use proptest::prelude::*` surface.

pub use crate::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
pub use crate::test_runner::{ProptestConfig, TestRng};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
