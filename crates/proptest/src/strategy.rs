//! Value-generation strategies: the trait, primitive sources and
//! combinators.

use crate::test_runner::TestRng;

/// Something that can generate random values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// is just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

impl<V> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// The mapped strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (built by [`prop_oneof!`]).
#[derive(Debug)]
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; `options` must be nonempty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let k = rng.below(self.options.len() as u64) as usize;
        self.options[k].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}
