//! Option strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy producing `Option<T>` values: mostly `Some`, with `None`
/// roughly a quarter of the time (matching real proptest's default
/// weighting closely enough for exploration).
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// `Option` values wrapping `inner`'s values.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
