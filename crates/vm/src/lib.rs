//! A small register-machine virtual machine.
//!
//! The paper's traces come from instrumented SPARC binaries; this crate is
//! the stand-in: benchmark *programs* are written against [`Asm`], executed
//! by [`Machine`], and every retired instruction is appended to a
//! [`Trace`](ddsc_trace::Trace) with genuine register dataflow, effective
//! addresses, dynamically-detected zero operands and branch outcomes.
//!
//! The machine is the 32-bit integer subset of SPARC v8 described in
//! [`ddsc-isa`](../ddsc_isa/index.html): 32 GPRs with a hardwired zero
//! register, integer condition codes, little-endian byte-addressable
//! memory.
//!
//! # Examples
//!
//! Count down from 10, producing a 31-instruction trace:
//!
//! ```
//! use ddsc_vm::{Asm, Machine};
//! use ddsc_isa::Reg;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let r1 = Reg::new(1);
//! let mut asm = Asm::new();
//! asm.movi(r1, 10);
//! let top = asm.label();
//! asm.bind(top);
//! asm.subi(r1, r1, 1);
//! asm.cmpi(r1, 0);
//! asm.bne(top);
//! let program = asm.finish()?;
//!
//! let mut machine = Machine::new(program);
//! let trace = machine.run_trace("countdown", 1_000_000)?;
//! assert_eq!(trace.len(), 1 + 3 * 10);
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod machine;
pub mod mem;
pub mod program;
pub mod sched;
pub mod source;

pub use asm::{Asm, AsmError, Label};
pub use machine::{Machine, VmError};
pub use mem::Memory;
pub use program::Program;
pub use sched::{schedule, schedule_program};
pub use source::MachineSource;
