//! The assembler: an ergonomic builder for [`Program`]s.
//!
//! Labels are created with [`Asm::label`], bound to the next emitted
//! instruction with [`Asm::bind`], and may be referenced before or after
//! binding; [`Asm::finish`] resolves them and fails on unbound labels.

use std::error::Error;
use std::fmt;

use ddsc_isa::{Cond, Inst, Opcode, Reg, Src2};

use crate::Program;

/// A forward- or backward-referenced code location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Errors from [`Asm::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never bound.
    UnboundLabel(usize),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel(i) => write!(f, "label {i} referenced but never bound"),
        }
    }
}

impl Error for AsmError {}

/// Builder producing [`Program`]s.
///
/// Mnemonic conventions: register-register forms take a plain name
/// (`add`, `ld`), immediate forms append `i` or `o` for memory offsets
/// (`addi`, `ldo`). Stores name the *data* register first, matching
/// SPARC's `st rd, [address]` order.
///
/// # Examples
///
/// ```
/// use ddsc_vm::Asm;
/// use ddsc_isa::Reg;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut asm = Asm::new();
/// let (a, b) = (Reg::new(1), Reg::new(2));
/// asm.movi(a, 5);
/// asm.addi(b, a, 1);
/// let program = asm.finish()?;
/// assert_eq!(program.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Asm {
    insts: Vec<Inst>,
    labels: Vec<Option<u32>>,
    /// (instruction index, label) pairs awaiting resolution.
    patches: Vec<(usize, Label)>,
}

impl Asm {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Asm::default()
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Creates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the next emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(
            self.labels[label.0].is_none(),
            "label {} bound twice",
            label.0
        );
        self.labels[label.0] = Some(self.insts.len() as u32);
    }

    /// The positions of all bound labels — the block entry points used
    /// by [`sched::schedule`](crate::sched::schedule).
    pub fn block_starts(&self) -> Vec<u32> {
        self.labels.iter().flatten().copied().collect()
    }

    /// Resolves all label references and returns the program.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UnboundLabel`] if any referenced label was
    /// never bound.
    pub fn finish(mut self) -> Result<Program, AsmError> {
        for &(inst_idx, label) in &self.patches {
            let target = self.labels[label.0].ok_or(AsmError::UnboundLabel(label.0))?;
            self.insts[inst_idx].target = target;
        }
        Ok(Program::new(self.insts))
    }

    fn emit(&mut self, inst: Inst) {
        self.insts.push(inst);
    }

    fn emit_branch(&mut self, op: Opcode, label: Label) {
        self.patches.push((self.insts.len(), label));
        self.emit(Inst::control(op, 0));
    }

    // ---- arithmetic ----

    /// `rd = rs1 + rs2`
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::alu(Opcode::Add, rd, rs1, Src2::Reg(rs2)));
    }

    /// `rd = rs1 + imm`
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Inst::alu(Opcode::Add, rd, rs1, Src2::Imm(imm)));
    }

    /// `rd = rs1 - rs2`
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::alu(Opcode::Sub, rd, rs1, Src2::Reg(rs2)));
    }

    /// `rd = rs1 - imm`
    pub fn subi(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Inst::alu(Opcode::Sub, rd, rs1, Src2::Imm(imm)));
    }

    /// `rd = rs1 * rs2` (2-cycle class)
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::alu(Opcode::Mul, rd, rs1, Src2::Reg(rs2)));
    }

    /// `rd = rs1 * imm`
    pub fn muli(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Inst::alu(Opcode::Mul, rd, rs1, Src2::Imm(imm)));
    }

    /// `rd = rs1 / rs2` (signed; 12-cycle class)
    pub fn div(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::alu(Opcode::Div, rd, rs1, Src2::Reg(rs2)));
    }

    /// `rd = rs1 / imm`
    pub fn divi(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Inst::alu(Opcode::Div, rd, rs1, Src2::Imm(imm)));
    }

    // ---- logicals ----

    /// `rd = rs1 & rs2`
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::alu(Opcode::And, rd, rs1, Src2::Reg(rs2)));
    }

    /// `rd = rs1 & imm`
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Inst::alu(Opcode::And, rd, rs1, Src2::Imm(imm)));
    }

    /// `rd = rs1 | rs2`
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::alu(Opcode::Or, rd, rs1, Src2::Reg(rs2)));
    }

    /// `rd = rs1 | imm`
    pub fn ori(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Inst::alu(Opcode::Or, rd, rs1, Src2::Imm(imm)));
    }

    /// `rd = rs1 ^ rs2`
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::alu(Opcode::Xor, rd, rs1, Src2::Reg(rs2)));
    }

    /// `rd = rs1 ^ imm`
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Inst::alu(Opcode::Xor, rd, rs1, Src2::Imm(imm)));
    }

    /// `rd = rs1 & !rs2`
    pub fn andn(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::alu(Opcode::Andn, rd, rs1, Src2::Reg(rs2)));
    }

    /// `rd = rs1 | !rs2`
    pub fn orn(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::alu(Opcode::Orn, rd, rs1, Src2::Reg(rs2)));
    }

    /// `rd = !(rs1 ^ rs2)`
    pub fn xnor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::alu(Opcode::Xnor, rd, rs1, Src2::Reg(rs2)));
    }

    // ---- shifts ----

    /// `rd = rs1 << rs2`
    pub fn sll(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::alu(Opcode::Sll, rd, rs1, Src2::Reg(rs2)));
    }

    /// `rd = rs1 << imm`
    pub fn slli(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Inst::alu(Opcode::Sll, rd, rs1, Src2::Imm(imm)));
    }

    /// `rd = rs1 >> rs2` (logical)
    pub fn srl(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::alu(Opcode::Srl, rd, rs1, Src2::Reg(rs2)));
    }

    /// `rd = rs1 >> imm` (logical)
    pub fn srli(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Inst::alu(Opcode::Srl, rd, rs1, Src2::Imm(imm)));
    }

    /// `rd = rs1 >> rs2` (arithmetic)
    pub fn sra(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::alu(Opcode::Sra, rd, rs1, Src2::Reg(rs2)));
    }

    /// `rd = rs1 >> imm` (arithmetic)
    pub fn srai(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Inst::alu(Opcode::Sra, rd, rs1, Src2::Imm(imm)));
    }

    // ---- moves ----

    /// `rd = rs`
    pub fn mov(&mut self, rd: Reg, rs: Reg) {
        self.emit(Inst::alu(Opcode::Mov, rd, Reg::G0, Src2::Reg(rs)));
    }

    /// `rd = imm`
    pub fn movi(&mut self, rd: Reg, imm: i32) {
        self.emit(Inst::alu(Opcode::Mov, rd, Reg::G0, Src2::Imm(imm)));
    }

    /// `rd = imm << 10` (upper-constant load)
    pub fn sethi(&mut self, rd: Reg, imm: i32) {
        self.emit(Inst::alu(Opcode::Sethi, rd, Reg::G0, Src2::Imm(imm)));
    }

    // ---- compare ----

    /// `%icc = flags(rs1 - rs2)`
    pub fn cmp(&mut self, rs1: Reg, rs2: Reg) {
        self.emit(Inst::alu(Opcode::Cmp, Reg::G0, rs1, Src2::Reg(rs2)));
    }

    /// `%icc = flags(rs1 - imm)`
    pub fn cmpi(&mut self, rs1: Reg, imm: i32) {
        self.emit(Inst::alu(Opcode::Cmp, Reg::G0, rs1, Src2::Imm(imm)));
    }

    // ---- memory ----

    /// `rd = mem32[rs1 + rs2]`
    pub fn ld(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::alu(Opcode::Ld, rd, rs1, Src2::Reg(rs2)));
    }

    /// `rd = mem32[rs1 + imm]`
    pub fn ldo(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Inst::alu(Opcode::Ld, rd, rs1, Src2::Imm(imm)));
    }

    /// `rd = mem8[rs1 + rs2]` (zero-extended)
    pub fn ldb(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::alu(Opcode::Ldb, rd, rs1, Src2::Reg(rs2)));
    }

    /// `rd = mem8[rs1 + imm]` (zero-extended)
    pub fn ldbo(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Inst::alu(Opcode::Ldb, rd, rs1, Src2::Imm(imm)));
    }

    /// `mem32[rs1 + rs2] = rdata`
    pub fn st(&mut self, rdata: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::alu(Opcode::St, rdata, rs1, Src2::Reg(rs2)));
    }

    /// `mem32[rs1 + imm] = rdata`
    pub fn sto(&mut self, rdata: Reg, rs1: Reg, imm: i32) {
        self.emit(Inst::alu(Opcode::St, rdata, rs1, Src2::Imm(imm)));
    }

    /// `mem8[rs1 + rs2] = rdata & 0xff`
    pub fn stb(&mut self, rdata: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Inst::alu(Opcode::Stb, rdata, rs1, Src2::Reg(rs2)));
    }

    /// `mem8[rs1 + imm] = rdata & 0xff`
    pub fn stbo(&mut self, rdata: Reg, rs1: Reg, imm: i32) {
        self.emit(Inst::alu(Opcode::Stb, rdata, rs1, Src2::Imm(imm)));
    }

    // ---- control ----

    /// Branch if equal.
    pub fn beq(&mut self, l: Label) {
        self.emit_branch(Opcode::Bcc(Cond::Eq), l);
    }

    /// Branch if not equal.
    pub fn bne(&mut self, l: Label) {
        self.emit_branch(Opcode::Bcc(Cond::Ne), l);
    }

    /// Branch if signed less-than.
    pub fn blt(&mut self, l: Label) {
        self.emit_branch(Opcode::Bcc(Cond::Lt), l);
    }

    /// Branch if signed less-or-equal.
    pub fn ble(&mut self, l: Label) {
        self.emit_branch(Opcode::Bcc(Cond::Le), l);
    }

    /// Branch if signed greater-than.
    pub fn bgt(&mut self, l: Label) {
        self.emit_branch(Opcode::Bcc(Cond::Gt), l);
    }

    /// Branch if signed greater-or-equal.
    pub fn bge(&mut self, l: Label) {
        self.emit_branch(Opcode::Bcc(Cond::Ge), l);
    }

    /// Branch if unsigned less-than.
    pub fn bltu(&mut self, l: Label) {
        self.emit_branch(Opcode::Bcc(Cond::Ltu), l);
    }

    /// Branch if unsigned greater-or-equal.
    pub fn bgeu(&mut self, l: Label) {
        self.emit_branch(Opcode::Bcc(Cond::Geu), l);
    }

    /// Unconditional branch.
    pub fn ba(&mut self, l: Label) {
        self.emit_branch(Opcode::Ba, l);
    }

    /// Call: `%r15 = pc`, jump to `l`.
    pub fn call(&mut self, l: Label) {
        self.emit_branch(Opcode::Call, l);
    }

    /// Return: jump to `%r15 + 4`.
    pub fn ret(&mut self) {
        self.emit(Inst::alu(Opcode::Ret, Reg::G0, Reg::LINK, Src2::None));
    }

    /// Indirect jump to `rs1 + imm`.
    pub fn jmp(&mut self, rs1: Reg, imm: i32) {
        self.emit(Inst::alu(Opcode::Jmp, Reg::G0, rs1, Src2::Imm(imm)));
    }

    /// No-op (present in programs, filtered from traces).
    pub fn nop(&mut self) {
        self.emit(Inst::nop());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut asm = Asm::new();
        let fwd = asm.label();
        let back = asm.label();
        asm.bind(back);
        asm.nop(); // 0
        asm.ba(fwd); // 1 -> 3
        asm.ba(back); // 2 -> 0
        asm.bind(fwd);
        asm.nop(); // 3
        let p = asm.finish().unwrap();
        assert_eq!(p.insts()[1].target, 3);
        assert_eq!(p.insts()[2].target, 0);
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut asm = Asm::new();
        let l = asm.label();
        asm.ba(l);
        assert_eq!(asm.finish(), Err(AsmError::UnboundLabel(0)));
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut asm = Asm::new();
        let l = asm.label();
        asm.bind(l);
        asm.bind(l);
    }

    #[test]
    fn store_names_data_register_first() {
        let mut asm = Asm::new();
        asm.sto(Reg::new(7), Reg::new(8), 12);
        let p = asm.finish().unwrap();
        let inst = p.insts()[0];
        assert_eq!(inst.rd, Reg::new(7), "data register");
        assert_eq!(inst.rs1, Reg::new(8), "base register");
    }

    #[test]
    fn len_tracks_emissions() {
        let mut asm = Asm::new();
        assert!(asm.is_empty());
        asm.movi(Reg::new(1), 3);
        asm.nop();
        assert_eq!(asm.len(), 2);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            AsmError::UnboundLabel(4).to_string(),
            "label 4 referenced but never bound"
        );
    }
}
