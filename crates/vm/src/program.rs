//! Finished programs.

use std::fmt;

use ddsc_isa::Inst;

/// Base byte address of instruction 0 in every program.
pub const BASE_PC: u32 = 0x1000;

/// A finished, executable program: a sequence of [`Inst`]s with branch
/// targets resolved to instruction indices.
///
/// Instruction `i` lives at byte PC `BASE_PC + 4*i`. Execution halts when
/// control falls off the end of the program or jumps to
/// [`Machine::HALT_PC`](crate::Machine::HALT_PC).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    insts: Vec<Inst>,
}

impl Program {
    /// Wraps a resolved instruction sequence (normally produced by
    /// [`Asm::finish`](crate::Asm::finish)).
    pub fn new(insts: Vec<Inst>) -> Self {
        Program { insts }
    }

    /// The instructions.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The byte PC of instruction `index`.
    pub fn pc_of(&self, index: usize) -> u32 {
        BASE_PC + 4 * index as u32
    }

    /// The instruction index of a byte PC, if it falls inside the program.
    pub fn index_of(&self, pc: u32) -> Option<usize> {
        if pc < BASE_PC || !(pc - BASE_PC).is_multiple_of(4) {
            return None;
        }
        let idx = ((pc - BASE_PC) / 4) as usize;
        (idx < self.insts.len()).then_some(idx)
    }
}

impl fmt::Display for Program {
    /// Disassembly listing.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, inst) in self.insts.iter().enumerate() {
            writeln!(f, "{:#010x} [{i:>5}]  {inst}", self.pc_of(i))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddsc_isa::{Opcode, Reg, Src2};

    #[test]
    fn pc_index_roundtrip() {
        let p = Program::new(vec![Inst::nop(); 10]);
        for i in 0..10 {
            assert_eq!(p.index_of(p.pc_of(i)), Some(i));
        }
        assert_eq!(p.index_of(p.pc_of(10)), None);
        assert_eq!(p.index_of(BASE_PC + 2), None, "misaligned");
        assert_eq!(p.index_of(0), None, "below base");
    }

    #[test]
    fn disassembly_lists_every_instruction() {
        let p = Program::new(vec![
            Inst::alu(Opcode::Add, Reg::new(1), Reg::new(2), Src2::Imm(3)),
            Inst::control(Opcode::Ba, 0),
        ]);
        let listing = p.to_string();
        assert_eq!(listing.lines().count(), 2);
        assert!(listing.contains("add %r1, %r2, 3"));
        assert!(listing.contains("ba @0"));
    }
}
