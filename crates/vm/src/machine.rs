//! The interpreter.

use std::error::Error;
use std::fmt;

use ddsc_isa::{Icc, Opcode, Reg, Src2};
use ddsc_trace::record::{ZERO_RS1, ZERO_RS2};
use ddsc_trace::{Trace, TraceInst};

use crate::{Memory, Program};

/// Errors raised during execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmError {
    /// A word access to a non-word-aligned address.
    Misaligned {
        /// PC of the faulting instruction.
        pc: u32,
        /// The offending effective address.
        addr: u32,
    },
    /// Division by zero.
    DivByZero {
        /// PC of the faulting instruction.
        pc: u32,
    },
    /// An indirect jump left the program (and was not the halt sentinel).
    WildJump {
        /// PC of the faulting instruction.
        pc: u32,
        /// The computed target.
        target: u32,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Misaligned { pc, addr } => {
                write!(f, "misaligned word access to {addr:#x} at pc {pc:#x}")
            }
            VmError::DivByZero { pc } => write!(f, "division by zero at pc {pc:#x}"),
            VmError::WildJump { pc, target } => {
                write!(f, "wild jump to {target:#x} at pc {pc:#x}")
            }
        }
    }
}

impl Error for VmError {}

/// The virtual machine: registers, condition codes, memory and a program.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Machine {
    regs: [u32; 32],
    icc: Icc,
    mem: Memory,
    program: Program,
    /// Next instruction index, or `None` once halted.
    pc_idx: Option<usize>,
    retired: u64,
}

impl Machine {
    /// Byte address that halts the machine when jumped to.
    pub const HALT_PC: u32 = 0xFFFF_FFFC;

    /// Initial stack pointer.
    pub const STACK_TOP: u32 = 0xF000_0000;

    /// Creates a machine about to execute `program` from its first
    /// instruction, with the stack pointer at [`Machine::STACK_TOP`] and
    /// the link register set up so that a top-level `ret` halts.
    pub fn new(program: Program) -> Self {
        let mut regs = [0u32; 32];
        regs[Reg::SP.index()] = Self::STACK_TOP;
        regs[Reg::LINK.index()] = Self::HALT_PC.wrapping_sub(4);
        let pc_idx = if program.is_empty() { None } else { Some(0) };
        Machine {
            regs,
            icc: Icc::default(),
            mem: Memory::new(),
            program,
            pc_idx,
            retired: 0,
        }
    }

    /// Reads an architectural register (`%g0` reads as zero).
    pub fn reg(&self, r: Reg) -> u32 {
        if r.is_zero() || r.is_icc() {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Writes an architectural register (writes to `%g0` are discarded).
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        if !r.is_zero() && !r.is_icc() {
            self.regs[r.index()] = value;
        }
    }

    /// The machine's memory (workload setup writes here before running).
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable access to memory.
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Replaces the program with its list-scheduled equivalent (see
    /// [`crate::sched`]) — the compiler stand-in used by the scheduling
    /// sensitivity experiments. Memory and register state (workload
    /// inputs) are preserved.
    ///
    /// # Panics
    ///
    /// Panics if any instruction has already executed.
    pub fn reschedule(&mut self) {
        assert_eq!(self.retired, 0, "reschedule before running");
        self.program = crate::sched::schedule_program(&self.program);
        self.pc_idx = if self.program.is_empty() {
            None
        } else {
            Some(0)
        };
    }

    /// Whether execution has halted.
    pub fn is_halted(&self) -> bool {
        self.pc_idx.is_none()
    }

    /// Total non-nop instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    fn read(&self, r: Reg) -> u32 {
        self.reg(r)
    }

    /// Executes one instruction; returns its trace record (`None` for
    /// nops and when already halted).
    ///
    /// # Errors
    ///
    /// Propagates [`VmError`] on misaligned word accesses, division by
    /// zero and wild indirect jumps.
    pub fn step(&mut self) -> Result<Option<TraceInst>, VmError> {
        let Some(idx) = self.pc_idx else {
            return Ok(None);
        };
        if idx >= self.program.len() {
            self.pc_idx = None;
            return Ok(None);
        }
        let inst = self.program.insts()[idx];
        let pc = self.program.pc_of(idx);
        let mut next = Some(idx + 1);

        // Resolve the second operand.
        let (src2_val, rs2, imm) = match inst.src2 {
            Src2::Reg(r) => (self.read(r), Some(r), None),
            Src2::Imm(i) => (i as u32, None, Some(i)),
            Src2::None => (0, None, None),
        };
        let rs1_val = self.read(inst.rs1);
        let mut zf = 0u8;
        if rs1_val == 0 {
            zf |= ZERO_RS1;
        }
        if rs2.is_some() && src2_val == 0 {
            zf |= ZERO_RS2;
        }

        let record = match inst.op {
            Opcode::Nop => {
                self.pc_idx = advance(next, self.program.len());
                return Ok(None);
            }
            Opcode::Add
            | Opcode::Sub
            | Opcode::And
            | Opcode::Or
            | Opcode::Xor
            | Opcode::Andn
            | Opcode::Orn
            | Opcode::Xnor
            | Opcode::Sll
            | Opcode::Srl
            | Opcode::Sra
            | Opcode::Mul => {
                let result = match inst.op {
                    Opcode::Add => rs1_val.wrapping_add(src2_val),
                    Opcode::Sub => rs1_val.wrapping_sub(src2_val),
                    Opcode::And => rs1_val & src2_val,
                    Opcode::Or => rs1_val | src2_val,
                    Opcode::Xor => rs1_val ^ src2_val,
                    Opcode::Andn => rs1_val & !src2_val,
                    Opcode::Orn => rs1_val | !src2_val,
                    Opcode::Xnor => !(rs1_val ^ src2_val),
                    Opcode::Sll => rs1_val.wrapping_shl(src2_val & 31),
                    Opcode::Srl => rs1_val.wrapping_shr(src2_val & 31),
                    Opcode::Sra => ((rs1_val as i32).wrapping_shr(src2_val & 31)) as u32,
                    Opcode::Mul => rs1_val.wrapping_mul(src2_val),
                    _ => unreachable!(),
                };
                self.set_reg(inst.rd, result);
                TraceInst::alu(pc, inst.op, inst.rd, inst.rs1, rs2, imm, zf)
            }
            Opcode::Div => {
                if src2_val == 0 {
                    return Err(VmError::DivByZero { pc });
                }
                let result = (rs1_val as i32).wrapping_div(src2_val as i32) as u32;
                self.set_reg(inst.rd, result);
                TraceInst::alu(pc, inst.op, inst.rd, inst.rs1, rs2, imm, zf)
            }
            Opcode::Mov => {
                self.set_reg(inst.rd, src2_val);
                TraceInst::mov(pc, inst.op, inst.rd, rs2, imm, zf)
            }
            Opcode::Sethi => {
                let value = (imm.unwrap_or(0) as u32) << 10;
                self.set_reg(inst.rd, value);
                TraceInst::mov(pc, inst.op, inst.rd, None, imm, zf)
            }
            Opcode::Cmp => {
                self.icc = Icc::from_sub(rs1_val, src2_val);
                TraceInst::cmp(pc, inst.rs1, rs2, imm, zf)
            }
            Opcode::Ld => {
                let ea = rs1_val.wrapping_add(src2_val);
                if ea % 4 != 0 {
                    return Err(VmError::Misaligned { pc, addr: ea });
                }
                let value = self.mem.read_u32(ea);
                self.set_reg(inst.rd, value);
                TraceInst::load(pc, inst.op, inst.rd, inst.rs1, rs2, imm, zf, ea)
            }
            Opcode::Ldb => {
                let ea = rs1_val.wrapping_add(src2_val);
                let value = u32::from(self.mem.read_u8(ea));
                self.set_reg(inst.rd, value);
                TraceInst::load(pc, inst.op, inst.rd, inst.rs1, rs2, imm, zf, ea)
            }
            Opcode::St => {
                let ea = rs1_val.wrapping_add(src2_val);
                if ea % 4 != 0 {
                    return Err(VmError::Misaligned { pc, addr: ea });
                }
                self.mem.write_u32(ea, self.read(inst.rd));
                TraceInst::store(pc, inst.op, inst.rd, inst.rs1, rs2, imm, zf, ea)
            }
            Opcode::Stb => {
                let ea = rs1_val.wrapping_add(src2_val);
                self.mem.write_u8(ea, self.read(inst.rd) as u8);
                TraceInst::store(pc, inst.op, inst.rd, inst.rs1, rs2, imm, zf, ea)
            }
            Opcode::Bcc(cond) => {
                let taken = cond.eval(self.icc);
                let target_idx = inst.target as usize;
                let target_pc = self.program.pc_of(target_idx);
                if taken {
                    next = Some(target_idx);
                }
                TraceInst::cond_branch(pc, inst.op, taken, target_pc)
            }
            Opcode::Ba => {
                let target_idx = inst.target as usize;
                next = Some(target_idx);
                TraceInst::uncond(pc, inst.op, None, None, self.program.pc_of(target_idx))
            }
            Opcode::Call => {
                let target_idx = inst.target as usize;
                self.set_reg(Reg::LINK, pc);
                next = Some(target_idx);
                TraceInst::uncond(
                    pc,
                    inst.op,
                    Some(Reg::LINK),
                    None,
                    self.program.pc_of(target_idx),
                )
            }
            Opcode::Ret | Opcode::Jmp => {
                let target = if inst.op == Opcode::Ret {
                    rs1_val.wrapping_add(4)
                } else {
                    rs1_val.wrapping_add(src2_val)
                };
                if target == Self::HALT_PC {
                    next = None;
                } else {
                    match self.program.index_of(target) {
                        Some(t) => next = Some(t),
                        None => return Err(VmError::WildJump { pc, target }),
                    }
                }
                TraceInst::uncond(pc, inst.op, None, Some(inst.rs1), target)
            }
        };

        self.pc_idx = advance(next, self.program.len());
        self.retired += 1;
        // Attach the architected result for value-prediction studies
        // (skipped for `%icc` and destination-less records).
        let record = match record.dest {
            Some(d) if !d.is_icc() => record.with_value(self.reg(d)),
            _ => record,
        };
        Ok(Some(record))
    }

    /// Runs until halt or until `max_insts` non-nop instructions have been
    /// retired, passing each record to `sink`.
    ///
    /// Returns the number of records emitted. A `&mut` closure reference
    /// works as the sink.
    ///
    /// # Errors
    ///
    /// Propagates the first [`VmError`] encountered.
    pub fn run<F: FnMut(TraceInst)>(
        &mut self,
        max_insts: usize,
        mut sink: F,
    ) -> Result<usize, VmError> {
        let mut emitted = 0;
        while emitted < max_insts && !self.is_halted() {
            if let Some(rec) = self.step()? {
                sink(rec);
                emitted += 1;
            }
        }
        Ok(emitted)
    }

    /// Runs and collects the trace (convenience wrapper over [`Machine::run`]).
    ///
    /// # Errors
    ///
    /// Propagates the first [`VmError`] encountered.
    pub fn run_trace(&mut self, name: &str, max_insts: usize) -> Result<Trace, VmError> {
        let mut trace = Trace::new(name);
        self.run(max_insts, |rec| trace.push(rec))?;
        Ok(trace)
    }
}

fn advance(next: Option<usize>, len: usize) -> Option<usize> {
    match next {
        Some(i) if i < len => Some(i),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Asm;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn alu_semantics() {
        let mut asm = Asm::new();
        asm.movi(r(1), 6);
        asm.movi(r(2), 3);
        asm.add(r(3), r(1), r(2)); // 9
        asm.sub(r(4), r(1), r(2)); // 3
        asm.mul(r(5), r(1), r(2)); // 18
        asm.div(r(6), r(1), r(2)); // 2
        asm.slli(r(7), r(1), 2); // 24
        asm.srai(r(8), r(1), 1); // 3
        asm.xor(r(9), r(1), r(2)); // 5
        asm.andn(r(10), r(1), r(2)); // 6 & !3 = 4
        let mut m = Machine::new(asm.finish().unwrap());
        m.run(100, |_| {}).unwrap();
        assert_eq!(m.reg(r(3)), 9);
        assert_eq!(m.reg(r(4)), 3);
        assert_eq!(m.reg(r(5)), 18);
        assert_eq!(m.reg(r(6)), 2);
        assert_eq!(m.reg(r(7)), 24);
        assert_eq!(m.reg(r(8)), 3);
        assert_eq!(m.reg(r(9)), 5);
        assert_eq!(m.reg(r(10)), 4);
        assert!(m.is_halted());
    }

    #[test]
    fn sra_is_arithmetic() {
        let mut asm = Asm::new();
        asm.movi(r(1), -8);
        asm.srai(r(2), r(1), 1);
        asm.srli(r(3), r(1), 1);
        let mut m = Machine::new(asm.finish().unwrap());
        m.run(10, |_| {}).unwrap();
        assert_eq!(m.reg(r(2)) as i32, -4);
        assert_eq!(m.reg(r(3)), (-8i32 as u32) >> 1);
    }

    #[test]
    fn g0_is_immutable() {
        let mut asm = Asm::new();
        asm.movi(Reg::G0, 42);
        asm.add(r(1), Reg::G0, Reg::G0);
        let mut m = Machine::new(asm.finish().unwrap());
        m.run(10, |_| {}).unwrap();
        assert_eq!(m.reg(Reg::G0), 0);
        assert_eq!(m.reg(r(1)), 0);
    }

    #[test]
    fn loads_and_stores_roundtrip_through_memory() {
        let mut asm = Asm::new();
        asm.sethi(r(1), 0x20); // 0x8000
        asm.movi(r(2), 77);
        asm.sto(r(2), r(1), 4);
        asm.ldo(r(3), r(1), 4);
        asm.stbo(r(2), r(1), 9);
        asm.ldbo(r(4), r(1), 9);
        let mut m = Machine::new(asm.finish().unwrap());
        m.run(10, |_| {}).unwrap();
        assert_eq!(m.reg(r(3)), 77);
        assert_eq!(m.reg(r(4)), 77);
        assert_eq!(m.mem().read_u32(0x8004), 77);
    }

    #[test]
    fn misaligned_word_access_errors() {
        let mut asm = Asm::new();
        asm.movi(r(1), 0x8001);
        asm.ldo(r(2), r(1), 0);
        let mut m = Machine::new(asm.finish().unwrap());
        let err = m.run(10, |_| {}).unwrap_err();
        assert!(matches!(err, VmError::Misaligned { addr: 0x8001, .. }));
    }

    #[test]
    fn div_by_zero_errors() {
        let mut asm = Asm::new();
        asm.movi(r(1), 10);
        asm.div(r(2), r(1), Reg::G0);
        let mut m = Machine::new(asm.finish().unwrap());
        let err = m.run(10, |_| {}).unwrap_err();
        assert!(matches!(err, VmError::DivByZero { .. }));
    }

    #[test]
    fn loop_executes_expected_count() {
        let mut asm = Asm::new();
        asm.movi(r(1), 5);
        let top = asm.label();
        asm.bind(top);
        asm.subi(r(1), r(1), 1);
        asm.cmpi(r(1), 0);
        asm.bne(top);
        let mut m = Machine::new(asm.finish().unwrap());
        let trace = m.run_trace("loop", 1000).unwrap();
        assert_eq!(trace.len(), 1 + 5 * 3);
        // Four taken, one fall-through.
        let stats = trace.stats();
        assert_eq!(stats.cond_branches(), 5);
        assert_eq!(stats.taken_branches(), 4);
    }

    #[test]
    fn call_and_ret_nest_correctly() {
        let mut asm = Asm::new();
        let func = asm.label();
        let done = asm.label();
        asm.movi(r(1), 1);
        asm.call(func);
        asm.movi(r(3), 99); // executed after return
        asm.ba(done);
        asm.bind(func);
        asm.addi(r(2), r(1), 10);
        asm.ret();
        asm.bind(done);
        let mut m = Machine::new(asm.finish().unwrap());
        m.run(100, |_| {}).unwrap();
        assert_eq!(m.reg(r(2)), 11);
        assert_eq!(m.reg(r(3)), 99);
        assert!(m.is_halted());
    }

    #[test]
    fn top_level_ret_halts() {
        let mut asm = Asm::new();
        asm.movi(r(1), 1);
        asm.ret();
        asm.movi(r(1), 2); // never executed
        let mut m = Machine::new(asm.finish().unwrap());
        m.run(100, |_| {}).unwrap();
        assert!(m.is_halted());
        assert_eq!(m.reg(r(1)), 1);
    }

    #[test]
    fn wild_jump_is_an_error() {
        let mut asm = Asm::new();
        asm.movi(r(1), 0x123456);
        asm.jmp(r(1), 0);
        let mut m = Machine::new(asm.finish().unwrap());
        let err = m.run(10, |_| {}).unwrap_err();
        assert!(matches!(err, VmError::WildJump { .. }));
    }

    #[test]
    fn nops_execute_but_do_not_trace() {
        let mut asm = Asm::new();
        asm.nop();
        asm.movi(r(1), 1);
        asm.nop();
        let mut m = Machine::new(asm.finish().unwrap());
        let trace = m.run_trace("nops", 100).unwrap();
        assert_eq!(trace.len(), 1);
        assert_eq!(m.retired(), 1);
    }

    #[test]
    fn max_insts_caps_the_run() {
        let mut asm = Asm::new();
        let top = asm.label();
        asm.bind(top);
        asm.addi(r(1), r(1), 1);
        asm.ba(top); // infinite loop
        let mut m = Machine::new(asm.finish().unwrap());
        let trace = m.run_trace("inf", 1000).unwrap();
        assert_eq!(trace.len(), 1000);
        assert!(!m.is_halted());
    }

    mod differential {
        use super::*;
        use proptest::prelude::*;

        #[derive(Debug, Clone, Copy)]
        enum Op {
            Add,
            Sub,
            And,
            Or,
            Xor,
            Andn,
            Orn,
            Xnor,
            Sll,
            Srl,
            Sra,
            Mul,
        }

        fn op_strategy() -> impl Strategy<Value = (Op, u8, u8, i32)> {
            (
                prop_oneof![
                    Just(Op::Add),
                    Just(Op::Sub),
                    Just(Op::And),
                    Just(Op::Or),
                    Just(Op::Xor),
                    Just(Op::Andn),
                    Just(Op::Orn),
                    Just(Op::Xnor),
                    Just(Op::Sll),
                    Just(Op::Srl),
                    Just(Op::Sra),
                    Just(Op::Mul),
                ],
                1u8..8,
                1u8..8,
                any::<i32>(),
            )
        }

        fn oracle(op: Op, a: u32, b: u32) -> u32 {
            match op {
                Op::Add => a.wrapping_add(b),
                Op::Sub => a.wrapping_sub(b),
                Op::And => a & b,
                Op::Or => a | b,
                Op::Xor => a ^ b,
                Op::Andn => a & !b,
                Op::Orn => a | !b,
                Op::Xnor => !(a ^ b),
                Op::Sll => a.wrapping_shl(b & 31),
                Op::Srl => a.wrapping_shr(b & 31),
                Op::Sra => ((a as i32).wrapping_shr(b & 31)) as u32,
                Op::Mul => a.wrapping_mul(b),
            }
        }

        proptest! {
            /// The interpreter agrees with a native Rust oracle on every
            /// ALU operation over random operand streams (differential
            /// testing of the execution semantics).
            #[test]
            fn interpreter_matches_native_semantics(
                seeds in proptest::collection::vec(any::<u32>(), 7..8),
                ops in proptest::collection::vec(op_strategy(), 1..40),
            ) {
                let mut asm = Asm::new();
                for (i, &sv) in seeds.iter().enumerate() {
                    // movi takes i32; materialise full u32 via sethi+ori.
                    asm.sethi(r(i as u8 + 1), (sv >> 10) as i32);
                    asm.ori(r(i as u8 + 1), r(i as u8 + 1), (sv & 0x3FF) as i32);
                }
                for &(op, rs1, rs2, _) in &ops {
                    let (d, a, b) = (r(rs1 % 7 + 1), r(rs1), r(rs2));
                    match op {
                        Op::Add => asm.add(d, a, b),
                        Op::Sub => asm.sub(d, a, b),
                        Op::And => asm.and(d, a, b),
                        Op::Or => asm.or(d, a, b),
                        Op::Xor => asm.xor(d, a, b),
                        Op::Andn => asm.andn(d, a, b),
                        Op::Orn => asm.orn(d, a, b),
                        Op::Xnor => asm.xnor(d, a, b),
                        Op::Sll => asm.sll(d, a, b),
                        Op::Srl => asm.srl(d, a, b),
                        Op::Sra => asm.sra(d, a, b),
                        Op::Mul => asm.mul(d, a, b),
                    }
                }
                let mut machine = Machine::new(asm.finish().unwrap());
                machine.run(100_000, |_| {}).unwrap();

                // Replay natively.
                let mut regs = [0u32; 8];
                for (i, &sv) in seeds.iter().enumerate() {
                    regs[i + 1] = ((sv >> 10) << 10) | (sv & 0x3FF);
                }
                for &(op, rs1, rs2, _) in &ops {
                    let v = oracle(op, regs[rs1 as usize], regs[rs2 as usize]);
                    regs[(rs1 % 7 + 1) as usize] = v;
                }
                for i in 1..8u8 {
                    prop_assert_eq!(
                        machine.reg(r(i)),
                        regs[i as usize],
                        "register r{} diverged", i
                    );
                }
            }

            /// Memory round trips: a random sequence of word stores then
            /// loads reproduces the stored values exactly.
            #[test]
            fn memory_semantics_roundtrip(
                writes in proptest::collection::vec((0u32..256, any::<i32>()), 1..24),
            ) {
                let mut asm = Asm::new();
                asm.sethi(r(10), 0x40); // base 0x10000
                for &(slot, val) in &writes {
                    asm.movi(r(1), val);
                    asm.sto(r(1), r(10), (slot * 4) as i32);
                }
                // Read each slot back into r2 and accumulate a checksum.
                asm.movi(r(3), 0);
                for &(slot, _) in &writes {
                    asm.ldo(r(2), r(10), (slot * 4) as i32);
                    asm.xor(r(3), r(3), r(2));
                    asm.addi(r(3), r(3), 1);
                }
                let mut machine = Machine::new(asm.finish().unwrap());
                machine.run(100_000, |_| {}).unwrap();

                // Native replay.
                let mut mem = std::collections::HashMap::new();
                for &(slot, val) in &writes {
                    mem.insert(slot, val as u32);
                }
                let mut check = 0u32;
                for &(slot, _) in &writes {
                    check ^= mem[&slot];
                    check = check.wrapping_add(1);
                }
                prop_assert_eq!(machine.reg(r(3)), check);
            }
        }
    }

    #[test]
    fn trace_records_effective_addresses_and_zero_flags() {
        let mut asm = Asm::new();
        asm.sethi(r(1), 16); // 0x4000
        asm.ldo(r(2), r(1), 0); // zero offset -> ldr0 pattern
        let mut m = Machine::new(asm.finish().unwrap());
        let trace = m.run_trace("z", 100).unwrap();
        let load = trace.insts().iter().find(|i| i.is_load()).unwrap();
        assert_eq!(load.ea, Some(0x4000));
        assert_eq!(load.optype().unwrap().to_string(), "ldr0");
    }
}
