//! Static instruction scheduling — a compiler stand-in.
//!
//! The paper's traces come from `gcc -O4` SPARC binaries, whose scheduler
//! separates dependent instructions inside basic blocks. The workload
//! programs in this repository are hand-written with dependent
//! instructions back to back, which leaves *more* collapsible interlocks
//! in the window than compiled code would (see the Figure 8 discussion in
//! EXPERIMENTS.md). [`schedule`] applies a classic critical-path list
//! scheduler to each basic block so that experiments can quantify that
//! sensitivity.
//!
//! The transformation is semantics-preserving and conservative:
//!
//! * blocks are delimited by control transfers and by every
//!   label-bindable position (all labels bind to block entries by
//!   construction in [`Asm`](crate::Asm));
//! * register RAW/WAR/WAW dependences (including `%icc`) are respected;
//! * memory operations stay in program order relative to each other;
//! * control instructions never move.

use ddsc_isa::{Inst, OpClass, Reg, Src2};

use crate::Program;

/// Schedules a finished program. Block entry points are recovered from
/// the program itself: every control-transfer target plus the entry
/// point (labels that are never jumped to are not real entries, so this
/// loses nothing).
pub fn schedule_program(program: &Program) -> Program {
    let starts: Vec<u32> = std::iter::once(0)
        .chain(
            program
                .insts()
                .iter()
                .filter(|i| i.op.is_control())
                .map(|i| i.target),
        )
        .collect();
    Program::new(schedule(program.insts(), &starts))
}

/// Reorders instructions within basic blocks to separate dependent
/// pairs, emulating a compiler's list scheduler.
///
/// `block_starts` must contain every instruction index that control can
/// enter at (label bindings); indices past the end are ignored. Returns
/// the scheduled instruction sequence, which is a permutation of `insts`
/// block by block.
pub fn schedule(insts: &[Inst], block_starts: &[u32]) -> Vec<Inst> {
    let n = insts.len();
    let mut is_start = vec![false; n + 1];
    for &s in block_starts {
        if (s as usize) <= n {
            is_start[s as usize] = true;
        }
    }
    let mut out = Vec::with_capacity(n);
    let mut begin = 0usize;
    for i in 0..=n {
        let ends_block = i == n || is_start[i];
        if ends_block && begin < i {
            schedule_block(&insts[begin..i], &mut out);
            begin = i;
        }
        if i < n && insts[i].op.is_control() {
            // The control instruction terminates a block and stays put.
            if begin < i {
                schedule_block(&insts[begin..i], &mut out);
            }
            out.push(insts[i]);
            begin = i + 1;
        }
    }
    debug_assert_eq!(out.len(), n);
    out
}

/// Register read/write sets of one instruction (conservative).
fn reads_writes(inst: &Inst) -> (Vec<Reg>, Option<Reg>) {
    let mut reads = Vec::new();
    let class = inst.op.class();
    let uses_rs1 = !matches!(class, OpClass::Move)
        || matches!(inst.op, ddsc_isa::Opcode::Ret | ddsc_isa::Opcode::Jmp);
    if uses_rs1 && !inst.rs1.is_zero() {
        reads.push(inst.rs1);
    }
    if let Src2::Reg(r) = inst.src2 {
        if !r.is_zero() {
            reads.push(r);
        }
    }
    if class == OpClass::Store && !inst.rd.is_zero() {
        reads.push(inst.rd); // store data
    }
    if inst.op.reads_icc() {
        reads.push(Reg::ICC);
    }
    let writes = if inst.op.writes_icc() {
        Some(Reg::ICC)
    } else if matches!(
        class,
        OpClass::Arith
            | OpClass::Logic
            | OpClass::Shift
            | OpClass::Move
            | OpClass::Load
            | OpClass::Mul
            | OpClass::Div
    ) && !inst.rd.is_zero()
    {
        Some(inst.rd)
    } else {
        None
    };
    (reads, writes)
}

/// Critical-path list scheduling of one straight-line block.
fn schedule_block(block: &[Inst], out: &mut Vec<Inst>) {
    let n = block.len();
    if n <= 2 {
        out.extend_from_slice(block);
        return;
    }
    // Build the dependence DAG (RAW, WAR, WAW on registers and %icc;
    // total order among memory operations).
    let mut preds = vec![0usize; n]; // unscheduled predecessor count
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut height = vec![1u32; n];
    let mut last_mem: Option<usize> = None;
    let mut last_write: Vec<Option<usize>> = vec![None; Reg::COUNT];
    let mut readers: Vec<Vec<usize>> = vec![Vec::new(); Reg::COUNT];

    let add_edge = |from: usize, to: usize, succs: &mut Vec<Vec<usize>>, preds: &mut Vec<usize>| {
        if from != to && !succs[from].contains(&to) {
            succs[from].push(to);
            preds[to] += 1;
        }
    };

    for (i, inst) in block.iter().enumerate() {
        let (reads, write) = reads_writes(inst);
        for r in &reads {
            if let Some(w) = last_write[r.index()] {
                add_edge(w, i, &mut succs, &mut preds); // RAW
            }
        }
        if let Some(d) = write {
            if let Some(w) = last_write[d.index()] {
                add_edge(w, i, &mut succs, &mut preds); // WAW
            }
            for &rd in &readers[d.index()] {
                add_edge(rd, i, &mut succs, &mut preds); // WAR
            }
            readers[d.index()].clear();
            last_write[d.index()] = Some(i);
        }
        for r in reads {
            readers[r.index()].push(i);
        }
        if inst.op.is_load() || inst.op.is_store() {
            if let Some(m) = last_mem {
                add_edge(m, i, &mut succs, &mut preds);
            }
            last_mem = Some(i);
        }
    }

    // Heights (longest path to a leaf) for critical-path priority.
    for i in (0..n).rev() {
        for &s in &succs[i] {
            height[i] = height[i].max(height[s] + 1);
        }
    }

    // Greedy list scheduling: among ready instructions prefer the one
    // with the greatest height; break ties by avoiding the producer of
    // the previously emitted instruction (separating dependent pairs),
    // then by program order.
    let mut ready: Vec<usize> = (0..n).filter(|&i| preds[i] == 0).collect();
    let mut emitted = 0usize;
    let mut last_emitted: Option<usize> = None;
    while emitted < n {
        let (k, &best) = ready
            .iter()
            .enumerate()
            .max_by_key(|&(_, &i)| {
                let depends_on_last = last_emitted.is_some_and(|l| succs[l].contains(&i));
                (height[i], !depends_on_last, std::cmp::Reverse(i))
            })
            .expect("acyclic block DAG always has a ready instruction");
        ready.swap_remove(k);
        out.push(block[best]);
        emitted += 1;
        last_emitted = Some(best);
        for &s in &succs[best] {
            preds[s] -= 1;
            if preds[s] == 0 {
                ready.push(s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Asm, Machine};
    use ddsc_isa::Reg;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    /// Builds, schedules and runs a program both ways; the architected
    /// final state must be identical.
    fn assert_equivalent(build: impl Fn(&mut Asm)) {
        let mut asm = Asm::new();
        build(&mut asm);
        let starts = asm.block_starts();
        let plain = asm.finish().unwrap();
        let scheduled = crate::Program::new(schedule(plain.insts(), &starts));

        let mut m1 = Machine::new(plain);
        m1.run(200_000, |_| {}).unwrap();
        let mut m2 = Machine::new(scheduled);
        m2.run(200_000, |_| {}).unwrap();
        for i in 1..32 {
            assert_eq!(m1.reg(r(i)), m2.reg(r(i)), "r{i} diverged");
        }
    }

    #[test]
    fn independent_chains_are_interleaved() {
        // Two independent chains written back to back: the scheduler
        // should interleave them, increasing dependence distances.
        let mut asm = Asm::new();
        asm.movi(r(1), 1);
        asm.addi(r(1), r(1), 1);
        asm.addi(r(1), r(1), 1);
        asm.movi(r(2), 5);
        asm.addi(r(2), r(2), 1);
        asm.addi(r(2), r(2), 1);
        let starts = asm.block_starts();
        let p = asm.finish().unwrap();
        let s = schedule(p.insts(), &starts);
        // Some instruction of chain 2 must now sit between chain-1 ops.
        let chain1_positions: Vec<usize> = s
            .iter()
            .enumerate()
            .filter(|(_, i)| i.rd == r(1))
            .map(|(k, _)| k)
            .collect();
        let contiguous = chain1_positions.windows(2).all(|w| w[1] == w[0] + 1);
        assert!(
            !contiguous,
            "chains should interleave: {chain1_positions:?}"
        );
    }

    #[test]
    fn semantics_preserved_for_alu_blocks() {
        assert_equivalent(|asm| {
            asm.movi(r(1), 3);
            asm.movi(r(2), 10);
            asm.add(r(3), r(1), r(2));
            asm.slli(r(4), r(3), 2);
            asm.sub(r(5), r(4), r(1));
            asm.xor(r(6), r(5), r(2));
            asm.movi(r(7), 9);
            asm.add(r(7), r(7), r(7));
        });
    }

    #[test]
    fn semantics_preserved_with_memory_and_branches() {
        assert_equivalent(|asm| {
            let top = asm.label();
            let done = asm.label();
            asm.sethi(r(10), 0x40);
            asm.movi(r(1), 8);
            asm.bind(top);
            asm.slli(r(2), r(1), 2);
            asm.add(r(2), r(2), r(10));
            asm.sto(r(1), r(2), 0);
            asm.ldo(r(3), r(2), 0);
            asm.add(r(4), r(4), r(3));
            asm.subi(r(1), r(1), 1);
            asm.cmpi(r(1), 0);
            asm.bgt(top);
            asm.ba(done);
            asm.bind(done);
        });
    }

    #[test]
    fn war_and_waw_hazards_respected() {
        assert_equivalent(|asm| {
            asm.movi(r(1), 7);
            asm.add(r(2), r(1), r(1)); // reads r1
            asm.movi(r(1), 100); // WAR on r1
            asm.add(r(3), r(1), r(2));
            asm.movi(r(3), 4); // WAW on r3
            asm.add(r(4), r(3), r(3));
        });
    }

    #[test]
    fn control_instructions_do_not_move() {
        let mut asm = Asm::new();
        let l = asm.label();
        asm.movi(r(1), 1);
        asm.movi(r(2), 2);
        asm.bind(l);
        asm.addi(r(1), r(1), 1);
        asm.cmpi(r(1), 3);
        asm.blt(l);
        let starts = asm.block_starts();
        let p = asm.finish().unwrap();
        let s = schedule(p.insts(), &starts);
        // The branch stays the final instruction.
        assert!(s.last().unwrap().op.is_cond_branch());
        assert_eq!(s.len(), p.len());
    }
}
