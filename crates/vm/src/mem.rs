//! Sparse byte-addressable memory.

use std::collections::HashMap;

const PAGE_BITS: u32 = 16;
const PAGE_SIZE: usize = 1 << PAGE_BITS;
const OFFSET_MASK: u32 = (PAGE_SIZE - 1) as u32;

/// A sparse, little-endian, byte-addressable 32-bit memory.
///
/// Pages of 64 KiB are allocated on first touch; untouched memory reads
/// as zero, so workloads can treat the address space as zero-initialised
/// (matching what a fresh process image would give them).
///
/// # Examples
///
/// ```
/// use ddsc_vm::Memory;
///
/// let mut mem = Memory::new();
/// mem.write_u32(0x8000, 0xDEAD_BEEF);
/// assert_eq!(mem.read_u32(0x8000), 0xDEAD_BEEF);
/// assert_eq!(mem.read_u8(0x8000), 0xEF); // little endian
/// assert_eq!(mem.read_u32(0x1234_0000), 0); // untouched
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Memory {
    pages: HashMap<u32, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Self {
        Memory::default()
    }

    /// Number of resident pages (for footprint diagnostics).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u32) -> u8 {
        match self.pages.get(&(addr >> PAGE_BITS)) {
            Some(page) => page[(addr & OFFSET_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u32, value: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_BITS)
            .or_insert_with(|| Box::new([0; PAGE_SIZE]));
        page[(addr & OFFSET_MASK) as usize] = value;
    }

    /// Reads a little-endian 32-bit word. The address may be unaligned
    /// (the VM layer enforces alignment for `ld`/`st`; this raw accessor
    /// does not).
    pub fn read_u32(&self, addr: u32) -> u32 {
        // Fast path: whole word within one page.
        if addr & OFFSET_MASK <= OFFSET_MASK - 3 {
            match self.pages.get(&(addr >> PAGE_BITS)) {
                Some(page) => {
                    let off = (addr & OFFSET_MASK) as usize;
                    u32::from_le_bytes([page[off], page[off + 1], page[off + 2], page[off + 3]])
                }
                None => 0,
            }
        } else {
            u32::from_le_bytes([
                self.read_u8(addr),
                self.read_u8(addr.wrapping_add(1)),
                self.read_u8(addr.wrapping_add(2)),
                self.read_u8(addr.wrapping_add(3)),
            ])
        }
    }

    /// Writes a little-endian 32-bit word.
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        let bytes = value.to_le_bytes();
        if addr & OFFSET_MASK <= OFFSET_MASK - 3 {
            let page = self
                .pages
                .entry(addr >> PAGE_BITS)
                .or_insert_with(|| Box::new([0; PAGE_SIZE]));
            let off = (addr & OFFSET_MASK) as usize;
            page[off..off + 4].copy_from_slice(&bytes);
        } else {
            for (i, b) in bytes.into_iter().enumerate() {
                self.write_u8(addr.wrapping_add(i as u32), b);
            }
        }
    }

    /// Bulk-writes a byte slice starting at `addr` (workload setup).
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), b);
        }
    }

    /// Bulk-writes 32-bit words starting at `addr` (workload setup).
    pub fn write_words(&mut self, addr: u32, words: &[u32]) {
        for (i, &w) in words.iter().enumerate() {
            self.write_u32(addr.wrapping_add(4 * i as u32), w);
        }
    }

    /// Bulk-reads `n` words starting at `addr` (test verification).
    pub fn read_words(&self, addr: u32, n: usize) -> Vec<u32> {
        (0..n)
            .map(|i| self.read_u32(addr.wrapping_add(4 * i as u32)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn untouched_memory_reads_zero() {
        let mem = Memory::new();
        assert_eq!(mem.read_u8(0), 0);
        assert_eq!(mem.read_u32(u32::MAX - 7), 0);
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn word_access_is_little_endian() {
        let mut mem = Memory::new();
        mem.write_u32(0x100, 0x0403_0201);
        assert_eq!(mem.read_u8(0x100), 1);
        assert_eq!(mem.read_u8(0x103), 4);
    }

    #[test]
    fn cross_page_word_access_works() {
        let mut mem = Memory::new();
        let addr = (1 << PAGE_BITS) - 2; // straddles the page boundary
        mem.write_u32(addr, 0xAABB_CCDD);
        assert_eq!(mem.read_u32(addr), 0xAABB_CCDD);
        assert_eq!(mem.resident_pages(), 2);
    }

    #[test]
    fn bulk_helpers_roundtrip() {
        let mut mem = Memory::new();
        mem.write_words(0x2000, &[1, 2, 3]);
        assert_eq!(mem.read_words(0x2000, 3), vec![1, 2, 3]);
        mem.write_bytes(0x3000, b"hi");
        assert_eq!(mem.read_u8(0x3001), b'i');
    }

    proptest! {
        /// Read-after-write returns the written value at arbitrary
        /// addresses, including page boundaries.
        #[test]
        fn read_after_write(addr in any::<u32>(), value in any::<u32>()) {
            let mut mem = Memory::new();
            mem.write_u32(addr, value);
            prop_assert_eq!(mem.read_u32(addr), value);
        }

        /// Writes to disjoint word addresses do not interfere.
        #[test]
        fn disjoint_writes_do_not_clobber(base in 0u32..0xFFFF_FF00, a in any::<u32>(), b in any::<u32>()) {
            let mut mem = Memory::new();
            mem.write_u32(base, a);
            mem.write_u32(base + 4, b);
            prop_assert_eq!(mem.read_u32(base), a);
            prop_assert_eq!(mem.read_u32(base + 4), b);
        }
    }
}
