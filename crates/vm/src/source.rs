//! Streaming trace generation: a [`TraceSource`] that runs the VM on
//! demand instead of materialising the whole trace up front.
//!
//! [`Machine::run_trace`] collects every retired instruction into one
//! O(trace-length) [`Trace`](ddsc_trace::Trace). [`MachineSource`]
//! produces the *identical* record stream, but pull-driven: each
//! [`fill`](ddsc_trace::TraceSource::fill) call steps the machine just
//! far enough to satisfy the request, so a consumer that evicts as it
//! goes (the streaming simulator) never holds more than its own window
//! of records.

use ddsc_trace::{SourceError, TraceInst, TraceSource};

use crate::machine::Machine;

/// A [`TraceSource`] that retires instructions from a [`Machine`] on
/// demand, up to a run-length cap.
///
/// Emits exactly the record stream of
/// [`Machine::run_trace`]`(name, max_insts)` on the same machine state:
/// filtered steps (nops) are skipped, and the stream ends at the cap or
/// when the program halts, whichever comes first.
///
/// # Examples
///
/// ```
/// use ddsc_trace::TraceSource;
/// use ddsc_vm::{Asm, Machine, MachineSource};
/// use ddsc_isa::Reg;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut asm = Asm::new();
/// asm.movi(Reg::new(1), 3);
/// let program = asm.finish()?;
/// let mut source = MachineSource::new(Machine::new(program), "movi", 100);
/// let mut chunk = Vec::new();
/// assert_eq!(source.fill(&mut chunk, 64)?, 1);
/// assert_eq!(source.fill(&mut chunk, 64)?, 0, "halted");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MachineSource {
    machine: Machine,
    name: String,
    remaining: usize,
}

impl MachineSource {
    /// Wraps `machine`, capping the stream at `max_insts` retired
    /// (non-nop) instructions.
    pub fn new(machine: Machine, name: impl Into<String>, max_insts: usize) -> Self {
        MachineSource {
            machine,
            name: name.into(),
            remaining: max_insts,
        }
    }

    /// The wrapped machine (inspection only; stepping it directly would
    /// desynchronise the stream).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Instructions still available under the run-length cap.
    pub fn remaining(&self) -> usize {
        self.remaining
    }
}

impl TraceSource for MachineSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn fill(&mut self, out: &mut Vec<TraceInst>, max: usize) -> Result<usize, SourceError> {
        let budget = max.min(self.remaining);
        let mut emitted = 0;
        while emitted < budget && !self.machine.is_halted() {
            match self.machine.step() {
                Ok(Some(rec)) => {
                    out.push(rec);
                    emitted += 1;
                }
                Ok(None) => {}
                Err(e) => return Err(SourceError::new(format!("vm fault in {}: {e}", self.name))),
            }
        }
        self.remaining -= emitted;
        Ok(emitted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Asm;
    use ddsc_isa::Reg;

    fn countdown(n: i32) -> Machine {
        let r1 = Reg::new(1);
        let mut asm = Asm::new();
        asm.movi(r1, n);
        let top = asm.label();
        asm.bind(top);
        asm.subi(r1, r1, 1);
        asm.cmpi(r1, 0);
        asm.bne(top);
        Machine::new(asm.finish().expect("assembles"))
    }

    /// Drains a source in `chunk`-sized pulls.
    fn drain(source: &mut MachineSource, chunk: usize) -> Vec<TraceInst> {
        let mut all = Vec::new();
        loop {
            let before = all.len();
            let n = source.fill(&mut all, chunk).expect("no fault");
            assert_eq!(all.len() - before, n);
            if n == 0 {
                break;
            }
        }
        // The end-of-stream condition is sticky.
        assert_eq!(source.fill(&mut Vec::new(), chunk).expect("no fault"), 0);
        all
    }

    #[test]
    fn streams_the_exact_run_trace_records() {
        let reference = countdown(50)
            .run_trace("countdown", 1_000_000)
            .expect("runs");
        for chunk in [1usize, 7, 64, 1 << 20] {
            let mut source = MachineSource::new(countdown(50), "countdown", 1_000_000);
            let streamed = drain(&mut source, chunk);
            assert_eq!(streamed, reference.insts(), "chunk {chunk}");
        }
    }

    #[test]
    fn the_cap_truncates_like_run_trace() {
        let reference = countdown(50).run_trace("countdown", 33).expect("runs");
        let mut source = MachineSource::new(countdown(50), "countdown", 33);
        let streamed = drain(&mut source, 10);
        assert_eq!(streamed.len(), 33);
        assert_eq!(streamed, reference.insts());
        assert_eq!(source.remaining(), 0);
    }
}
