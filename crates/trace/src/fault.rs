//! Record-aware fault injection into serialized traces.
//!
//! [`ddsc_util::fault`] mutates arbitrary byte buffers; this module
//! understands the trace file layout of [`crate::io`] and injects faults
//! at record granularity — mutate one field of one record, drop whole
//! records, truncate mid-record — which is what a torn write or a bad
//! sector actually does to a trace file. Every plan is seeded and
//! deterministic, so a recovery-path test that fails is reproducible
//! from its seed.
//!
//! The interesting corruption is the *silent* kind: a mutated field that
//! still decodes ([`read_trace`](crate::io::read_trace) succeeds) but
//! violates a semantic invariant — a load without an effective address,
//! a record count that disagrees with the payload. Those are exactly the
//! inputs `ddsc-core`'s `TraceValidator` exists to catch, and this
//! module is how its tests manufacture them.

use crate::io::{header_len, RECORD_LEN};
use ddsc_util::fault::{FaultOp, FaultPlan};
use ddsc_util::Pcg32;

/// The serialized fields of one record, addressable for targeted
/// mutation. Offsets follow the layout in [`crate::io`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Field {
    /// Instruction address (4 bytes).
    Pc,
    /// Opcode byte.
    Op,
    /// Destination register byte.
    Dest,
    /// First source register byte.
    Rs1,
    /// Second source register byte.
    Rs2,
    /// Store-data register byte.
    DataReg,
    /// Flag byte (zero detection, presence bits, branch outcome).
    Flags,
    /// Immediate (4 bytes).
    Imm,
    /// Effective address (4 bytes).
    Ea,
    /// Control-transfer target (4 bytes).
    Target,
    /// Traced result value (4 bytes).
    Value,
}

impl Field {
    /// `(offset within the record, width in bytes)`.
    pub fn span(self) -> (usize, usize) {
        match self {
            Field::Pc => (0, 4),
            Field::Op => (4, 1),
            Field::Dest => (5, 1),
            Field::Rs1 => (6, 1),
            Field::Rs2 => (7, 1),
            Field::DataReg => (8, 1),
            Field::Flags => (9, 1),
            Field::Imm => (10, 4),
            Field::Ea => (14, 4),
            Field::Target => (18, 4),
            Field::Value => (22, 4),
        }
    }

    /// Every addressable field.
    pub const ALL: [Field; 11] = [
        Field::Pc,
        Field::Op,
        Field::Dest,
        Field::Rs1,
        Field::Rs2,
        Field::DataReg,
        Field::Flags,
        Field::Imm,
        Field::Ea,
        Field::Target,
        Field::Value,
    ];
}

/// The byte offset of record `record` in a serialized trace whose name
/// is `name_len` bytes long.
pub fn record_offset(name_len: usize, record: usize) -> usize {
    4 + 2 + 2 + name_len + 8 + record * RECORD_LEN
}

/// XORs `mask` into the first byte of `field` in record `record` of a
/// serialized trace. Returns `false` (buffer unchanged) if the record
/// does not fit the buffer.
pub fn mutate_field(
    bytes: &mut [u8],
    name_len: usize,
    record: usize,
    field: Field,
    mask: u8,
) -> bool {
    let (off, _) = field.span();
    let pos = record_offset(name_len, record) + off;
    match bytes.get_mut(pos) {
        Some(b) if mask != 0 => {
            *b ^= mask;
            true
        }
        _ => false,
    }
}

/// Removes `count` records starting at `start` from a serialized trace.
/// With `patch_count` the header's record count is rewritten to match —
/// producing a *well-formed but shorter* trace (silent data loss);
/// without it the count disagrees with the payload and the reader fails
/// with a truncation error. Returns how many records were removed.
pub fn drop_records(
    bytes: &mut Vec<u8>,
    name_len: usize,
    start: usize,
    count: usize,
    patch_count: bool,
) -> usize {
    let body = record_offset(name_len, 0);
    if bytes.len() < body {
        return 0;
    }
    let total = (bytes.len() - body) / RECORD_LEN;
    if start >= total || count == 0 {
        return 0;
    }
    let removed = count.min(total - start);
    let from = record_offset(name_len, start);
    bytes.drain(from..from + removed * RECORD_LEN);
    if patch_count {
        let declared = u64::from_le_bytes(
            bytes[body - 8..body]
                .try_into()
                .expect("count field is 8 bytes"),
        );
        let patched = declared.saturating_sub(removed as u64);
        bytes[body - 8..body].copy_from_slice(&patched.to_le_bytes());
    }
    removed
}

/// A deterministic, seeded fault plan over a serialized trace: a mix of
/// record-field mutations, record drops, bit flips and truncations.
///
/// # Examples
///
/// ```
/// use ddsc_trace::fault::TraceFaultPlan;
/// use ddsc_trace::io::{read_trace, write_trace};
/// use ddsc_trace::{Trace, TraceInst};
/// use ddsc_isa::{Opcode, Reg};
///
/// let mut t = Trace::new("demo");
/// for i in 0..64 {
///     t.push(TraceInst::alu(4 * i, Opcode::Add, Reg::new(1), Reg::new(2), None, Some(1), 0));
/// }
/// let mut bytes = Vec::new();
/// write_trace(&mut bytes, &t).unwrap();
/// TraceFaultPlan::new(1996, 4).apply_named(&mut bytes, "demo");
/// // The mutated file either fails to decode or decodes to a different
/// // trace — never panics.
/// let _ = read_trace(bytes.as_slice());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceFaultPlan {
    /// Generator seed: same seed, same faults.
    pub seed: u64,
    /// Number of faults to inject.
    pub faults: usize,
}

impl TraceFaultPlan {
    /// A plan injecting `faults` faults drawn from `seed`.
    pub fn new(seed: u64, faults: usize) -> TraceFaultPlan {
        TraceFaultPlan { seed, faults }
    }

    /// Applies the plan to a serialized trace named `name` (the name
    /// length fixes the record grid). Returns the number of faults that
    /// landed.
    pub fn apply_named(&self, bytes: &mut Vec<u8>, name: &str) -> usize {
        let mut rng = Pcg32::new(self.seed);
        let mut applied = 0;
        for _ in 0..self.faults {
            let body = header_len(name);
            let records = bytes.len().saturating_sub(body) / RECORD_LEN;
            match rng.range(0, 8) {
                // Targeted field mutation: decodes most of the time,
                // corrupts semantics — the validator's prey.
                0..=3 if records > 0 => {
                    let record = rng.range(0, records as u32) as usize;
                    let field = Field::ALL[rng.range(0, Field::ALL.len() as u32) as usize];
                    let mask = rng.range(1, 256) as u8;
                    if mutate_field(bytes, name.len(), record, field, mask) {
                        applied += 1;
                    }
                }
                // Record drops, half with a patched (lying) count.
                4 | 5 if records > 0 => {
                    let start = rng.range(0, records as u32) as usize;
                    let count = rng.range(1, 4) as usize;
                    let patch = rng.chance(1, 2);
                    if drop_records(bytes, name.len(), start, count, patch) > 0 {
                        applied += 1;
                    }
                }
                // Raw byte-level damage anywhere in the file, header
                // included.
                _ => {
                    let len = bytes.len();
                    if len == 0 {
                        continue;
                    }
                    let op = if rng.chance(1, 4) {
                        FaultOp::Truncate {
                            keep: rng.range(0, len as u32) as usize,
                        }
                    } else {
                        FaultOp::FlipBit {
                            offset: rng.range(0, len as u32) as usize,
                            bit: rng.range(0, 8) as u8,
                        }
                    };
                    applied += FaultPlan::new(vec![op]).apply(bytes);
                }
            }
        }
        applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{read_trace, write_trace, TraceIoError};
    use crate::{Trace, TraceInst};
    use ddsc_isa::{Opcode, Reg};

    fn sample(n: usize) -> Trace {
        let mut t = Trace::new("fault");
        for i in 0..n {
            t.push(TraceInst::load(
                4 * i as u32,
                Opcode::Ld,
                Reg::new(1),
                Reg::new(2),
                None,
                Some(0),
                0,
                0x100 + 4 * i as u32,
            ));
        }
        t
    }

    fn serialized(n: usize) -> Vec<u8> {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample(n)).unwrap();
        buf
    }

    #[test]
    fn field_spans_tile_the_record_exactly() {
        let mut covered = [false; RECORD_LEN];
        for f in Field::ALL {
            let (off, width) = f.span();
            for slot in &mut covered[off..off + width] {
                assert!(!*slot, "field {f:?} overlaps another");
                *slot = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "fields must cover the record");
    }

    #[test]
    fn mutating_the_ea_presence_flag_makes_a_load_lose_its_address() {
        let mut bytes = serialized(3);
        // Bit 3 of the flag byte is FLAG_HAS_EA.
        assert!(mutate_field(&mut bytes, 5, 1, Field::Flags, 1 << 3));
        let t = read_trace(bytes.as_slice()).unwrap();
        assert!(t[1].is_load());
        assert_eq!(t[1].ea, None, "the fault silently strips the address");
        assert_eq!(t[0].ea, Some(0x100), "other records untouched");
    }

    #[test]
    fn unpatched_record_drop_is_a_detectable_truncation() {
        let mut bytes = serialized(5);
        assert_eq!(drop_records(&mut bytes, 5, 2, 2, false), 2);
        let err = read_trace(bytes.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::Io(_)), "got {err}");
    }

    #[test]
    fn patched_record_drop_is_silent_data_loss() {
        let mut bytes = serialized(5);
        assert_eq!(drop_records(&mut bytes, 5, 1, 2, true), 2);
        let t = read_trace(bytes.as_slice()).unwrap();
        assert_eq!(t.len(), 3, "reader sees a well-formed shorter trace");
        assert_eq!(t[0], sample(5)[0]);
        assert_eq!(t[1], sample(5)[3], "middle records are gone");
    }

    #[test]
    fn drops_beyond_the_tail_are_clamped() {
        let mut bytes = serialized(3);
        assert_eq!(drop_records(&mut bytes, 5, 2, 10, true), 1);
        assert_eq!(read_trace(bytes.as_slice()).unwrap().len(), 2);
        assert_eq!(drop_records(&mut bytes, 5, 9, 1, true), 0);
    }

    #[test]
    fn plans_are_deterministic() {
        let mut a = serialized(50);
        let mut b = serialized(50);
        let plan = TraceFaultPlan::new(123, 6);
        assert_eq!(
            plan.apply_named(&mut a, "fault"),
            plan.apply_named(&mut b, "fault")
        );
        assert_eq!(a, b, "same seed, same damage");
        let mut c = serialized(50);
        TraceFaultPlan::new(124, 6).apply_named(&mut c, "fault");
        assert_ne!(a, c, "different seed, different damage");
    }

    #[test]
    fn every_seed_damages_the_file() {
        for seed in 0..32 {
            let mut bytes = serialized(40);
            let clean = bytes.clone();
            let applied = TraceFaultPlan::new(seed, 3).apply_named(&mut bytes, "fault");
            assert!(applied > 0, "seed {seed} applied nothing");
            assert_ne!(bytes, clean, "seed {seed} left the file intact");
        }
    }
}
