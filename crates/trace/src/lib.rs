//! Dynamic instruction traces.
//!
//! The paper drives its simulator with SPARC v8 traces produced by `qpt2`;
//! here traces are produced by executing [`ddsc-vm`](../ddsc_vm/index.html)
//! programs. This crate defines:
//!
//! * [`TraceInst`] — one dynamic instruction: opcode, register sources and
//!   destination, immediate, dynamically-detected zero operands, effective
//!   address and branch outcome;
//! * [`Trace`] — an in-memory trace with a name and metadata;
//! * [`io`] — a compact little-endian binary file format (the stand-in for
//!   `qpt2` trace files), so traces can be saved and re-read by the CLI;
//! * [`TraceStats`] — instruction-mix statistics backing Table 1/2-style
//!   reports;
//! * [`stream`] — the [`TraceSource`] abstraction for producing traces
//!   incrementally, so paper-scale runs never materialise a whole trace.
//!
//! # Examples
//!
//! ```
//! use ddsc_trace::{Trace, TraceInst};
//! use ddsc_isa::{Opcode, Reg};
//!
//! let mut trace = Trace::new("demo");
//! trace.push(TraceInst::alu(0x1000, Opcode::Add, Reg::new(1), Reg::new(2), None, Some(4), 0));
//! assert_eq!(trace.len(), 1);
//! ```

pub mod fault;
pub mod io;
pub mod record;
pub mod stats;
pub mod stream;

use std::ops::Index;

pub use record::{SourceIter, TraceInst};
pub use stats::TraceStats;
pub use stream::{SliceSource, SourceError, TraceSource};

/// An in-memory dynamic instruction trace.
///
/// Nops never appear in a trace — the paper filters them and so does the
/// VM's trace sink.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    name: String,
    insts: Vec<TraceInst>,
}

impl Trace {
    /// Creates an empty trace with a benchmark name.
    pub fn new(name: impl Into<String>) -> Self {
        Trace {
            name: name.into(),
            insts: Vec::new(),
        }
    }

    /// Creates a trace from parts (used by the binary reader).
    pub fn from_parts(name: impl Into<String>, insts: Vec<TraceInst>) -> Self {
        Trace {
            name: name.into(),
            insts,
        }
    }

    /// The benchmark name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends one dynamic instruction.
    pub fn push(&mut self, inst: TraceInst) {
        self.insts.push(inst);
    }

    /// Number of dynamic instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The instructions as a slice.
    pub fn insts(&self) -> &[TraceInst] {
        &self.insts
    }

    /// Iterates over the instructions.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceInst> {
        self.insts.iter()
    }

    /// Computes instruction-mix statistics.
    pub fn stats(&self) -> TraceStats {
        TraceStats::of(self)
    }

    /// Truncates the trace to at most `n` instructions (the paper caps
    /// benchmarks at 250M instructions the same way).
    pub fn truncate(&mut self, n: usize) {
        self.insts.truncate(n);
    }
}

impl Index<usize> for Trace {
    type Output = TraceInst;

    fn index(&self, idx: usize) -> &TraceInst {
        &self.insts[idx]
    }
}

impl Extend<TraceInst> for Trace {
    fn extend<T: IntoIterator<Item = TraceInst>>(&mut self, iter: T) {
        self.insts.extend(iter);
    }
}

impl FromIterator<TraceInst> for Trace {
    fn from_iter<T: IntoIterator<Item = TraceInst>>(iter: T) -> Self {
        Trace {
            name: String::new(),
            insts: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceInst;
    type IntoIter = std::slice::Iter<'a, TraceInst>;

    fn into_iter(self) -> Self::IntoIter {
        self.insts.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddsc_isa::{Opcode, Reg};

    fn inst() -> TraceInst {
        TraceInst::alu(
            0x40,
            Opcode::Add,
            Reg::new(1),
            Reg::new(2),
            None,
            Some(1),
            0,
        )
    }

    #[test]
    fn push_len_index() {
        let mut t = Trace::new("x");
        assert!(t.is_empty());
        t.push(inst());
        t.push(inst());
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].pc, 0x40);
        assert_eq!(t.name(), "x");
    }

    #[test]
    fn truncate_caps_length() {
        let mut t = Trace::new("x");
        for _ in 0..10 {
            t.push(inst());
        }
        t.truncate(4);
        assert_eq!(t.len(), 4);
        t.truncate(100);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn collect_and_extend() {
        let t: Trace = (0..3).map(|_| inst()).collect();
        assert_eq!(t.len(), 3);
        let mut t2 = Trace::new("y");
        t2.extend(t.iter().copied());
        assert_eq!(t2.len(), 3);
    }
}
