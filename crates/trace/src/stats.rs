//! Instruction-mix statistics (the backing data for Table 1 / Table 2
//! style reports).

use std::fmt;

use ddsc_isa::OpClass;
use ddsc_util::stats::Percent;
use ddsc_util::TextTable;

use crate::Trace;

/// Instruction-mix statistics of one trace.
///
/// # Examples
///
/// ```
/// use ddsc_trace::{Trace, TraceInst};
/// use ddsc_isa::{Opcode, Reg};
///
/// let mut t = Trace::new("demo");
/// t.push(TraceInst::alu(0, Opcode::Add, Reg::new(1), Reg::new(2), None, Some(1), 0));
/// t.push(TraceInst::load(4, Opcode::Ld, Reg::new(3), Reg::new(1), None, Some(0), 0, 64));
/// let s = t.stats();
/// assert_eq!(s.total(), 2);
/// assert_eq!(s.loads(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceStats {
    total: u64,
    arith: u64,
    logic: u64,
    shift: u64,
    mov: u64,
    load: u64,
    store: u64,
    cond_branch: u64,
    uncond: u64,
    calls_returns: u64,
    mul: u64,
    div: u64,
    taken_branches: u64,
}

impl TraceStats {
    /// Computes the statistics of a trace.
    pub fn of(trace: &Trace) -> Self {
        let mut s = TraceStats::default();
        for inst in trace {
            s.total += 1;
            match inst.op.class() {
                OpClass::Arith => s.arith += 1,
                OpClass::Logic => s.logic += 1,
                OpClass::Shift => s.shift += 1,
                OpClass::Move => s.mov += 1,
                OpClass::Load => s.load += 1,
                OpClass::Store => s.store += 1,
                OpClass::CondBranch => {
                    s.cond_branch += 1;
                    if inst.taken {
                        s.taken_branches += 1;
                    }
                }
                OpClass::Uncond => {
                    s.uncond += 1;
                    if matches!(inst.op, ddsc_isa::Opcode::Call | ddsc_isa::Opcode::Ret) {
                        s.calls_returns += 1;
                    }
                }
                OpClass::Mul => s.mul += 1,
                OpClass::Div => s.div += 1,
                OpClass::Nop => {}
            }
        }
        s
    }

    /// Total dynamic instructions.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Dynamic load count.
    pub fn loads(&self) -> u64 {
        self.load
    }

    /// Dynamic store count.
    pub fn stores(&self) -> u64 {
        self.store
    }

    /// Dynamic conditional-branch count.
    pub fn cond_branches(&self) -> u64 {
        self.cond_branch
    }

    /// Dynamic taken conditional-branch count.
    pub fn taken_branches(&self) -> u64 {
        self.taken_branches
    }

    /// Dynamic call + return count (the paper singles these out for `li`).
    pub fn calls_returns(&self) -> u64 {
        self.calls_returns
    }

    /// Dynamic shift count (the paper notes shifts are ~6% of the mix).
    pub fn shifts(&self) -> u64 {
        self.shift
    }

    /// Conditional branches as a fraction of all instructions
    /// (Table 2, "Conditional Branches (%)").
    pub fn cond_branch_pct(&self) -> Percent {
        Percent::new(self.cond_branch, self.total)
    }

    /// Loads as a fraction of all instructions.
    pub fn load_pct(&self) -> Percent {
        Percent::new(self.load, self.total)
    }

    /// Shifts as a fraction of all instructions.
    pub fn shift_pct(&self) -> Percent {
        Percent::new(self.shift, self.total)
    }

    /// Renders the mix as an aligned text table.
    pub fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(vec!["class".into(), "count".into(), "%".into()]);
        let rows: [(&str, u64); 11] = [
            ("arith", self.arith),
            ("logic", self.logic),
            ("shift", self.shift),
            ("move", self.mov),
            ("load", self.load),
            ("store", self.store),
            ("cond-branch", self.cond_branch),
            ("uncond", self.uncond),
            ("mul", self.mul),
            ("div", self.div),
            ("total", self.total),
        ];
        for (name, count) in rows {
            t.row(vec![
                name.into(),
                count.to_string(),
                Percent::new(count, self.total).to_string(),
            ]);
        }
        t
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceInst;
    use ddsc_isa::{Cond, Opcode, Reg};

    fn mixed_trace() -> Trace {
        let r = Reg::new;
        let mut t = Trace::new("mix");
        t.push(TraceInst::alu(0, Opcode::Add, r(1), r(2), None, Some(1), 0));
        t.push(TraceInst::alu(4, Opcode::Sll, r(1), r(2), None, Some(3), 0));
        t.push(TraceInst::alu(
            8,
            Opcode::Or,
            r(1),
            r(2),
            Some(r(3)),
            None,
            0,
        ));
        t.push(TraceInst::mov(12, Opcode::Mov, r(4), None, Some(9), 0));
        t.push(TraceInst::load(
            16,
            Opcode::Ld,
            r(5),
            r(4),
            None,
            Some(0),
            0,
            0x40,
        ));
        t.push(TraceInst::store(
            20,
            Opcode::St,
            r(5),
            r(4),
            None,
            Some(4),
            0,
            0x44,
        ));
        t.push(TraceInst::cmp(24, r(5), None, Some(7), 0));
        t.push(TraceInst::cond_branch(28, Opcode::Bcc(Cond::Ne), true, 0));
        t.push(TraceInst::uncond(
            32,
            Opcode::Call,
            Some(Reg::LINK),
            None,
            64,
        ));
        t.push(TraceInst::uncond(
            36,
            Opcode::Ret,
            None,
            Some(Reg::LINK),
            36,
        ));
        t.push(TraceInst::alu(
            40,
            Opcode::Mul,
            r(6),
            r(5),
            Some(r(5)),
            None,
            0,
        ));
        t.push(TraceInst::alu(
            44,
            Opcode::Div,
            r(6),
            r(6),
            None,
            Some(3),
            0,
        ));
        t
    }

    #[test]
    fn class_counts_are_correct() {
        let s = mixed_trace().stats();
        assert_eq!(s.total(), 12);
        assert_eq!(s.loads(), 1);
        assert_eq!(s.stores(), 1);
        assert_eq!(s.cond_branches(), 1);
        assert_eq!(s.taken_branches(), 1);
        assert_eq!(s.calls_returns(), 2);
        assert_eq!(s.shifts(), 1);
        // cmp counts as arith (the paper's `ar` class includes compares).
        assert_eq!(s.arith, 2);
    }

    #[test]
    fn percentages_use_total() {
        let s = mixed_trace().stats();
        assert!((s.cond_branch_pct().value() - 100.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn table_renders_all_classes() {
        let s = mixed_trace().stats();
        let rendered = s.to_string();
        for label in ["arith", "shift", "cond-branch", "total"] {
            assert!(rendered.contains(label), "missing {label}");
        }
    }

    #[test]
    fn taken_branch_counting() {
        let mut t = Trace::new("b");
        t.push(TraceInst::cond_branch(0, Opcode::Bcc(Cond::Eq), true, 4));
        t.push(TraceInst::cond_branch(4, Opcode::Bcc(Cond::Eq), false, 8));
        t.push(TraceInst::cond_branch(8, Opcode::Bcc(Cond::Ne), true, 0));
        let s = t.stats();
        assert_eq!(s.cond_branches(), 3);
        assert_eq!(s.taken_branches(), 2);
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let s = Trace::new("e").stats();
        assert_eq!(s.total(), 0);
        assert_eq!(s.cond_branch_pct().value(), 0.0);
    }
}
