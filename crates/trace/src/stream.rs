//! Incremental trace production.
//!
//! The paper's runs are 250M instructions; materialising such a trace as
//! a `Vec<TraceInst>` costs gigabytes. A [`TraceSource`] instead hands
//! the simulator one bounded chunk at a time — the VM emits instructions
//! as it executes, the chunked cache decodes one checksummed frame per
//! pull, and an in-memory [`Trace`] can replay itself through
//! [`SliceSource`] so tests can compare streamed and whole-trace runs
//! bit for bit.
//!
//! # Examples
//!
//! ```
//! use ddsc_trace::{SliceSource, Trace, TraceInst, TraceSource};
//! use ddsc_isa::{Opcode, Reg};
//!
//! let mut t = Trace::new("t");
//! for pc in 0..10u32 {
//!     t.push(TraceInst::alu(pc * 4, Opcode::Add, Reg::new(1), Reg::new(2), None, Some(1), 0));
//! }
//! let mut src = SliceSource::new(&t);
//! let mut chunk = Vec::new();
//! let mut total = 0;
//! while src.fill(&mut chunk, 3).unwrap() > 0 {
//!     total += chunk.len();
//!     chunk.clear();
//! }
//! assert_eq!(total, 10);
//! ```

use std::fmt;

use crate::{Trace, TraceInst};

/// A failure in the machinery that produces trace instructions — a VM
/// fault, an I/O error, a corrupt cache frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceError {
    message: String,
}

impl SourceError {
    /// Wraps a producer-side failure description.
    pub fn new(message: impl Into<String>) -> Self {
        SourceError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace source failed: {}", self.message)
    }
}

impl std::error::Error for SourceError {}

/// Anything that can produce a trace incrementally, in program order.
///
/// `fill` appends up to `max` instructions to `out` and returns how many
/// it appended; `0` means the source is exhausted (and every later call
/// must keep returning `0`). Sources are single-pass: the simulator
/// consumes each instruction exactly once.
pub trait TraceSource {
    /// Identifier recorded in results (a benchmark or trace name).
    fn name(&self) -> &str;

    /// Appends up to `max` instructions to `out`; returns the count
    /// appended, `0` at end of trace.
    fn fill(&mut self, out: &mut Vec<TraceInst>, max: usize) -> Result<usize, SourceError>;
}

/// Streams an in-memory [`Trace`] chunk by chunk.
///
/// The bridge between the two pipelines: whatever accepts a
/// [`TraceSource`] can run off a materialised trace, which is how the
/// chunk-boundary bit-identity tests drive both paths from one input.
#[derive(Debug)]
pub struct SliceSource<'a> {
    trace: &'a Trace,
    pos: usize,
}

impl<'a> SliceSource<'a> {
    /// Streams `trace` from its beginning.
    pub fn new(trace: &'a Trace) -> Self {
        SliceSource { trace, pos: 0 }
    }
}

impl TraceSource for SliceSource<'_> {
    fn name(&self) -> &str {
        self.trace.name()
    }

    fn fill(&mut self, out: &mut Vec<TraceInst>, max: usize) -> Result<usize, SourceError> {
        let insts = self.trace.insts();
        let take = max.min(insts.len() - self.pos);
        out.extend_from_slice(&insts[self.pos..self.pos + take]);
        self.pos += take;
        Ok(take)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddsc_isa::{Opcode, Reg};

    fn trace(n: usize) -> Trace {
        let mut t = Trace::new("t");
        for i in 0..n {
            t.push(TraceInst::alu(
                i as u32 * 4,
                Opcode::Add,
                Reg::new(1),
                Reg::new(2),
                None,
                Some(1),
                0,
            ));
        }
        t
    }

    #[test]
    fn slice_source_round_trips_the_trace() {
        let t = trace(10);
        let mut src = SliceSource::new(&t);
        assert_eq!(src.name(), "t");
        let mut got = Vec::new();
        loop {
            let n = src.fill(&mut got, 4).unwrap();
            if n == 0 {
                break;
            }
        }
        assert_eq!(got, t.insts());
        // Exhausted sources stay exhausted.
        assert_eq!(src.fill(&mut got, 4).unwrap(), 0);
    }

    #[test]
    fn fill_respects_max() {
        let t = trace(5);
        let mut src = SliceSource::new(&t);
        let mut out = Vec::new();
        assert_eq!(src.fill(&mut out, 2).unwrap(), 2);
        assert_eq!(out.len(), 2);
        assert_eq!(src.fill(&mut out, 100).unwrap(), 3);
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn source_error_displays_its_message() {
        let e = SourceError::new("disk on fire");
        assert!(e.to_string().contains("disk on fire"));
    }
}
