//! The dynamic-instruction record.

use std::fmt;

use ddsc_isa::{OpType, Opcode, OperandKind, PatClass, Reg};

/// Zero-detection flag for the first register source.
pub const ZERO_RS1: u8 = 1 << 0;
/// Zero-detection flag for the second register source.
pub const ZERO_RS2: u8 = 1 << 1;

/// One dynamic instruction as it appears in a trace.
///
/// Besides the architectural fields, the record carries the dynamic
/// information the study needs:
///
/// * `zero_flags` — whether each register source held the value 0 when it
///   was read (the paper's zero-operand detection also covers registers
///   that *happen* to contain zero, not just `%g0`);
/// * `ea` — the effective address of loads and stores, consumed by the
///   stride predictor and by perfect memory disambiguation;
/// * `taken` / `target` — the branch outcome, consumed by the branch
///   predictors.
///
/// Register dependences are exposed through [`TraceInst::reg_sources`];
/// the hardwired zero register never produces a dependence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceInst {
    /// Instruction address.
    pub pc: u32,
    /// Operation.
    pub op: Opcode,
    /// Destination register (`%icc` for `cmp`, `%r15` for `call`);
    /// `None` for stores, branches and writes to `%g0`.
    pub dest: Option<Reg>,
    /// First register source.
    pub rs1: Option<Reg>,
    /// Second register source (register form of `src2`).
    pub rs2: Option<Reg>,
    /// Immediate source (immediate form of `src2`).
    pub imm: Option<i32>,
    /// Store-data source register.
    pub data_reg: Option<Reg>,
    /// Dynamic zero-value detection for `rs1`/`rs2` ([`ZERO_RS1`], [`ZERO_RS2`]).
    pub zero_flags: u8,
    /// Effective address for loads and stores.
    pub ea: Option<u32>,
    /// Conditional-branch outcome.
    pub taken: bool,
    /// Control-transfer target PC (taken branches, calls, returns, jumps).
    pub target: u32,
    /// The value written to the destination register, recorded by the VM
    /// for every register-writing instruction. Consumed by the value-
    /// prediction extension (the paper's §1/Figure 1d d-speculation on
    /// data values).
    pub value: Option<u32>,
}

#[allow(clippy::too_many_arguments)] // mirrors the instruction format
impl TraceInst {
    /// Builds an ALU record: `dest = rs1 op (rs2|imm)`.
    ///
    /// A destination of `%g0` is recorded as no destination (writes to the
    /// zero register are architectural no-ops).
    pub fn alu(
        pc: u32,
        op: Opcode,
        rd: Reg,
        rs1: Reg,
        rs2: Option<Reg>,
        imm: Option<i32>,
        zero_flags: u8,
    ) -> Self {
        TraceInst {
            pc,
            op,
            dest: if rd.is_zero() { None } else { Some(rd) },
            rs1: Some(rs1),
            rs2,
            imm,
            data_reg: None,
            zero_flags,
            ea: None,
            taken: false,
            target: 0,
            value: None,
        }
    }

    /// Builds a compare record: `%icc = flags(rs1 - (rs2|imm))`.
    pub fn cmp(pc: u32, rs1: Reg, rs2: Option<Reg>, imm: Option<i32>, zero_flags: u8) -> Self {
        TraceInst {
            pc,
            op: Opcode::Cmp,
            dest: Some(Reg::ICC),
            rs1: Some(rs1),
            rs2,
            imm,
            data_reg: None,
            zero_flags,
            ea: None,
            taken: false,
            target: 0,
            value: None,
        }
    }

    /// Builds a move record: `dest = (rs2|imm)`.
    pub fn mov(
        pc: u32,
        op: Opcode,
        rd: Reg,
        rs2: Option<Reg>,
        imm: Option<i32>,
        zero_flags: u8,
    ) -> Self {
        TraceInst {
            pc,
            op,
            dest: if rd.is_zero() { None } else { Some(rd) },
            rs1: None,
            rs2,
            imm,
            data_reg: None,
            zero_flags,
            ea: None,
            taken: false,
            target: 0,
            value: None,
        }
    }

    /// Builds a load record: `dest = mem[rs1 + (rs2|imm)]`.
    pub fn load(
        pc: u32,
        op: Opcode,
        rd: Reg,
        rs1: Reg,
        rs2: Option<Reg>,
        imm: Option<i32>,
        zero_flags: u8,
        ea: u32,
    ) -> Self {
        TraceInst {
            pc,
            op,
            dest: if rd.is_zero() { None } else { Some(rd) },
            rs1: Some(rs1),
            rs2,
            imm,
            data_reg: None,
            zero_flags,
            ea: Some(ea),
            taken: false,
            target: 0,
            value: None,
        }
    }

    /// Builds a store record: `mem[rs1 + (rs2|imm)] = data`.
    pub fn store(
        pc: u32,
        op: Opcode,
        data: Reg,
        rs1: Reg,
        rs2: Option<Reg>,
        imm: Option<i32>,
        zero_flags: u8,
        ea: u32,
    ) -> Self {
        TraceInst {
            pc,
            op,
            dest: None,
            rs1: Some(rs1),
            rs2,
            imm,
            data_reg: if data.is_zero() { None } else { Some(data) },
            zero_flags,
            ea: Some(ea),
            taken: false,
            target: 0,
            value: None,
        }
    }

    /// Builds a conditional-branch record.
    pub fn cond_branch(pc: u32, op: Opcode, taken: bool, target: u32) -> Self {
        debug_assert!(op.is_cond_branch());
        TraceInst {
            pc,
            op,
            dest: None,
            rs1: None,
            rs2: None,
            imm: None,
            data_reg: None,
            zero_flags: 0,
            ea: None,
            taken,
            target,
            value: None,
        }
    }

    /// Builds an unconditional-control record (`ba`, `call`, `ret`, `jmp`).
    ///
    /// `call` writes the link register; `ret`/`jmp` read `rs1`.
    pub fn uncond(pc: u32, op: Opcode, dest: Option<Reg>, rs1: Option<Reg>, target: u32) -> Self {
        TraceInst {
            pc,
            op,
            dest,
            rs1,
            rs2: None,
            imm: None,
            data_reg: None,
            zero_flags: 0,
            ea: None,
            taken: true,
            target,
            value: None,
        }
    }

    /// Returns the record with its destination value attached (used by
    /// the VM; `None`-destination records ignore the value).
    pub fn with_value(mut self, value: u32) -> Self {
        if self.dest.is_some() {
            self.value = Some(value);
        }
        self
    }

    /// Iterates over the register names this instruction truly depends on:
    /// `rs1`, `rs2`, the store-data register, and `%icc` for conditional
    /// branches. The hardwired zero register is skipped — it can never
    /// carry a dependence.
    pub fn reg_sources(&self) -> SourceIter {
        SourceIter {
            inst: *self,
            idx: 0,
        }
    }

    /// The address-generation register sources of a load or store
    /// (the dependences that load-speculation may bypass). Empty for
    /// non-memory operations.
    pub fn addr_sources(&self) -> impl Iterator<Item = Reg> + '_ {
        let mem = self.op.is_load() || self.op.is_store();
        [self.rs1, self.rs2]
            .into_iter()
            .flatten()
            .filter(move |r| mem && !r.is_zero())
    }

    /// Whether the instruction is a load.
    pub fn is_load(&self) -> bool {
        self.op.is_load()
    }

    /// Whether the instruction is a store.
    pub fn is_store(&self) -> bool {
        self.op.is_store()
    }

    /// The dynamic operand kind of `rs1`, if present.
    fn rs1_kind(&self) -> Option<OperandKind> {
        self.rs1.map(|r| {
            if r.is_zero() || self.zero_flags & ZERO_RS1 != 0 {
                OperandKind::Zero
            } else {
                OperandKind::Reg
            }
        })
    }

    /// The dynamic operand kind of the second operand, if present.
    fn src2_kind(&self) -> Option<OperandKind> {
        if let Some(r) = self.rs2 {
            Some(if r.is_zero() || self.zero_flags & ZERO_RS2 != 0 {
                OperandKind::Zero
            } else {
                OperandKind::Reg
            })
        } else {
            self.imm.map(|i| {
                if i == 0 {
                    OperandKind::Zero
                } else {
                    OperandKind::Imm
                }
            })
        }
    }

    /// The `arri`-style operand pattern of this dynamic instruction, or
    /// `None` for operations outside the pattern vocabulary (mul, div,
    /// unconditional control).
    ///
    /// # Examples
    ///
    /// ```
    /// use ddsc_trace::TraceInst;
    /// use ddsc_isa::{Opcode, Reg};
    ///
    /// let i = TraceInst::alu(0, Opcode::Add, Reg::new(1), Reg::new(2), None, Some(8), 0);
    /// assert_eq!(i.optype().unwrap().to_string(), "arri");
    /// ```
    pub fn optype(&self) -> Option<OpType> {
        let class = PatClass::of(self.op)?;
        let kinds: Vec<OperandKind> = match class {
            PatClass::Brc => Vec::new(),
            PatClass::Mv => self.src2_kind().into_iter().collect(),
            _ => self
                .rs1_kind()
                .into_iter()
                .chain(self.src2_kind())
                .collect(),
        };
        Some(OpType::new(class, &kinds))
    }

    /// Number of counting (non-zero) source operands — this instruction's
    /// own contribution to a dependence-expression size. Returns 0 for
    /// non-pattern operations.
    pub fn operand_count(&self) -> u8 {
        self.optype().map_or(0, |t| t.operand_count())
    }

    /// Whether zero-operand detection found an elidable operand.
    pub fn has_zero_operand(&self) -> bool {
        self.optype().is_some_and(|t| t.has_zero())
    }
}

impl fmt::Display for TraceInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}: {}", self.pc, self.op)?;
        if let Some(d) = self.dest {
            write!(f, " {d} <-")?;
        }
        if let Some(r) = self.rs1 {
            write!(f, " {r}")?;
        }
        if let Some(r) = self.rs2 {
            write!(f, " {r}")?;
        }
        if let Some(i) = self.imm {
            write!(f, " #{i}")?;
        }
        if let Some(r) = self.data_reg {
            write!(f, " data={r}")?;
        }
        if let Some(ea) = self.ea {
            write!(f, " @{ea:#x}")?;
        }
        if self.op.is_cond_branch() {
            write!(f, " {}", if self.taken { "taken" } else { "not-taken" })?;
        }
        Ok(())
    }
}

/// Iterator over the true register dependences of a [`TraceInst`].
#[derive(Debug, Clone)]
pub struct SourceIter {
    inst: TraceInst,
    idx: u8,
}

impl Iterator for SourceIter {
    type Item = Reg;

    fn next(&mut self) -> Option<Reg> {
        loop {
            let candidate = match self.idx {
                0 => self.inst.rs1,
                1 => self.inst.rs2,
                2 => self.inst.data_reg,
                3 => self.inst.op.reads_icc().then_some(Reg::ICC),
                _ => return None,
            };
            self.idx += 1;
            if let Some(r) = candidate {
                if !r.is_zero() {
                    return Some(r);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddsc_isa::Cond;

    #[test]
    fn g0_never_appears_as_source_or_dest() {
        let i = TraceInst::alu(0, Opcode::Add, Reg::G0, Reg::G0, Some(Reg::G0), None, 0);
        assert_eq!(i.dest, None);
        assert_eq!(i.reg_sources().count(), 0);
    }

    #[test]
    fn store_sources_include_data_register() {
        let i = TraceInst::store(
            0,
            Opcode::St,
            Reg::new(3),
            Reg::new(4),
            None,
            Some(8),
            0,
            0x100,
        );
        let srcs: Vec<Reg> = i.reg_sources().collect();
        assert_eq!(srcs, vec![Reg::new(4), Reg::new(3)]);
        let addr: Vec<Reg> = i.addr_sources().collect();
        assert_eq!(addr, vec![Reg::new(4)]);
    }

    #[test]
    fn branch_depends_on_icc() {
        let i = TraceInst::cond_branch(0, Opcode::Bcc(Cond::Eq), true, 0x40);
        let srcs: Vec<Reg> = i.reg_sources().collect();
        assert_eq!(srcs, vec![Reg::ICC]);
        assert_eq!(i.optype().unwrap().to_string(), "brc");
    }

    #[test]
    fn cmp_writes_icc() {
        let i = TraceInst::cmp(0, Reg::new(1), None, Some(0), 0);
        assert_eq!(i.dest, Some(Reg::ICC));
        assert_eq!(i.optype().unwrap().to_string(), "arr0");
    }

    #[test]
    fn dynamic_zero_registers_are_detected() {
        let i = TraceInst::alu(
            0,
            Opcode::Or,
            Reg::new(1),
            Reg::new(2),
            Some(Reg::new(3)),
            None,
            ZERO_RS2,
        );
        assert_eq!(i.optype().unwrap().to_string(), "lgr0");
        assert_eq!(i.operand_count(), 1);
        assert!(i.has_zero_operand());
        // The dependence still exists even though the value is zero.
        assert_eq!(i.reg_sources().count(), 2);
    }

    #[test]
    fn load_with_zero_offset_matches_paper_example() {
        // Paper §3: `Ra = [Rd + 0]` — the zero is detected, reducing the
        // expression size.
        let i = TraceInst::load(
            0,
            Opcode::Ld,
            Reg::new(1),
            Reg::new(13),
            None,
            Some(0),
            0,
            0x80,
        );
        assert_eq!(i.optype().unwrap().to_string(), "ldr0");
        assert_eq!(i.operand_count(), 1);
    }

    #[test]
    fn mov_immediate_pattern() {
        let i = TraceInst::mov(0, Opcode::Mov, Reg::new(5), None, Some(42), 0);
        assert_eq!(i.optype().unwrap().to_string(), "mvi");
        assert_eq!(i.operand_count(), 1);
        assert_eq!(i.reg_sources().count(), 0);
    }

    #[test]
    fn uncond_has_no_pattern() {
        let i = TraceInst::uncond(0, Opcode::Call, Some(Reg::LINK), None, 0x400);
        assert_eq!(i.optype(), None);
        assert_eq!(i.operand_count(), 0);
    }

    #[test]
    fn ret_depends_on_link() {
        let i = TraceInst::uncond(0, Opcode::Ret, None, Some(Reg::LINK), 0x44);
        let srcs: Vec<Reg> = i.reg_sources().collect();
        assert_eq!(srcs, vec![Reg::LINK]);
    }

    #[test]
    fn addr_sources_empty_for_alu() {
        let i = TraceInst::alu(
            0,
            Opcode::Add,
            Reg::new(1),
            Reg::new(2),
            Some(Reg::new(3)),
            None,
            0,
        );
        assert_eq!(i.addr_sources().count(), 0);
    }

    #[test]
    fn display_is_nonempty_and_informative() {
        let i = TraceInst::load(
            0x40,
            Opcode::Ld,
            Reg::new(1),
            Reg::new(2),
            None,
            Some(4),
            0,
            0xBEEF,
        );
        let s = i.to_string();
        assert!(s.contains("ld"));
        assert!(s.contains("%r1"));
        assert!(s.contains("0xbeef"));
    }
}
