//! Binary trace file format.
//!
//! A compact little-endian on-disk format standing in for the paper's
//! `qpt2` trace files. Layout:
//!
//! ```text
//! magic   : 4 bytes  "DDSC"
//! version : u16      (currently 2)
//! namelen : u16
//! name    : namelen bytes of UTF-8
//! count   : u64
//! records : count × 26 bytes (see below)
//! ```
//!
//! Each record is `pc:u32, op:u8, dest:u8, rs1:u8, rs2:u8, data:u8,
//! flags:u8, imm:i32, ea:u32, target:u32, value:u32` where register
//! fields use `0xFF` for "none" and `32` for `%icc`, and `flags` packs
//! the zero-detection bits, immediate/EA/value presence and the branch
//! outcome.

use std::error::Error;
use std::fmt;
use std::io::{Read, Write};

use ddsc_isa::{Cond, Opcode, Reg};

use crate::{Trace, TraceInst};

const MAGIC: &[u8; 4] = b"DDSC";
const VERSION: u16 = 2;
const REG_NONE: u8 = 0xFF;

/// Size of one serialized record in bytes (see the module docs).
pub const RECORD_LEN: usize = 26;

/// Size of the file header for a trace named `name`:
/// magic + version + namelen + name + count.
pub fn header_len(name: &str) -> usize {
    4 + 2 + 2 + name.len() + 8
}

const FLAG_ZERO_RS1: u8 = 1 << 0;
const FLAG_ZERO_RS2: u8 = 1 << 1;
const FLAG_HAS_IMM: u8 = 1 << 2;
const FLAG_HAS_EA: u8 = 1 << 3;
const FLAG_TAKEN: u8 = 1 << 4;
const FLAG_HAS_VALUE: u8 = 1 << 5;

/// Errors produced when reading or writing trace files.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with the `DDSC` magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// An opcode byte that does not decode.
    BadOpcode(u8),
    /// A register byte that does not decode.
    BadReg(u8),
    /// The benchmark name is not valid UTF-8.
    BadName,
    /// The benchmark name is too long for the `u16` header field.
    /// (Writing a truncated length would produce a header that disagrees
    /// with the bytes that follow, so over-long names are rejected.)
    NameTooLong(usize),
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o failed: {e}"),
            TraceIoError::BadMagic => write!(f, "not a DDSC trace file"),
            TraceIoError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceIoError::BadOpcode(b) => write!(f, "invalid opcode byte {b:#x}"),
            TraceIoError::BadReg(b) => write!(f, "invalid register byte {b:#x}"),
            TraceIoError::BadName => write!(f, "trace name is not valid utf-8"),
            TraceIoError::NameTooLong(n) => {
                write!(f, "trace name of {n} bytes exceeds the u16 header field")
            }
        }
    }
}

impl Error for TraceIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Encodes an opcode as a stable byte.
pub fn encode_op(op: Opcode) -> u8 {
    match op {
        Opcode::Add => 0,
        Opcode::Sub => 1,
        Opcode::And => 2,
        Opcode::Or => 3,
        Opcode::Xor => 4,
        Opcode::Andn => 5,
        Opcode::Orn => 6,
        Opcode::Xnor => 7,
        Opcode::Sll => 8,
        Opcode::Srl => 9,
        Opcode::Sra => 10,
        Opcode::Mov => 11,
        Opcode::Sethi => 12,
        Opcode::Cmp => 13,
        Opcode::Mul => 14,
        Opcode::Div => 15,
        Opcode::Ld => 16,
        Opcode::Ldb => 17,
        Opcode::St => 18,
        Opcode::Stb => 19,
        Opcode::Bcc(Cond::Eq) => 20,
        Opcode::Bcc(Cond::Ne) => 21,
        Opcode::Bcc(Cond::Lt) => 22,
        Opcode::Bcc(Cond::Le) => 23,
        Opcode::Bcc(Cond::Gt) => 24,
        Opcode::Bcc(Cond::Ge) => 25,
        Opcode::Bcc(Cond::Ltu) => 26,
        Opcode::Bcc(Cond::Geu) => 27,
        Opcode::Ba => 28,
        Opcode::Call => 29,
        Opcode::Ret => 30,
        Opcode::Jmp => 31,
        Opcode::Nop => 32,
    }
}

/// Decodes an opcode byte.
///
/// # Errors
///
/// Returns [`TraceIoError::BadOpcode`] for bytes outside the opcode space.
pub fn decode_op(b: u8) -> Result<Opcode, TraceIoError> {
    Ok(match b {
        0 => Opcode::Add,
        1 => Opcode::Sub,
        2 => Opcode::And,
        3 => Opcode::Or,
        4 => Opcode::Xor,
        5 => Opcode::Andn,
        6 => Opcode::Orn,
        7 => Opcode::Xnor,
        8 => Opcode::Sll,
        9 => Opcode::Srl,
        10 => Opcode::Sra,
        11 => Opcode::Mov,
        12 => Opcode::Sethi,
        13 => Opcode::Cmp,
        14 => Opcode::Mul,
        15 => Opcode::Div,
        16 => Opcode::Ld,
        17 => Opcode::Ldb,
        18 => Opcode::St,
        19 => Opcode::Stb,
        20 => Opcode::Bcc(Cond::Eq),
        21 => Opcode::Bcc(Cond::Ne),
        22 => Opcode::Bcc(Cond::Lt),
        23 => Opcode::Bcc(Cond::Le),
        24 => Opcode::Bcc(Cond::Gt),
        25 => Opcode::Bcc(Cond::Ge),
        26 => Opcode::Bcc(Cond::Ltu),
        27 => Opcode::Bcc(Cond::Geu),
        28 => Opcode::Ba,
        29 => Opcode::Call,
        30 => Opcode::Ret,
        31 => Opcode::Jmp,
        32 => Opcode::Nop,
        _ => return Err(TraceIoError::BadOpcode(b)),
    })
}

fn encode_reg(r: Option<Reg>) -> u8 {
    r.map_or(REG_NONE, |r| r.index() as u8)
}

fn decode_reg(b: u8) -> Result<Option<Reg>, TraceIoError> {
    match b {
        REG_NONE => Ok(None),
        32 => Ok(Some(Reg::ICC)),
        0..=31 => Ok(Some(Reg::new(b))),
        _ => Err(TraceIoError::BadReg(b)),
    }
}

/// Appends one record in the canonical 26-byte wire form (the format
/// shared by whole-trace files and chunked cache frames).
pub fn encode_record(inst: &TraceInst, out: &mut Vec<u8>) {
    let mut flags = inst.zero_flags & (FLAG_ZERO_RS1 | FLAG_ZERO_RS2);
    if inst.imm.is_some() {
        flags |= FLAG_HAS_IMM;
    }
    if inst.ea.is_some() {
        flags |= FLAG_HAS_EA;
    }
    if inst.taken {
        flags |= FLAG_TAKEN;
    }
    if inst.value.is_some() {
        flags |= FLAG_HAS_VALUE;
    }
    out.extend_from_slice(&inst.pc.to_le_bytes());
    out.extend_from_slice(&[
        encode_op(inst.op),
        encode_reg(inst.dest),
        encode_reg(inst.rs1),
        encode_reg(inst.rs2),
        encode_reg(inst.data_reg),
        flags,
    ]);
    out.extend_from_slice(&inst.imm.unwrap_or(0).to_le_bytes());
    out.extend_from_slice(&inst.ea.unwrap_or(0).to_le_bytes());
    out.extend_from_slice(&inst.target.to_le_bytes());
    out.extend_from_slice(&inst.value.unwrap_or(0).to_le_bytes());
}

/// Decodes one record from its 26-byte wire form.
///
/// # Errors
///
/// Returns [`TraceIoError::BadOpcode`] or [`TraceIoError::BadReg`] for
/// undecodable bytes.
pub fn decode_record(rec: &[u8; RECORD_LEN]) -> Result<TraceInst, TraceIoError> {
    let pc = u32::from_le_bytes([rec[0], rec[1], rec[2], rec[3]]);
    let op = decode_op(rec[4])?;
    let dest = decode_reg(rec[5])?;
    let rs1 = decode_reg(rec[6])?;
    let rs2 = decode_reg(rec[7])?;
    let data_reg = decode_reg(rec[8])?;
    let flags = rec[9];
    let imm = i32::from_le_bytes([rec[10], rec[11], rec[12], rec[13]]);
    let ea = u32::from_le_bytes([rec[14], rec[15], rec[16], rec[17]]);
    let target = u32::from_le_bytes([rec[18], rec[19], rec[20], rec[21]]);
    let value = u32::from_le_bytes([rec[22], rec[23], rec[24], rec[25]]);
    Ok(TraceInst {
        pc,
        op,
        dest,
        rs1,
        rs2,
        imm: (flags & FLAG_HAS_IMM != 0).then_some(imm),
        data_reg,
        zero_flags: flags & (FLAG_ZERO_RS1 | FLAG_ZERO_RS2),
        ea: (flags & FLAG_HAS_EA != 0).then_some(ea),
        taken: flags & FLAG_TAKEN != 0,
        target,
        value: (flags & FLAG_HAS_VALUE != 0).then_some(value),
    })
}

/// Writes a trace to any writer. A `&mut` reference also works as the
/// writer.
///
/// # Errors
///
/// Returns [`TraceIoError::Io`] on write failure, or
/// [`TraceIoError::NameTooLong`] if the trace name does not fit the
/// header's `u16` length field.
pub fn write_trace<W: Write>(mut w: W, trace: &Trace) -> Result<(), TraceIoError> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    let name = trace.name().as_bytes();
    let namelen = u16::try_from(name.len()).map_err(|_| TraceIoError::NameTooLong(name.len()))?;
    w.write_all(&namelen.to_le_bytes())?;
    w.write_all(name)?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    let mut rec = Vec::with_capacity(RECORD_LEN);
    for inst in trace {
        rec.clear();
        encode_record(inst, &mut rec);
        w.write_all(&rec)?;
    }
    Ok(())
}

/// Reads a trace from any reader. A `&mut` reference also works as the
/// reader.
///
/// # Errors
///
/// Returns a [`TraceIoError`] if the stream is truncated, has a bad magic
/// or version, or contains undecodable bytes.
pub fn read_trace<R: Read>(mut r: R) -> Result<Trace, TraceIoError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(TraceIoError::BadMagic);
    }
    let mut buf2 = [0u8; 2];
    r.read_exact(&mut buf2)?;
    let version = u16::from_le_bytes(buf2);
    if version != VERSION {
        return Err(TraceIoError::BadVersion(version));
    }
    r.read_exact(&mut buf2)?;
    let namelen = usize::from(u16::from_le_bytes(buf2));
    let mut name = vec![0u8; namelen];
    r.read_exact(&mut name)?;
    let name = String::from_utf8(name).map_err(|_| TraceIoError::BadName)?;
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)?;
    let count = u64::from_le_bytes(buf8) as usize;
    let mut insts = Vec::with_capacity(count.min(1 << 24));
    let mut rec = [0u8; RECORD_LEN];
    for _ in 0..count {
        r.read_exact(&mut rec)?;
        insts.push(decode_record(&rec)?);
    }
    Ok(Trace::from_parts(name, insts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddsc_isa::{Cond, Opcode, Reg};
    use proptest::prelude::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::new("roundtrip");
        t.push(TraceInst::alu(
            0x40,
            Opcode::Add,
            Reg::new(1),
            Reg::new(2),
            Some(Reg::new(3)),
            None,
            0,
        ));
        t.push(TraceInst::load(
            0x44,
            Opcode::Ld,
            Reg::new(4),
            Reg::new(5),
            None,
            Some(-8),
            crate::record::ZERO_RS1,
            0xFF00,
        ));
        t.push(TraceInst::cmp(0x48, Reg::new(4), None, Some(0), 0));
        t.push(TraceInst::cond_branch(
            0x4C,
            Opcode::Bcc(Cond::Ne),
            true,
            0x40,
        ));
        t.push(TraceInst::uncond(
            0x50,
            Opcode::Call,
            Some(Reg::LINK),
            None,
            0x100,
        ));
        t
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_trace(&b"NOPE\x01\x00"[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::BadMagic));
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &Trace::new("x")).unwrap();
        buf[4] = 0xEE;
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::BadVersion(_)));
    }

    #[test]
    fn truncated_stream_is_io_error() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample_trace()).unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::Io(_)));
    }

    #[test]
    fn bad_opcode_byte_is_rejected() {
        let mut t = Trace::new("x");
        t.push(TraceInst::alu(
            0,
            Opcode::Add,
            Reg::new(1),
            Reg::new(2),
            None,
            Some(1),
            0,
        ));
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        // Opcode byte of the single record sits right after the header.
        let header = 4 + 2 + 2 + 1 + 8;
        buf[header + 4] = 200;
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::BadOpcode(200)));
    }

    #[test]
    fn opcode_encoding_is_bijective() {
        for b in 0..=32u8 {
            let op = decode_op(b).unwrap();
            assert_eq!(encode_op(op), b);
        }
        assert!(decode_op(33).is_err());
    }

    #[test]
    fn error_display_is_nonempty() {
        for e in [
            TraceIoError::BadMagic,
            TraceIoError::BadVersion(9),
            TraceIoError::BadOpcode(0xFE),
            TraceIoError::BadReg(0x40),
            TraceIoError::BadName,
            TraceIoError::NameTooLong(70_000),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn overlong_names_are_rejected_instead_of_silently_truncated() {
        // Regression: a name longer than u16::MAX used to write a
        // `u16::MAX` length header followed by only the first 65535 name
        // bytes — a file whose header disagrees with its payload.
        let long = "x".repeat(usize::from(u16::MAX) + 1);
        let err = write_trace(&mut Vec::new(), &Trace::new(long)).unwrap_err();
        assert!(matches!(err, TraceIoError::NameTooLong(n) if n == usize::from(u16::MAX) + 1));
        // The boundary case still round-trips exactly.
        let edge = Trace::new("y".repeat(usize::from(u16::MAX)));
        let mut buf = Vec::new();
        write_trace(&mut buf, &edge).unwrap();
        assert_eq!(read_trace(buf.as_slice()).unwrap(), edge);
    }

    #[test]
    fn layout_constants_match_the_serialized_form() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        assert_eq!(buf.len(), header_len(t.name()) + t.len() * RECORD_LEN);
    }

    proptest! {
        /// Arbitrary ALU/load records roundtrip exactly.
        #[test]
        fn random_records_roundtrip(
            pc in any::<u32>(),
            rd in 0u8..32,
            rs1 in 0u8..32,
            imm in any::<i32>(),
            ea in any::<u32>(),
            zero in 0u8..4,
        ) {
            let mut t = Trace::new("prop");
            t.push(TraceInst::alu(pc, Opcode::Xor, Reg::new(rd), Reg::new(rs1), None, Some(imm), zero));
            t.push(TraceInst::load(pc, Opcode::Ldb, Reg::new(rd), Reg::new(rs1), None, Some(imm & 0xFFF), zero, ea));
            let mut buf = Vec::new();
            write_trace(&mut buf, &t).unwrap();
            let back = read_trace(buf.as_slice()).unwrap();
            prop_assert_eq!(t, back);
        }
    }
}
