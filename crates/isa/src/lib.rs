//! A SPARC-v8-flavoured RISC instruction model.
//!
//! The paper traces SPARC v8 binaries; this crate defines the equivalent
//! instruction set used by the [`ddsc-vm`](../ddsc_vm/index.html)
//! interpreter and by every analysis downstream of it:
//!
//! * [`Reg`] — architectural registers, including the hardwired zero
//!   register `%g0` and the condition-code pseudo-register `%icc`.
//! * [`Opcode`] — the dynamic operation set: fixed-point arithmetic,
//!   logicals, shifts, moves, loads/stores, compare, conditional and
//!   unconditional control transfers, multiply and divide.
//! * [`OpClass`] — the operation classes the paper's collapsing rules are
//!   written in terms of (shift, arithmetic, logical, move, address
//!   generation, condition-code generation).
//! * [`OpType`] — the `arrr` / `arri` / `shri` / `ldrr` / `brc` … pattern
//!   encoding used by Tables 5 and 6 of the paper.
//!
//! # Examples
//!
//! ```
//! use ddsc_isa::{Opcode, OpClass};
//!
//! assert_eq!(Opcode::Add.class(), OpClass::Arith);
//! assert!(Opcode::Sll.class().is_collapsible_producer());
//! assert!(!Opcode::Mul.class().is_collapsible_producer());
//! ```

pub mod inst;
pub mod opcode;
pub mod optype;
pub mod reg;

pub use inst::{Inst, Src2};
pub use opcode::{Cond, OpClass, Opcode};
pub use optype::{OpType, OperandKind, PatClass};
pub use reg::{Icc, Reg};
