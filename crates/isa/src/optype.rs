//! The operand-pattern encoding of Tables 5 and 6.
//!
//! The paper encodes each collapsed instruction as a class prefix plus one
//! character per source operand: `ar`ithmetic, `lg` logic, `sh`ift, `mv`
//! move, `ld` load, `st` store, `brc` conditional branch, with operand
//! characters `r` (register), `i` (immediate) and `0` (zero immediate or
//! zero-valued register). Examples from the paper: `arrr`, `arri`, `arr0`,
//! `shri`, `mvi`, `ldrr`, `lgr0`, `brc`.

use std::fmt;

use crate::{OpClass, Opcode};

/// Class prefix of an [`OpType`] pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PatClass {
    /// Arithmetic (`ar`), including compares.
    Ar,
    /// Logical (`lg`).
    Lg,
    /// Shift (`sh`).
    Sh,
    /// Move (`mv`).
    Mv,
    /// Load (`ld`).
    Ld,
    /// Store (`st`).
    St,
    /// Conditional branch (`brc`) — no operand suffix: its collapsible
    /// input is the condition-code dependence.
    Brc,
}

impl PatClass {
    /// The textual prefix.
    pub fn prefix(self) -> &'static str {
        match self {
            PatClass::Ar => "ar",
            PatClass::Lg => "lg",
            PatClass::Sh => "sh",
            PatClass::Mv => "mv",
            PatClass::Ld => "ld",
            PatClass::St => "st",
            PatClass::Brc => "brc",
        }
    }

    /// All pattern classes, in stable code order.
    pub const ALL: [PatClass; 7] = [
        PatClass::Ar,
        PatClass::Lg,
        PatClass::Sh,
        PatClass::Mv,
        PatClass::Ld,
        PatClass::St,
        PatClass::Brc,
    ];

    /// A stable one-byte code for on-disk serialization.
    pub fn code(self) -> u8 {
        match self {
            PatClass::Ar => 0,
            PatClass::Lg => 1,
            PatClass::Sh => 2,
            PatClass::Mv => 3,
            PatClass::Ld => 4,
            PatClass::St => 5,
            PatClass::Brc => 6,
        }
    }

    /// Inverse of [`PatClass::code`]; `None` for unknown codes, so a
    /// corrupt store entry decodes to an error instead of a panic.
    pub fn from_code(code: u8) -> Option<PatClass> {
        PatClass::ALL.get(code as usize).copied()
    }

    /// Derives the pattern class from an opcode, or `None` for operations
    /// that never participate in collapsing (mul, div, unconditional
    /// control, nop).
    pub fn of(op: Opcode) -> Option<PatClass> {
        Some(match op.class() {
            OpClass::Arith => PatClass::Ar,
            OpClass::Logic => PatClass::Lg,
            OpClass::Shift => PatClass::Sh,
            OpClass::Move => PatClass::Mv,
            OpClass::Load => PatClass::Ld,
            OpClass::Store => PatClass::St,
            OpClass::CondBranch => PatClass::Brc,
            OpClass::Uncond | OpClass::Mul | OpClass::Div | OpClass::Nop => return None,
        })
    }
}

/// Kind of a single source operand in a pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OperandKind {
    /// Register operand with a (dynamically) non-zero value.
    Reg,
    /// Non-zero immediate.
    Imm,
    /// Zero operand: zero immediate or zero-valued register (including
    /// `%g0`). The paper's zero-operand detection elides these.
    Zero,
}

impl OperandKind {
    /// The pattern character.
    pub fn ch(self) -> char {
        match self {
            OperandKind::Reg => 'r',
            OperandKind::Imm => 'i',
            OperandKind::Zero => '0',
        }
    }

    /// Whether the operand counts toward a dependence-expression size
    /// (zeros are detected and elided per §3 of the paper).
    pub fn counts(self) -> bool {
        !matches!(self, OperandKind::Zero)
    }

    /// All operand kinds, in stable code order.
    pub const ALL: [OperandKind; 3] = [OperandKind::Reg, OperandKind::Imm, OperandKind::Zero];

    /// A stable one-byte code for on-disk serialization.
    pub fn code(self) -> u8 {
        match self {
            OperandKind::Reg => 0,
            OperandKind::Imm => 1,
            OperandKind::Zero => 2,
        }
    }

    /// Inverse of [`OperandKind::code`]; `None` for unknown codes.
    pub fn from_code(code: u8) -> Option<OperandKind> {
        OperandKind::ALL.get(code as usize).copied()
    }
}

/// A complete `arri`-style operand pattern for one instruction.
///
/// # Examples
///
/// ```
/// use ddsc_isa::{OpType, OperandKind, PatClass};
///
/// let t = OpType::new(PatClass::Ar, &[OperandKind::Reg, OperandKind::Imm]);
/// assert_eq!(t.to_string(), "arri");
/// assert_eq!(t.operand_count(), 2);
///
/// let b = OpType::new(PatClass::Brc, &[]);
/// assert_eq!(b.to_string(), "brc");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpType {
    class: PatClass,
    kinds: [Option<OperandKind>; 2],
}

impl OpType {
    /// Creates a pattern from a class and its source-operand kinds.
    ///
    /// # Panics
    ///
    /// Panics if more than two operand kinds are supplied.
    pub fn new(class: PatClass, kinds: &[OperandKind]) -> Self {
        assert!(kinds.len() <= 2, "patterns have at most two operands");
        let mut arr = [None; 2];
        for (slot, &k) in arr.iter_mut().zip(kinds) {
            *slot = Some(k);
        }
        OpType { class, kinds: arr }
    }

    /// The class prefix.
    pub fn class(self) -> PatClass {
        self.class
    }

    /// The operand kinds, in instruction order.
    pub fn kinds(self) -> impl Iterator<Item = OperandKind> {
        self.kinds.into_iter().flatten()
    }

    /// Number of *counting* (non-zero) source operands — the instruction's
    /// contribution to a dependence-expression size.
    pub fn operand_count(self) -> u8 {
        self.kinds().filter(|k| k.counts()).count() as u8
    }

    /// Whether any operand is a detected zero.
    pub fn has_zero(self) -> bool {
        self.kinds().any(|k| k == OperandKind::Zero)
    }
}

impl fmt::Display for OpType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.class.prefix())?;
        for k in self.kinds() {
            write!(f, "{}", k.ch())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_pattern_spellings() {
        use OperandKind::*;
        let cases = [
            (OpType::new(PatClass::Ar, &[Reg, Reg]), "arrr"),
            (OpType::new(PatClass::Ar, &[Reg, Imm]), "arri"),
            (OpType::new(PatClass::Ar, &[Reg, Zero]), "arr0"),
            (OpType::new(PatClass::Sh, &[Reg, Imm]), "shri"),
            (OpType::new(PatClass::Mv, &[Imm]), "mvi"),
            (OpType::new(PatClass::Ld, &[Reg, Reg]), "ldrr"),
            (OpType::new(PatClass::Ld, &[Reg, Imm]), "ldri"),
            (OpType::new(PatClass::Lg, &[Reg, Zero]), "lgr0"),
            (OpType::new(PatClass::Lg, &[Reg, Imm]), "lgri"),
            (OpType::new(PatClass::Brc, &[]), "brc"),
        ];
        for (t, s) in cases {
            assert_eq!(t.to_string(), s);
        }
    }

    #[test]
    fn zero_operands_do_not_count() {
        use OperandKind::*;
        assert_eq!(OpType::new(PatClass::Ar, &[Reg, Zero]).operand_count(), 1);
        assert_eq!(OpType::new(PatClass::Ld, &[Reg, Zero]).operand_count(), 1);
        assert_eq!(OpType::new(PatClass::Ar, &[Reg, Imm]).operand_count(), 2);
        assert_eq!(OpType::new(PatClass::Brc, &[]).operand_count(), 0);
    }

    #[test]
    fn has_zero_detects_elision_opportunities() {
        use OperandKind::*;
        assert!(OpType::new(PatClass::Lg, &[Reg, Zero]).has_zero());
        assert!(!OpType::new(PatClass::Lg, &[Reg, Reg]).has_zero());
    }

    #[test]
    fn class_of_opcode() {
        use crate::{Cond, Opcode};
        assert_eq!(PatClass::of(Opcode::Add), Some(PatClass::Ar));
        assert_eq!(PatClass::of(Opcode::Cmp), Some(PatClass::Ar));
        assert_eq!(PatClass::of(Opcode::Xor), Some(PatClass::Lg));
        assert_eq!(PatClass::of(Opcode::Sra), Some(PatClass::Sh));
        assert_eq!(PatClass::of(Opcode::Sethi), Some(PatClass::Mv));
        assert_eq!(PatClass::of(Opcode::Ldb), Some(PatClass::Ld));
        assert_eq!(PatClass::of(Opcode::Stb), Some(PatClass::St));
        assert_eq!(PatClass::of(Opcode::Bcc(Cond::Lt)), Some(PatClass::Brc));
        assert_eq!(PatClass::of(Opcode::Mul), None);
        assert_eq!(PatClass::of(Opcode::Call), None);
        assert_eq!(PatClass::of(Opcode::Nop), None);
    }

    #[test]
    #[should_panic(expected = "at most two")]
    fn too_many_operands_panics() {
        use OperandKind::*;
        OpType::new(PatClass::Ar, &[Reg, Reg, Reg]);
    }

    #[test]
    fn kinds_iterator_matches_construction_order() {
        use OperandKind::*;
        let t = OpType::new(PatClass::Sh, &[Reg, Imm]);
        let kinds: Vec<OperandKind> = t.kinds().collect();
        assert_eq!(kinds, vec![Reg, Imm]);
    }

    #[test]
    fn operand_count_is_number_of_counting_kinds() {
        use OperandKind::*;
        for kinds in [
            vec![],
            vec![Reg],
            vec![Imm, Zero],
            vec![Zero, Zero],
            vec![Reg, Imm],
        ] {
            let t = OpType::new(PatClass::Lg, &kinds);
            let expected = kinds.iter().filter(|k| k.counts()).count() as u8;
            assert_eq!(t.operand_count(), expected, "{kinds:?}");
            assert_eq!(t.has_zero(), kinds.contains(&Zero));
        }
    }

    #[test]
    fn serialization_codes_round_trip() {
        for c in PatClass::ALL {
            assert_eq!(PatClass::from_code(c.code()), Some(c));
        }
        for k in OperandKind::ALL {
            assert_eq!(OperandKind::from_code(k.code()), Some(k));
        }
        assert_eq!(PatClass::from_code(7), None);
        assert_eq!(OperandKind::from_code(3), None);
    }

    #[test]
    fn ordering_is_stable_for_pattern_tables() {
        use OperandKind::*;
        let a = OpType::new(PatClass::Ar, &[Reg, Reg]);
        let b = OpType::new(PatClass::Ar, &[Reg, Imm]);
        // Ord is derived; we only rely on it being a total order usable
        // as a BTreeMap key.
        assert!(a != b);
        assert!((a < b) ^ (b < a));
    }
}
