//! Static (program-form) instructions, as emitted by the assembler and
//! executed by the VM.

use std::fmt;

use crate::{Opcode, Reg};

/// The second operand of a three-address instruction: a register, an
/// immediate, or nothing (for formats that don't use it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Src2 {
    /// No second operand.
    #[default]
    None,
    /// Register operand.
    Reg(Reg),
    /// 13-bit-style sign-extended immediate (we allow full `i32` for
    /// assembler convenience; `sethi` covers large constants).
    Imm(i32),
}

/// A static instruction in a [`Program`](../ddsc_vm/struct.Program.html).
///
/// Field interpretation follows SPARC three-address conventions:
///
/// * ALU ops: `rd = rs1 op src2`;
/// * `mov`/`sethi`: `rd = src2` (rs1 unused);
/// * loads: `rd = mem[rs1 + src2]`;
/// * stores: `mem[rs1 + src2] = rd` — **`rd` is the data source**;
/// * `cmp`: `%icc = flags(rs1 - src2)` (rd unused);
/// * branches/calls: `target` is a program instruction index;
/// * `ret`/`jmp`: jump to `rs1 + src2`.
///
/// # Examples
///
/// ```
/// use ddsc_isa::{Inst, Opcode, Reg, Src2};
///
/// let add = Inst::alu(Opcode::Add, Reg::new(3), Reg::new(1), Src2::Imm(8));
/// assert_eq!(add.to_string(), "add %r3, %r1, 8");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Inst {
    /// The operation.
    pub op: Opcode,
    /// Destination register (data source for stores); `%g0` when unused.
    pub rd: Reg,
    /// First source register; `%g0` when unused.
    pub rs1: Reg,
    /// Second source operand.
    pub src2: Src2,
    /// Control-transfer target as a program instruction index.
    pub target: u32,
}

impl Inst {
    /// Builds a three-address ALU/memory instruction.
    pub fn alu(op: Opcode, rd: Reg, rs1: Reg, src2: Src2) -> Self {
        Inst {
            op,
            rd,
            rs1,
            src2,
            target: 0,
        }
    }

    /// Builds a control-transfer instruction aimed at a program index.
    pub fn control(op: Opcode, target: u32) -> Self {
        Inst {
            op,
            rd: Reg::G0,
            rs1: Reg::G0,
            src2: Src2::None,
            target,
        }
    }

    /// A `nop`.
    pub fn nop() -> Self {
        Inst {
            op: Opcode::Nop,
            rd: Reg::G0,
            rs1: Reg::G0,
            src2: Src2::None,
            target: 0,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let src2 = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            match self.src2 {
                Src2::None => Ok(()),
                Src2::Reg(r) => write!(f, ", {r}"),
                Src2::Imm(i) => write!(f, ", {i}"),
            }
        };
        match self.op {
            Opcode::Nop => write!(f, "nop"),
            Opcode::Ba | Opcode::Call => write!(f, "{} @{}", self.op, self.target),
            Opcode::Bcc(_) => write!(f, "{} @{}", self.op, self.target),
            Opcode::Ret | Opcode::Jmp => {
                write!(f, "{} {}", self.op, self.rs1)?;
                src2(f)
            }
            Opcode::Cmp => {
                write!(f, "cmp {}", self.rs1)?;
                src2(f)
            }
            Opcode::Mov | Opcode::Sethi => {
                write!(f, "{} {}", self.op, self.rd)?;
                src2(f)
            }
            Opcode::St | Opcode::Stb => {
                write!(f, "{} {}, [{}", self.op, self.rd, self.rs1)?;
                src2(f)?;
                write!(f, "]")
            }
            Opcode::Ld | Opcode::Ldb => {
                write!(f, "{} {}, [{}", self.op, self.rd, self.rs1)?;
                src2(f)?;
                write!(f, "]")
            }
            _ => {
                write!(f, "{} {}, {}", self.op, self.rd, self.rs1)?;
                src2(f)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_formats() {
        let r = Reg::new;
        assert_eq!(
            Inst::alu(Opcode::Add, r(1), r(2), Src2::Reg(r(3))).to_string(),
            "add %r1, %r2, %r3"
        );
        assert_eq!(
            Inst::alu(Opcode::Ld, r(4), r(5), Src2::Imm(12)).to_string(),
            "ld %r4, [%r5, 12]"
        );
        assert_eq!(
            Inst::alu(Opcode::St, r(4), r(5), Src2::Imm(-4)).to_string(),
            "st %r4, [%r5, -4]"
        );
        assert_eq!(
            Inst::alu(Opcode::Cmp, Reg::G0, r(1), Src2::Imm(0)).to_string(),
            "cmp %r1, 0"
        );
        assert_eq!(
            Inst::alu(Opcode::Mov, r(9), Reg::G0, Src2::Imm(7)).to_string(),
            "mov %r9, 7"
        );
        assert_eq!(Inst::control(Opcode::Ba, 17).to_string(), "ba @17");
        assert_eq!(Inst::nop().to_string(), "nop");
    }

    #[test]
    fn constructors_set_expected_defaults() {
        let c = Inst::control(Opcode::Call, 99);
        assert_eq!(c.target, 99);
        assert_eq!(c.rd, Reg::G0);
        let n = Inst::nop();
        assert_eq!(n.op, Opcode::Nop);
    }
}
