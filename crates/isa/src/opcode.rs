//! Dynamic operation set and operation classes.

use std::fmt;

/// Branch condition, evaluated against [`Icc`](crate::Icc) flags with
/// SPARC v8 semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal (`Z`).
    Eq,
    /// Not equal (`!Z`).
    Ne,
    /// Signed less-than (`N xor V`).
    Lt,
    /// Signed less-or-equal (`Z or (N xor V)`).
    Le,
    /// Signed greater-than (`!(Z or (N xor V))`).
    Gt,
    /// Signed greater-or-equal (`!(N xor V)`).
    Ge,
    /// Unsigned less-than (`C`).
    Ltu,
    /// Unsigned greater-or-equal (`!C`).
    Geu,
}

impl Cond {
    /// Evaluates the condition against a set of flags.
    ///
    /// # Examples
    ///
    /// ```
    /// use ddsc_isa::{Cond, Icc};
    ///
    /// let icc = Icc::from_sub(1, 2);
    /// assert!(Cond::Lt.eval(icc));
    /// assert!(!Cond::Ge.eval(icc));
    /// ```
    pub fn eval(self, icc: crate::Icc) -> bool {
        match self {
            Cond::Eq => icc.z,
            Cond::Ne => !icc.z,
            Cond::Lt => icc.n != icc.v,
            Cond::Le => icc.z || (icc.n != icc.v),
            Cond::Gt => !(icc.z || (icc.n != icc.v)),
            Cond::Ge => icc.n == icc.v,
            Cond::Ltu => icc.c,
            Cond::Geu => !icc.c,
        }
    }

    /// The logically opposite condition.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Ge => Cond::Lt,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ltu => Cond::Geu,
            Cond::Geu => Cond::Ltu,
        }
    }
}

/// The machine's dynamic operation set.
///
/// Mirrors the SPARC v8 integer subset the paper traces (floating point
/// does not appear in the six SPECint benchmarks). `nop`s exist in the
/// static program form but are filtered from traces, exactly as in the
/// paper ("Nop operations were ignored").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// `rd = rs1 + src2`.
    Add,
    /// `rd = rs1 - src2`.
    Sub,
    /// `rd = rs1 & src2`.
    And,
    /// `rd = rs1 | src2`.
    Or,
    /// `rd = rs1 ^ src2`.
    Xor,
    /// `rd = rs1 & !src2`.
    Andn,
    /// `rd = rs1 | !src2`.
    Orn,
    /// `rd = !(rs1 ^ src2)`.
    Xnor,
    /// `rd = rs1 << (src2 & 31)`.
    Sll,
    /// `rd = rs1 >> (src2 & 31)` (logical).
    Srl,
    /// `rd = rs1 >> (src2 & 31)` (arithmetic).
    Sra,
    /// `rd = src2` (register or immediate move).
    Mov,
    /// `rd = imm << 10` (the SPARC `sethi` upper-immediate load).
    Sethi,
    /// `%icc = flags(rs1 - src2)` — SPARC `subcc` with `%g0` destination.
    Cmp,
    /// `rd = rs1 * src2` (2-cycle latency in the paper's model).
    Mul,
    /// `rd = rs1 / src2` (12-cycle latency in the paper's model).
    Div,
    /// Word load: `rd = mem32[rs1 + src2]`.
    Ld,
    /// Byte load (zero-extending): `rd = mem8[rs1 + src2]`.
    Ldb,
    /// Word store: `mem32[rs1 + src2] = rd`.
    St,
    /// Byte store: `mem8[rs1 + src2] = rd & 0xff`.
    Stb,
    /// Conditional branch on `%icc`.
    Bcc(Cond),
    /// Unconditional branch.
    Ba,
    /// Call: `%r15 = return pc`, jump to target.
    Call,
    /// Return: jump to `rs1` (conventionally `%r15`).
    Ret,
    /// Indirect jump to `rs1 + src2`.
    Jmp,
    /// No operation (filtered from traces).
    Nop,
}

/// Operation classes — the vocabulary the paper's collapsing rules use.
///
/// The collapsible classes (§3: "shift, arithmetic (not multiply or
/// divide), logical, move, address generation (for loads and stores),
/// and condition code generation for branch instructions") map to:
/// producers in {[`Arith`](OpClass::Arith), [`Logic`](OpClass::Logic),
/// [`Shift`](OpClass::Shift), [`Move`](OpClass::Move)}, with loads,
/// stores and conditional branches as additional *consumers* (address
/// generation and condition-code use).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Fixed-point add/subtract/compare.
    Arith,
    /// Bitwise logicals.
    Logic,
    /// Shifts.
    Shift,
    /// Register/immediate moves, including `sethi`.
    Move,
    /// Memory loads.
    Load,
    /// Memory stores.
    Store,
    /// Conditional branches.
    CondBranch,
    /// Unconditional control transfers (`ba`, `call`, `ret`, `jmp`).
    Uncond,
    /// Multiplies.
    Mul,
    /// Divides.
    Div,
    /// No-ops.
    Nop,
}

impl OpClass {
    /// Whether results of this class may be *absorbed into* a dependent
    /// instruction by the collapsing hardware.
    pub fn is_collapsible_producer(self) -> bool {
        matches!(
            self,
            OpClass::Arith | OpClass::Logic | OpClass::Shift | OpClass::Move
        )
    }

    /// Whether an instruction of this class may *absorb* a producer:
    /// ALU-class consumers collapse outright; loads and stores collapse
    /// their address generation; conditional branches collapse their
    /// condition-code generation.
    pub fn is_collapsible_consumer(self) -> bool {
        matches!(
            self,
            OpClass::Arith
                | OpClass::Logic
                | OpClass::Shift
                | OpClass::Move
                | OpClass::Load
                | OpClass::Store
                | OpClass::CondBranch
        )
    }
}

impl Opcode {
    /// The operation's class.
    pub fn class(self) -> OpClass {
        match self {
            Opcode::Add | Opcode::Sub | Opcode::Cmp => OpClass::Arith,
            Opcode::And | Opcode::Or | Opcode::Xor | Opcode::Andn | Opcode::Orn | Opcode::Xnor => {
                OpClass::Logic
            }
            Opcode::Sll | Opcode::Srl | Opcode::Sra => OpClass::Shift,
            Opcode::Mov | Opcode::Sethi => OpClass::Move,
            Opcode::Mul => OpClass::Mul,
            Opcode::Div => OpClass::Div,
            Opcode::Ld | Opcode::Ldb => OpClass::Load,
            Opcode::St | Opcode::Stb => OpClass::Store,
            Opcode::Bcc(_) => OpClass::CondBranch,
            Opcode::Ba | Opcode::Call | Opcode::Ret | Opcode::Jmp => OpClass::Uncond,
            Opcode::Nop => OpClass::Nop,
        }
    }

    /// Whether the operation reads memory.
    pub fn is_load(self) -> bool {
        matches!(self, Opcode::Ld | Opcode::Ldb)
    }

    /// Whether the operation writes memory.
    pub fn is_store(self) -> bool {
        matches!(self, Opcode::St | Opcode::Stb)
    }

    /// Whether the operation is a conditional branch.
    pub fn is_cond_branch(self) -> bool {
        matches!(self, Opcode::Bcc(_))
    }

    /// Whether the operation is any control transfer.
    pub fn is_control(self) -> bool {
        matches!(self.class(), OpClass::CondBranch | OpClass::Uncond)
    }

    /// Whether the operation writes the condition codes.
    pub fn writes_icc(self) -> bool {
        matches!(self, Opcode::Cmp)
    }

    /// Whether the operation reads the condition codes.
    pub fn reads_icc(self) -> bool {
        self.is_cond_branch()
    }

    /// The mnemonic used in disassembly.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Add => "add",
            Opcode::Sub => "sub",
            Opcode::And => "and",
            Opcode::Or => "or",
            Opcode::Xor => "xor",
            Opcode::Andn => "andn",
            Opcode::Orn => "orn",
            Opcode::Xnor => "xnor",
            Opcode::Sll => "sll",
            Opcode::Srl => "srl",
            Opcode::Sra => "sra",
            Opcode::Mov => "mov",
            Opcode::Sethi => "sethi",
            Opcode::Cmp => "cmp",
            Opcode::Mul => "smul",
            Opcode::Div => "sdiv",
            Opcode::Ld => "ld",
            Opcode::Ldb => "ldub",
            Opcode::St => "st",
            Opcode::Stb => "stb",
            Opcode::Bcc(Cond::Eq) => "be",
            Opcode::Bcc(Cond::Ne) => "bne",
            Opcode::Bcc(Cond::Lt) => "bl",
            Opcode::Bcc(Cond::Le) => "ble",
            Opcode::Bcc(Cond::Gt) => "bg",
            Opcode::Bcc(Cond::Ge) => "bge",
            Opcode::Bcc(Cond::Ltu) => "blu",
            Opcode::Bcc(Cond::Geu) => "bgeu",
            Opcode::Ba => "ba",
            Opcode::Call => "call",
            Opcode::Ret => "ret",
            Opcode::Jmp => "jmp",
            Opcode::Nop => "nop",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Icc;

    const ALL_OPS: &[Opcode] = &[
        Opcode::Add,
        Opcode::Sub,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Andn,
        Opcode::Orn,
        Opcode::Xnor,
        Opcode::Sll,
        Opcode::Srl,
        Opcode::Sra,
        Opcode::Mov,
        Opcode::Sethi,
        Opcode::Cmp,
        Opcode::Mul,
        Opcode::Div,
        Opcode::Ld,
        Opcode::Ldb,
        Opcode::St,
        Opcode::Stb,
        Opcode::Bcc(Cond::Eq),
        Opcode::Bcc(Cond::Ne),
        Opcode::Bcc(Cond::Lt),
        Opcode::Bcc(Cond::Le),
        Opcode::Bcc(Cond::Gt),
        Opcode::Bcc(Cond::Ge),
        Opcode::Bcc(Cond::Ltu),
        Opcode::Bcc(Cond::Geu),
        Opcode::Ba,
        Opcode::Call,
        Opcode::Ret,
        Opcode::Jmp,
        Opcode::Nop,
    ];

    #[test]
    fn collapsible_producers_match_the_paper() {
        // §3: shift, arithmetic (not multiply or divide), logical, move.
        assert!(Opcode::Add.class().is_collapsible_producer());
        assert!(Opcode::Cmp.class().is_collapsible_producer());
        assert!(Opcode::Sll.class().is_collapsible_producer());
        assert!(Opcode::Xor.class().is_collapsible_producer());
        assert!(Opcode::Mov.class().is_collapsible_producer());
        assert!(!Opcode::Mul.class().is_collapsible_producer());
        assert!(!Opcode::Div.class().is_collapsible_producer());
        assert!(!Opcode::Ld.class().is_collapsible_producer());
        assert!(!Opcode::Bcc(Cond::Eq).class().is_collapsible_producer());
    }

    #[test]
    fn collapsible_consumers_include_memory_and_branches() {
        assert!(Opcode::Ld.class().is_collapsible_consumer());
        assert!(Opcode::St.class().is_collapsible_consumer());
        assert!(Opcode::Bcc(Cond::Ne).class().is_collapsible_consumer());
        assert!(!Opcode::Mul.class().is_collapsible_consumer());
        assert!(!Opcode::Call.class().is_collapsible_consumer());
    }

    #[test]
    fn cond_negate_is_involutive_and_exhaustive() {
        let conds = [
            Cond::Eq,
            Cond::Ne,
            Cond::Lt,
            Cond::Le,
            Cond::Gt,
            Cond::Ge,
            Cond::Ltu,
            Cond::Geu,
        ];
        for c in conds {
            assert_eq!(c.negate().negate(), c);
            // A condition and its negation never agree.
            for (a, b) in [(5u32, 9u32), (9, 5), (7, 7), (0, u32::MAX)] {
                let icc = Icc::from_sub(a, b);
                assert_ne!(c.eval(icc), c.negate().eval(icc), "{c:?} on {a},{b}");
            }
        }
    }

    #[test]
    fn cond_eval_signed_and_unsigned() {
        let icc = Icc::from_sub(0xFFFF_FFFF, 1); // -1 vs 1 signed; huge vs 1 unsigned
        assert!(Cond::Lt.eval(icc), "-1 < 1 signed");
        assert!(Cond::Geu.eval(icc), "0xffffffff >= 1 unsigned");
    }

    #[test]
    fn memory_predicates() {
        assert!(Opcode::Ld.is_load() && Opcode::Ldb.is_load());
        assert!(Opcode::St.is_store() && Opcode::Stb.is_store());
        assert!(!Opcode::Add.is_load() && !Opcode::Add.is_store());
    }

    #[test]
    fn icc_readers_and_writers() {
        assert!(Opcode::Cmp.writes_icc());
        assert!(Opcode::Bcc(Cond::Gt).reads_icc());
        assert!(!Opcode::Add.writes_icc());
        assert!(!Opcode::Ba.reads_icc());
    }

    #[test]
    fn every_opcode_has_a_distinct_class_consistent_mnemonic() {
        for &op in ALL_OPS {
            assert!(!op.mnemonic().is_empty());
            assert_eq!(op.to_string(), op.mnemonic());
        }
    }

    #[test]
    fn control_classification() {
        assert!(Opcode::Ba.is_control());
        assert!(Opcode::Call.is_control());
        assert!(Opcode::Bcc(Cond::Eq).is_control());
        assert!(!Opcode::Ld.is_control());
    }
}
