//! Architectural registers.

use std::fmt;

/// An architectural register name.
///
/// The machine has 32 general-purpose registers `r0..r31` plus one
/// pseudo-register, [`Reg::ICC`], holding the integer condition codes.
/// Following SPARC convention:
///
/// * `r0` ([`Reg::G0`]) is hardwired to zero — writes are discarded,
///   reads return 0;
/// * `r14` ([`Reg::SP`]) is used by the workloads as the stack pointer;
/// * `r15` ([`Reg::LINK`]) receives the return address on `call`.
///
/// Dependence tracking treats `%icc` like any other register: a `cmp`
/// writes it, a conditional branch reads it. This is what lets the
/// collapsing engine model the paper's "condition code generation for
/// branch instructions" category.
///
/// # Examples
///
/// ```
/// use ddsc_isa::Reg;
///
/// assert!(Reg::G0.is_zero());
/// assert_eq!(Reg::new(5).index(), 5);
/// assert_eq!(Reg::ICC.to_string(), "%icc");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Number of trackable register names (32 GPRs + `%icc`).
    pub const COUNT: usize = 33;

    /// The hardwired zero register `r0` (`%g0` in SPARC terms).
    pub const G0: Reg = Reg(0);
    /// The stack pointer by software convention.
    pub const SP: Reg = Reg(14);
    /// The link register written by `call`.
    pub const LINK: Reg = Reg(15);
    /// The integer condition-code pseudo-register.
    pub const ICC: Reg = Reg(32);

    /// Creates a general-purpose register.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32` (use [`Reg::ICC`] for the condition codes).
    pub fn new(index: u8) -> Self {
        assert!(index < 32, "GPR index {index} out of range");
        Reg(index)
    }

    /// The register's index in `0..Reg::COUNT` (`%icc` is 32).
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// Whether this is the hardwired zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Whether this is the condition-code pseudo-register.
    pub fn is_icc(self) -> bool {
        self.0 == 32
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_icc() {
            write!(f, "%icc")
        } else {
            write!(f, "%r{}", self.0)
        }
    }
}

/// Integer condition codes produced by [`Opcode::Cmp`](crate::Opcode::Cmp).
///
/// Semantics follow SPARC v8 `subcc`: the flags describe `a - b`.
///
/// # Examples
///
/// ```
/// use ddsc_isa::Icc;
///
/// let icc = Icc::from_sub(3, 3);
/// assert!(icc.z);
/// let icc = Icc::from_sub(1, 2);
/// assert!(icc.n && !icc.z);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Icc {
    /// Negative: the 32-bit result's sign bit.
    pub n: bool,
    /// Zero: the result is zero.
    pub z: bool,
    /// Overflow: signed overflow occurred.
    pub v: bool,
    /// Carry: borrow occurred (unsigned `a < b`).
    pub c: bool,
}

impl Icc {
    /// Computes the condition codes of `a - b` exactly as SPARC `subcc`.
    pub fn from_sub(a: u32, b: u32) -> Self {
        let (res, borrow) = a.overflowing_sub(b);
        let sa = a as i32;
        let sb = b as i32;
        let (_, overflow) = sa.overflowing_sub(sb);
        Icc {
            n: (res as i32) < 0,
            z: res == 0,
            v: overflow,
            c: borrow,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn special_registers_have_expected_indices() {
        assert_eq!(Reg::G0.index(), 0);
        assert_eq!(Reg::SP.index(), 14);
        assert_eq!(Reg::LINK.index(), 15);
        assert_eq!(Reg::ICC.index(), 32);
    }

    #[test]
    fn zero_and_icc_predicates() {
        assert!(Reg::G0.is_zero());
        assert!(!Reg::new(1).is_zero());
        assert!(Reg::ICC.is_icc());
        assert!(!Reg::new(31).is_icc());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gpr_constructor_rejects_icc_index() {
        Reg::new(32);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Reg::new(7).to_string(), "%r7");
        assert_eq!(Reg::ICC.to_string(), "%icc");
    }

    #[test]
    fn icc_equal_sets_only_z() {
        let icc = Icc::from_sub(10, 10);
        assert_eq!(
            icc,
            Icc {
                n: false,
                z: true,
                v: false,
                c: false
            }
        );
    }

    #[test]
    fn icc_unsigned_borrow_sets_c() {
        let icc = Icc::from_sub(1, 2);
        assert!(icc.c, "1 - 2 borrows");
        let icc = Icc::from_sub(2, 1);
        assert!(!icc.c);
    }

    #[test]
    fn icc_signed_overflow_sets_v() {
        let icc = Icc::from_sub(i32::MIN as u32, 1);
        assert!(icc.v, "INT_MIN - 1 overflows");
        assert!(!icc.n, "result wraps to INT_MAX which is positive");
    }

    proptest! {
        /// The derived comparison predicates agree with native integer
        /// comparisons for arbitrary operands.
        #[test]
        fn flags_encode_comparisons(a in any::<u32>(), b in any::<u32>()) {
            let icc = Icc::from_sub(a, b);
            let (sa, sb) = (a as i32, b as i32);
            prop_assert_eq!(icc.z, a == b);
            // Signed less-than: N xor V.
            prop_assert_eq!(icc.n != icc.v, sa < sb);
            // Unsigned less-than: C.
            prop_assert_eq!(icc.c, a < b);
        }
    }
}
