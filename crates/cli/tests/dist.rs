//! Real-binary fault drills for distributed `repro all`.
//!
//! Both tests spawn the actual `ddsc` binary: a coordinator plus worker
//! processes, with SIGKILL landing (a) on a worker mid-cell and (b) on
//! the coordinator itself mid-run. The contract under both faults: the
//! run (or its `--resume`) exits 0 and the rendered `repro_all.txt` is
//! byte-identical to an undisturbed single-process run's.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use ddsc_util::JournalRecord;

/// Small enough to keep the test fast, large enough that a three-worker
/// run is reliably mid-grid when the kill lands.
const LEN: &str = "30000";
const GRID_CELLS: usize = 30; // 6 benchmarks x 5 configs x 1 width

fn ddsc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ddsc"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ddsc-dist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn repro_args(dir: &Path) -> Vec<String> {
    [
        "--len",
        LEN,
        "--widths",
        "4",
        "--seed",
        "1996",
        "--trace-cache",
    ]
    .iter()
    .map(|s| s.to_string())
    .chain([dir.join("traces").to_str().unwrap().to_string()])
    .collect()
}

fn spawn_worker(port_file: &Path) -> Child {
    ddsc()
        .args(["worker", "--connect-file", port_file.to_str().unwrap()])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn worker")
}

fn journal_finished(path: &Path) -> usize {
    match ddsc_util::read_journal(path) {
        Ok(records) => records
            .iter()
            .filter(|r| matches!(r, JournalRecord::CellFinished { .. }))
            .count(),
        Err(_) => 0,
    }
}

fn wait_exit(child: &mut Child, what: &str, secs: u64) -> Option<i32> {
    let deadline = Instant::now() + Duration::from_secs(secs);
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status.code();
        }
        assert!(Instant::now() < deadline, "{what} never exited");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Crude scan for `"key": value` in the flat BENCH_dist.json payload.
fn json_num(path: &Path, key: &str) -> f64 {
    let text = std::fs::read_to_string(path).expect("read BENCH_dist.json");
    let needle = format!("\"{key}\":");
    let line = text
        .lines()
        .find(|l| l.contains(&needle))
        .unwrap_or_else(|| panic!("no {key} in {}", path.display()));
    line.split(':')
        .nth(1)
        .unwrap()
        .trim()
        .trim_end_matches(',')
        .parse()
        .unwrap()
}

fn reference_output(dir: &Path) -> Vec<u8> {
    let out = dir.join("ref.txt");
    let status = ddsc()
        .args(["repro", "all"])
        .args(repro_args(dir))
        .args(["--out", out.to_str().unwrap()])
        .stdout(Stdio::null())
        .status()
        .expect("run reference repro");
    assert_eq!(status.code(), Some(0), "reference run must exit 0");
    std::fs::read(out).unwrap()
}

#[test]
fn sigkilled_worker_mid_cell_still_merges_byte_identical() {
    let dir = tmpdir("worker-kill");
    let reference = reference_output(&dir);

    let run_dir = dir.join("run");
    let port_file = dir.join("port");
    let out = dir.join("dist.txt");
    let bench_json = dir.join("BENCH_dist.json");
    let mut coordinator = ddsc()
        .args(["coordinator", "--fresh"])
        .args(repro_args(&dir))
        .args(["--run-dir", run_dir.to_str().unwrap()])
        .args(["--dist-port-file", port_file.to_str().unwrap()])
        .args(["--dist-json", bench_json.to_str().unwrap()])
        .args(["--out", out.to_str().unwrap()])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn coordinator");
    let mut workers: Vec<Child> = (0..3).map(|_| spawn_worker(&port_file)).collect();

    // SIGKILL one worker once the journal shows real progress.
    let journal = run_dir.join("run_journal.bin");
    let deadline = Instant::now() + Duration::from_secs(120);
    while journal_finished(&journal) < 1 {
        assert!(Instant::now() < deadline, "no cell ever finished");
        std::thread::sleep(Duration::from_millis(10));
    }
    let finished_at_kill = journal_finished(&journal);
    workers[0].kill().expect("SIGKILL a worker");
    let _ = workers[0].wait();
    assert!(
        finished_at_kill < GRID_CELLS,
        "kill must land mid-run (finished {finished_at_kill})"
    );

    assert_eq!(
        wait_exit(&mut coordinator, "coordinator", 300),
        Some(0),
        "a worker SIGKILL must not degrade the run"
    );
    for w in &mut workers[1..] {
        assert_eq!(wait_exit(w, "surviving worker", 60), Some(0));
    }

    let dist = std::fs::read(&out).unwrap();
    assert_eq!(dist, reference, "merged output must be byte-identical");
    assert_eq!(json_num(&bench_json, "cells_quarantined") as u64, 0);
    assert_eq!(
        json_num(&bench_json, "cells_completed") as usize,
        json_num(&bench_json, "cells_total") as usize
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigkilled_coordinator_resumes_byte_identical_with_exit_0() {
    let dir = tmpdir("coord-kill");
    let reference = reference_output(&dir);

    // Phase 1: the coordinator aborts itself (exit 3, the injected
    // crash used by the PR 5 crash-consistency drills) after 5 merged
    // cells; the orphaned workers notice, retry with backoff, give up
    // and exit 0 on their own.
    let run_dir = dir.join("run");
    let port_file = dir.join("port");
    let mut coordinator = ddsc()
        .args(["coordinator", "--fresh", "--abort-after-cells", "5"])
        .args(repro_args(&dir))
        .args(["--run-dir", run_dir.to_str().unwrap()])
        .args(["--dist-port-file", port_file.to_str().unwrap()])
        .args(["--dist-json", dir.join("j1.json").to_str().unwrap()])
        .args(["--out", dir.join("p1.txt").to_str().unwrap()])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn coordinator");
    let mut workers: Vec<Child> = (0..2).map(|_| spawn_worker(&port_file)).collect();
    assert_eq!(
        wait_exit(&mut coordinator, "aborting coordinator", 300),
        Some(3),
        "--abort-after-cells must kill the coordinator mid-run"
    );
    for w in &mut workers {
        assert_eq!(wait_exit(w, "orphaned worker", 60), Some(0));
    }
    let finished = journal_finished(&run_dir.join("run_journal.bin"));
    assert!(
        (1..GRID_CELLS).contains(&finished),
        "the crash must land mid-grid, journal shows {finished}"
    );

    // Phase 2: --resume on the same run directory restores the
    // journaled cells and dispatches only the remainder.
    let port_file2 = dir.join("port2");
    let out = dir.join("dist.txt");
    let bench_json = dir.join("BENCH_dist.json");
    let mut coordinator = ddsc()
        .args(["coordinator", "--resume"])
        .args(repro_args(&dir))
        .args(["--run-dir", run_dir.to_str().unwrap()])
        .args(["--dist-port-file", port_file2.to_str().unwrap()])
        .args(["--dist-json", bench_json.to_str().unwrap()])
        .args(["--out", out.to_str().unwrap()])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("respawn coordinator");
    let mut workers: Vec<Child> = (0..2).map(|_| spawn_worker(&port_file2)).collect();
    assert_eq!(
        wait_exit(&mut coordinator, "resumed coordinator", 300),
        Some(0),
        "the resumed run must complete cleanly"
    );
    for w in &mut workers {
        assert_eq!(wait_exit(w, "worker", 60), Some(0));
    }

    let dist = std::fs::read(&out).unwrap();
    assert_eq!(dist, reference, "resumed output must be byte-identical");
    let redispatch_grid = json_num(&bench_json, "cells_total") as usize;
    assert_eq!(
        redispatch_grid,
        GRID_CELLS - finished,
        "the resume must dispatch exactly the missing cells"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
