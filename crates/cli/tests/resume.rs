//! Crash/resume integration test against the real `ddsc` binary.
//!
//! The in-process CLI tests can't exercise `--abort-after-cells`
//! because the hook kills the whole process (deliberately: it models a
//! SIGKILL mid-run, which no amount of unwinding survives). Here we
//! spawn the actual binary, kill it mid-grid via the hook, and assert
//! the journal + cell store let `--resume` finish the run with
//! byte-identical artifacts while re-simulating only unfinished cells.

use std::path::{Path, PathBuf};
use std::process::Command;

fn ddsc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ddsc"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ddsc-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn s(p: &Path) -> &str {
    p.to_str().unwrap()
}

#[test]
fn an_aborted_run_resumes_to_byte_identical_artifacts() {
    let dir = tmpdir("abort");
    let run_dir = dir.join("run");
    let reference = dir.join("reference.txt");
    let resumed = dir.join("resumed.txt");
    let bench_json = dir.join("bench.json");
    let common = [
        "repro",
        "all",
        "--len",
        "2000",
        "--widths",
        "4",
        "--threads",
        "2",
        "--no-trace-cache",
    ];

    // Reference: one uninterrupted, unsupervised run.
    let status = ddsc()
        .args(common)
        .args(["--out", s(&reference)])
        .status()
        .unwrap();
    assert!(status.success(), "reference run failed: {status:?}");

    // A supervised run killed by the deterministic crash hook partway
    // through the grid. Exit 3 is the hook's signature — anything else
    // means the abort fired in the wrong place (or not at all).
    let status = ddsc()
        .args(common)
        .args(["--fresh", "--run-dir", s(&run_dir)])
        .args(["--abort-after-cells", "7"])
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(3), "abort hook must kill the process");

    // The journal records a torn run: started, some cells finished (at
    // least the 7 the hook counted; in-flight workers may land a few
    // more before exit), and no RunFinished.
    let journal = run_dir.join("run_journal.bin");
    let dump = ddsc().args(["journal", s(&journal)]).output().unwrap();
    let dump = String::from_utf8(dump.stdout).unwrap();
    assert!(dump.contains("RunStarted"), "journal: {dump}");
    assert!(!dump.contains("RunFinished"), "torn run must not be sealed");
    let finished = dump.matches("CellFinished").count();
    assert!((7..30).contains(&finished), "finished {finished} of 30");

    // Every journaled CellFinished has its result in the cell store (a
    // worker caught between its save and its journal append may leave
    // one extra file — harmless, it's simply not trusted on resume).
    let cells = std::fs::read_dir(run_dir.join("cells")).unwrap().count();
    assert!(cells >= finished, "cell store and journal must agree");

    // Resume completes the grid, re-simulating only unfinished cells,
    // and publishes byte-identical artifacts.
    let status = ddsc()
        .args(common)
        .args(["--resume", "--run-dir", s(&run_dir)])
        .args(["--out", s(&resumed), "--bench-json", s(&bench_json)])
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(0), "resumed run must complete");
    assert_eq!(
        std::fs::read(&resumed).unwrap(),
        std::fs::read(&reference).unwrap(),
        "resumed artifacts must be byte-identical to an uninterrupted run"
    );

    // The bench report counts what the journal restored.
    let json = std::fs::read_to_string(&bench_json).unwrap();
    assert!(
        json.contains(&format!("\"resumed_cells\": {finished}")),
        "bench json must report {finished} resumed cells: {json}"
    );

    // The journal is now sealed.
    let dump = ddsc().args(["journal", s(&journal)]).output().unwrap();
    let dump = String::from_utf8(dump.stdout).unwrap();
    assert!(dump.contains("RunFinished status=0"), "journal: {dump}");

    let _ = std::fs::remove_dir_all(&dir);
}
