//! SIGKILL crash-recovery test for the real `ddsc serve` daemon.
//!
//! Spawns the actual binary, fires a grid of submissions at it, kills
//! the process with SIGKILL once the journal shows real progress, then
//! restarts it on the same run directory and asserts (a) the journaled
//! cells are resumed warm — served from the cell store without
//! re-simulating — and (b) every response is byte-identical to a
//! daemon that was never killed.

use std::io::{BufReader, BufWriter, Write as _};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use ddsc_serve::proto::{read_response, write_request, Request, Response, SubmitRequest};
use ddsc_util::JournalRecord;

fn ddsc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ddsc"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ddsc-serve-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// The grid this test serves: ten cells, long enough that a
/// single-worker daemon is reliably mid-grid when the kill lands.
fn grid() -> Vec<SubmitRequest> {
    let mut cells = Vec::new();
    for (i, bench) in ["compress", "espresso", "eqntott", "li", "go"]
        .into_iter()
        .enumerate()
    {
        for config in ["C", "D"] {
            cells.push(SubmitRequest {
                bench: bench.to_string(),
                config: config.to_string(),
                width: 4,
                trace_len: 50_000,
                seed: 1996 + i as u64,
            });
        }
    }
    cells
}

struct Daemon {
    child: Child,
    addr: std::net::SocketAddr,
}

fn spawn_daemon(run_dir: &Path, port_file: &Path, fresh: bool) -> Daemon {
    let _ = std::fs::remove_file(port_file);
    let mut cmd = ddsc();
    cmd.args(["serve", "--addr", "127.0.0.1:0", "--workers", "1"])
        .args(["--run-dir", run_dir.to_str().unwrap()])
        .args(["--port-file", port_file.to_str().unwrap()])
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if fresh {
        cmd.arg("--fresh");
    }
    let child = cmd.spawn().expect("spawn daemon");

    // The daemon publishes its bound address atomically once listening.
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(port_file) {
            if let Ok(addr) = text.trim().parse() {
                break addr;
            }
        }
        assert!(Instant::now() < deadline, "daemon never published its port");
        std::thread::sleep(Duration::from_millis(20));
    };
    Daemon { child, addr }
}

/// Submits one cell over a fresh connection; `None` if the daemon died
/// mid-request (expected around the kill).
fn submit(addr: std::net::SocketAddr, req: &SubmitRequest) -> Option<Vec<u8>> {
    let stream = TcpStream::connect(addr).ok()?;
    let mut reader = BufReader::new(stream.try_clone().ok()?);
    let mut writer = BufWriter::new(stream);
    write_request(&mut writer, &Request::Submit(req.clone())).ok()?;
    writer.flush().ok()?;
    loop {
        match read_response(&mut reader).ok()?? {
            Response::Queued { .. } | Response::Started => continue,
            Response::Result { body, .. } => return Some(body),
            other => panic!("unexpected terminal {other:?}"),
        }
    }
}

fn stats(addr: std::net::SocketAddr) -> ddsc_serve::StatsSnapshot {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = BufWriter::new(stream);
    write_request(&mut writer, &Request::Stats).unwrap();
    writer.flush().unwrap();
    match read_response(&mut reader).expect("read").expect("open") {
        Response::Stats(s) => s,
        other => panic!("expected stats, got {other:?}"),
    }
}

fn shutdown(addr: std::net::SocketAddr) {
    if let Ok(stream) = TcpStream::connect(addr) {
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        let _ = write_request(&mut writer, &Request::Shutdown);
        let _ = writer.flush();
        let _ = read_response(&mut reader);
    }
}

fn journal_finished(path: &Path) -> usize {
    match ddsc_util::read_journal(path) {
        Ok(records) => records
            .iter()
            .filter(|r| matches!(r, JournalRecord::CellFinished { .. }))
            .count(),
        Err(_) => 0,
    }
}

#[test]
fn sigkilled_daemon_restarts_warm_with_byte_identical_responses() {
    let dir = tmpdir("warm");
    let cells = grid();

    // Reference: an uninterrupted daemon serves the whole grid.
    let ref_daemon = spawn_daemon(&dir.join("ref-run"), &dir.join("ref-port"), true);
    let mut reference = Vec::new();
    for req in &cells {
        reference.push(submit(ref_daemon.addr, req).expect("reference submit"));
    }
    shutdown(ref_daemon.addr);
    let mut child = ref_daemon.child;
    let _ = child.wait();

    // Victim: same grid fired from background threads at a fresh
    // single-worker daemon; SIGKILL once the journal shows at least two
    // finished cells (and well before all ten).
    let run_dir = dir.join("crash-run");
    let victim = spawn_daemon(&run_dir, &dir.join("crash-port"), true);
    let addr = victim.addr;
    let submitters: Vec<_> = cells
        .iter()
        .cloned()
        .map(|req| std::thread::spawn(move || submit(addr, &req)))
        .collect();

    let journal = run_dir.join("serve_journal.bin");
    let deadline = Instant::now() + Duration::from_secs(120);
    while journal_finished(&journal) < 2 {
        assert!(Instant::now() < deadline, "daemon never finished two cells");
        std::thread::sleep(Duration::from_millis(10));
    }
    let mut child = victim.child;
    child.kill().expect("SIGKILL the daemon"); // SIGKILL on unix
    let _ = child.wait();
    for handle in submitters {
        let _ = handle.join(); // interrupted submits return None
    }

    let finished = journal_finished(&journal);
    assert!(
        (2..cells.len()).contains(&finished),
        "kill must land mid-grid, finished {finished} of {}",
        cells.len()
    );

    // Restart on the same run directory (no --fresh): every journaled
    // cell is resumed from the store, and the whole grid comes back
    // byte-identical to the never-killed daemon.
    let restarted = spawn_daemon(&run_dir, &dir.join("restart-port"), false);
    let s = stats(restarted.addr);
    assert_eq!(
        s.resumed_cells, finished as u64,
        "every journaled cell must resume warm"
    );

    for (req, expected) in cells.iter().zip(&reference) {
        let body = submit(restarted.addr, req).expect("post-restart submit");
        assert_eq!(
            &body, expected,
            "post-restart response must be byte-identical for {req:?}"
        );
    }

    let s = stats(restarted.addr);
    assert_eq!(
        s.completed,
        (cells.len() - finished) as u64,
        "resumed cells must not re-simulate"
    );
    assert_eq!(
        s.cache_hits, finished as u64,
        "resumed cells serve as cache hits"
    );

    shutdown(restarted.addr);
    let mut child = restarted.child;
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
