//! The `ddsc` binary entry point.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match ddsc_cli::run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ddsc: {e}");
            ExitCode::FAILURE
        }
    }
}
