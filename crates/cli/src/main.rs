//! The `ddsc` binary entry point.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match ddsc_cli::run_full(&args) {
        Ok(output) => {
            print!("{}", output.text);
            ExitCode::from(output.status.exit_code())
        }
        Err(e) => {
            eprintln!("ddsc: {e}");
            ExitCode::FAILURE
        }
    }
}
