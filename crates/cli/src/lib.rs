//! Implementation of the `ddsc` command-line tool.
//!
//! Subcommands:
//!
//! * `ddsc list` — the benchmark suite;
//! * `ddsc disasm <bench>` — show the head of a workload's dynamic stream;
//! * `ddsc trace gen <bench> -o FILE [--len N] [--seed S]` — write a
//!   binary trace file;
//! * `ddsc trace info FILE` — instruction-mix statistics of a trace file;
//! * `ddsc sim <bench> [--config A..E] [--width W] [--len N] [--seed S]`
//!   — simulate one benchmark and print the result;
//! * `ddsc repro <artifact>|all|extensions [--len N] [--seed S]
//!   [--threads T] [--timing] [--profile] [--profile-dir DIR]
//!   [--bench-json FILE] [--trace-cache DIR] [--no-trace-cache]` —
//!   regenerate paper tables/figures over the parallel lab, optionally
//!   appending a throughput report and writing the machine-readable
//!   benchmark payload (`results/BENCH_lab.json` by convention);
//!   `--profile` runs the grid under the cycle-attribution observer,
//!   renders a where-the-cycles-go table per configuration and writes
//!   `profile_<config>.json` per configuration (default `results/`);
//!   generated traces are cached under `results/traces/` (checksummed,
//!   atomically written) unless `--no-trace-cache` is given;
//! * `ddsc help`.

use std::error::Error;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use ddsc_core::{
    analyze_dataflow, simulate, simulate_stream, Latencies, LoadClass, PaperConfig, SimConfig,
    SimResult, DEFAULT_CHUNK_SIZE,
};
use ddsc_dist::{run_worker, CellSpec, Coordinator, DistSinks, SchedOptions, WorkerOptions};
use ddsc_experiments::{
    convergence_study, extensions, figures, tables, CellStore, Lab, Suite, SuiteConfig, TraceCache,
};
use ddsc_trace::io::{read_trace, write_trace};
use ddsc_util::journal::{Journal, JournalRecord};
use ddsc_util::publish_atomic;
use ddsc_workloads::Benchmark;

/// How a successful invocation ended, mapped to the process exit code.
///
/// The contract: `0` — everything asked for was produced; `2` — the run
/// *degraded* (some grid cells failed but partial results were still
/// rendered; `repro --strict` promotes this to a hard failure); hard
/// failures return `Err` from [`run_full`] and exit `1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// Every requested artifact was produced on healthy cells.
    Complete,
    /// Partial results: one or more grid cells failed and their
    /// artifacts were skipped.
    Degraded,
}

impl RunStatus {
    /// The process exit code this status maps to.
    pub fn exit_code(self) -> u8 {
        match self {
            RunStatus::Complete => 0,
            RunStatus::Degraded => 2,
        }
    }
}

/// The text to print plus the exit status of a successful invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutput {
    /// The rendered output.
    pub text: String,
    /// Complete or degraded-partial.
    pub status: RunStatus,
}

impl RunOutput {
    fn complete(text: String) -> RunOutput {
        RunOutput {
            text,
            status: RunStatus::Complete,
        }
    }
}

/// Runs the CLI with the given arguments (excluding the program name);
/// returns the text to print plus the exit status ([`RunStatus`]).
///
/// # Errors
///
/// Returns a boxed error on bad usage, I/O failure, or a simulation
/// failure that leaves nothing to report; `main` prints it and exits 1.
pub fn run_full(args: &[String]) -> Result<RunOutput, Box<dyn Error>> {
    let mut args = args.iter().map(String::as_str);
    match args.next() {
        None | Some("help") | Some("--help") | Some("-h") => Ok(RunOutput::complete(usage())),
        Some("list") => Ok(RunOutput::complete(list())),
        Some("disasm") => disasm(&collect(args)).map(RunOutput::complete),
        Some("trace") => trace_cmd(&collect(args)).map(RunOutput::complete),
        Some("sim") => sim_cmd(&collect(args)).map(RunOutput::complete),
        Some("convergence") => convergence_cmd(&collect(args)).map(RunOutput::complete),
        Some("analyze") => analyze_cmd(&collect(args)).map(RunOutput::complete),
        Some("journal") => journal_cmd(&collect(args)).map(RunOutput::complete),
        Some("repro") => repro_cmd(&collect(args)),
        Some("serve") => serve_cmd(&collect(args)).map(RunOutput::complete),
        Some("loadtest") => loadtest_cmd(&collect(args)),
        Some("coordinator") => coordinator_cmd(&collect(args)),
        Some("worker") => worker_cmd(&collect(args)).map(RunOutput::complete),
        Some("chaosproxy") => chaosproxy_cmd(&collect(args)).map(RunOutput::complete),
        Some(other) => Err(format!("unknown command `{other}` (try `ddsc help`)").into()),
    }
}

/// Like [`run_full`], but returns only the output text (status
/// discarded). Kept for callers that predate the exit-code contract.
///
/// # Errors
///
/// Same as [`run_full`].
pub fn run(args: &[String]) -> Result<String, Box<dyn Error>> {
    run_full(args).map(|o| o.text)
}

/// Runs `f` under a panic guard, converting a panic into an error whose
/// message is the rendered panic payload.
fn catch_panic<T>(f: impl FnOnce() -> T) -> Result<T, Box<dyn Error>> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).map_err(|payload| {
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "non-string panic payload".to_string());
        msg.into()
    })
}

fn collect<'a>(it: impl Iterator<Item = &'a str>) -> Vec<&'a str> {
    it.collect()
}

fn usage() -> String {
    "\
ddsc — data dependence speculation & collapsing limit study (MICRO-29, 1996)

USAGE:
  ddsc list
  ddsc disasm <benchmark>
  ddsc trace gen <benchmark> -o FILE [--len N] [--seed S]
  ddsc trace info FILE
  ddsc sim <benchmark> [--config A|B|C|D|E] [--width W] [--len N] [--seed S]
                       [--chunk-size C]
  ddsc convergence [--bench B] [--config A|B|C|D|E] [--width W] [--seed S]
                   [--lens N1,N2,...] [--chunk-size C] [--out FILE]
  ddsc analyze <benchmark> [--len N] [--seed S]
  ddsc repro <table1|table2|table3|table4|table5|table6|
              fig2|fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig10|
              all|extensions> [--len N] [--seed S] [--widths 4,8,...]
                             [--out FILE] [--threads T] [--timing]
                             [--profile] [--profile-dir DIR]
                             [--bench-json FILE] [--trace-cache DIR]
                             [--no-trace-cache] [--strict]
                             [--inject-fault BENCH:CONFIG:WIDTH]
                             [--resume | --fresh] [--run-dir DIR]
                             [--cell-timeout SECS]
                             [--abort-after-cells N]
                             [--distributed N] [--dist-addr HOST:PORT]
                             [--dist-port-file FILE] [--dist-json FILE]
                             [--dist-via-file FILE]
                             [--lease-timeout SECS] [--no-adaptive-lease]
                             [--heartbeat-timeout SECS]
                             [--poison-threshold K]
                             [--spot-check PCT] [--spot-check-seed S]
                             [--byzantine-workers K]
  ddsc coordinator [--workers N] [repro-all flags...]
  ddsc worker (--connect HOST:PORT | --connect-file FILE)
              [--heartbeat-ms MS] [--reconnect-attempts N]
  ddsc chaosproxy (--upstream HOST:PORT | --upstream-file FILE)
                  [--listen HOST:PORT] [--port-file FILE] [--seed S]
                  [--events N] [--min-gap B] [--max-gap B]
                  [--print-script N]
  ddsc journal FILE
  ddsc serve [--addr HOST:PORT] [--workers N] [--queue-depth K]
             [--cell-timeout SECS] [--run-dir DIR] [--fresh]
             [--port-file FILE] [--max-trace-len N]
  ddsc loadtest [--addr HOST:PORT] [--requests N] [--clients C]
                [--dup-ratio R] [--len N] [--seed S] [--widths 4,8,...]
                [--out FILE] [--shutdown]

Benchmarks: compress espresso eqntott li go ijpeg

`sim --chunk-size C` streams the run: the workload VM is stepped
lazily and the simulator holds only a sliding window of C-instruction
chunks, so paper-scale traces (250M instructions) run in bounded
memory with bit-identical results. `convergence` runs one cell
(default li, config D, width 8) streamed at a ladder of trace
lengths (default 300000,25000000,250000000), prints the IPC
convergence table and writes the JSON payload to --out (default
results/BENCH_convergence.json).

`repro` fans the simulation grid out over a thread pool (host
parallelism by default; override with --threads or DDSC_THREADS).
--timing appends a wall-clock/MIPS report; --bench-json writes the
same data as JSON (conventionally results/BENCH_lab.json).
--profile runs every cell under the cycle-attribution observer
(audited: attributed cycles sum exactly to total cycles), appends a
where-the-cycles-go table per configuration, and writes
profile_<config>.json for each configuration into --profile-dir
(default results). Generated traces are cached on disk (default
results/traces, checksum validated); --trace-cache relocates the
cache, --no-trace-cache regenerates every trace in memory.

`repro all` degrades gracefully: a grid cell whose simulation fails
is skipped (with its artifacts) while everything else renders, and
the run exits 2 with a partial-results summary; --strict promotes
any degradation to a hard failure. Exit codes: 0 complete, 2
degraded partial results, 1 hard failure. --inject-fault forces one
cell to fail (deterministic fault injection for testing the
degraded path; repeatable).

`repro --fresh` runs supervised: every cell transition is appended
to a write-ahead journal (<run-dir>/run_journal.bin) and every
finished cell's result is stored under <run-dir>/cells, all written
atomically. `repro --resume` replays the journal first — cells
whose recorded input digest still matches are restored from disk
and only missing, failed or stale cells re-simulate — so a killed
run picks up where it died with byte-identical output. --run-dir
defaults to results. --cell-timeout gives every cell a wall-clock
budget in seconds (cooperative cancellation; expired cells are
reported as timed out and degrade the run). `ddsc journal FILE`
dumps a run journal, one record per line. --abort-after-cells kills
the process after N finished cells (crash-consistency testing).

`ddsc serve` runs the lab as a long-running daemon: experiment
requests (benchmark, config, width, trace_len, seed) arrive as
checksummed binary frames over TCP, pass admission control (bounded
queue; typed rejection when full), coalesce onto in-flight identical
cells, and return the SimResult binary codec. With --run-dir the
daemon journals progress and stores finished cells so a killed
daemon restarted on the same directory re-serves them byte-identically
without re-simulating (--fresh wipes that state first). --addr
defaults to 127.0.0.1:4996; port 0 picks an ephemeral port, and
--port-file publishes the actually bound address atomically.
--cell-timeout bounds each cell's wall clock, returning a timed-out
response instead of stalling a worker. `ddsc loadtest` is the
closed-loop multi-client driver: it fires --requests grid requests
from --clients connections with a --dup-ratio fraction of repeats
(exercising coalescing), prints a latency/throughput summary, and
publishes the BENCH payload (p50/p90/p99/p999, throughput, server
coalesce/cache counters) to --out (default results/BENCH_serve.json);
--shutdown stops the daemon afterwards.

`repro all --distributed N` runs the grid across worker *processes*:
a coordinator hands out the not-yet-cached cells to N locally spawned
`ddsc worker` children (N=0 accepts external workers only) over the
checksummed frame protocol, with per-worker heartbeats, cell leases
(straggler re-dispatch; first valid result wins), exponential-backoff
reconnect and poison-cell quarantine after --poison-threshold distinct
worker strikes (quarantined cells degrade the run, exit 2). The merged
output is byte-identical to a single-process run, and with --fresh /
--resume the merge is journaled so a killed coordinator resumes,
re-dispatching only missing cells. The run report (per-worker cells,
re-dispatches, speedup vs serial) lands in --dist-json (default
results/BENCH_dist.json). `ddsc coordinator` is shorthand for
`repro all --distributed 0` plus --workers N to spawn local workers;
`ddsc worker --connect HOST:PORT` (or --connect-file FILE, polled
until the coordinator publishes its address) joins any coordinator,
exiting 0 when told the grid is done or the coordinator stays
unreachable past its reconnect budget.

The coordinator verifies its fleet: --spot-check PCT (default 10)
dispatches a seeded, deterministic PCT% of cells to two distinct
workers and compares the canonical result bytes — a mismatch holds
both answers, re-dispatches to a third worker as tiebreak, and bans
the outvoted worker for the run (its leases drain, its results are
ignored, reconnection is refused). Lease timeouts adapt online from
per-benchmark compute-time estimates (EWMA + p95); --lease-timeout
SECS is both the pre-estimate fallback and a floor the estimator
never undercuts, and --no-adaptive-lease pins timeouts to the flag.
Spot-check counters, per-benchmark lease stats and mismatch
incidents land in --dist-json (schema ddsc-dist-bench-v2).

`ddsc chaosproxy` interposes a deterministic fault box between
workers and a coordinator (or any loopback TCP service): each
connection suffers a --seed-scripted sequence of delays, dropped and
duplicated bytes, bit-flips, truncations and mid-stream resets, the
same every run. --upstream-file polls the coordinator's
--dist-port-file; --port-file publishes the proxy's own address for
workers' --connect-file; --print-script N renders the first N
connections' scripts and exits. `repro all --distributed N
--dist-via-file FILE` starts local workers against the proxy's
address file instead of the coordinator, and --byzantine-workers K
makes the first K spawned workers lie (well-formed, perturbed
results) so trust drills have an adversary to catch.
"
    .to_string()
}

/// Dumps a run journal, one record per line (the format CI smoke jobs
/// poll while a supervised run is still going).
fn journal_cmd(args: &[&str]) -> Result<String, Box<dyn Error>> {
    let path = args.first().ok_or("usage: ddsc journal FILE")?;
    let records = ddsc_util::read_journal(Path::new(path))?;
    let mut out = String::new();
    for rec in &records {
        let _ = match rec {
            JournalRecord::RunStarted { config } => writeln!(out, "RunStarted {config}"),
            JournalRecord::CellStarted {
                bench,
                config,
                width,
            } => writeln!(out, "CellStarted {bench} {config} {width}"),
            JournalRecord::CellFinished {
                bench,
                config,
                width,
                digest,
            } => writeln!(
                out,
                "CellFinished {bench} {config} {width} digest={digest:016x}"
            ),
            JournalRecord::CellFailed {
                bench,
                config,
                width,
                error,
            } => writeln!(out, "CellFailed {bench} {config} {width} error={error:?}"),
            JournalRecord::ArtifactPublished { path } => {
                writeln!(out, "ArtifactPublished {path}")
            }
            JournalRecord::RunFinished { status } => writeln!(out, "RunFinished status={status}"),
        };
    }
    let _ = writeln!(out, "{} records", records.len());
    Ok(out)
}

/// Runs the lab as a daemon: binds, prints the bound address (flushed,
/// so supervisors and CI can wait on it), then blocks in the accept
/// loop until a protocol `Shutdown` request stops it.
fn serve_cmd(args: &[&str]) -> Result<String, Box<dyn Error>> {
    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:4996");
    let workers = parse_num(args, "--workers", 2usize)?;
    let queue_depth = parse_num(args, "--queue-depth", 64usize)?;
    let deadline = match flag_value(args, "--cell-timeout") {
        Some(v) => Some(Duration::from_secs_f64(v.parse::<f64>()?)),
        None => None,
    };
    let run_dir = flag_value(args, "--run-dir").map(PathBuf::from);
    let max_trace_len = parse_num(
        args,
        "--max-trace-len",
        ddsc_serve::engine::DEFAULT_MAX_TRACE_LEN,
    )?;
    let port_file = flag_value(args, "--port-file").map(PathBuf::from);
    if args.contains(&"--fresh") {
        if let Some(dir) = &run_dir {
            let _ = std::fs::remove_file(dir.join("serve_journal.bin"));
            let _ = std::fs::remove_dir_all(dir.join("cells"));
        }
    }

    let config = ddsc_serve::EngineConfig {
        workers,
        queue_depth,
        deadline,
        run_dir,
        max_trace_len,
        gate: None,
    };
    let server = ddsc_serve::Server::bind(addr, config, port_file.as_deref())?;
    {
        use std::io::Write as _;
        let mut stdout = std::io::stdout();
        writeln!(stdout, "ddsc serve listening on {}", server.local_addr())?;
        stdout.flush()?;
    }
    let summary = server.run();
    let s = summary.stats;
    let mut out = String::new();
    let _ = writeln!(out, "ddsc serve shut down cleanly");
    let _ = writeln!(
        out,
        "  connections {}  accepted {}  completed {}  failed {}  timed out {}",
        summary.connections, s.accepted, s.completed, s.failed, s.timed_out
    );
    let _ = writeln!(
        out,
        "  coalesced {}  cache hits {}  resumed cells {}  rejected busy {}  rejected invalid {}",
        s.coalesced, s.cache_hits, s.resumed_cells, s.rejected_busy, s.rejected_invalid
    );
    Ok(out)
}

/// Closed-loop multi-client load driver against a live `ddsc serve`.
fn loadtest_cmd(args: &[&str]) -> Result<RunOutput, Box<dyn Error>> {
    let defaults = ddsc_serve::LoadtestConfig::default();
    let widths = match flag_value(args, "--widths") {
        None => defaults.widths.clone(),
        Some(list) => list
            .split(',')
            .map(|w| w.trim().parse::<u32>())
            .collect::<Result<Vec<_>, _>>()?,
    };
    let cfg = ddsc_serve::LoadtestConfig {
        addr: flag_value(args, "--addr")
            .unwrap_or(&defaults.addr)
            .to_string(),
        requests: parse_num(args, "--requests", defaults.requests)?,
        clients: parse_num(args, "--clients", defaults.clients)?,
        dup_ratio: parse_num(args, "--dup-ratio", defaults.dup_ratio)?,
        trace_len: parse_num(args, "--len", defaults.trace_len)?,
        seed: parse_num(args, "--seed", defaults.seed)?,
        widths,
        out: flag_value(args, "--out")
            .map(PathBuf::from)
            .unwrap_or_else(|| defaults.out.clone()),
        shutdown: args.contains(&"--shutdown"),
    };

    let report = ddsc_serve::run_loadtest(&cfg)?;
    let (p50, p90, p99, p999) = report.latency_ms;
    let s = &report.server;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "serve loadtest: {} requests, {} clients, dup ratio {:.2} against {}",
        cfg.requests, cfg.clients, cfg.dup_ratio, cfg.addr
    );
    let _ = writeln!(
        out,
        "  completed {}  rejected {}  failed {}  timed out {}",
        report.completed, report.rejected, report.failed, report.timed_out
    );
    let _ = writeln!(
        out,
        "  unique cells {}  planned duplicates {}",
        report.unique_cells, report.duplicates
    );
    let _ = writeln!(
        out,
        "  wall {:.2} s  throughput {:.1} req/s",
        report.wall_seconds, report.throughput_rps
    );
    let _ = writeln!(
        out,
        "  latency ms: p50 {p50:.2}  p90 {p90:.2}  p99 {p99:.2}  p999 {p999:.2}  mean {:.2}  max {:.2}",
        report.mean_ms, report.max_ms
    );
    let _ = writeln!(
        out,
        "  server: simulated {}  coalesced {}  cache hits {}  resumed {}",
        s.completed, s.coalesced, s.cache_hits, s.resumed_cells
    );
    let _ = writeln!(out, "  wrote {}", cfg.out.display());
    let status = if report.failed + report.timed_out > 0 {
        RunStatus::Degraded
    } else {
        RunStatus::Complete
    };
    Ok(RunOutput { text: out, status })
}

fn list() -> String {
    let mut out = String::new();
    for b in Benchmark::ALL {
        let _ = writeln!(
            out,
            "{:<10} models {:<14} {}",
            b.name(),
            b.models(),
            if b.is_pointer_chasing() {
                "(pointer chasing)"
            } else {
                ""
            }
        );
    }
    out
}

fn parse_bench(name: &str) -> Result<Benchmark, Box<dyn Error>> {
    Benchmark::ALL
        .into_iter()
        .find(|b| b.name() == name)
        .ok_or_else(|| format!("unknown benchmark `{name}` (try `ddsc list`)").into())
}

fn parse_config(label: &str) -> Result<PaperConfig, Box<dyn Error>> {
    PaperConfig::ALL
        .into_iter()
        .find(|c| c.label().eq_ignore_ascii_case(label))
        .ok_or_else(|| format!("unknown configuration `{label}` (A..E)").into())
}

fn flag_value<'a>(args: &[&'a str], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|&a| a == flag)
        .and_then(|i| args.get(i + 1).copied())
}

fn parse_num<T: std::str::FromStr>(
    args: &[&str],
    flag: &str,
    default: T,
) -> Result<T, Box<dyn Error>>
where
    T::Err: Error + 'static,
{
    match flag_value(args, flag) {
        Some(v) => Ok(v.parse()?),
        None => Ok(default),
    }
}

fn disasm(args: &[&str]) -> Result<String, Box<dyn Error>> {
    let name = args.first().ok_or("usage: ddsc disasm <benchmark>")?;
    let bench = parse_bench(name)?;
    let seed: u64 = parse_num(args, "--seed", 1996)?;
    let len: usize = parse_num(args, "--len", 64)?;
    let trace = bench.trace(seed, len).map_err(|e| e.to_string())?;
    let mut out = format!("first {len} dynamic instructions of {}\n", bench.name());
    for inst in &trace {
        let _ = writeln!(out, "{inst}");
    }
    Ok(out)
}

fn trace_cmd(args: &[&str]) -> Result<String, Box<dyn Error>> {
    match args.first().copied() {
        Some("gen") => {
            let name = args
                .get(1)
                .ok_or("usage: ddsc trace gen <benchmark> -o FILE")?;
            let bench = parse_bench(name)?;
            let path = flag_value(args, "-o").ok_or("missing -o FILE")?;
            let len: usize = parse_num(args, "--len", 1_000_000)?;
            let seed: u64 = parse_num(args, "--seed", 1996)?;
            let trace = bench.trace(seed, len).map_err(|e| e.to_string())?;
            let file = File::create(path)?;
            write_trace(BufWriter::new(file), &trace)?;
            Ok(format!(
                "wrote {} instructions of {} to {path}\n",
                trace.len(),
                bench.name()
            ))
        }
        Some("info") => {
            let path = args.get(1).ok_or("usage: ddsc trace info FILE")?;
            let trace = read_trace(BufReader::new(File::open(path)?))?;
            Ok(format!(
                "trace `{}`: {} instructions\n{}",
                trace.name(),
                trace.len(),
                trace.stats()
            ))
        }
        _ => Err("usage: ddsc trace <gen|info> ...".into()),
    }
}

fn sim_cmd(args: &[&str]) -> Result<String, Box<dyn Error>> {
    let name = args.first().ok_or("usage: ddsc sim <benchmark> [...]")?;
    let bench = parse_bench(name)?;
    let config = parse_config(flag_value(args, "--config").unwrap_or("D"))?;
    let width: u32 = parse_num(args, "--width", 8)?;
    let len: usize = parse_num(args, "--len", 300_000)?;
    let seed: u64 = parse_num(args, "--seed", 1996)?;
    let sim_config = SimConfig::paper(config, width);

    // With --chunk-size the run streams: the workload VM is stepped
    // lazily and the simulator holds only a sliding window, so memory
    // stays bounded at any --len. Results are bit-identical to the
    // whole-trace path, and the streaming note goes to stderr so
    // stdout stays byte-identical too (CI diffs the two).
    let result = match flag_value(args, "--chunk-size") {
        Some(c) => {
            let chunk: usize = c.parse()?;
            let mut src = bench.source(seed, len);
            let r = simulate_stream(&mut src, &sim_config, chunk).map_err(|e| e.to_string())?;
            if let Some(rss) = ddsc_util::peak_rss_bytes() {
                eprintln!(
                    "streamed {len} instructions in {chunk}-instruction chunks, peak RSS {:.1} MiB",
                    rss as f64 / (1024.0 * 1024.0)
                );
            }
            r
        }
        None => {
            let trace = bench.trace(seed, len).map_err(|e| e.to_string())?;
            simulate(&trace, &sim_config)
        }
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} | config {} ({}), width {width}",
        bench.name(),
        config.label(),
        config.description()
    );
    let _ = writeln!(out, "{result}");
    let _ = writeln!(
        out,
        "branches: {} conditional, {:.1}% predicted correctly",
        result.branches.cond_branches,
        result.branches.accuracy_pct().value()
    );
    if result.loads.total() > 0 {
        let _ = writeln!(
            out,
            "loads: ready {} / correct {} / incorrect {} / not-predicted {} (%)",
            result.loads.pct(LoadClass::Ready),
            result.loads.pct(LoadClass::PredictedCorrect),
            result.loads.pct(LoadClass::PredictedIncorrect),
            result.loads.pct(LoadClass::NotPredicted)
        );
    }
    let st = &result.stalls;
    if st.total() > 0 {
        let _ = writeln!(
            out,
            "stalls: data {} / address {} / memory {} / branch {} / bandwidth {} (% of {:.2} wait cycles/inst)",
            st.share(st.data),
            st.share(st.address),
            st.share(st.memory),
            st.share(st.branch),
            st.share(st.bandwidth),
            st.per_inst()
        );
    }
    if result.collapse.groups() > 0 {
        let _ = writeln!(
            out,
            "collapsed: {:.1}% of instructions, {} groups",
            result.collapse.collapsed_pct().value(),
            result.collapse.groups()
        );
    }
    Ok(out)
}

/// `ddsc convergence`: the paper-scale trace-length study. Simulates
/// one cell streamed at a ladder of lengths, prints the convergence
/// table and publishes the JSON payload.
fn convergence_cmd(args: &[&str]) -> Result<String, Box<dyn Error>> {
    let bench = parse_bench(flag_value(args, "--bench").unwrap_or("li"))?;
    let config = parse_config(flag_value(args, "--config").unwrap_or("D"))?;
    let width: u32 = parse_num(args, "--width", 8)?;
    let seed: u64 = parse_num(args, "--seed", 1996)?;
    let chunk: usize = parse_num(args, "--chunk-size", DEFAULT_CHUNK_SIZE)?;
    let lens: Vec<usize> = match flag_value(args, "--lens") {
        Some(spec) => spec
            .split(',')
            .map(|s| s.trim().replace('_', "").parse::<usize>())
            .collect::<Result<_, _>>()?,
        None => vec![300_000, 25_000_000, 250_000_000],
    };
    let report =
        convergence_study(bench, config, width, seed, &lens, chunk).map_err(|e| e.to_string())?;
    let mut out = report.render();
    let path = flag_value(args, "--out").unwrap_or("results/BENCH_convergence.json");
    publish_atomic(Path::new(path), report.to_json().as_bytes())?;
    let _ = writeln!(out, "wrote {path}");
    Ok(out)
}

fn analyze_cmd(args: &[&str]) -> Result<String, Box<dyn Error>> {
    let name = args
        .first()
        .ok_or("usage: ddsc analyze <benchmark> [...]")?;
    let bench = parse_bench(name)?;
    let len: usize = parse_num(args, "--len", 300_000)?;
    let seed: u64 = parse_num(args, "--seed", 1996)?;
    let trace = bench.trace(seed, len).map_err(|e| e.to_string())?;
    let a = analyze_dataflow(&trace, &Latencies::default());

    let mut out = String::new();
    let _ = writeln!(
        out,
        "dataflow-limit analysis of {} ({} instructions)",
        bench.name(),
        a.instructions
    );
    let _ = writeln!(out, "  critical path     : {} cycles", a.critical_path);
    let _ = writeln!(out, "  dataflow-limit IPC: {:.2}", a.limit_ipc());
    let _ = writeln!(
        out,
        "  true dependences  : {:.2} per instruction",
        a.deps_per_inst()
    );
    let _ = writeln!(
        out,
        "  dependence spans  : {:.1}% within 8 insts, {:.1}% within 64",
        100.0 * a.fraction_below(8),
        100.0 * a.fraction_below(64)
    );
    // How much of the limit each machine configuration captures.
    let _ = writeln!(out, "\nmachine IPC vs. the dataflow limit (width 32):");
    for cfg in PaperConfig::ALL {
        let r = simulate(&trace, &SimConfig::paper(cfg, 32));
        let _ = writeln!(
            out,
            "  config {}: {:>6.2} IPC  ({:.0}% of limit)",
            cfg.label(),
            r.ipc(),
            100.0 * r.ipc() / a.limit_ipc().max(1e-9)
        );
    }
    Ok(out)
}

/// Parses a `--inject-fault` cell spec: `benchmark:config:width`.
fn parse_cell(spec: &str) -> Result<ddsc_experiments::Cell, Box<dyn Error>> {
    let parts: Vec<&str> = spec.split(':').collect();
    let [bench, config, width] = parts.as_slice() else {
        return Err(format!("bad cell `{spec}` (expected benchmark:config:width)").into());
    };
    Ok((parse_bench(bench)?, parse_config(config)?, width.parse()?))
}

/// Runs the not-yet-cached grid cells through a coordinator + worker
/// processes and installs the merged results into `lab`, leaving the
/// cache in the same state a local prewarm would have: byte-identical
/// results keyed by the same cells, quarantined cells recorded as
/// failures feeding the exit-2 degraded contract.
fn distributed_prewarm(lab: &Lab, args: &[&str], nworkers: usize) -> Result<(), Box<dyn Error>> {
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicUsize, Ordering};

    let grid = lab.grid();
    let todo = lab.uncached_cells(&grid);
    if todo.is_empty() {
        eprintln!(
            "distributed: all {} grid cells already cached, nothing to dispatch",
            grid.len()
        );
        return Ok(());
    }
    let sc = lab.suite().config();
    let mut by_digest: HashMap<u64, ddsc_experiments::Cell> = HashMap::new();
    let specs: Vec<CellSpec> = todo
        .iter()
        .map(|&cell| {
            let (b, c, width) = cell;
            let digest = lab.cell_digest(cell);
            by_digest.insert(digest, cell);
            CellSpec {
                bench: b.name().to_string(),
                config: c.label().to_string(),
                width,
                trace_len: sc.trace_len as u64,
                seed: sc.seed,
                digest,
            }
        })
        .collect();
    let mut opts = SchedOptions::default();
    if let Some(v) = flag_value(args, "--lease-timeout") {
        // The fixed flag doubles as the adaptive floor: an explicit
        // operator timeout is never shortened by the estimator.
        opts.lease_timeout = Duration::from_secs_f64(v.parse()?);
        opts.lease_floor = opts.lease_timeout;
    }
    if let Some(v) = flag_value(args, "--heartbeat-timeout") {
        opts.heartbeat_timeout = Duration::from_secs_f64(v.parse()?);
    }
    if let Some(v) = flag_value(args, "--poison-threshold") {
        opts.poison_threshold = v.parse()?;
    }
    if args.contains(&"--no-adaptive-lease") {
        opts.adaptive_lease = false;
    }
    opts.spot_check_percent = parse_num(args, "--spot-check", 10u8)?.min(100);
    opts.spot_check_seed = parse_num(args, "--spot-check-seed", opts.spot_check_seed)?;
    let coord = Coordinator::bind(
        flag_value(args, "--dist-addr").unwrap_or("127.0.0.1:0"),
        specs,
        opts,
    )?;
    let addr = coord.local_addr();
    eprintln!(
        "distributed: coordinating {} cells on {addr} ({nworkers} local workers)",
        todo.len()
    );
    if let Some(path) = flag_value(args, "--dist-port-file") {
        publish_atomic(Path::new(path), addr.to_string().as_bytes())?;
    }
    let exe = std::env::current_exe()?;
    let byzantine_workers: usize = parse_num(args, "--byzantine-workers", 0)?;
    let mut children = Vec::new();
    for i in 0..nworkers {
        let mut cmd = std::process::Command::new(&exe);
        // --dist-via-file routes local workers through an address file
        // (typically published by `ddsc chaosproxy`) instead of the
        // coordinator's own socket, so chaos drills interpose on every
        // worker byte without the workers knowing.
        match flag_value(args, "--dist-via-file") {
            Some(path) => cmd.args(["worker", "--connect-file", path]),
            None => cmd.args(["worker", "--connect", &addr.to_string()]),
        };
        if i < byzantine_workers {
            cmd.arg("--byzantine");
        }
        children.push(cmd.spawn()?);
    }
    // --abort-after-cells counts *merged* cells here: run_cell never
    // fires in a distributed prewarm, so the lab's own abort hook would
    // be dead code and the crash-consistency drill would lose its
    // coordinator-kill scenario.
    let abort_after: usize = parse_num(args, "--abort-after-cells", 0)?;
    let merged = AtomicUsize::new(0);
    let on_result = |spec: &CellSpec, result: &SimResult, seconds: f64| {
        if let Some(&cell) = by_digest.get(&spec.digest) {
            lab.install_result(cell, result.clone(), seconds);
            let done = merged.fetch_add(1, Ordering::SeqCst) + 1;
            if abort_after > 0 && done >= abort_after {
                eprintln!("injected abort: exiting after {done} merged cells");
                std::process::exit(3);
            }
        }
    };
    let on_quarantine = |spec: &CellSpec, error: &str| {
        if let Some(&cell) = by_digest.get(&spec.digest) {
            lab.install_failure(cell, format!("quarantined by coordinator: {error}"));
        }
    };
    let report = coord.run(&DistSinks {
        on_result: &on_result,
        on_quarantine: &on_quarantine,
    });
    // Workers exit on AllDone by themselves; the kill only reaps a
    // child wedged mid-reconnect so the CLI never hangs on wait().
    for mut child in children {
        let _ = child.kill();
        let _ = child.wait();
    }
    let json_path = flag_value(args, "--dist-json").unwrap_or("results/BENCH_dist.json");
    if let Some(parent) = Path::new(json_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    publish_atomic(Path::new(json_path), report.to_json().as_bytes())?;
    // Summary goes to stderr: stdout must stay byte-identical to a
    // single-process run's.
    eprintln!(
        "distributed: merged {}/{} cells ({} quarantined) in {:.2} s, \
         {} re-dispatches, {} duplicates, {} corrupt, {} worker deaths, \
         speedup vs serial {:.2}x; wrote {json_path}",
        report.cells_completed,
        report.cells_total,
        report.cells_quarantined,
        report.wall_seconds,
        report.redispatched,
        report.duplicate_results,
        report.corrupt_results,
        report.worker_deaths,
        report.speedup_vs_serial(),
    );
    if report.spot_checked > 0 || report.mismatches > 0 || !report.byzantine_workers.is_empty() {
        eprintln!(
            "distributed: {} cells spot-checked, {} mismatches, \
             {} byzantine workers banned ({:?}), \
             {} revocation false positives",
            report.spot_checked,
            report.mismatches,
            report.byzantine_workers.len(),
            report.byzantine_workers,
            report.revocation_false_positives,
        );
    }
    Ok(())
}

/// `ddsc coordinator` — shorthand for `repro all --distributed N` with
/// N taken from `--workers` (default 0: external workers only). Every
/// other flag is passed straight through to `repro`.
fn coordinator_cmd(args: &[&str]) -> Result<RunOutput, Box<dyn Error>> {
    let workers = flag_value(args, "--workers").unwrap_or("0");
    let mut fwd = vec!["all", "--distributed", workers];
    fwd.extend_from_slice(args);
    repro_cmd(&fwd)
}

/// `ddsc worker` — joins a coordinator and computes cells until told
/// the grid is done (or the coordinator stays unreachable past the
/// reconnect budget; both exit 0, so supervising scripts only see a
/// failure when the worker itself breaks).
fn worker_cmd(args: &[&str]) -> Result<String, Box<dyn Error>> {
    let connect = match (
        flag_value(args, "--connect"),
        flag_value(args, "--connect-file"),
    ) {
        (Some(addr), None) => addr.to_string(),
        (None, Some(path)) => {
            // The coordinator publishes its bound address atomically;
            // poll until it appears so workers can be started first.
            let deadline = std::time::Instant::now() + Duration::from_secs(30);
            loop {
                match std::fs::read_to_string(path) {
                    Ok(s) if !s.trim().is_empty() => break s.trim().to_string(),
                    _ if std::time::Instant::now() > deadline => {
                        return Err(format!("no coordinator address in {path} after 30 s").into());
                    }
                    _ => std::thread::sleep(Duration::from_millis(20)),
                }
            }
        }
        _ => {
            return Err("worker needs exactly one of --connect ADDR or --connect-file FILE".into())
        }
    };
    let mut opts = WorkerOptions::new(connect);
    if let Some(ms) = flag_value(args, "--heartbeat-ms") {
        opts.heartbeat_every = Duration::from_millis(ms.parse()?);
    }
    if let Some(n) = flag_value(args, "--reconnect-attempts") {
        opts.reconnect_attempts = n.parse()?;
    }
    // Hidden test mode (documented in DESIGN.md §8.2, not in usage):
    // compute honestly, then perturb the cycle count before reporting.
    // Exists so trust drills have a live adversary to catch.
    opts.byzantine = args.contains(&"--byzantine");
    let summary = run_worker(&opts)?;
    Ok(format!(
        "worker {}: {} cells completed, {} failed{}\n",
        summary.worker_id,
        summary.completed,
        summary.failed,
        if summary.all_done {
            " (grid complete)"
        } else {
            " (coordinator gone)"
        }
    ))
}

/// `ddsc chaosproxy` — a deterministic network-chaos proxy for
/// loopback TCP. Every connection through it suffers a seeded script
/// of delays, drops, bit-flips, duplicated bytes, truncations and
/// mid-stream resets; the same `--seed` always produces the same
/// per-connection scripts, so a chaos drill that fails in CI replays
/// bit-identically on a laptop. Runs until killed.
fn chaosproxy_cmd(args: &[&str]) -> Result<String, Box<dyn Error>> {
    use ddsc_dist::{chaos, ChaosOptions, Direction};

    let mut opts = ChaosOptions::default();
    if let Some(v) = flag_value(args, "--seed") {
        opts.seed = v.parse()?;
    }
    if let Some(v) = flag_value(args, "--events") {
        opts.events_per_conn = v.parse()?;
    }
    if let Some(v) = flag_value(args, "--min-gap") {
        opts.min_gap = v.parse()?;
    }
    if let Some(v) = flag_value(args, "--max-gap") {
        opts.max_gap = v.parse()?;
    }
    if opts.min_gap > opts.max_gap {
        return Err("--min-gap must not exceed --max-gap".into());
    }

    // Dry run: render the first N connections' fault scripts (both
    // directions) without touching the network — the reviewable artifact
    // form of "what will this seed do to me".
    if let Some(n) = flag_value(args, "--print-script") {
        let n: u64 = n.parse()?;
        let mut out = String::new();
        for conn in 0..n {
            for dir in [Direction::Upstream, Direction::Downstream] {
                let plan = chaos::script(&opts, conn, dir);
                let _ = writeln!(out, "# conn {conn} {dir:?}");
                out.push_str(&plan.render());
            }
        }
        return Ok(out);
    }

    let upstream = match (
        flag_value(args, "--upstream"),
        flag_value(args, "--upstream-file"),
    ) {
        (Some(addr), None) => addr.to_string(),
        (None, Some(path)) => {
            // The coordinator publishes its address atomically; poll so
            // the proxy can be started before (or alongside) it.
            let deadline = std::time::Instant::now() + Duration::from_secs(30);
            loop {
                match std::fs::read_to_string(path) {
                    Ok(s) if !s.trim().is_empty() => break s.trim().to_string(),
                    _ if std::time::Instant::now() > deadline => {
                        return Err(format!("no upstream address in {path} after 30 s").into());
                    }
                    _ => std::thread::sleep(Duration::from_millis(20)),
                }
            }
        }
        _ => {
            return Err(
                "chaosproxy needs exactly one of --upstream ADDR or --upstream-file FILE".into(),
            )
        }
    };
    let listen = flag_value(args, "--listen").unwrap_or("127.0.0.1:0");
    let proxy = ddsc_dist::ChaosProxy::bind(listen, upstream, opts)?;
    let addr = proxy.local_addr();
    // Publish the bound address exactly like the coordinator does, so
    // workers can `--connect-file` the proxy instead of the real thing.
    if let Some(path) = flag_value(args, "--port-file") {
        publish_atomic(Path::new(path), addr.to_string().as_bytes())?;
    }
    println!("{addr}");
    {
        use std::io::Write as _;
        std::io::stdout().flush()?;
    }
    let summary = proxy.run();
    Ok(format!(
        "chaosproxy: {} connections; {} delays, {} drops, {} bit-flips, \
         {} duplications, {} truncations, {} resets\n",
        summary.connections,
        summary.delays,
        summary.drops,
        summary.flips,
        summary.duplicates,
        summary.truncations,
        summary.resets,
    ))
}

fn repro_cmd(args: &[&str]) -> Result<RunOutput, Box<dyn Error>> {
    let what = args.first().copied().unwrap_or("all");
    let len: usize = parse_num(args, "--len", 300_000)?;
    let seed: u64 = parse_num(args, "--seed", 1996)?;
    let widths: Vec<u32> = match flag_value(args, "--widths") {
        Some(spec) => spec
            .split(',')
            .map(|s| s.trim().parse::<u32>())
            .collect::<Result<_, _>>()?,
        None => SimConfig::PAPER_WIDTHS.to_vec(),
    };
    if let Some(t) = flag_value(args, "--threads") {
        let t: usize = t.parse()?;
        // The lab reads DDSC_THREADS; the flag is just a friendlier spelling.
        std::env::set_var("DDSC_THREADS", t.to_string());
    }
    let strict = args.contains(&"--strict");
    let resume = args.contains(&"--resume");
    let fresh = args.contains(&"--fresh");
    if resume && fresh {
        return Err("--resume and --fresh are mutually exclusive".into());
    }
    let suite_config = SuiteConfig {
        seed,
        trace_len: len,
        widths: widths.clone(),
    };
    let suite = if args.contains(&"--no-trace-cache") {
        Suite::generate(suite_config)
    } else {
        let dir = flag_value(args, "--trace-cache").unwrap_or("results/traces");
        Suite::generate_cached(suite_config, &TraceCache::new(dir))
    };
    let profiling = args.contains(&"--profile");
    let mut lab = if profiling {
        Lab::from_suite(suite).with_profiling()
    } else {
        Lab::from_suite(suite)
    };
    for (i, arg) in args.iter().enumerate() {
        if *arg == "--inject-fault" {
            let spec = args
                .get(i + 1)
                .ok_or("--inject-fault needs a benchmark:config:width cell")?;
            lab = lab.with_injected_fault(parse_cell(spec)?);
        }
    }
    let cell_timeout: f64 = parse_num(args, "--cell-timeout", 0.0)?;
    if cell_timeout > 0.0 {
        lab = lab.with_cell_timeout(Duration::from_secs_f64(cell_timeout));
    }
    if let Some(n) = flag_value(args, "--abort-after-cells") {
        lab = lab.with_abort_after(n.parse()?);
    }
    // Supervised runs (--fresh starts a journal, --resume replays one)
    // journal every cell transition write-ahead and publish finished
    // cell results to the run directory, making a killed run resumable.
    let mut journal: Option<Arc<Journal>> = None;
    if resume || fresh {
        let run_dir = PathBuf::from(flag_value(args, "--run-dir").unwrap_or("results"));
        std::fs::create_dir_all(&run_dir)?;
        let journal_path = run_dir.join("run_journal.bin");
        if fresh {
            match std::fs::remove_file(&journal_path) {
                Err(e) if e.kind() != std::io::ErrorKind::NotFound => return Err(e.into()),
                _ => {}
            }
        }
        let (j, records) = Journal::open(&journal_path)?;
        let j = Arc::new(j);
        lab = lab.with_supervision(Arc::clone(&j), CellStore::new(run_dir.join("cells")));
        if resume {
            let (resumed, replayed) = lab.resume(&records);
            // Resume bookkeeping goes to stderr (and BENCH_lab.json),
            // never stdout: resumed output must stay byte-identical to
            // an uninterrupted run's.
            eprintln!(
                "resume: restored {resumed} cells from {}, {replayed} journaled cells will re-run",
                journal_path.display()
            );
        }
        if let Err(e) = j.append(&JournalRecord::RunStarted {
            config: format!("{what} seed={seed} len={len} widths={widths:?}"),
        }) {
            eprintln!("warning: could not append to run journal: {e}");
        }
        journal = Some(j);
    }
    // Distributed prewarm: fan the not-yet-cached cells out to worker
    // processes before rendering. Merged results land in the lab cache
    // (and, under supervision, the journal + cell store) exactly as a
    // local run's would, so everything below this block is unchanged.
    if let Some(spec) = flag_value(args, "--distributed") {
        let nworkers: usize = spec.parse()?;
        distributed_prewarm(&lab, args, nworkers)?;
    }
    let journal_artifact = |path: &str| {
        if let Some(j) = &journal {
            if let Err(e) = j.append(&JournalRecord::ArtifactPublished {
                path: path.to_string(),
            }) {
                eprintln!("warning: could not append to run journal: {e}");
            }
        }
    };
    let mut status = RunStatus::Complete;
    let mut out = match what {
        "all" => {
            // Prewarm with per-cell containment first; only then decide
            // between the byte-stable clean path and the degraded one.
            lab.prewarm_degraded(&lab.grid());
            let failures = lab.failed_cells();
            if failures.is_empty() {
                // Every cell is cached: render_all's own prewarm is a
                // no-op and the output is byte-identical to a run
                // without the containment layer.
                ddsc_experiments::render_all(&lab)
            } else if strict {
                let ((b, c, w), msg) = &failures[0];
                return Err(format!(
                    "{} grid cell(s) failed (strict mode); first: ({}, config {}, width {}): {msg}",
                    failures.len(),
                    b.models(),
                    c.label(),
                    w
                )
                .into());
            } else {
                status = RunStatus::Degraded;
                ddsc_experiments::render_all_contained(&lab)
            }
        }
        "extensions" => catch_panic(|| extensions::render_all(&lab))?,
        "table1" => catch_panic(|| tables::table1(lab.suite()).render())?,
        "table2" => catch_panic(|| tables::table2(lab.suite()).render())?,
        "table3" => catch_panic(|| tables::table3(&lab).render())?,
        "table4" => catch_panic(|| tables::table4(&lab).render())?,
        "table5" => catch_panic(|| tables::table5(&lab).render())?,
        "table6" => catch_panic(|| tables::table6(&lab).render())?,
        "fig2" => catch_panic(|| figures::fig2(&lab).render())?,
        "fig3" => catch_panic(|| figures::fig3(&lab).render())?,
        "fig4" => catch_panic(|| figures::fig4(&lab).render())?,
        "fig5" => catch_panic(|| figures::fig5(&lab).render())?,
        "fig6" => catch_panic(|| figures::fig6(&lab).render())?,
        "fig7" => catch_panic(|| figures::fig7(&lab).render())?,
        "fig8" => catch_panic(|| figures::fig8(&lab).render())?,
        "fig9" => catch_panic(|| figures::fig9(&lab).render())?,
        "fig10" => catch_panic(|| figures::fig10(&lab).render())?,
        other => return Err(format!("unknown artifact `{other}`").into()),
    };
    if profiling {
        if status == RunStatus::Degraded {
            // collect_profiles needs every cell's metrics; failed cells
            // have none, so profiles cannot be produced on a degraded
            // grid.
            out.push('\n');
            out.push_str("profiles skipped: grid degraded (failed cells present)\n");
        } else {
            // Profiles cover the full grid: collect_profiles prewarms
            // every cell, whatever single artifact was asked for.
            let profiles = catch_panic(|| ddsc_experiments::collect_profiles(&lab))?;
            out.push('\n');
            out.push_str(&ddsc_experiments::render_profiles(&profiles));
            let dir = flag_value(args, "--profile-dir").unwrap_or("results");
            let paths = ddsc_experiments::write_profiles(&profiles, std::path::Path::new(dir))?;
            for p in &paths {
                let _ = writeln!(out, "wrote {}", p.display());
            }
        }
    }
    if args.contains(&"--timing") {
        out.push('\n');
        out.push_str(&lab.report().render());
    }
    if status == RunStatus::Degraded {
        let failures = lab.cell_failures();
        let completed = lab.simulations_run();
        let total = completed + failures.len();
        out.push('\n');
        out.push_str("## Degraded run summary\n");
        let _ = writeln!(
            out,
            "completed {completed} of {total} grid cells; artifacts touching failed cells were skipped"
        );
        for ((b, c, w), failure) in &failures {
            let _ = writeln!(
                out,
                "failed{}: ({}, config {}, width {}): {}",
                if failure.timed_out {
                    " (timed out)"
                } else {
                    ""
                },
                b.models(),
                c.label(),
                w,
                failure.error
            );
        }
        let timeouts = failures.iter().filter(|(_, f)| f.timed_out).count();
        if timeouts > 0 {
            let _ = writeln!(
                out,
                "{timeouts} cell(s) exceeded the --cell-timeout budget of {cell_timeout} s"
            );
        }
        out.push_str(
            "exit code 2 (degraded partial results; rerun with --strict to fail instead)\n",
        );
    }
    if let Some(path) = flag_value(args, "--bench-json") {
        publish_atomic(Path::new(path), lab.report().to_json().as_bytes())?;
        journal_artifact(path);
    }
    let output = if let Some(path) = flag_value(args, "--out") {
        publish_atomic(Path::new(path), out.as_bytes())?;
        journal_artifact(path);
        RunOutput {
            text: format!("wrote {} bytes to {path}\n", out.len()),
            status,
        }
    } else {
        RunOutput { text: out, status }
    };
    if let Some(j) = &journal {
        if let Err(e) = j.append(&JournalRecord::RunFinished {
            status: u32::from(status.exit_code()),
        }) {
            eprintln!("warning: could not append to run journal: {e}");
        }
    }
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_strs(args: &[&str]) -> Result<String, Box<dyn Error>> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&owned)
    }

    #[test]
    fn help_and_list() {
        assert!(run_strs(&["help"]).unwrap().contains("USAGE"));
        assert!(run_strs(&[]).unwrap().contains("USAGE"));
        let l = run_strs(&["list"]).unwrap();
        for b in Benchmark::ALL {
            assert!(l.contains(b.name()));
        }
    }

    #[test]
    fn unknown_commands_error() {
        assert!(run_strs(&["bogus"]).is_err());
        assert!(run_strs(&["sim", "nope"]).is_err());
        assert!(run_strs(&["repro", "fig99", "--len", "500", "--no-trace-cache"]).is_err());
    }

    #[test]
    fn sim_produces_a_result() {
        let out = run_strs(&[
            "sim", "eqntott", "--config", "D", "--width", "8", "--len", "5000",
        ])
        .unwrap();
        assert!(out.contains("IPC"));
        assert!(out.contains("collapsed"));
    }

    #[test]
    fn streamed_sim_output_is_byte_identical_to_whole_trace() {
        let base = [
            "sim", "li", "--config", "D", "--width", "8", "--len", "6000",
        ];
        let whole = run_strs(&base).unwrap();
        for chunk in ["1", "977", "1000000"] {
            let mut streamed: Vec<&str> = base.to_vec();
            streamed.extend(["--chunk-size", chunk]);
            assert_eq!(run_strs(&streamed).unwrap(), whole, "chunk {chunk}");
        }
    }

    #[test]
    fn convergence_writes_table_and_json() {
        let dir = std::env::temp_dir().join(format!("ddsc-cli-conv-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_convergence.json");
        let out = run_strs(&[
            "convergence",
            "--bench",
            "compress",
            "--config",
            "D",
            "--width",
            "8",
            "--lens",
            "2000,5000",
            "--chunk-size",
            "512",
            "--out",
            path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("Convergence: 026.compress config D width 8"));
        assert!(out.contains("vs longest"));
        assert!(out.contains("wrote"));
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"schema\": \"ddsc-convergence-v1\""));
        assert!(json.contains("\"len\": 5000"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_roundtrip_through_files() {
        let dir = std::env::temp_dir().join("ddsc-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.trc");
        let path = path.to_str().unwrap();
        let out = run_strs(&["trace", "gen", "compress", "-o", path, "--len", "2000"]).unwrap();
        assert!(out.contains("2000"));
        let info = run_strs(&["trace", "info", path]).unwrap();
        assert!(info.contains("2000 instructions"));
        assert!(info.contains("cond-branch"));
    }

    #[test]
    fn repro_single_artifacts() {
        let out = run_strs(&[
            "repro",
            "fig2",
            "--len",
            "4000",
            "--widths",
            "4",
            "--no-trace-cache",
        ])
        .unwrap();
        assert!(out.contains("Figure 2"));
        let out = run_strs(&[
            "repro",
            "table2",
            "--len",
            "4000",
            "--widths",
            "4",
            "--no-trace-cache",
        ])
        .unwrap();
        assert!(out.contains("Table 2"));
    }

    #[test]
    fn repro_trace_cache_round_trips() {
        let dir = std::env::temp_dir().join(format!("ddsc-cli-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = dir.to_str().unwrap();
        let args = [
            "repro",
            "fig2",
            "--len",
            "3000",
            "--widths",
            "4",
            "--trace-cache",
            cache,
        ];
        let cold = run_strs(&args).unwrap();
        // One cache file per benchmark, named by the generation key.
        let files: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(files.len(), 6);
        assert!(files.iter().any(|f| f == "compress-s1996-n3000.bin"));
        // The warm run serves traces from disk and must render the same
        // figure byte-for-byte.
        let warm = run_strs(&args).unwrap();
        assert_eq!(cold, warm);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn repro_out_writes_a_file() {
        let dir = std::env::temp_dir().join("ddsc-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig2.txt");
        let path = path.to_str().unwrap();
        let out = run_strs(&[
            "repro",
            "fig2",
            "--len",
            "3000",
            "--widths",
            "4",
            "--out",
            path,
            "--no-trace-cache",
        ])
        .unwrap();
        assert!(out.contains("wrote"));
        let contents = std::fs::read_to_string(path).unwrap();
        assert!(contents.contains("Figure 2"));
    }

    #[test]
    fn repro_timing_appends_a_throughput_report() {
        let out = run_strs(&[
            "repro",
            "fig2",
            "--len",
            "3000",
            "--widths",
            "4",
            "--timing",
            "--no-trace-cache",
        ])
        .unwrap();
        assert!(out.contains("Figure 2"));
        assert!(out.contains("Lab throughput report"));
        assert!(out.contains("analysis pre-pass"));
        assert!(out.contains("MIPS"));
    }

    #[test]
    fn repro_bench_json_writes_the_payload() {
        let dir = std::env::temp_dir().join("ddsc-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_lab.json");
        let path = path.to_str().unwrap();
        run_strs(&[
            "repro",
            "table2",
            "--len",
            "3000",
            "--widths",
            "4",
            "--bench-json",
            path,
            "--no-trace-cache",
        ])
        .unwrap();
        let json = std::fs::read_to_string(path).unwrap();
        assert!(json.contains("\"aggregate_mips\""));
        assert!(json.contains("\"speedup_vs_serial\""));
        assert!(json.contains("\"prepass_seconds\""));
    }

    #[test]
    fn repro_profile_renders_tables_and_writes_per_config_json() {
        let dir = std::env::temp_dir().join(format!("ddsc-cli-profile-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let profile_dir = dir.to_str().unwrap();
        let bench_json = dir.join("BENCH_lab.json");
        let out = run_strs(&[
            "repro",
            "table2",
            "--len",
            "3000",
            "--widths",
            "4",
            "--profile",
            "--profile-dir",
            profile_dir,
            "--bench-json",
            bench_json.to_str().unwrap(),
            "--no-trace-cache",
        ])
        .unwrap();
        assert!(out.contains("Where the cycles go"));
        assert!(out.contains("dep_height %"));
        for c in PaperConfig::ALL {
            assert!(out.contains(&format!("config {}", c.label())));
            let path = dir.join(format!("profile_{}.json", c.label()));
            assert!(out.contains(&format!("wrote {}", path.display())));
            let json = std::fs::read_to_string(&path).unwrap();
            assert!(json.contains("\"schema\": \"ddsc-profile-v1\""));
            assert!(json.contains("\"attribution\""));
        }
        // The profiled lab also feeds per-cell attribution into the
        // benchmark payload.
        let lab_json = std::fs::read_to_string(&bench_json).unwrap();
        assert!(lab_json.contains("\"cell_metrics\""));
        assert!(lab_json.contains("\"dep_height\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn run_full_strs(args: &[&str]) -> Result<RunOutput, Box<dyn Error>> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run_full(&owned)
    }

    #[test]
    fn clean_runs_are_complete_and_identical_to_the_uncontained_render() {
        let args = [
            "repro",
            "all",
            "--len",
            "2000",
            "--widths",
            "4",
            "--no-trace-cache",
        ];
        let out = run_full_strs(&args).unwrap();
        assert_eq!(out.status, RunStatus::Complete);
        assert_eq!(out.status.exit_code(), 0);
        assert!(!out.text.contains("Degraded run summary"));
        assert!(!out.text.contains("[skipped"));

        // The containment layer must not move a byte on clean inputs.
        let lab = Lab::from_suite(Suite::generate(SuiteConfig {
            seed: 1996,
            trace_len: 2000,
            widths: vec![4],
        }));
        assert_eq!(out.text, ddsc_experiments::render_all(&lab));
    }

    #[test]
    fn injected_faults_degrade_the_run_with_exit_code_two() {
        let dir = std::env::temp_dir().join(format!("ddsc-cli-degraded-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let json_path = dir.join("BENCH_lab.json");
        let out = run_full_strs(&[
            "repro",
            "all",
            "--len",
            "2000",
            "--widths",
            "4",
            "--no-trace-cache",
            "--inject-fault",
            "eqntott:B:4",
            "--bench-json",
            json_path.to_str().unwrap(),
        ])
        .unwrap();
        assert_eq!(out.status, RunStatus::Degraded);
        assert_eq!(out.status.exit_code(), 2);
        assert!(out.text.contains("## Degraded run summary"), "{}", out.text);
        assert!(
            out.text.contains("completed 29 of 30 grid cells"),
            "{}",
            out.text
        );
        assert!(out.text.contains("injected fault"));
        // Artifacts not touching the failed cell still render; the
        // artifacts that do are one-line skip notes.
        assert!(out.text.contains("Table 1"));
        assert!(out.text.contains("[skipped"));
        // The machine-readable payload names the failed cell.
        let json = std::fs::read_to_string(&json_path).unwrap();
        assert!(json.contains("\"failed_cells\""));
        assert!(json.contains("\"023.eqntott\""));
        assert!(json.contains("injected fault"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn strict_promotes_degradation_to_a_hard_failure() {
        let err = run_full_strs(&[
            "repro",
            "all",
            "--len",
            "2000",
            "--widths",
            "4",
            "--no-trace-cache",
            "--strict",
            "--inject-fault",
            "eqntott:B:4",
        ])
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("strict"), "{msg}");
        assert!(msg.contains("023.eqntott"), "{msg}");
    }

    #[test]
    fn single_artifacts_fail_hard_when_their_cell_is_faulted() {
        // fig2 sweeps every benchmark at every width over A..E, so a
        // fault on any cell it touches is a hard (exit 1) failure.
        let err = run_full_strs(&[
            "repro",
            "fig2",
            "--len",
            "2000",
            "--widths",
            "4",
            "--no-trace-cache",
            "--inject-fault",
            "compress:A:4",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("injected fault"), "{err}");
    }

    #[test]
    fn bad_inject_fault_specs_are_usage_errors() {
        for spec in [
            "eqntott",
            "eqntott:B",
            "nope:B:4",
            "eqntott:Z:4",
            "eqntott:B:x",
        ] {
            assert!(
                run_full_strs(&[
                    "repro",
                    "table1",
                    "--len",
                    "1000",
                    "--no-trace-cache",
                    "--inject-fault",
                    spec,
                ])
                .is_err(),
                "spec `{spec}` should be rejected"
            );
        }
    }

    #[test]
    fn resume_and_fresh_are_mutually_exclusive() {
        let err = run_full_strs(&[
            "repro",
            "table1",
            "--len",
            "1000",
            "--no-trace-cache",
            "--resume",
            "--fresh",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn supervised_runs_journal_resume_and_stay_byte_identical() {
        let dir = std::env::temp_dir().join(format!("ddsc-cli-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let run_dir = dir.to_str().unwrap().to_string();
        let base = [
            "repro",
            "all",
            "--len",
            "2000",
            "--widths",
            "4",
            "--no-trace-cache",
            "--run-dir",
            &run_dir,
        ];

        // Fresh supervised run: complete, and the journal records the
        // whole lifecycle.
        let mut fresh_args: Vec<&str> = base.to_vec();
        fresh_args.push("--fresh");
        let fresh = run_full_strs(&fresh_args).unwrap();
        assert_eq!(fresh.status, RunStatus::Complete);
        let journal_path = dir.join("run_journal.bin");
        let dump = run_strs(&["journal", journal_path.to_str().unwrap()]).unwrap();
        assert!(dump.contains("RunStarted all"), "{dump}");
        assert_eq!(dump.matches("\nCellFinished ").count(), 30, "{dump}");
        assert!(dump.contains("RunFinished status=0"), "{dump}");
        // Finished cells were published to the store.
        let cells = std::fs::read_dir(dir.join("cells")).unwrap().count();
        assert_eq!(cells, 30);

        // Resumed run: restores every cell (visible in the benchmark
        // payload) and renders byte-identical output.
        let json_path = dir.join("BENCH_lab.json");
        let mut resume_args: Vec<&str> = base.to_vec();
        resume_args.push("--resume");
        resume_args.push("--bench-json");
        resume_args.push(json_path.to_str().unwrap());
        let resumed = run_full_strs(&resume_args).unwrap();
        assert_eq!(resumed.status, RunStatus::Complete);
        assert_eq!(resumed.text, fresh.text, "resume must not move a byte");
        let json = std::fs::read_to_string(&json_path).unwrap();
        assert!(json.contains("\"resumed_cells\": 30"), "{json}");
        assert!(json.contains("\"replayed_cells\": 0"), "{json}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn an_expired_cell_timeout_degrades_the_run() {
        let out = run_full_strs(&[
            "repro",
            "all",
            "--len",
            "50000",
            "--widths",
            "4",
            "--no-trace-cache",
            "--cell-timeout",
            "0.000001",
        ])
        .unwrap();
        assert_eq!(out.status, RunStatus::Degraded);
        assert_eq!(out.status.exit_code(), 2);
        assert!(out.text.contains("## Degraded run summary"), "{}", out.text);
        assert!(out.text.contains("(timed out)"), "{}", out.text);
        assert!(out.text.contains("--cell-timeout"), "{}", out.text);
    }

    #[test]
    fn a_generous_cell_timeout_completes_identically() {
        let args = [
            "repro",
            "fig2",
            "--len",
            "2000",
            "--widths",
            "4",
            "--no-trace-cache",
        ];
        let plain = run_full_strs(&args).unwrap();
        let mut timed: Vec<&str> = args.to_vec();
        timed.extend(["--cell-timeout", "3600"]);
        let timed = run_full_strs(&timed).unwrap();
        assert_eq!(timed.status, RunStatus::Complete);
        assert_eq!(timed.text, plain.text);
    }

    #[test]
    fn journal_dump_tolerates_a_missing_file() {
        let out = run_strs(&["journal", "/nonexistent/ddsc-journal.bin"]).unwrap();
        assert!(out.contains("0 records"), "{out}");
    }

    #[test]
    fn analyze_reports_the_dataflow_limit() {
        let out = run_strs(&["analyze", "ijpeg", "--len", "5000"]).unwrap();
        assert!(out.contains("dataflow-limit IPC"));
        assert!(out.contains("config E"));
    }

    #[test]
    fn disasm_prints_instructions() {
        let out = run_strs(&["disasm", "li"]).unwrap();
        assert!(out.lines().count() > 10);
    }
}
