//! A closed-loop multi-client load driver for `ddsc serve`.
//!
//! The driver builds a deterministic request plan from a seed — a mix
//! of fresh grid cells (cycling benchmark × config × width, bumping the
//! data seed each full lap) and duplicates of earlier requests at a
//! configurable ratio — then fires it from `clients` threads, each
//! owning one connection and every `clients`-th request, closed loop
//! (next request only after the previous one's terminal frame).
//!
//! Per-request latency is recorded wall-clock from the `Submit` write
//! to the terminal frame; the summary publishes
//! `results/BENCH_serve.json` (schema `ddsc-serve-bench-v1`) with
//! p50/p90/p99/p999, throughput, and the server's own coalesce /
//! cache-hit counters fetched from the stats endpoint — the counters
//! are the proof that duplicate requests did not re-simulate.

use std::collections::HashSet;
use std::io::{BufReader, BufWriter};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Instant;

use ddsc_core::PaperConfig;
use ddsc_util::{percentile, publish_atomic, Pcg32};
use ddsc_workloads::Benchmark;

use crate::engine::request_digest;
use crate::proto::{
    read_response, write_request, Request, Response, StatsSnapshot, SubmitRequest, WireError,
};

/// Load-test parameters.
#[derive(Debug, Clone)]
pub struct LoadtestConfig {
    /// Server address, `host:port`.
    pub addr: String,
    /// Total requests to fire.
    pub requests: usize,
    /// Concurrent closed-loop client threads.
    pub clients: usize,
    /// Fraction of requests (after the first) that repeat an earlier
    /// request, exercising coalescing and the result cache.
    pub dup_ratio: f64,
    /// Trace length for every generated cell.
    pub trace_len: u64,
    /// Plan seed (request mix) and base data seed.
    pub seed: u64,
    /// Issue widths cycled through the unique-cell grid.
    pub widths: Vec<u32>,
    /// Artifact path for the BENCH JSON.
    pub out: PathBuf,
    /// Send a `Shutdown` request once the run completes.
    pub shutdown: bool,
}

impl Default for LoadtestConfig {
    fn default() -> LoadtestConfig {
        LoadtestConfig {
            addr: "127.0.0.1:4996".to_string(),
            requests: 1000,
            clients: 32,
            dup_ratio: 0.5,
            trace_len: 2000,
            seed: 1996,
            widths: vec![4, 8],
            out: PathBuf::from("results/BENCH_serve.json"),
            shutdown: false,
        }
    }
}

/// Aggregated outcome of one load-test run.
#[derive(Debug, Clone)]
pub struct LoadtestReport {
    /// Requests that returned a `Result` frame.
    pub completed: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Requests that returned `Failed` or `Invalid`.
    pub failed: u64,
    /// Requests that returned `TimedOut`.
    pub timed_out: u64,
    /// Distinct cell digests in the plan.
    pub unique_cells: u64,
    /// Planned duplicate requests.
    pub duplicates: u64,
    /// Wall-clock for the whole run, seconds.
    pub wall_seconds: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Latency percentiles in milliseconds: (p50, p90, p99, p999).
    pub latency_ms: (f64, f64, f64, f64),
    /// Mean latency, milliseconds.
    pub mean_ms: f64,
    /// Max latency, milliseconds.
    pub max_ms: f64,
    /// Server counters fetched after the run.
    pub server: StatsSnapshot,
    /// Rendered JSON document (also what was published).
    pub json: String,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum TerminalKind {
    Completed,
    Rejected,
    Failed,
    TimedOut,
}

struct Sample {
    latency_ms: f64,
    kind: TerminalKind,
}

/// Builds the deterministic request plan: `(request, is_duplicate)`.
fn build_plan(cfg: &LoadtestConfig) -> Vec<(SubmitRequest, bool)> {
    let mut rng = Pcg32::new(cfg.seed);
    let widths = if cfg.widths.is_empty() {
        vec![4]
    } else {
        cfg.widths.clone()
    };
    let grid: Vec<(Benchmark, PaperConfig, u32)> = Benchmark::ALL
        .into_iter()
        .flat_map(|b| {
            PaperConfig::ALL
                .into_iter()
                .flat_map(|c| widths.iter().map(move |&w| (b, c, w)))
                .collect::<Vec<_>>()
        })
        .collect();
    let dup_permille = (cfg.dup_ratio.clamp(0.0, 1.0) * 1000.0).round() as u32;

    let mut plan: Vec<(SubmitRequest, bool)> = Vec::with_capacity(cfg.requests);
    let mut next_unique = 0usize;
    for i in 0..cfg.requests {
        let duplicate = i > 0 && rng.range(0, 1000) < dup_permille;
        if duplicate {
            let j = rng.range(0, i as u32) as usize;
            plan.push((plan[j].0.clone(), true));
        } else {
            let (bench, config, width) = grid[next_unique % grid.len()];
            // A full lap of the grid bumps the data seed, keeping
            // cells unique without growing the grid definition.
            let seed = cfg.seed + (next_unique / grid.len()) as u64;
            next_unique += 1;
            plan.push((
                SubmitRequest {
                    bench: bench.name().to_string(),
                    config: config.label().to_string(),
                    width,
                    trace_len: cfg.trace_len,
                    seed,
                },
                false,
            ));
        }
    }
    plan
}

fn drive_client(
    addr: &str,
    work: &[&SubmitRequest],
) -> Result<Vec<Sample>, Box<dyn std::error::Error>> {
    let stream = TcpStream::connect(addr)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut samples = Vec::with_capacity(work.len());
    for req in work {
        let start = Instant::now();
        write_request(&mut writer, &Request::Submit((*req).clone()))?;
        use std::io::Write as _;
        writer.flush()?;
        let kind = loop {
            match read_response(&mut reader)? {
                None => return Err(Box::new(WireError::Truncated)),
                Some(Response::Queued { .. }) | Some(Response::Started) => continue,
                Some(Response::Result { .. }) => break TerminalKind::Completed,
                Some(Response::Rejected { .. }) => break TerminalKind::Rejected,
                Some(Response::TimedOut { .. }) => break TerminalKind::TimedOut,
                Some(Response::Invalid { .. }) | Some(Response::Failed { .. }) => {
                    break TerminalKind::Failed
                }
                Some(other) => {
                    return Err(format!("unexpected response {other:?}").into());
                }
            }
        };
        samples.push(Sample {
            latency_ms: start.elapsed().as_secs_f64() * 1e3,
            kind,
        });
    }
    Ok(samples)
}

/// Runs the load test against a live server and publishes the BENCH
/// artifact.
///
/// # Errors
///
/// Returns connection errors, protocol violations, or a publish
/// failure.
pub fn run_loadtest(cfg: &LoadtestConfig) -> Result<LoadtestReport, Box<dyn std::error::Error>> {
    let plan = build_plan(cfg);
    let duplicates = plan.iter().filter(|(_, dup)| *dup).count() as u64;
    let unique_cells = plan
        .iter()
        .map(|(r, _)| request_digest(&r.bench, &r.config, r.width, r.trace_len, r.seed))
        .collect::<HashSet<u64>>()
        .len() as u64;

    let clients = cfg.clients.clamp(1, cfg.requests.max(1));
    let started = Instant::now();
    let per_client: Vec<Result<Vec<Sample>, String>> = std::thread::scope(|scope| {
        let plan = &plan;
        let addr = cfg.addr.as_str();
        let handles: Vec<_> = (0..clients)
            .map(|t| {
                scope.spawn(move || {
                    let work: Vec<&SubmitRequest> = plan
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| i % clients == t)
                        .map(|(_, (req, _))| req)
                        .collect();
                    drive_client(addr, &work).map_err(|e| e.to_string())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("client panicked".into())))
            .collect()
    });
    let wall_seconds = started.elapsed().as_secs_f64();

    let mut samples = Vec::with_capacity(cfg.requests);
    for result in per_client {
        samples.extend(result.map_err(|e| format!("client thread failed: {e}"))?);
    }

    let count = |k: TerminalKind| samples.iter().filter(|s| s.kind == k).count() as u64;
    let completed = count(TerminalKind::Completed);
    let rejected = count(TerminalKind::Rejected);
    let failed = count(TerminalKind::Failed);
    let timed_out = count(TerminalKind::TimedOut);

    let mut latencies: Vec<f64> = samples.iter().map(|s| s.latency_ms).collect();
    latencies.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| percentile(&latencies, p).unwrap_or(0.0);
    let latency_ms = (pct(50.0), pct(90.0), pct(99.0), pct(99.9));
    let mean_ms = ddsc_util::mean(&latencies).unwrap_or(0.0);
    let max_ms = latencies.last().copied().unwrap_or(0.0);
    let throughput_rps = if wall_seconds > 0.0 {
        completed as f64 / wall_seconds
    } else {
        0.0
    };

    // One control connection: counters, then the optional shutdown.
    let server = {
        let stream = TcpStream::connect(&cfg.addr)?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = BufWriter::new(stream);
        use std::io::Write as _;
        write_request(&mut writer, &Request::Stats)?;
        writer.flush()?;
        let snapshot = match read_response(&mut reader)? {
            Some(Response::Stats(s)) => s,
            other => return Err(format!("expected Stats response, got {other:?}").into()),
        };
        if cfg.shutdown {
            write_request(&mut writer, &Request::Shutdown)?;
            writer.flush()?;
            let _ = read_response(&mut reader);
        }
        snapshot
    };

    let json = render_json(
        cfg,
        &LoadtestNumbers {
            completed,
            rejected,
            failed,
            timed_out,
            unique_cells,
            duplicates,
            wall_seconds,
            throughput_rps,
            latency_ms,
            mean_ms,
            max_ms,
        },
        &server,
    );
    publish_atomic(&cfg.out, json.as_bytes())?;

    Ok(LoadtestReport {
        completed,
        rejected,
        failed,
        timed_out,
        unique_cells,
        duplicates,
        wall_seconds,
        throughput_rps,
        latency_ms,
        mean_ms,
        max_ms,
        server,
        json,
    })
}

struct LoadtestNumbers {
    completed: u64,
    rejected: u64,
    failed: u64,
    timed_out: u64,
    unique_cells: u64,
    duplicates: u64,
    wall_seconds: f64,
    throughput_rps: f64,
    latency_ms: (f64, f64, f64, f64),
    mean_ms: f64,
    max_ms: f64,
}

fn render_json(cfg: &LoadtestConfig, n: &LoadtestNumbers, s: &StatsSnapshot) -> String {
    let widths = cfg
        .widths
        .iter()
        .map(|w| w.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let (p50, p90, p99, p999) = n.latency_ms;
    format!(
        concat!(
            "{{\n",
            "  \"schema\": \"ddsc-serve-bench-v1\",\n",
            "  \"addr\": \"{addr}\",\n",
            "  \"requests\": {requests},\n",
            "  \"clients\": {clients},\n",
            "  \"duplicate_ratio\": {dup_ratio},\n",
            "  \"trace_len\": {trace_len},\n",
            "  \"seed\": {seed},\n",
            "  \"widths\": [{widths}],\n",
            "  \"unique_cells\": {unique_cells},\n",
            "  \"duplicates\": {duplicates},\n",
            "  \"completed\": {completed},\n",
            "  \"rejected\": {rejected},\n",
            "  \"failed\": {failed},\n",
            "  \"timed_out\": {timed_out},\n",
            "  \"wall_seconds\": {wall:.6},\n",
            "  \"throughput_rps\": {rps:.3},\n",
            "  \"latency_ms\": {{\n",
            "    \"p50\": {p50:.3},\n",
            "    \"p90\": {p90:.3},\n",
            "    \"p99\": {p99:.3},\n",
            "    \"p999\": {p999:.3},\n",
            "    \"mean\": {mean:.3},\n",
            "    \"max\": {max:.3}\n",
            "  }},\n",
            "  \"server\": {{\n",
            "    \"accepted\": {s_accepted},\n",
            "    \"completed\": {s_completed},\n",
            "    \"failed\": {s_failed},\n",
            "    \"timed_out\": {s_timed_out},\n",
            "    \"rejected_busy\": {s_rejected_busy},\n",
            "    \"rejected_invalid\": {s_rejected_invalid},\n",
            "    \"coalesced\": {s_coalesced},\n",
            "    \"cache_hits\": {s_cache_hits},\n",
            "    \"resumed_cells\": {s_resumed},\n",
            "    \"queue_depth\": {s_queue_depth},\n",
            "    \"workers\": {s_workers}\n",
            "  }}\n",
            "}}\n",
        ),
        addr = cfg.addr,
        requests = cfg.requests,
        clients = cfg.clients,
        dup_ratio = cfg.dup_ratio,
        trace_len = cfg.trace_len,
        seed = cfg.seed,
        widths = widths,
        unique_cells = n.unique_cells,
        duplicates = n.duplicates,
        completed = n.completed,
        rejected = n.rejected,
        failed = n.failed,
        timed_out = n.timed_out,
        wall = n.wall_seconds,
        rps = n.throughput_rps,
        p50 = p50,
        p90 = p90,
        p99 = p99,
        p999 = p999,
        mean = n.mean_ms,
        max = n.max_ms,
        s_accepted = s.accepted,
        s_completed = s.completed,
        s_failed = s.failed,
        s_timed_out = s.timed_out,
        s_rejected_busy = s.rejected_busy,
        s_rejected_invalid = s.rejected_invalid,
        s_coalesced = s.coalesced,
        s_cache_hits = s.cache_hits,
        s_resumed = s.resumed_cells,
        s_queue_depth = s.queue_depth,
        s_workers = s.workers,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic_and_respects_dup_ratio() {
        let cfg = LoadtestConfig {
            requests: 500,
            dup_ratio: 0.5,
            ..LoadtestConfig::default()
        };
        let a = build_plan(&cfg);
        let b = build_plan(&cfg);
        assert_eq!(a.len(), 500);
        assert_eq!(
            a.iter().map(|(r, _)| r.clone()).collect::<Vec<_>>(),
            b.iter().map(|(r, _)| r.clone()).collect::<Vec<_>>(),
            "same seed, same plan"
        );
        let dups = a.iter().filter(|(_, d)| *d).count();
        // 50% ± a generous tolerance at n=500.
        assert!((150..=350).contains(&dups), "dups {dups}");
        assert!(!a[0].1, "first request can never be a duplicate");
        // Every duplicate repeats an earlier request verbatim.
        for (i, (req, dup)) in a.iter().enumerate() {
            if *dup {
                assert!(a[..i].iter().any(|(r, _)| r == req), "dup {i} has a source");
            }
        }
    }

    #[test]
    fn plan_with_zero_dup_ratio_is_all_unique() {
        let cfg = LoadtestConfig {
            requests: 200,
            dup_ratio: 0.0,
            ..LoadtestConfig::default()
        };
        let plan = build_plan(&cfg);
        let digests: HashSet<u64> = plan
            .iter()
            .map(|(r, _)| request_digest(&r.bench, &r.config, r.width, r.trace_len, r.seed))
            .collect();
        assert_eq!(digests.len(), 200, "all cells distinct");
    }

    #[test]
    fn bench_json_renders_parseable_with_stable_keys() {
        let cfg = LoadtestConfig::default();
        let numbers = LoadtestNumbers {
            completed: 10,
            rejected: 1,
            failed: 0,
            timed_out: 0,
            unique_cells: 5,
            duplicates: 6,
            wall_seconds: 1.5,
            throughput_rps: 6.67,
            latency_ms: (1.0, 2.0, 3.0, 4.0),
            mean_ms: 1.4,
            max_ms: 4.2,
        };
        let json = render_json(&cfg, &numbers, &StatsSnapshot::default());
        let doc = ddsc_util::Json::parse(&json).expect("valid JSON");
        assert_eq!(
            doc.get("schema").and_then(ddsc_util::Json::as_str),
            Some("ddsc-serve-bench-v1")
        );
        let latency = doc.get("latency_ms").expect("latency object");
        assert_eq!(
            latency.keys(),
            vec!["p50", "p90", "p99", "p999", "mean", "max"]
        );
        assert_eq!(
            latency.get("p99").and_then(ddsc_util::Json::as_f64),
            Some(3.0)
        );
        let server = doc.get("server").expect("server object");
        assert_eq!(
            server.get("coalesced").and_then(ddsc_util::Json::as_f64),
            Some(0.0)
        );
    }
}
