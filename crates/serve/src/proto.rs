//! The `ddsc serve` wire protocol: checksummed binary frames over TCP.
//!
//! The service talks a length-prefixed binary protocol rather than
//! HTTP: the repo deliberately has no external dependencies, the
//! response body is already a binary codec ([`SimResult::encode_to`]),
//! and the framing can then reuse the journal's proven recipe — every
//! frame is `len:u32 ‖ payload ‖ fnv1a(payload):u64`, all integers
//! little-endian, so a torn or corrupted frame is *detected*, never
//! misparsed.
//!
//! ```text
//! frame    := len:u32 payload[len] fnv1a(payload):u64
//! payload  := kind:u8 fields...
//! string   := len:u16 utf8[len]
//! bytes    := len:u32 raw[len]
//! ```
//!
//! A connection carries a sequence of client [`Request`] frames; the
//! server answers each with one or more [`Response`] frames. A `Submit`
//! is answered by zero or more *progress* frames (`Queued`, `Started`)
//! followed by exactly one *terminal* frame (`Result`, `Rejected`,
//! `Invalid`, `Failed` or `TimedOut` — see [`Response::is_terminal`]);
//! every other request kind is answered by a single terminal frame.
//!
//! Decoding is total: any byte sequence produces either a value or a
//! typed [`WireError`] — untrusted input can never panic the decoder.
//! That property is pinned by the fault-plan proptests in
//! `tests/proto_proptest.rs`, which mutate valid frames with
//! [`ddsc_util::fault::FaultPlan`] and assert the decoder returns.

use std::fmt;
use std::io::{self, Read, Write};

use ddsc_util::fnv1a;

/// Protocol version, checked implicitly: the version byte leads every
/// payload, and a mismatch is an [`WireError::UnknownVersion`].
pub const PROTO_VERSION: u8 = 1;

/// Upper bound on a frame payload. A `Submit` is tiny and a `Result`
/// carries one encoded `SimResult` (a few hundred bytes plus bounded
/// histograms); anything claiming to be larger than 4 MiB is corruption
/// or abuse, rejected before allocation.
pub const MAX_FRAME_LEN: u32 = 4 << 20;

/// One experiment request: the full cell identity the digest is
/// computed from. `bench` and `config` are carried as strings so the
/// codec is closed under arbitrary inputs; semantic validation (known
/// benchmark, known configuration, sane bounds) happens in the engine,
/// not the decoder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitRequest {
    /// Benchmark short name (`compress`, `li`, ...).
    pub bench: String,
    /// Paper configuration label (`A`..`E`).
    pub config: String,
    /// Issue width.
    pub width: u32,
    /// Dynamic instructions to simulate.
    pub trace_len: u64,
    /// Workload data seed.
    pub seed: u64,
}

/// A client request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness / readiness probe.
    Ping,
    /// Submit one experiment cell.
    Submit(SubmitRequest),
    /// Fetch the server's counter snapshot.
    Stats,
    /// Ask the daemon to stop accepting work and exit its run loop.
    Shutdown,
}

/// The server's counter snapshot (the "stats endpoint").
///
/// All counters are cumulative since daemon start except `queue_depth`
/// (instantaneous) and `workers`/`resumed_cells` (fixed at start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Fresh submissions admitted to the job queue.
    pub accepted: u64,
    /// Jobs simulated to completion.
    pub completed: u64,
    /// Jobs whose simulation failed.
    pub failed: u64,
    /// Jobs cancelled on their wall-clock deadline.
    pub timed_out: u64,
    /// Submissions rejected because the queue was full (429-style).
    pub rejected_busy: u64,
    /// Submissions rejected by validation (400-style).
    pub rejected_invalid: u64,
    /// Submissions that joined an already in-flight identical cell.
    pub coalesced: u64,
    /// Submissions served from the in-memory result cache.
    pub cache_hits: u64,
    /// Cells restored from the journal + cell store at daemon start.
    pub resumed_cells: u64,
    /// Jobs currently waiting in the queue.
    pub queue_depth: u64,
    /// Fixed worker-pool size.
    pub workers: u64,
}

/// A server response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Progress: the submission was admitted; `depth` is the queue
    /// length just after the push.
    Queued {
        /// Queue length immediately after this job was enqueued.
        depth: u32,
    },
    /// Progress: a worker picked the cell up.
    Started,
    /// Terminal: the cell's result. `body` is exactly the
    /// [`SimResult::encode_to`](ddsc_core::SimResult::encode_to) bytes
    /// — the same canonical codec the cell store persists, so identical
    /// requests always receive byte-identical bodies.
    Result {
        /// The cell digest the result is stored under.
        digest: u64,
        /// Encoded `SimResult` bytes.
        body: Vec<u8>,
    },
    /// Terminal: admission control turned the request away (queue
    /// full). The client may retry later — nothing was enqueued.
    Rejected {
        /// Human-readable rejection reason.
        reason: String,
    },
    /// Terminal: the request failed validation (unknown benchmark,
    /// width out of range, ...). Retrying the same bytes cannot
    /// succeed.
    Invalid {
        /// What the validator objected to.
        reason: String,
    },
    /// Terminal: the simulation ran and failed.
    Failed {
        /// Rendered failure message.
        error: String,
    },
    /// Terminal: the cell exceeded its wall-clock deadline and was
    /// cancelled cooperatively (the exit-2-equivalent outcome).
    TimedOut {
        /// Rendered timeout message.
        error: String,
    },
    /// Terminal: answer to [`Request::Stats`].
    Stats(StatsSnapshot),
    /// Terminal: answer to [`Request::Shutdown`]; the daemon stops
    /// accepting connections after this frame.
    ShuttingDown,
}

impl Response {
    /// Whether this frame ends a request's response sequence.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, Response::Queued { .. } | Response::Started)
    }
}

/// Why a byte sequence failed to parse as a frame or payload.
///
/// Every decoding path returns one of these — the wire-facing code has
/// no panicking parse. `Io` carries transport errors so callers handle
/// one error type end to end.
#[derive(Debug)]
pub enum WireError {
    /// The stream ended inside a frame (length prefix promised more).
    Truncated,
    /// The frame checksum did not match its payload.
    Checksum,
    /// The length prefix exceeded [`MAX_FRAME_LEN`] (or was zero).
    BadLength(u32),
    /// The payload's version byte was not [`PROTO_VERSION`].
    UnknownVersion(u8),
    /// The payload's kind byte matched no known message.
    UnknownKind(u8),
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// The payload decoded but left unconsumed bytes.
    TrailingBytes,
    /// An underlying transport error.
    Io(io::Error),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::Checksum => write!(f, "frame checksum mismatch"),
            WireError::BadLength(n) => write!(f, "bad frame length {n}"),
            WireError::UnknownVersion(v) => write!(f, "unknown protocol version {v}"),
            WireError::UnknownKind(k) => write!(f, "unknown message kind {k}"),
            WireError::BadUtf8 => write!(f, "invalid utf-8 in string field"),
            WireError::TrailingBytes => write!(f, "trailing bytes after payload"),
            WireError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> WireError {
        WireError::Io(e)
    }
}

const REQ_PING: u8 = 1;
const REQ_SUBMIT: u8 = 2;
const REQ_STATS: u8 = 3;
const REQ_SHUTDOWN: u8 = 4;

const RESP_PONG: u8 = 1;
const RESP_QUEUED: u8 = 2;
const RESP_STARTED: u8 = 3;
const RESP_RESULT: u8 = 4;
const RESP_REJECTED: u8 = 5;
const RESP_INVALID: u8 = 6;
const RESP_FAILED: u8 = 7;
const RESP_TIMED_OUT: u8 = 8;
const RESP_STATS: u8 = 9;
const RESP_SHUTTING_DOWN: u8 = 10;

fn put_str(out: &mut Vec<u8>, s: &str) {
    let len = s.len().min(u16::MAX as usize) as u16;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&s.as_bytes()[..len as usize]);
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

/// A bounds-checked cursor over one payload; every getter returns
/// `Truncated` instead of slicing past the end.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let slice = self
            .bytes
            .get(self.pos..self.pos.checked_add(n).ok_or(WireError::Truncated)?)
            .ok_or(WireError::Truncated)?;
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, WireError> {
        let len = self.u16()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let len = self.u32()?;
        if len > MAX_FRAME_LEN {
            return Err(WireError::BadLength(len));
        }
        Ok(self.take(len as usize)?.to_vec())
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

impl Request {
    /// Encodes the payload (version, kind, fields — no framing).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        out.push(PROTO_VERSION);
        match self {
            Request::Ping => out.push(REQ_PING),
            Request::Submit(s) => {
                out.push(REQ_SUBMIT);
                put_str(&mut out, &s.bench);
                put_str(&mut out, &s.config);
                out.extend_from_slice(&s.width.to_le_bytes());
                out.extend_from_slice(&s.trace_len.to_le_bytes());
                out.extend_from_slice(&s.seed.to_le_bytes());
            }
            Request::Stats => out.push(REQ_STATS),
            Request::Shutdown => out.push(REQ_SHUTDOWN),
        }
        out
    }

    /// Decodes one payload. Total: any input yields a value or a typed
    /// [`WireError`].
    pub fn decode_payload(bytes: &[u8]) -> Result<Request, WireError> {
        let mut c = Cursor::new(bytes);
        let version = c.u8()?;
        if version != PROTO_VERSION {
            return Err(WireError::UnknownVersion(version));
        }
        let kind = c.u8()?;
        let req = match kind {
            REQ_PING => Request::Ping,
            REQ_SUBMIT => Request::Submit(SubmitRequest {
                bench: c.str()?,
                config: c.str()?,
                width: c.u32()?,
                trace_len: c.u64()?,
                seed: c.u64()?,
            }),
            REQ_STATS => Request::Stats,
            REQ_SHUTDOWN => Request::Shutdown,
            other => return Err(WireError::UnknownKind(other)),
        };
        c.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Encodes the payload (version, kind, fields — no framing).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.push(PROTO_VERSION);
        match self {
            Response::Pong => out.push(RESP_PONG),
            Response::Queued { depth } => {
                out.push(RESP_QUEUED);
                out.extend_from_slice(&depth.to_le_bytes());
            }
            Response::Started => out.push(RESP_STARTED),
            Response::Result { digest, body } => {
                out.push(RESP_RESULT);
                out.extend_from_slice(&digest.to_le_bytes());
                put_bytes(&mut out, body);
            }
            Response::Rejected { reason } => {
                out.push(RESP_REJECTED);
                put_str(&mut out, reason);
            }
            Response::Invalid { reason } => {
                out.push(RESP_INVALID);
                put_str(&mut out, reason);
            }
            Response::Failed { error } => {
                out.push(RESP_FAILED);
                put_str(&mut out, error);
            }
            Response::TimedOut { error } => {
                out.push(RESP_TIMED_OUT);
                put_str(&mut out, error);
            }
            Response::Stats(s) => {
                out.push(RESP_STATS);
                for v in [
                    s.accepted,
                    s.completed,
                    s.failed,
                    s.timed_out,
                    s.rejected_busy,
                    s.rejected_invalid,
                    s.coalesced,
                    s.cache_hits,
                    s.resumed_cells,
                    s.queue_depth,
                    s.workers,
                ] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Response::ShuttingDown => out.push(RESP_SHUTTING_DOWN),
        }
        out
    }

    /// Decodes one payload. Total: any input yields a value or a typed
    /// [`WireError`].
    pub fn decode_payload(bytes: &[u8]) -> Result<Response, WireError> {
        let mut c = Cursor::new(bytes);
        let version = c.u8()?;
        if version != PROTO_VERSION {
            return Err(WireError::UnknownVersion(version));
        }
        let kind = c.u8()?;
        let resp = match kind {
            RESP_PONG => Response::Pong,
            RESP_QUEUED => Response::Queued { depth: c.u32()? },
            RESP_STARTED => Response::Started,
            RESP_RESULT => Response::Result {
                digest: c.u64()?,
                body: c.bytes()?,
            },
            RESP_REJECTED => Response::Rejected { reason: c.str()? },
            RESP_INVALID => Response::Invalid { reason: c.str()? },
            RESP_FAILED => Response::Failed { error: c.str()? },
            RESP_TIMED_OUT => Response::TimedOut { error: c.str()? },
            RESP_STATS => Response::Stats(StatsSnapshot {
                accepted: c.u64()?,
                completed: c.u64()?,
                failed: c.u64()?,
                timed_out: c.u64()?,
                rejected_busy: c.u64()?,
                rejected_invalid: c.u64()?,
                coalesced: c.u64()?,
                cache_hits: c.u64()?,
                resumed_cells: c.u64()?,
                queue_depth: c.u64()?,
                workers: c.u64()?,
            }),
            RESP_SHUTTING_DOWN => Response::ShuttingDown,
            other => return Err(WireError::UnknownKind(other)),
        };
        c.finish()?;
        Ok(resp)
    }
}

/// Wraps a payload in one complete frame: `len ‖ payload ‖ checksum`.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(payload.len() + 12);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    frame.extend_from_slice(&fnv1a(payload).to_le_bytes());
    frame
}

/// Splits one frame off the front of `bytes`: returns the payload and
/// the bytes consumed. Errors exactly where [`read_frame`] would.
pub fn decode_frame(bytes: &[u8]) -> Result<(Vec<u8>, usize), WireError> {
    let len_bytes = bytes.get(..4).ok_or(WireError::Truncated)?;
    let len = u32::from_le_bytes(len_bytes.try_into().unwrap());
    if len == 0 || len > MAX_FRAME_LEN {
        return Err(WireError::BadLength(len));
    }
    let len = len as usize;
    let payload = bytes.get(4..4 + len).ok_or(WireError::Truncated)?;
    let sum = bytes.get(4 + len..12 + len).ok_or(WireError::Truncated)?;
    if fnv1a(payload) != u64::from_le_bytes(sum.try_into().unwrap()) {
        return Err(WireError::Checksum);
    }
    Ok((payload.to_vec(), 12 + len))
}

/// Reads one frame from a stream. `Ok(None)` is a clean end-of-stream
/// (the peer closed between frames); EOF *inside* a frame is
/// [`WireError::Truncated`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, WireError> {
    let mut len_bytes = [0u8; 4];
    // A clean close before any byte of the next frame is not an error.
    match r.read(&mut len_bytes) {
        Ok(0) => return Ok(None),
        Ok(n) => r
            .read_exact(&mut len_bytes[n..])
            .map_err(eof_as_truncated)?,
        Err(e) if e.kind() == io::ErrorKind::Interrupted => {
            r.read_exact(&mut len_bytes).map_err(eof_as_truncated)?
        }
        Err(e) => return Err(WireError::Io(e)),
    }
    let len = u32::from_le_bytes(len_bytes);
    if len == 0 || len > MAX_FRAME_LEN {
        return Err(WireError::BadLength(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(eof_as_truncated)?;
    let mut sum = [0u8; 8];
    r.read_exact(&mut sum).map_err(eof_as_truncated)?;
    if fnv1a(&payload) != u64::from_le_bytes(sum) {
        return Err(WireError::Checksum);
    }
    Ok(Some(payload))
}

fn eof_as_truncated(e: io::Error) -> WireError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        WireError::Truncated
    } else {
        WireError::Io(e)
    }
}

/// Writes one request as a frame.
pub fn write_request(w: &mut impl Write, req: &Request) -> io::Result<()> {
    w.write_all(&encode_frame(&req.encode_payload()))
}

/// Writes one response as a frame.
pub fn write_response(w: &mut impl Write, resp: &Response) -> io::Result<()> {
    w.write_all(&encode_frame(&resp.encode_payload()))
}

/// Reads one request frame; `Ok(None)` is clean end-of-stream.
pub fn read_request(r: &mut impl Read) -> Result<Option<Request>, WireError> {
    match read_frame(r)? {
        None => Ok(None),
        Some(payload) => Request::decode_payload(&payload).map(Some),
    }
}

/// Reads one response frame; `Ok(None)` is clean end-of-stream.
pub fn read_response(r: &mut impl Read) -> Result<Option<Response>, WireError> {
    match read_frame(r)? {
        None => Ok(None),
        Some(payload) => Response::decode_payload(&payload).map(Some),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Ping,
            Request::Stats,
            Request::Shutdown,
            Request::Submit(SubmitRequest {
                bench: "li".into(),
                config: "D".into(),
                width: 8,
                trace_len: 300_000,
                seed: 1996,
            }),
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Pong,
            Response::Queued { depth: 3 },
            Response::Started,
            Response::Result {
                digest: 0xdead_beef,
                body: vec![1, 2, 3, 4, 5],
            },
            Response::Rejected {
                reason: "queue full (depth 64)".into(),
            },
            Response::Invalid {
                reason: "unknown benchmark `nope`".into(),
            },
            Response::Failed {
                error: "cell panicked".into(),
            },
            Response::TimedOut {
                error: "exceeded 0.5 s deadline".into(),
            },
            Response::Stats(StatsSnapshot {
                accepted: 1,
                completed: 2,
                failed: 3,
                timed_out: 4,
                rejected_busy: 5,
                rejected_invalid: 6,
                coalesced: 7,
                cache_hits: 8,
                resumed_cells: 9,
                queue_depth: 10,
                workers: 11,
            }),
            Response::ShuttingDown,
        ]
    }

    #[test]
    fn every_message_round_trips_through_frames() {
        for req in sample_requests() {
            let frame = encode_frame(&req.encode_payload());
            let (payload, used) = decode_frame(&frame).unwrap();
            assert_eq!(used, frame.len());
            assert_eq!(Request::decode_payload(&payload).unwrap(), req);
        }
        for resp in sample_responses() {
            let frame = encode_frame(&resp.encode_payload());
            let (payload, used) = decode_frame(&frame).unwrap();
            assert_eq!(used, frame.len());
            assert_eq!(Response::decode_payload(&payload).unwrap(), resp);
        }
    }

    #[test]
    fn stream_io_round_trips_and_sees_clean_eof() {
        let mut buf = Vec::new();
        for req in sample_requests() {
            write_request(&mut buf, &req).unwrap();
        }
        let mut r = &buf[..];
        for req in sample_requests() {
            assert_eq!(read_request(&mut r).unwrap(), Some(req));
        }
        assert!(read_request(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncation_and_corruption_are_typed_errors() {
        let frame = encode_frame(&Request::Ping.encode_payload());
        // Every proper prefix is Truncated (or a clean EOF at zero).
        for cut in 1..frame.len() {
            let err = decode_frame(&frame[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated),
                "cut {cut} gave {err:?}"
            );
        }
        // A flipped payload byte is a checksum error.
        let mut bad = frame.clone();
        bad[5] ^= 0xFF;
        assert!(matches!(
            decode_frame(&bad).unwrap_err(),
            WireError::Checksum
        ));
        // An oversized length prefix is rejected before allocation.
        let mut huge = frame.clone();
        huge[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame(&huge).unwrap_err(),
            WireError::BadLength(_)
        ));
        // A zero length prefix is rejected too.
        let mut zero = frame;
        zero[..4].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            decode_frame(&zero).unwrap_err(),
            WireError::BadLength(0)
        ));
    }

    #[test]
    fn unknown_version_and_kind_are_rejected() {
        let mut payload = Request::Ping.encode_payload();
        payload[0] = 99;
        assert!(matches!(
            Request::decode_payload(&payload).unwrap_err(),
            WireError::UnknownVersion(99)
        ));
        let mut payload = Request::Ping.encode_payload();
        payload[1] = 200;
        assert!(matches!(
            Request::decode_payload(&payload).unwrap_err(),
            WireError::UnknownKind(200)
        ));
        let mut payload = Response::Pong.encode_payload();
        payload[1] = 200;
        assert!(matches!(
            Response::decode_payload(&payload).unwrap_err(),
            WireError::UnknownKind(200)
        ));
    }

    #[test]
    fn trailing_bytes_inside_a_payload_are_rejected() {
        let mut payload = Request::Stats.encode_payload();
        payload.push(0);
        assert!(matches!(
            Request::decode_payload(&payload).unwrap_err(),
            WireError::TrailingBytes
        ));
    }

    #[test]
    fn terminal_classification() {
        assert!(!Response::Queued { depth: 0 }.is_terminal());
        assert!(!Response::Started.is_terminal());
        for resp in sample_responses() {
            if !matches!(resp, Response::Queued { .. } | Response::Started) {
                assert!(resp.is_terminal(), "{resp:?}");
            }
        }
    }
}
