//! `ddsc-serve`: the lab as a long-running service.
//!
//! The one-shot CLI relaunches the whole toolchain for every grid; this
//! crate turns it into a daemon. Three layers, each usable on its own:
//!
//! * [`proto`] — a checksummed, length-prefixed binary frame protocol
//!   (journal-style `len ‖ payload ‖ fnv1a`) carrying typed requests
//!   and responses. Decoding is total: arbitrary bytes produce a value
//!   or a typed [`proto::WireError`], never a panic.
//! * [`engine`] — the transport-agnostic core: a bounded admission
//!   queue (typed 429-style rejections), a digest-keyed coalescing map
//!   (concurrent identical requests share one simulation; repeats hit
//!   the in-memory cache), a fixed worker pool with per-cell deadlines
//!   and panic containment, and journal + [`CellStore`] durability so a
//!   SIGKILLed daemon restarts warm and re-serves finished cells
//!   byte-identically.
//! * [`server`] / [`loadtest`] — a thread-per-connection TCP front end
//!   over the engine, and a closed-loop multi-client driver that
//!   attacks it and publishes `results/BENCH_serve.json` with latency
//!   percentiles and the server's coalesce/cache counters.
//!
//! [`CellStore`]: ddsc_experiments::CellStore

#![warn(missing_docs)]

pub mod engine;
pub mod loadtest;
pub mod proto;
pub mod server;

pub use engine::{request_digest, Engine, EngineConfig, JobEvent, Outcome, Submission, WorkerGate};
pub use loadtest::{run_loadtest, LoadtestConfig, LoadtestReport};
pub use proto::{
    read_request, read_response, write_request, write_response, Request, Response, StatsSnapshot,
    SubmitRequest, WireError,
};
pub use server::{ServeSummary, Server, StopHandle};
