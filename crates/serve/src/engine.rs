//! The serving engine: a bounded job queue, a fixed worker pool, and a
//! digest-keyed coalescing map in front of the simulator.
//!
//! The engine is the daemon's core and is transport-agnostic — the TCP
//! server (`server.rs`) and the in-process tests drive the same
//! [`Engine::submit`] API. Three properties it guarantees:
//!
//! * **Admission control.** The queue holds at most `queue_depth`
//!   pending jobs. A submission that would exceed it is turned away
//!   with a typed [`Submission::RejectedBusy`] — nothing is enqueued,
//!   nothing can hang.
//! * **Coalescing.** Cells are keyed by a digest over the full request
//!   identity `(bench, config, width, trace_len, seed)`. Concurrent
//!   identical submissions join the one in-flight cell and all receive
//!   the same byte-identical result; later identical submissions hit
//!   the in-memory outcome cache without touching the queue.
//! * **Durability.** With a run directory configured, every finished
//!   cell is saved to the [`CellStore`] *before* its `CellFinished`
//!   journal record is appended (the PR 5 ordering), so a SIGKILLed
//!   daemon restarted on the same directory re-serves journaled cells
//!   byte-identically without re-simulating.
//!
//! Timed-out and failed cells are *not* memoised: their map entries are
//! removed when the outcome is broadcast, so a retry after the
//! condition clears re-runs the cell instead of replaying the failure.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use ddsc_core::{
    simulate_prepared, try_simulate_prepared, CancelToken, PaperConfig, PreparedTrace, SimConfig,
};
use ddsc_experiments::CellStore;
use ddsc_util::{fnv1a, Journal, JournalRecord};
use ddsc_workloads::Benchmark;

use crate::proto::{StatsSnapshot, SubmitRequest};

/// Largest trace length a request may ask for unless the operator
/// raises it: long enough for paper-scale cells, short enough that one
/// request cannot pin a worker for hours by default.
pub const DEFAULT_MAX_TRACE_LEN: u64 = 50_000_000;

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Fixed worker-pool size (at least 1).
    pub workers: usize,
    /// Maximum pending jobs; submissions beyond it are rejected.
    pub queue_depth: usize,
    /// Per-cell wall-clock budget; `None` means no deadline.
    pub deadline: Option<Duration>,
    /// Durability root. `Some(dir)` keeps `dir/serve_journal.bin` and
    /// `dir/cells/`; `None` serves purely from memory.
    pub run_dir: Option<PathBuf>,
    /// Upper bound accepted for [`SubmitRequest::trace_len`].
    pub max_trace_len: u64,
    /// Test hook: workers block on this gate (when closed) after
    /// popping a job and before simulating. Lets a test pin the pool
    /// in a known state to probe admission control deterministically.
    pub gate: Option<Arc<WorkerGate>>,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            workers: 2,
            queue_depth: 64,
            deadline: None,
            run_dir: None,
            max_trace_len: DEFAULT_MAX_TRACE_LEN,
            gate: None,
        }
    }
}

/// A gate workers pass through between claiming a job and running it.
/// Open by default; tests close it to hold every worker at a known
/// point.
#[derive(Debug, Default)]
pub struct WorkerGate {
    closed: Mutex<bool>,
    cond: Condvar,
}

impl WorkerGate {
    /// A gate that starts closed.
    pub fn closed() -> WorkerGate {
        WorkerGate {
            closed: Mutex::new(true),
            cond: Condvar::new(),
        }
    }

    /// Opens the gate and wakes every worker waiting on it.
    pub fn open(&self) {
        let mut closed = self.closed.lock().unwrap_or_else(|e| e.into_inner());
        *closed = false;
        self.cond.notify_all();
    }

    fn wait(&self) {
        let mut closed = self.closed.lock().unwrap_or_else(|e| e.into_inner());
        while *closed {
            closed = self.cond.wait(closed).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// A terminal cell outcome, broadcast to every waiter of the cell.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// The cell finished; `body` is the canonical
    /// [`SimResult::encode_to`](ddsc_core::SimResult::encode_to) bytes.
    Done {
        /// The cell digest.
        digest: u64,
        /// Shared encoded result bytes.
        body: Arc<Vec<u8>>,
    },
    /// The simulation failed (panic, workload error, ...).
    Failed {
        /// Rendered failure message.
        error: String,
    },
    /// The cell was cancelled on its wall-clock deadline.
    TimedOut {
        /// Rendered timeout message.
        error: String,
    },
}

/// Progress events delivered to a submission's event channel.
#[derive(Debug, Clone)]
pub enum JobEvent {
    /// A worker picked the cell up.
    Started,
    /// The cell reached a terminal outcome.
    Finished(Outcome),
}

/// What [`Engine::submit`] did with a request.
#[derive(Debug)]
pub enum Submission {
    /// Served from the in-memory outcome cache; no work was queued.
    Cached(Outcome),
    /// Admitted (or coalesced onto an in-flight cell); progress and the
    /// terminal outcome arrive on `events`.
    Joined {
        /// Event stream for this submission.
        events: Receiver<JobEvent>,
        /// True if this submission joined an already in-flight cell.
        coalesced: bool,
        /// Queue length right after admission (0 when coalesced).
        depth: u32,
    },
    /// Turned away by admission control; nothing was enqueued.
    RejectedBusy {
        /// Why (queue full / shutting down).
        reason: String,
    },
    /// Failed validation; retrying the same request cannot succeed.
    Invalid {
        /// What the validator objected to.
        reason: String,
    },
}

/// A validated request, ready to simulate.
#[derive(Debug, Clone, Copy)]
struct ValidRequest {
    bench: Benchmark,
    config: PaperConfig,
    width: u32,
    trace_len: u64,
    seed: u64,
}

struct Job {
    digest: u64,
    req: ValidRequest,
}

enum CellState {
    /// Queued or running; waiters receive events as they happen.
    /// `started` records whether the `Started` event already fired so
    /// late joiners can be caught up.
    InFlight {
        waiters: Vec<Sender<JobEvent>>,
        started: bool,
    },
    /// Finished successfully; served straight from memory.
    Done(Outcome),
}

/// Bounded MPMC job queue: rejects on full, blocks on empty, drains the
/// backlog after close.
struct JobQueue {
    inner: Mutex<QueueInner>,
    cond: Condvar,
    capacity: usize,
}

struct QueueInner {
    jobs: VecDeque<Job>,
    closed: bool,
}

enum PushError {
    Full,
    Closed,
}

impl JobQueue {
    fn new(capacity: usize) -> JobQueue {
        JobQueue {
            inner: Mutex::new(QueueInner {
                jobs: VecDeque::new(),
                closed: false,
            }),
            cond: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues a job; `Ok(depth)` is the queue length after the push.
    fn push(&self, job: Job) -> Result<usize, PushError> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.jobs.len() >= self.capacity {
            return Err(PushError::Full);
        }
        inner.jobs.push_back(job);
        let depth = inner.jobs.len();
        self.cond.notify_one();
        Ok(depth)
    }

    /// Blocks for the next job; `None` once closed *and* drained.
    fn pop(&self) -> Option<Job> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.cond.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Stops admissions; workers drain the backlog then exit.
    fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.closed = true;
        self.cond.notify_all();
    }
}

#[derive(Default)]
struct Stats {
    accepted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    timed_out: AtomicU64,
    rejected_busy: AtomicU64,
    rejected_invalid: AtomicU64,
    coalesced: AtomicU64,
    cache_hits: AtomicU64,
    resumed_cells: AtomicU64,
    queue_depth: AtomicU64,
}

struct Shared {
    cells: Mutex<HashMap<u64, CellState>>,
    queue: JobQueue,
    stats: Stats,
    journal: Option<Journal>,
    store: Option<CellStore>,
    deadline: Option<Duration>,
    gate: Option<Arc<WorkerGate>>,
    workers: usize,
    max_trace_len: u64,
}

/// The serving engine. Cloneable handles are cheap (`Arc` inside);
/// call [`Engine::shutdown`] exactly once to stop the pool.
pub struct Engine {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// The digest identifying one experiment cell: a pure function of the
/// request parameters, so it names the same cell across daemon
/// restarts and across clients.
pub fn request_digest(bench: &str, config: &str, width: u32, trace_len: u64, seed: u64) -> u64 {
    let mut key = Vec::with_capacity(64);
    key.extend_from_slice(b"ddsc-serve-cell-v1\0");
    key.extend_from_slice(bench.as_bytes());
    key.push(0);
    key.extend_from_slice(config.as_bytes());
    key.push(0);
    key.extend_from_slice(&width.to_le_bytes());
    key.extend_from_slice(&trace_len.to_le_bytes());
    key.extend_from_slice(&seed.to_le_bytes());
    fnv1a(&key)
}

fn validate(req: &SubmitRequest, max_trace_len: u64) -> Result<ValidRequest, String> {
    let bench = Benchmark::ALL
        .into_iter()
        .find(|b| b.name() == req.bench)
        .ok_or_else(|| format!("unknown benchmark `{}`", req.bench))?;
    let config = PaperConfig::ALL
        .into_iter()
        .find(|c| c.label().eq_ignore_ascii_case(&req.config))
        .ok_or_else(|| format!("unknown configuration `{}` (A..E)", req.config))?;
    if req.width == 0 || req.width > 4096 {
        return Err(format!("width {} out of range (1..=4096)", req.width));
    }
    if req.trace_len == 0 || req.trace_len > max_trace_len {
        return Err(format!(
            "trace_len {} out of range (1..={max_trace_len})",
            req.trace_len
        ));
    }
    Ok(ValidRequest {
        bench,
        config,
        width: req.width,
        trace_len: req.trace_len,
        seed: req.seed,
    })
}

impl Engine {
    /// Starts the worker pool; with a run directory, first replays the
    /// journal and warms the outcome cache from the cell store.
    ///
    /// # Errors
    ///
    /// Returns any filesystem error opening the journal.
    pub fn start(config: EngineConfig) -> io::Result<Engine> {
        let workers = config.workers.max(1);
        let (journal, store, resumed) = match &config.run_dir {
            None => (None, None, Vec::new()),
            Some(dir) => {
                let store = CellStore::new(dir.join("cells"));
                let (journal, records) = Journal::open(&dir.join("serve_journal.bin"))?;
                (Some(journal), Some(store), records)
            }
        };

        let shared = Arc::new(Shared {
            cells: Mutex::new(HashMap::new()),
            queue: JobQueue::new(config.queue_depth.max(1)),
            stats: Stats::default(),
            journal,
            store,
            deadline: config.deadline,
            gate: config.gate,
            workers,
            max_trace_len: config.max_trace_len.max(1),
        });

        // Warm the cache: every journaled CellFinished whose stored
        // result still loads cleanly is re-served without simulating.
        if let Some(store) = &shared.store {
            let mut cells = shared.cells.lock().unwrap_or_else(|e| e.into_inner());
            for rec in &resumed {
                let JournalRecord::CellFinished {
                    config: label,
                    width,
                    digest,
                    ..
                } = rec
                else {
                    continue;
                };
                let Some(cfg) = PaperConfig::ALL.into_iter().find(|c| c.label() == label) else {
                    continue;
                };
                if let Some(result) = store.load(*digest, SimConfig::paper(cfg, *width)) {
                    let mut body = Vec::new();
                    result.encode_to(&mut body);
                    cells.insert(
                        *digest,
                        CellState::Done(Outcome::Done {
                            digest: *digest,
                            body: Arc::new(body),
                        }),
                    );
                    shared.stats.resumed_cells.fetch_add(1, Ordering::Relaxed);
                }
            }
        }

        if let Some(journal) = &shared.journal {
            journal.append(&JournalRecord::RunStarted {
                config: format!(
                    "serve workers={workers} queue={} deadline={:?}",
                    config.queue_depth, config.deadline
                ),
            })?;
        }

        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        Ok(Engine {
            shared,
            workers: Mutex::new(handles),
        })
    }

    /// Submits one request: validate → cache → coalesce → admit.
    pub fn submit(&self, req: &SubmitRequest) -> Submission {
        let shared = &self.shared;
        let valid = match validate(req, shared.max_trace_len) {
            Ok(v) => v,
            Err(reason) => {
                shared
                    .stats
                    .rejected_invalid
                    .fetch_add(1, Ordering::Relaxed);
                return Submission::Invalid { reason };
            }
        };
        let digest = request_digest(&req.bench, &req.config, req.width, req.trace_len, req.seed);

        // The cache / coalesce / admit decision happens atomically
        // under the map lock; the queue push nests inside it (lock
        // order: cells → queue, everywhere).
        let mut cells = shared.cells.lock().unwrap_or_else(|e| e.into_inner());
        match cells.get_mut(&digest) {
            Some(CellState::Done(outcome)) => {
                shared.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                Submission::Cached(outcome.clone())
            }
            Some(CellState::InFlight { waiters, started }) => {
                let (tx, rx) = mpsc::channel();
                if *started {
                    // Catch the late joiner up so every waiter sees a
                    // consistent Started → terminal sequence.
                    let _ = tx.send(JobEvent::Started);
                }
                waiters.push(tx);
                shared.stats.coalesced.fetch_add(1, Ordering::Relaxed);
                Submission::Joined {
                    events: rx,
                    coalesced: true,
                    depth: 0,
                }
            }
            None => match shared.queue.push(Job { digest, req: valid }) {
                Err(PushError::Full) => {
                    shared.stats.rejected_busy.fetch_add(1, Ordering::Relaxed);
                    Submission::RejectedBusy {
                        reason: format!("queue full (depth {})", shared.queue.capacity),
                    }
                }
                Err(PushError::Closed) => {
                    shared.stats.rejected_busy.fetch_add(1, Ordering::Relaxed);
                    Submission::RejectedBusy {
                        reason: "server is shutting down".to_string(),
                    }
                }
                Ok(depth) => {
                    let (tx, rx) = mpsc::channel();
                    cells.insert(
                        digest,
                        CellState::InFlight {
                            waiters: vec![tx],
                            started: false,
                        },
                    );
                    shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
                    shared.stats.queue_depth.fetch_add(1, Ordering::Relaxed);
                    Submission::Joined {
                        events: rx,
                        coalesced: false,
                        depth: depth as u32,
                    }
                }
            },
        }
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        let s = &self.shared.stats;
        StatsSnapshot {
            accepted: s.accepted.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            failed: s.failed.load(Ordering::Relaxed),
            timed_out: s.timed_out.load(Ordering::Relaxed),
            rejected_busy: s.rejected_busy.load(Ordering::Relaxed),
            rejected_invalid: s.rejected_invalid.load(Ordering::Relaxed),
            coalesced: s.coalesced.load(Ordering::Relaxed),
            cache_hits: s.cache_hits.load(Ordering::Relaxed),
            resumed_cells: s.resumed_cells.load(Ordering::Relaxed),
            queue_depth: s.queue_depth.load(Ordering::Relaxed),
            workers: self.shared.workers as u64,
        }
    }

    /// Stops admissions, drains the backlog, and joins the pool. Any
    /// cell still unfinished when the pool exits has its waiters'
    /// channels closed (clients observe a failed submission, never a
    /// hang).
    pub fn shutdown(&self) {
        self.shared.queue.close();
        let handles = std::mem::take(&mut *self.workers.lock().unwrap_or_else(|e| e.into_inner()));
        for handle in handles {
            let _ = handle.join();
        }
        if let Some(journal) = &self.shared.journal {
            let _ = journal.append(&JournalRecord::RunFinished { status: 0 });
        }
        // Dropping leftover InFlight senders closes their channels.
        let mut cells = self.shared.cells.lock().unwrap_or_else(|e| e.into_inner());
        cells.retain(|_, state| matches!(state, CellState::Done(_)));
    }
}

impl Shared {
    fn broadcast_started(&self, digest: u64) {
        let mut cells = self.cells.lock().unwrap_or_else(|e| e.into_inner());
        let waiters = match cells.get_mut(&digest) {
            Some(CellState::InFlight { waiters, started }) => {
                *started = true;
                waiters.clone()
            }
            _ => return,
        };
        drop(cells);
        for tx in waiters {
            let _ = tx.send(JobEvent::Started);
        }
    }

    fn finish(&self, digest: u64, outcome: Outcome) {
        let mut cells = self.cells.lock().unwrap_or_else(|e| e.into_inner());
        let waiters = match cells.remove(&digest) {
            Some(CellState::InFlight { waiters, .. }) => waiters,
            Some(done @ CellState::Done(_)) => {
                cells.insert(digest, done);
                Vec::new()
            }
            None => Vec::new(),
        };
        // Only successes are memoised; failures and timeouts re-run on
        // the next identical request.
        if let Outcome::Done { .. } = &outcome {
            cells.insert(digest, CellState::Done(outcome.clone()));
        }
        drop(cells);
        for tx in waiters {
            let _ = tx.send(JobEvent::Finished(outcome.clone()));
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        shared.stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
        shared.broadcast_started(job.digest);
        if let Some(journal) = &shared.journal {
            let _ = journal.append(&JournalRecord::CellStarted {
                bench: job.req.bench.name().to_string(),
                config: job.req.config.label().to_string(),
                width: job.req.width,
            });
        }
        if let Some(gate) = &shared.gate {
            gate.wait();
        }

        let outcome = run_cell(shared, &job);

        match &outcome {
            Outcome::Done { digest, .. } => {
                shared.stats.completed.fetch_add(1, Ordering::Relaxed);
                if let Some(journal) = &shared.journal {
                    let _ = journal.append(&JournalRecord::CellFinished {
                        bench: job.req.bench.name().to_string(),
                        config: job.req.config.label().to_string(),
                        width: job.req.width,
                        digest: *digest,
                    });
                }
            }
            Outcome::Failed { error } | Outcome::TimedOut { error } => {
                let counter = if matches!(outcome, Outcome::TimedOut { .. }) {
                    &shared.stats.timed_out
                } else {
                    &shared.stats.failed
                };
                counter.fetch_add(1, Ordering::Relaxed);
                if let Some(journal) = &shared.journal {
                    let _ = journal.append(&JournalRecord::CellFailed {
                        bench: job.req.bench.name().to_string(),
                        config: job.req.config.label().to_string(),
                        width: job.req.width,
                        error: error.clone(),
                    });
                }
            }
        }
        shared.finish(job.digest, outcome);
    }
}

fn run_cell(shared: &Shared, job: &Job) -> Outcome {
    let req = job.req;
    let deadline = shared.deadline;
    let computed = catch_unwind(AssertUnwindSafe(|| {
        let trace = req
            .bench
            .trace(req.seed, req.trace_len as usize)
            .map_err(|e| format!("trace generation failed: {e}"))?;
        let prepared = PreparedTrace::build(&trace);
        let config = SimConfig::paper(req.config, req.width);
        match deadline {
            None => Ok(simulate_prepared(&prepared, &config)),
            Some(budget) => {
                let token = CancelToken::with_deadline(budget);
                try_simulate_prepared(&prepared, &config, &token).map_err(|_| {
                    format!(
                        "cell timed out: exceeded the {:.3} s deadline",
                        budget.as_secs_f64()
                    )
                })
            }
        }
    }));

    match computed {
        Err(panic) => Outcome::Failed {
            error: format!("cell panicked: {}", panic_message(&panic)),
        },
        Ok(Err(error)) if error.starts_with("cell timed out") => Outcome::TimedOut { error },
        Ok(Err(error)) => Outcome::Failed { error },
        Ok(Ok(result)) => {
            let mut body = Vec::new();
            result.encode_to(&mut body);
            // Save-before-journal: the store write lands before the
            // CellFinished record the caller appends, so a journaled
            // cell always has a loadable result behind it.
            if let Some(store) = &shared.store {
                if let Err(e) = store.save(job.digest, &result) {
                    eprintln!("warning: cell store save failed: {e}");
                }
            }
            Outcome::Done {
                digest: job.digest,
                body: Arc::new(body),
            }
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
