//! The TCP front end: frames on a socket in, engine submissions out.
//!
//! One thread accepts connections; each connection gets a handler
//! thread speaking the `proto` frame protocol. The handler is a thin
//! adapter — every admission, coalescing and durability decision lives
//! in the [`Engine`]; the handler only translates [`Submission`]s and
//! [`JobEvent`]s into response frames.
//!
//! Corrupt input never kills the daemon: a frame that fails to decode
//! gets a best-effort [`Response::Invalid`] and the connection is
//! closed; the listener keeps serving everyone else.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ddsc_util::publish_atomic;

use crate::engine::{Engine, EngineConfig, JobEvent, Outcome, Submission};
use crate::proto::{read_request, write_response, Request, Response, StatsSnapshot, WireError};

/// A bound, ready-to-run service front end.
pub struct Server {
    listener: TcpListener,
    engine: Arc<Engine>,
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

/// What the daemon did over its lifetime, reported when `run` returns.
#[derive(Debug, Clone, Copy)]
pub struct ServeSummary {
    /// Final counter snapshot.
    pub stats: StatsSnapshot,
    /// Connections accepted.
    pub connections: u64,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// engine. With `port_file`, the actual bound address is published
    /// atomically so scripts can wait for it.
    ///
    /// # Errors
    ///
    /// Returns bind / journal-open / port-file errors.
    pub fn bind(
        addr: &str,
        engine: EngineConfig,
        port_file: Option<&std::path::Path>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        if let Some(path) = port_file {
            publish_atomic(path, addr.to_string().as_bytes())?;
        }
        let engine = Arc::new(Engine::start(engine)?);
        Ok(Server {
            listener,
            engine,
            stop: Arc::new(AtomicBool::new(false)),
            addr,
        })
    }

    /// The actually bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that can stop the accept loop from another thread.
    pub fn stop_handle(&self) -> StopHandle {
        StopHandle {
            stop: Arc::clone(&self.stop),
            addr: self.addr,
        }
    }

    /// Runs the accept loop until a `Shutdown` request (or a
    /// [`StopHandle`]) stops it, then drains the engine. Blocking —
    /// callers wanting a background server spawn a thread around it.
    pub fn run(self) -> ServeSummary {
        let mut connections = 0u64;
        for stream in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            connections += 1;
            let engine = Arc::clone(&self.engine);
            let stop = Arc::clone(&self.stop);
            let addr = self.addr;
            std::thread::spawn(move || {
                handle_connection(stream, &engine, &stop, addr);
            });
        }
        self.engine.shutdown();
        ServeSummary {
            stats: self.engine.stats(),
            connections,
        }
    }
}

/// Stops a running server's accept loop from outside.
#[derive(Clone)]
pub struct StopHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl StopHandle {
    /// Requests the accept loop to exit (idempotent).
    pub fn stop(&self) {
        request_stop(&self.stop, self.addr);
    }
}

fn request_stop(stop: &AtomicBool, addr: SocketAddr) {
    stop.store(true, Ordering::SeqCst);
    // The accept loop only observes the flag on its next accept; a
    // throwaway self-connection delivers one.
    let _ = TcpStream::connect(addr);
}

fn handle_connection(stream: TcpStream, engine: &Engine, stop: &AtomicBool, addr: SocketAddr) {
    let reader = stream.try_clone();
    let Ok(reader) = reader else { return };
    let mut reader = BufReader::new(reader);
    let mut writer = BufWriter::new(stream);

    loop {
        match read_request(&mut reader) {
            Ok(None) => break,
            Ok(Some(Request::Ping)) => {
                if send(&mut writer, &Response::Pong).is_err() {
                    break;
                }
            }
            Ok(Some(Request::Stats)) => {
                if send(&mut writer, &Response::Stats(engine.stats())).is_err() {
                    break;
                }
            }
            Ok(Some(Request::Shutdown)) => {
                let _ = send(&mut writer, &Response::ShuttingDown);
                request_stop(stop, addr);
                break;
            }
            Ok(Some(Request::Submit(req))) => {
                if handle_submit(&mut writer, engine, &req).is_err() {
                    break;
                }
            }
            Err(WireError::Io(_)) => break,
            Err(e) => {
                // Corrupt framing: answer with a typed error if the
                // socket still writes, then drop the connection — the
                // stream position is no longer trustworthy.
                let _ = send(
                    &mut writer,
                    &Response::Invalid {
                        reason: format!("bad frame: {e}"),
                    },
                );
                break;
            }
        }
    }
}

fn handle_submit(
    writer: &mut impl Write,
    engine: &Engine,
    req: &crate::proto::SubmitRequest,
) -> io::Result<()> {
    match engine.submit(req) {
        Submission::Cached(outcome) => send(writer, &outcome_response(&outcome)),
        Submission::Invalid { reason } => send(writer, &Response::Invalid { reason }),
        Submission::RejectedBusy { reason } => send(writer, &Response::Rejected { reason }),
        Submission::Joined { events, depth, .. } => {
            send(writer, &Response::Queued { depth })?;
            loop {
                match events.recv() {
                    Ok(JobEvent::Started) => send(writer, &Response::Started)?,
                    Ok(JobEvent::Finished(outcome)) => {
                        return send(writer, &outcome_response(&outcome));
                    }
                    // Engine shut down before the cell ran: terminal
                    // failure, never a hang.
                    Err(_) => {
                        return send(
                            writer,
                            &Response::Failed {
                                error: "server shut down before the cell ran".to_string(),
                            },
                        );
                    }
                }
            }
        }
    }
}

fn outcome_response(outcome: &Outcome) -> Response {
    match outcome {
        Outcome::Done { digest, body } => Response::Result {
            digest: *digest,
            body: (**body).clone(),
        },
        Outcome::Failed { error } => Response::Failed {
            error: error.clone(),
        },
        Outcome::TimedOut { error } => Response::TimedOut {
            error: error.clone(),
        },
    }
}

fn send(writer: &mut impl Write, resp: &Response) -> io::Result<()> {
    write_response(writer, resp)?;
    writer.flush()
}
