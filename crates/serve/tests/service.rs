//! Integration tests for the serve engine + TCP front end:
//! coalescing/determinism, admission control, deadlines, validation,
//! corrupt-frame containment and warm restart — all against a real
//! listener on an ephemeral port.

use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use ddsc_serve::proto::{read_response, write_request, Request, Response, SubmitRequest};
use ddsc_serve::{Engine, EngineConfig, JobEvent, Server, Submission, WorkerGate};

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ddsc-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn cell(seed: u64) -> SubmitRequest {
    SubmitRequest {
        bench: "compress".to_string(),
        config: "C".to_string(),
        width: 8,
        trace_len: 2_000,
        seed,
    }
}

/// One test client: a connection plus helpers that speak the protocol.
struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: BufWriter::new(stream),
        }
    }

    fn send(&mut self, req: &Request) {
        write_request(&mut self.writer, req).expect("write");
        self.writer.flush().expect("flush");
    }

    fn recv(&mut self) -> Response {
        read_response(&mut self.reader)
            .expect("read")
            .expect("open stream")
    }

    /// Sends a submit and reads frames through the terminal one.
    fn submit_terminal(&mut self, req: &SubmitRequest) -> Response {
        self.send(&Request::Submit(req.clone()));
        loop {
            let resp = self.recv();
            if resp.is_terminal() {
                return resp;
            }
        }
    }

    fn stats(&mut self) -> ddsc_serve::StatsSnapshot {
        self.send(&Request::Stats);
        match self.recv() {
            Response::Stats(s) => s,
            other => panic!("expected stats, got {other:?}"),
        }
    }
}

fn spawn_server(config: EngineConfig) -> (std::net::SocketAddr, ddsc_serve::StopHandle) {
    let server = Server::bind("127.0.0.1:0", config, None).expect("bind");
    let addr = server.local_addr();
    let stop = server.stop_handle();
    std::thread::spawn(move || server.run());
    (addr, stop)
}

#[test]
fn concurrent_identical_submissions_coalesce_onto_one_simulation() {
    let (addr, stop) = spawn_server(EngineConfig {
        workers: 4,
        ..EngineConfig::default()
    });

    const CLIENTS: usize = 8;
    let req = cell(41);
    let bodies: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let req = req.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(addr);
                    match client.submit_terminal(&req) {
                        Response::Result { body, .. } => body,
                        other => panic!("expected result, got {other:?}"),
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(bodies.len(), CLIENTS);
    assert!(!bodies[0].is_empty());
    for body in &bodies[1..] {
        assert_eq!(body, &bodies[0], "every client gets byte-identical bytes");
    }

    let stats = Client::connect(addr).stats();
    assert_eq!(stats.completed, 1, "exactly one simulation ran");
    assert_eq!(stats.accepted, 1, "exactly one admission");
    assert_eq!(
        stats.coalesced + stats.cache_hits,
        (CLIENTS - 1) as u64,
        "every other client coalesced or hit the cache"
    );
    // A repeat after completion is a pure cache hit, still byte-identical.
    let mut client = Client::connect(addr);
    match client.submit_terminal(&req) {
        Response::Result { body, .. } => assert_eq!(body, bodies[0]),
        other => panic!("expected cached result, got {other:?}"),
    }
    assert_eq!(client.stats().completed, 1, "cache hit did not re-simulate");
    stop.stop();
}

#[test]
fn burst_beyond_queue_depth_gets_exactly_m_typed_rejections() {
    const K: usize = 3; // queue capacity
    const M: usize = 4; // overflow
    let gate = Arc::new(WorkerGate::closed());
    let (addr, stop) = spawn_server(EngineConfig {
        workers: 1,
        queue_depth: K,
        gate: Some(Arc::clone(&gate)),
        ..EngineConfig::default()
    });

    // A plug job: once its Started frame arrives, the single worker
    // holds it at the closed gate and the queue is empty again.
    let mut plug = Client::connect(addr);
    plug.send(&Request::Submit(cell(100)));
    assert!(matches!(plug.recv(), Response::Queued { .. }));
    assert!(matches!(plug.recv(), Response::Started));

    // Burst K+M distinct cells on separate connections. Admission is
    // answered immediately (Queued/Rejected), so this is deterministic:
    // exactly K fit, exactly M overflow.
    let mut accepted = Vec::new();
    let mut rejections = 0;
    for i in 0..(K + M) {
        let mut client = Client::connect(addr);
        client.send(&Request::Submit(cell(200 + i as u64)));
        match client.recv() {
            Response::Queued { .. } => accepted.push(client),
            Response::Rejected { reason } => {
                assert!(reason.contains("queue full"), "reason: {reason}");
                rejections += 1;
            }
            other => panic!("expected queued/rejected, got {other:?}"),
        }
    }
    assert_eq!(accepted.len(), K, "exactly K admitted");
    assert_eq!(rejections, M, "exactly M typed rejections");

    // Open the gate: the plug and every accepted request complete —
    // zero dropped, zero hung.
    gate.open();
    assert!(matches!(plug.recv_terminal(), Response::Result { .. }));
    for mut client in accepted {
        assert!(matches!(client.recv_terminal(), Response::Result { .. }));
    }

    let stats = Client::connect(addr).stats();
    assert_eq!(stats.rejected_busy, M as u64);
    assert_eq!(stats.completed, (K + 1) as u64);
    assert_eq!(stats.queue_depth, 0);
    stop.stop();
}

impl Client {
    /// Reads frames until the terminal one (for already-sent submits).
    fn recv_terminal(&mut self) -> Response {
        loop {
            let resp = self.recv();
            if resp.is_terminal() {
                return resp;
            }
        }
    }
}

#[test]
fn deadline_times_the_cell_out_without_stalling_the_worker() {
    let (addr, stop) = spawn_server(EngineConfig {
        workers: 1,
        deadline: Some(Duration::from_millis(5)),
        ..EngineConfig::default()
    });

    let mut client = Client::connect(addr);
    // Large enough that simulation cannot finish in 5 ms.
    let big = SubmitRequest {
        trace_len: 500_000,
        ..cell(7)
    };
    match client.submit_terminal(&big) {
        Response::TimedOut { error } => {
            assert!(error.contains("timed out"), "error: {error}")
        }
        other => panic!("expected timeout, got {other:?}"),
    }

    // The worker survived: a tiny cell on the same connection completes
    // (1k instructions simulate in well under 5 ms even in debug).
    let small = SubmitRequest {
        trace_len: 200,
        ..cell(8)
    };
    match client.submit_terminal(&small) {
        Response::Result { body, .. } => assert!(!body.is_empty()),
        other => panic!("expected result, got {other:?}"),
    }

    let stats = client.stats();
    assert_eq!(stats.timed_out, 1);
    assert_eq!(stats.completed, 1);

    // Timeouts are not memoised: resubmitting the big cell re-runs it
    // (accepted counts 3 admissions, not 2).
    match client.submit_terminal(&big) {
        Response::TimedOut { .. } => {}
        other => panic!("expected second timeout, got {other:?}"),
    }
    assert_eq!(client.stats().accepted, 3);
    stop.stop();
}

#[test]
fn validation_rejects_garbage_but_keeps_the_connection() {
    let (addr, stop) = spawn_server(EngineConfig::default());
    let mut client = Client::connect(addr);

    for (bad, needle) in [
        (
            SubmitRequest {
                bench: "nope".to_string(),
                ..cell(1)
            },
            "unknown benchmark",
        ),
        (
            SubmitRequest {
                config: "Z".to_string(),
                ..cell(1)
            },
            "unknown configuration",
        ),
        (
            SubmitRequest {
                width: 0,
                ..cell(1)
            },
            "width",
        ),
        (
            SubmitRequest {
                trace_len: 0,
                ..cell(1)
            },
            "trace_len",
        ),
    ] {
        match client.submit_terminal(&bad) {
            Response::Invalid { reason } => {
                assert!(reason.contains(needle), "reason {reason:?} vs {needle}")
            }
            other => panic!("expected invalid, got {other:?}"),
        }
    }

    // Well-framed invalid requests leave the connection usable.
    assert!(matches!(
        client.submit_terminal(&cell(1)),
        Response::Result { .. }
    ));
    assert_eq!(client.stats().rejected_invalid, 4);
    stop.stop();
}

#[test]
fn corrupt_frames_poison_one_connection_not_the_daemon() {
    let (addr, stop) = spawn_server(EngineConfig::default());

    // Raw garbage: the handler answers with a typed Invalid (best
    // effort) and drops the connection.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(&[0xFF; 64]).expect("write garbage");
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    match read_response(&mut reader) {
        Ok(Some(Response::Invalid { reason })) => {
            assert!(reason.contains("bad frame"), "reason: {reason}")
        }
        Ok(None) | Err(_) => {} // connection closed before the reply: also fine
        Ok(Some(other)) => panic!("expected invalid, got {other:?}"),
    }

    // The daemon is still serving everyone else.
    let mut client = Client::connect(addr);
    client.send(&Request::Ping);
    assert!(matches!(client.recv(), Response::Pong));
    assert!(matches!(
        client.submit_terminal(&cell(2)),
        Response::Result { .. }
    ));
    stop.stop();
}

#[test]
fn engine_restart_on_same_run_dir_serves_journaled_cells_warm() {
    let dir = tmpdir("restart");
    let reqs: Vec<SubmitRequest> = (0..3).map(cell).collect();

    // First engine: simulate three cells, remember their bytes.
    let engine = Engine::start(EngineConfig {
        workers: 2,
        run_dir: Some(dir.clone()),
        ..EngineConfig::default()
    })
    .expect("start");
    let mut bodies = Vec::new();
    for req in &reqs {
        let Submission::Joined { events, .. } = engine.submit(req) else {
            panic!("expected admission");
        };
        let body = loop {
            match events.recv().expect("event") {
                JobEvent::Started => continue,
                JobEvent::Finished(ddsc_serve::Outcome::Done { body, .. }) => break body,
                JobEvent::Finished(other) => panic!("expected done, got {other:?}"),
            }
        };
        bodies.push(body);
    }
    engine.shutdown();

    // Second engine on the same directory: the journal + cell store
    // warm the cache, and the same requests are served byte-identically
    // without simulating anything.
    let engine = Engine::start(EngineConfig {
        workers: 2,
        run_dir: Some(dir.clone()),
        ..EngineConfig::default()
    })
    .expect("restart");
    assert_eq!(engine.stats().resumed_cells, 3, "all three cells resumed");
    for (req, expected) in reqs.iter().zip(&bodies) {
        match engine.submit(req) {
            Submission::Cached(ddsc_serve::Outcome::Done { body, .. }) => {
                assert_eq!(&*body, &**expected, "byte-identical across restart")
            }
            other => panic!("expected cached, got {other:?}"),
        }
    }
    assert_eq!(engine.stats().completed, 0, "nothing re-simulated");
    engine.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
