//! Property tests for the serve wire codec.
//!
//! Two properties pin the protocol down:
//!
//! 1. **Lossless round-trip** — every representable request/response
//!    encodes to a frame that decodes back to an equal value.
//! 2. **Totality under corruption** — arbitrary mutations of valid
//!    frames (via the `ddsc-util` fault-plan byte mutator) and fully
//!    random byte soup always produce a value or a typed `WireError`;
//!    the decoders contain no panicking path on untrusted input.

use ddsc_serve::proto::{
    decode_frame, encode_frame, read_request, read_response, Request, Response, StatsSnapshot,
    SubmitRequest, WireError,
};
use ddsc_util::FaultPlan;
use proptest::prelude::*;

/// Arbitrary (possibly non-ASCII, possibly empty) string fields, built
/// from raw bytes since the vendored proptest has no string strategy.
fn arb_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 0..24)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

fn arb_submit() -> impl Strategy<Value = SubmitRequest> {
    (
        arb_string(),
        arb_string(),
        any::<u32>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(bench, config, width, trace_len, seed)| SubmitRequest {
            bench,
            config,
            width,
            trace_len,
            seed,
        })
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        Just(Request::Ping),
        Just(Request::Stats),
        Just(Request::Shutdown),
        arb_submit().prop_map(Request::Submit),
    ]
}

fn arb_stats() -> impl Strategy<Value = StatsSnapshot> {
    proptest::collection::vec(any::<u64>(), 11..12).prop_map(|v| StatsSnapshot {
        accepted: v[0],
        completed: v[1],
        failed: v[2],
        timed_out: v[3],
        rejected_busy: v[4],
        rejected_invalid: v[5],
        coalesced: v[6],
        cache_hits: v[7],
        resumed_cells: v[8],
        queue_depth: v[9],
        workers: v[10],
    })
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Pong),
        Just(Response::Started),
        Just(Response::ShuttingDown),
        any::<u32>().prop_map(|depth| Response::Queued { depth }),
        (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..512))
            .prop_map(|(digest, body)| Response::Result { digest, body }),
        arb_string().prop_map(|reason| Response::Rejected { reason }),
        arb_string().prop_map(|reason| Response::Invalid { reason }),
        arb_string().prop_map(|error| Response::Failed { error }),
        arb_string().prop_map(|error| Response::TimedOut { error }),
        arb_stats().prop_map(Response::Stats),
    ]
}

proptest! {
    /// Any representable request survives frame encode → decode.
    #[test]
    fn request_round_trips(req in arb_request()) {
        let frame = encode_frame(&req.encode_payload());
        let (payload, consumed) = decode_frame(&frame).expect("own frame decodes");
        prop_assert_eq!(consumed, frame.len());
        prop_assert_eq!(Request::decode_payload(&payload).expect("own payload decodes"), req);
    }

    /// Any representable response survives frame encode → decode, both
    /// via the buffer API and the stream API.
    #[test]
    fn response_round_trips(resp in arb_response()) {
        let frame = encode_frame(&resp.encode_payload());
        let (payload, consumed) = decode_frame(&frame).expect("own frame decodes");
        prop_assert_eq!(consumed, frame.len());
        prop_assert_eq!(
            Response::decode_payload(&payload).expect("own payload decodes"),
            resp.clone()
        );
        let mut stream = &frame[..];
        prop_assert_eq!(read_response(&mut stream).expect("stream decodes"), Some(resp));
    }

    /// Fault-plan-mutated request frames never panic the decoder: the
    /// result is a value or a typed error, and when the mutation left
    /// the frame intact the round-trip still holds.
    #[test]
    fn mutated_request_frames_decode_totally(
        req in arb_request(),
        seed in any::<u64>(),
        faults in 1usize..8,
    ) {
        let clean = encode_frame(&req.encode_payload());
        let mut bytes = clean.clone();
        FaultPlan::seeded(seed, faults, bytes.len()).apply(&mut bytes);
        match decode_frame(&bytes) {
            Ok((payload, _)) => {
                // The checksum may genuinely still match (e.g. a
                // mutation past the frame end or an identity swap);
                // the payload decoder must stay total either way.
                let _ = Request::decode_payload(&payload);
            }
            Err(e) => prop_assert!(
                matches!(
                    e,
                    WireError::Truncated
                        | WireError::Checksum
                        | WireError::BadLength(_)
                        | WireError::Io(_)
                ),
                "unexpected error class {e:?}"
            ),
        }
        if bytes == clean {
            let (payload, _) = decode_frame(&bytes).expect("untouched frame decodes");
            prop_assert_eq!(Request::decode_payload(&payload).expect("decodes"), req);
        }
    }

    /// Fault-plan-mutated response frames never panic the stream reader.
    #[test]
    fn mutated_response_frames_decode_totally(
        resp in arb_response(),
        seed in any::<u64>(),
        faults in 1usize..8,
    ) {
        let mut bytes = encode_frame(&resp.encode_payload());
        FaultPlan::seeded(seed, faults, bytes.len()).apply(&mut bytes);
        let mut stream = &bytes[..];
        // Must return, never panic; error class is free (Io covers
        // reads hitting a mutated length prefix).
        let _ = read_response(&mut stream);
    }

    /// Fully random byte soup never panics any decoding entry point.
    #[test]
    fn random_bytes_decode_totally(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_frame(&bytes);
        let _ = Request::decode_payload(&bytes);
        let _ = Response::decode_payload(&bytes);
        let mut stream = &bytes[..];
        let _ = read_request(&mut stream);
        let mut stream = &bytes[..];
        let _ = read_response(&mut stream);
    }

    /// Every strict prefix of a valid frame is a typed truncation (or a
    /// clean EOF at zero bytes on the stream API).
    #[test]
    fn prefixes_are_truncations(req in arb_request(), cut_scale in 0.0f64..1.0) {
        let frame = encode_frame(&req.encode_payload());
        let cut = ((frame.len() - 1) as f64 * cut_scale) as usize;
        match decode_frame(&frame[..cut]) {
            Err(WireError::Truncated) => {}
            other => prop_assert!(false, "prefix {cut} gave {other:?}"),
        }
        let mut stream = &frame[..cut];
        match read_request(&mut stream) {
            Ok(None) if cut == 0 => {}
            Err(WireError::Truncated) => {}
            other => prop_assert!(false, "stream prefix {cut} gave {other:?}"),
        }
    }
}
