//! Shared helpers for the Criterion benchmark harness.
//!
//! Each bench target regenerates one paper artifact (see `benches/`);
//! the helpers here build appropriately-sized labs so Criterion timing
//! stays reasonable while the printed rows remain representative.

use ddsc_experiments::{Lab, SuiteConfig};

/// Widths used by the benchmark harness: the paper's sweep with the 2k
/// point included (traces are short enough for it to be cheap).
pub const BENCH_WIDTHS: [u32; 5] = [4, 8, 16, 32, 2048];

/// Builds a lab sized for benchmarking: smaller traces than the full
/// reproduction, same seed and widths.
pub fn bench_lab(trace_len: usize) -> Lab {
    Lab::new(SuiteConfig {
        seed: 1996,
        trace_len,
        widths: BENCH_WIDTHS.to_vec(),
    })
}

/// Builds a lab with an explicit width list.
pub fn bench_lab_widths(trace_len: usize, widths: &[u32]) -> Lab {
    Lab::new(SuiteConfig {
        seed: 1996,
        trace_len,
        widths: widths.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lab_builders_produce_working_labs() {
        let lab = bench_lab_widths(2_000, &[4]);
        let f = ddsc_experiments::figures::fig2(&lab);
        assert_eq!(f.series.len(), 5);
    }
}
