//! Regenerates Table 2 (branch characteristics) and benchmarks the 8 KB
//! McFarling predictor over each benchmark's branch stream.
//!
//! Full-scale reproduction: `ddsc repro table2`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ddsc_experiments::{Suite, SuiteConfig};
use ddsc_predict::{branch_stats, McFarling};
use ddsc_workloads::Benchmark;

const LEN: usize = 40_000;

fn bench(c: &mut Criterion) {
    let suite = Suite::generate(SuiteConfig {
        seed: 1996,
        trace_len: LEN,
        widths: vec![4],
    });
    println!("{}", ddsc_experiments::tables::table2(&suite).render());

    let mut group = c.benchmark_group("table2_branch");
    group.sample_size(10);
    group.throughput(Throughput::Elements(LEN as u64));
    for b in Benchmark::ALL {
        let trace = suite.trace(b).clone();
        group.bench_function(b.name(), |bench| {
            bench.iter(|| criterion::black_box(branch_stats(&trace, &mut McFarling::paper_8kb())))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
